"""Bounded-memory regression: big worlds under a small page budget.

The point of the store is that world size and resident memory are
decoupled: building streams one page of rows at a time, and reading —
random access or full scans — keeps at most ``budget_bytes`` of
decoded pages resident (the cache's own ``peak_bytes`` accounting,
which :mod:`tests.store.test_pagecache` pins as an upper bound on
residency).  Here a 20k-site world (100k in ``-m slow``) is built and
then pushed through every analysis-style access pattern under a budget
a couple of orders below the world's on-disk size, asserting the peak
never crosses the line while the results stay exact.
"""

import pytest

from repro.analysis.strata import build_strata_table
from repro.analysis.table4 import build_table4
from repro.store import StrataSampler, build_world_store

SEED = 31
#: Keep the budget well below the segment size so the scan must evict.
BUDGET = 256 * 1024


def build_and_analyze(tmp_path, population):
    store = build_world_store(
        tmp_path / "ws", SEED, population, budget_bytes=BUDGET
    )
    try:
        specs_bytes = (store.path / "specs.seg").stat().st_size
        assert specs_bytes > 4 * BUDGET, "world too small to exercise eviction"

        # Full streaming scan (the heaviest access pattern).
        count = sum(1 for _ in store.iter_specs())
        assert count == population

        # Windowed survey (Table 4) and stratified incidence.
        windows = build_table4(store, start_ranks=(1, 1000, 10000))
        assert all(row.sample_size == 100 for row in windows)
        strata = build_strata_table(store, SEED, strata=(1_000, population))
        assert strata, "no strata built"

        # Random access across the whole rank range.
        step = population // 997 or 1
        for rank in range(1, population + 1, max(step, 1)):
            assert store.spec_at_rank(rank).rank == rank

        stats = store.cache_stats()
        assert stats.peak_bytes <= BUDGET
        assert stats.current_bytes <= BUDGET
        assert stats.evictions > 0, "budget never pressured the cache"
        assert stats.bypasses == 0, "pages should fit the budget individually"
        return stats
    finally:
        store.close()


def test_20k_world_streams_under_budget(tmp_path):
    stats = build_and_analyze(tmp_path, 20_000)
    # Sequential scans re-visit pages they just decoded: the cache must
    # actually be functioning as one, not thrashing to zero.
    assert stats.hits > 0


@pytest.mark.slow
def test_100k_world_streams_under_budget(tmp_path):
    build_and_analyze(tmp_path, 100_000)


def test_sampled_access_touches_few_pages(tmp_path):
    """Strata sampling should read O(samples) pages, not the world."""
    store = build_world_store(
        tmp_path / "ws", SEED, 20_000, budget_bytes=BUDGET
    )
    try:
        # 100 sampled ranks within the top-1k stratum live on at most
        # ceil(1000 / 256) = 4 pages of the 79-page segment.
        sampler = StrataSampler(SEED, store.population, strata=(1_000,))
        sampler.incidence(store)
        stats = store.cache_stats()
        total_pages = len(store._reader("specs").page_entries())
        assert total_pages > 70
        assert stats.misses <= 4
        assert stats.peak_bytes <= BUDGET
    finally:
        store.close()
