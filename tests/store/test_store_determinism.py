"""The store≡memory contract: journal bytes never move.

``--world-store`` is execution-shaped, like worker count or executor
choice: a campaign reading specs off disk pages must produce merged
output and journal bytes identical to the in-memory run, for any
worker count, executor and fault profile.  The matrix here pins that —
one in-memory reference journal per fault profile, compared
byte-for-byte against store-backed runs at workers 1 (serial),
2 (thread) and 4 (process, through the wire codec).
"""

import pytest

from repro.core.runner import CampaignRunner
from repro.core.substrate import WorldShard
from repro.faults.plan import FaultPlan
from repro.store import build_world_store
from repro.util.rngtree import RngTree

SEED = 7
POPULATION = 120
TOP = 24
SHARDS = 4


@pytest.fixture(scope="module")
def store_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("determinism") / "ws"
    build_world_store(path, SEED, POPULATION).close()
    return path


def fault_plan(profile):
    if profile is None:
        return None
    return FaultPlan.from_profile(profile, seed=3)


def run_journal(*, world_store=None, workers=1, executor="serial",
                fault_profile=None):
    sites = (
        WorldShard(RngTree(SEED))
        .build_population(POPULATION)
        .alexa_top(TOP)
    )
    with CampaignRunner(
        seed=SEED,
        population_size=POPULATION,
        shards=SHARDS,
        workers=workers,
        executor=executor,
        fault_plan=fault_plan(fault_profile),
        obs_enabled=True,
        world_store=str(world_store) if world_store else None,
    ) as runner:
        result = runner.run(sites)
    return result.journal.to_jsonl(), result


@pytest.mark.parametrize("fault_profile", [None, "mild"])
class TestStoreMemoryMatrix:
    def test_serial_identical(self, store_path, fault_profile):
        memory, mem_result = run_journal(fault_profile=fault_profile)
        disk, disk_result = run_journal(
            world_store=store_path, fault_profile=fault_profile
        )
        assert disk == memory
        assert disk_result.attempts == mem_result.attempts
        assert disk_result.stats == mem_result.stats

    def test_thread_2_identical(self, store_path, fault_profile):
        memory, _ = run_journal(fault_profile=fault_profile)
        disk, _ = run_journal(
            world_store=store_path, workers=2, executor="thread",
            fault_profile=fault_profile,
        )
        assert disk == memory


@pytest.mark.slow
class TestStoreMemoryMatrixSlow:
    @pytest.mark.parametrize("fault_profile", [None, "mild"])
    def test_process_4_identical(self, store_path, fault_profile):
        memory, _ = run_journal(fault_profile=fault_profile)
        disk, _ = run_journal(
            world_store=store_path, workers=4, executor="process",
            fault_profile=fault_profile,
        )
        assert disk == memory


class TestStoreListings:
    def test_store_sites_equal_memory_sites(self, store_path):
        from repro.store import open_world_store
        from repro.store.world import close_open_stores

        listing = WorldShard(RngTree(SEED)).build_population(POPULATION)
        store = open_world_store(store_path)
        try:
            assert store.ranked_top(TOP) == listing.alexa_top(TOP)
        finally:
            close_open_stores()

    def test_mismatched_plan_fails_loudly(self, store_path):
        from repro.core.runner import run_shard

        sites = (
            WorldShard(RngTree(SEED))
            .build_population(POPULATION)
            .alexa_top(4)
        )
        with CampaignRunner(
            seed=SEED + 1, population_size=POPULATION, shards=1,
            world_store=str(store_path),
        ) as runner:
            plans = runner.plan(sites)
            from repro.store import StoreError

            with pytest.raises(StoreError, match="different world"):
                run_shard(plans[0])
