"""Strata sampling: determinism, clipping, incidence preservation."""

import pytest

from repro.store import DEFAULT_STRATA, StrataSampler, build_world_store
from repro.store.world import close_open_stores

SEED = 99
POPULATION = 300


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    path = tmp_path_factory.mktemp("strata") / "ws"
    built = build_world_store(path, SEED, POPULATION)
    yield built
    built.close()
    close_open_stores()


class TestSampler:
    def test_deterministic_across_instances(self):
        a = StrataSampler(5, 10_000).sample(1_000)
        b = StrataSampler(5, 10_000).sample(1_000)
        assert a == b

    def test_independent_of_sibling_strata(self):
        """Adding a stratum never moves another stratum's sample."""
        narrow = StrataSampler(5, 10_000, strata=(1_000,))
        wide = StrataSampler(5, 10_000, strata=(100, 1_000, 10_000))
        assert narrow.sample(1_000) == wide.sample(1_000)

    def test_seed_moves_samples(self):
        assert StrataSampler(5, 10_000).sample(1_000) != (
            StrataSampler(6, 10_000).sample(1_000)
        )

    def test_sorted_without_replacement_within_bound(self):
        ranks = StrataSampler(5, 10_000, sample_size=200).sample(1_000)
        assert list(ranks) == sorted(set(ranks))
        assert len(ranks) == 200
        assert 1 <= min(ranks) and max(ranks) <= 1_000

    def test_clipping_to_population(self):
        sampler = StrataSampler(5, 250, sample_size=100)
        strata = sampler.strata_samples()
        # 1k, 10k, 100k, 1M all clip to 250; only one survives dedup.
        assert [s.clipped_bound for s in strata] == [250]
        assert max(strata[0].ranks) <= 250

    def test_small_population_caps_sample_size(self):
        sampler = StrataSampler(5, 40, sample_size=100)
        (stratum,) = sampler.strata_samples()
        assert stratum.sample_size == 40

    def test_default_strata(self):
        assert DEFAULT_STRATA == (1_000, 10_000, 100_000, 1_000_000)

    def test_validation(self):
        with pytest.raises(ValueError):
            StrataSampler(5, 0)
        with pytest.raises(ValueError):
            StrataSampler(5, 100, sample_size=0)
        with pytest.raises(ValueError):
            StrataSampler(5, 100, strata=(0,))


class TestIncidence:
    def test_fractions_match_ground_truth(self, store):
        sampler = StrataSampler(SEED, POPULATION, strata=(100, 1_000))
        rows = sampler.incidence(store)
        for row in rows:
            counts = store.eligibility_ground_truth(list(row.stratum.ranks))
            n = row.stratum.sample_size
            assert row.load_failure == counts["load_failure"] / n
            assert row.rest == counts["rest"] / n
            total = (row.load_failure + row.non_english + row.no_registration
                     + row.ineligible + row.rest)
            assert total == pytest.approx(1.0)

    def test_store_and_population_agree(self, store):
        """The same sample through either spec source, same incidence."""
        from repro.core.substrate import WorldShard
        from repro.util.rngtree import RngTree

        listing = WorldShard(RngTree(SEED)).build_population(POPULATION)
        sampler = StrataSampler(SEED, POPULATION, strata=(100,))
        assert sampler.incidence(store) == sampler.incidence(listing)


class TestAnalysisBuilder:
    def test_build_and_render(self, store):
        from repro.analysis.strata import build_strata_table, render_strata_table

        rows = build_strata_table(store, SEED, strata=(100, 1_000))
        table = render_strata_table(rows)
        assert "Stratified registration eligibility" in table
        assert "top 100" in table
        assert "clipped 300" in table  # the 1k stratum clips to 300
        # The paper's 1,000-start window rides along as an anchor.
        assert "paper, start 1,000" in table
