"""Hypothesis round-trip properties for the store's row and page codecs.

The store's durability story rests on ``decode(encode(x)) == x`` at
three layers: the tagged value codec (:mod:`repro.store.packing`), the
per-table row codecs (:mod:`repro.store.rows`) and whole segment files
(:mod:`repro.store.segment`).  Each layer is pinned independently,
plus the interning edge cases the wire codec never hits at shard
scale: empty strings, duplicated hosts across rows, and intern tables
past the 64k mark (the codec is varint-based — there is no u16 index
ceiling to fall off).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.campaign import AttemptRecord
from repro.crawler.outcomes import CrawlOutcome, TerminationCode
from repro.identity.passwords import PasswordClass
from repro.identity.records import Identity, PostalAddress
from repro.store.packing import PackError, pack, unpack
from repro.store.rows import (
    Interner,
    decode_attempt_row,
    decode_spec_row,
    encode_attempt_row,
    encode_spec_row,
    table_codec,
)
from repro.store.segment import SegmentReader, SegmentWriter
from repro.web.spec import (
    BotCheck,
    EmailBehavior,
    LinkPlacement,
    RegistrationStyle,
    ResponseStyle,
    SiteSpec,
)

# -- strategies ---------------------------------------------------------------

text = st.text(max_size=16)
instants = st.integers(min_value=0, max_value=10**9)

_SPEC_BOOLS = (
    "load_fails", "supports_https", "multistage_credentials_first",
    "multistage_creates_at_step1", "wants_username", "wants_name",
    "wants_phone", "wants_birthdate", "wants_gender",
    "wants_confirm_password", "wants_terms_checkbox",
    "extra_unlabeled_field", "extra_field_required",
    "requires_special_char", "requires_admin_approval",
    "lists_usernames_publicly", "site_brute_force_protection",
    "is_free_trial",
)

specs = st.builds(
    SiteSpec,
    host=text,
    rank=st.integers(1, 10**7),
    category=text,
    language=st.sampled_from(["en", "de", "zh", ""]),
    shared_backend=st.none() | text,
    backend_family=st.none() | text,
    registration_style=st.sampled_from(RegistrationStyle),
    link_placement=st.sampled_from(LinkPlacement),
    registration_path=text,
    anchor_text=text,
    label_style=st.sampled_from(["for", "wrap", "placeholder", "adjacent"]),
    bot_check=st.sampled_from(BotCheck),
    response_style=st.sampled_from(ResponseStyle),
    email_behavior=st.sampled_from(EmailBehavior),
    shadow_ban_rate=st.floats(0, 1, allow_nan=False),
    max_email_length=st.none() | st.integers(1, 64),
    max_username_length=st.none() | st.integers(1, 64),
    password_storage=st.sampled_from(
        ["plaintext", "reversible", "unsalted_md5", "salted_hash", "strong_hash"]
    ),
    shard_count=st.integers(1, 8),
    notes=st.dictionaries(text, text, max_size=3),
    **{name: st.booleans() for name in _SPEC_BOOLS},
)

identities = st.builds(
    Identity,
    identity_id=st.integers(0, 10**6),
    first_name=text,
    last_name=text,
    gender=st.sampled_from(["female", "male"]),
    date_of_birth=instants,
    address=st.builds(
        PostalAddress, street=text, city=text, state=text, zip_code=text
    ),
    phone=text,
    employer=text,
    email_local=text,
    email_domain=text,
    password=text,
    password_class=st.sampled_from(PasswordClass),
)

outcomes = st.builds(
    CrawlOutcome,
    site_host=text,
    url=text,
    code=st.sampled_from(TerminationCode),
    detail=text,
    exposed_email=st.booleans(),
    exposed_password=st.booleans(),
    pages_loaded=st.integers(0, 99),
    started_at=instants,
    finished_at=instants,
    filled_fields=st.tuples(text, text),
)

attempts = st.builds(
    AttemptRecord,
    site_host=text,
    rank=st.integers(1, 10**6),
    url=text,
    identity=identities,
    password_class=st.sampled_from(PasswordClass),
    outcome=outcomes,
    manual=st.booleans(),
    registered_at=instants,
)

#: Everything the tagged value codec claims to cover, recursively.
packables = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**80), max_value=2**80)
    | st.floats(allow_nan=False)
    | text
    | st.binary(max_size=16),
    lambda inner: st.lists(inner, max_size=4).map(tuple)
    | st.dictionaries(text, inner, max_size=4),
    max_leaves=12,
)


# -- packing ------------------------------------------------------------------


class TestPacking:
    @given(packables)
    def test_round_trip(self, value):
        assert unpack(pack(value)) == value

    @given(st.integers(min_value=-(2**100), max_value=2**100))
    def test_wide_integers(self, value):
        assert unpack(pack(value)) == value

    def test_lists_normalize_to_tuples(self):
        assert unpack(pack([1, [2, 3]])) == (1, (2, 3))

    def test_trailing_bytes_rejected(self):
        with pytest.raises(PackError):
            unpack(pack(1) + b"\x00")

    def test_truncated_rejected(self):
        with pytest.raises(PackError):
            unpack(pack("hello")[:-1])

    def test_unknown_tag_rejected(self):
        with pytest.raises(PackError):
            unpack(b"\xff")

    def test_unpackable_type_rejected(self):
        with pytest.raises(PackError):
            pack(object())


# -- row codecs ---------------------------------------------------------------


class TestRowRoundTrips:
    @given(specs)
    def test_spec_row(self, spec):
        strings = Interner()
        row = encode_spec_row(spec, strings)
        assert decode_spec_row(row, strings.table) == spec

    @given(attempts)
    def test_attempt_row(self, attempt):
        strings = Interner()
        row = encode_attempt_row(attempt, strings)
        assert decode_attempt_row(row, strings.table) == attempt

    @given(identities)
    def test_account_row(self, identity):
        encode, decode = table_codec("accounts")
        strings = Interner()
        assert decode(encode(identity, strings), strings.table) == identity

    def test_unknown_table_rejected(self):
        with pytest.raises(ValueError):
            table_codec("nope")


# -- whole segments -----------------------------------------------------------


def _write_segment(path, table, rows, rows_per_page):
    encode, decode = table_codec(table)
    with SegmentWriter(path, table, encode, rows_per_page=rows_per_page) as w:
        w.extend(rows)
    return SegmentReader(path, decode, expect_table=table)


class TestSegmentRoundTrips:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(rows=st.lists(specs, min_size=1, max_size=12), rows_per_page=st.integers(1, 5))
    def test_spec_segment(self, rows, rows_per_page, tmp_path):
        with _write_segment(
            tmp_path / "s.seg", "specs", rows, rows_per_page
        ) as reader:
            assert list(reader.iter_rows()) == rows
            assert reader.get(len(rows) - 1) == rows[-1]

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(rows=st.lists(attempts, min_size=1, max_size=8), rows_per_page=st.integers(1, 4))
    def test_telemetry_segment(self, rows, rows_per_page, tmp_path):
        with _write_segment(
            tmp_path / "t.seg", "telemetry", rows, rows_per_page
        ) as reader:
            assert list(reader.iter_rows()) == rows


class TestInterningEdgeCases:
    def test_empty_strings_intern(self):
        spec = SiteSpec(host="", rank=1, category="", language="")
        strings = Interner()
        row = encode_spec_row(spec, strings)
        back = decode_spec_row(row, strings.table)
        assert back.host == "" and back.category == ""
        # One table slot, however many fields are empty.
        assert strings.table.count("") == 1

    def test_duplicate_hosts_share_slots(self, tmp_path):
        rows = [
            SiteSpec(host="same.example", rank=r, category="c", language="en")
            for r in range(1, 9)
        ]
        with _write_segment(tmp_path / "d.seg", "specs", rows, 8) as reader:
            assert [s.rank for s in reader.iter_rows()] == list(range(1, 9))
            assert {s.host for s in reader.iter_rows()} == {"same.example"}

    def test_intern_table_past_64k(self, tmp_path):
        """One page whose intern table exceeds u16 range round-trips.

        A fixed-width 16-bit intern index would truncate here; the
        varint layout must not.
        """
        n = 66_000
        rows = [
            SiteSpec(host=f"h{i}.example", rank=i + 1, category="c", language="en")
            for i in range(n)
        ]
        with _write_segment(tmp_path / "big.seg", "specs", rows, n) as reader:
            assert len(reader.page_entries()) == 1
            assert reader.get(0).host == "h0.example"
            assert reader.get(n - 1).host == f"h{n - 1}.example"
            assert reader.get(65_536).host == "h65536.example"
