"""Budget, eviction and admission semantics of the page cache."""

import pytest

from repro.store.pagecache import PageCache


class TestPageCache:
    def test_hit_miss_counters(self):
        cache = PageCache(100)
        assert cache.get("a") is None
        cache.put("a", [1], 10)
        assert cache.get("a") == [1]
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = PageCache(30)
        cache.put("a", "A", 10)
        cache.put("b", "B", 10)
        cache.put("c", "C", 10)
        cache.get("a")  # freshen a; b is now LRU
        cache.put("d", "D", 10)
        assert cache.get("b") is None
        assert cache.get("a") == "A"
        assert cache.stats().evictions == 1

    def test_budget_never_exceeded(self):
        cache = PageCache(25)
        for index in range(10):
            cache.put(index, index, 10)
            assert cache.stats().current_bytes <= 25
        assert cache.stats().peak_bytes <= 25
        assert len(cache) == 2

    def test_oversized_page_bypassed(self):
        cache = PageCache(10)
        assert cache.put("big", "x", 11) is False
        assert cache.get("big") is None
        stats = cache.stats()
        assert stats.bypasses == 1
        assert stats.current_bytes == 0
        assert stats.peak_bytes == 0

    def test_replacing_key_recharges(self):
        cache = PageCache(20)
        cache.put("a", "A", 10)
        cache.put("a", "A2", 15)
        stats = cache.stats()
        assert stats.current_bytes == 15
        assert cache.get("a") == "A2"

    def test_clear_keeps_counters_and_peak(self):
        cache = PageCache(100)
        cache.put("a", "A", 40)
        cache.get("a")
        cache.clear()
        stats = cache.stats()
        assert stats.current_bytes == 0
        assert stats.peak_bytes == 40
        assert stats.hits == 1
        assert cache.get("a") is None

    def test_positive_budget_required(self):
        with pytest.raises(ValueError):
            PageCache(0)
