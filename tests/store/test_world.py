"""WorldStore directory semantics: build, validate, reopen, results.

The store's contract with the rest of the system:

- a build is **prefix-closed** — the stored specs are exactly what the
  warm in-memory path generates for the same ``(seed, config)``;
- reopening validates the manifest and refuses mismatched worlds
  (wrong seed, bigger population) with a clean ``StoreError``;
- the read path is strictly read-only — nothing a shard does can
  mutate the world on disk;
- campaign results persist as ``accounts``/``telemetry`` tables that
  round-trip losslessly.
"""

import json

import pytest

from repro.perf.warm import SpecCache
from repro.store import (
    StoreError,
    WorldStore,
    build_world_store,
    open_world_store,
    world_digest,
)
from repro.store.world import close_open_stores
from repro.util.rngtree import RngTree
from repro.web.generator import GeneratorConfig, SiteGenerator

SEED = 99
POPULATION = 300


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    path = tmp_path_factory.mktemp("world") / "ws"
    built = build_world_store(path, SEED, POPULATION)
    yield built
    built.close()


class TestBuild:
    def test_specs_match_warm_memory_path(self, store):
        generator = SiteGenerator(RngTree(SEED), spec_cache=SpecCache())
        expected = [generator.spec_for_rank(r) for r in range(1, POPULATION + 1)]
        assert list(store.iter_specs()) == expected

    def test_ranked_top_matches_population_listing(self, store):
        from repro.core.substrate import WorldShard

        listing = WorldShard(RngTree(SEED)).build_population(POPULATION)
        assert store.ranked_top(40) == listing.alexa_top(40)

    def test_eligibility_matches_population(self, store):
        from repro.core.substrate import WorldShard

        listing = WorldShard(RngTree(SEED)).build_population(POPULATION)
        ranks = list(range(1, 101))
        assert (
            store.eligibility_ground_truth(ranks)
            == listing.eligibility_ground_truth(ranks)
        )

    def test_reopen_is_validated_reuse(self, store, tmp_path):
        # Same path, same world: build_world_store reopens, not rebuilds.
        again = build_world_store(store.path, SEED, POPULATION)
        assert again.digest == store.digest
        again.close()
        # Same path, different seed: refused.
        with pytest.raises(StoreError, match="different world"):
            build_world_store(store.path, SEED + 1, POPULATION)

    def test_iter_specs_streams_subranges(self, store):
        middle = list(store.iter_specs(100, 110))
        assert [s.rank for s in middle] == list(range(100, 111))


class TestValidation:
    def test_digest_excludes_population(self):
        assert world_digest(1) == world_digest(1)
        assert world_digest(1) != world_digest(2)
        config = GeneratorConfig(shared_backend_rate=0.5)
        assert world_digest(1, config) != world_digest(1)

    def test_require_world(self, store):
        store.require_world(SEED, POPULATION)
        store.require_world(SEED, 10)  # smaller runs are served
        with pytest.raises(StoreError, match="different world"):
            store.require_world(SEED + 1, POPULATION)
        with pytest.raises(StoreError, match="population"):
            store.require_world(SEED, POPULATION + 1)

    def test_not_a_store(self, tmp_path):
        with pytest.raises(StoreError, match="not a world store"):
            WorldStore(tmp_path)

    def test_unsupported_manifest_schema(self, tmp_path, store):
        meta = json.loads((store.path / "worldstore.json").read_text())
        meta["schema"] = 999
        bad = tmp_path / "bad"
        bad.mkdir()
        (bad / "worldstore.json").write_text(json.dumps(meta))
        with pytest.raises(StoreError, match="schema"):
            WorldStore(bad)

    def test_rank_bounds(self, store):
        with pytest.raises(StoreError, match="outside stored population"):
            store.spec_at_rank(0)
        with pytest.raises(StoreError, match="outside stored population"):
            store.spec_at_rank(POPULATION + 1)


class TestReadOnlySpecCache:
    def test_satisfies_generator_protocol(self, store):
        cache = store.spec_cache()
        generator = SiteGenerator(RngTree(SEED), spec_cache=cache)
        direct = SiteGenerator(RngTree(SEED), spec_cache=SpecCache())
        assert generator.spec_for_rank(42) == direct.spec_for_rank(42)
        assert len(cache.specs) == POPULATION
        assert 42 in cache.specs

    def test_writes_rejected(self, store):
        cache = store.spec_cache()
        with pytest.raises(StoreError, match="read-only"):
            cache.specs[1] = None

    def test_out_of_range_is_loud(self, store):
        cache = store.spec_cache()
        with pytest.raises(StoreError):
            cache.specs.get(POPULATION + 1)


class TestRegistry:
    def test_open_world_store_is_process_cached(self, store):
        first = open_world_store(store.path)
        second = open_world_store(str(store.path))
        assert first is second
        close_open_stores()
        third = open_world_store(store.path)
        assert third is not first
        close_open_stores()


class TestResults:
    def test_append_and_stream_results(self, tmp_path):
        from repro.core.runner import CampaignRunner
        from repro.core.substrate import WorldShard

        path = tmp_path / "ws"
        store = build_world_store(path, SEED, POPULATION)
        listing = WorldShard(RngTree(SEED)).build_population(POPULATION)
        runner = CampaignRunner(seed=SEED, population_size=POPULATION,
                                shards=2, world_store=str(path))
        with runner:
            result = runner.run(listing.alexa_top(16))

        accounts, telemetry = store.append_results(result.attempts)
        assert telemetry == len(result.attempts)
        assert list(store.iter_attempts()) == result.attempts
        stored_accounts = list(store.iter_accounts())
        assert len(stored_accounts) == accounts
        # First-reference order, each identity exactly once.
        seen = []
        for attempt in result.attempts:
            if attempt.identity not in seen:
                seen.append(attempt.identity)
        assert stored_accounts == seen
        # Re-append replaces, not duplicates.
        store.append_results(result.attempts)
        assert store.row_count("telemetry") == telemetry
        store.close()
        close_open_stores()

    def test_missing_results_table_is_loud(self, store):
        with pytest.raises(StoreError, match="no 'telemetry' table"):
            next(store.iter_attempts())
