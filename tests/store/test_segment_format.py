"""Golden-bytes pin of the on-disk segment format, and corruption tests.

The segment layout (magic, page framing, per-page intern tables, the
packed footer, CRCs, end marker) is a persistence contract: a store
built today must open under every future reader of
``SEGMENT_SCHEMA == 1``.  The golden fixture here is built from
hand-written literal specs — not the generator — so the pinned digest
only moves when the *format* moves, which must come with a schema
bump, not a silent rewrite.

The corruption half pins the failure mode: any flipped byte or torn
tail is a clean :class:`~repro.store.segment.StoreError` naming the
file, never garbage rows or an unhandled struct/unpack error.
"""

import hashlib

import pytest

from repro.store.packing import pack
from repro.store.rows import table_codec
from repro.store.segment import (
    END_MAGIC,
    MAGIC,
    SEGMENT_SCHEMA,
    SegmentReader,
    SegmentWriter,
    StoreError,
)
from repro.web.spec import BotCheck, RegistrationStyle, SiteSpec

#: sha256 of the golden segment file.  If a deliberate format change
#: moves this, bump SEGMENT_SCHEMA and re-pin.
GOLDEN_SHA256 = "f70e95e02659053d64aed49a66d2c37596e1c6b3a5751c7f6dc80ce6d725e00f"

#: Golden bytes of the value codec for one nested tuple.
GOLDEN_PACK = "0705030205026162000702020305080105016b043fe0000000000000"


def golden_specs():
    """Literal fixture rows: duplicates, empties, optionals, enums."""
    return [
        SiteSpec(host="alpha.example", rank=1, category="news", language="en",
                 notes={"k": "v"}),
        SiteSpec(host="beta.example", rank=2, category="forum", language="de",
                 registration_style=RegistrationStyle.MULTISTAGE,
                 shared_backend="netsuite", shadow_ban_rate=0.25),
        SiteSpec(host="gamma.example", rank=3, category="shop", language="en",
                 bot_check=BotCheck.CAPTCHA_IMAGE, max_email_length=18),
        SiteSpec(host="alpha.example", rank=4, category="news", language="en"),
        SiteSpec(host="", rank=5, category="", language="en"),
    ]


@pytest.fixture
def golden_segment(tmp_path):
    path = tmp_path / "golden.seg"
    encode, _ = table_codec("specs")
    with SegmentWriter(path, "specs", encode, rows_per_page=2) as writer:
        writer.extend(golden_specs())
    return path


def open_specs(path):
    _, decode = table_codec("specs")
    return SegmentReader(path, decode, expect_table="specs")


class TestGoldenBytes:
    def test_value_codec_bytes_pinned(self):
        value = (1, "ab", None, (True, -3), {"k": 0.5})
        assert pack(value).hex() == GOLDEN_PACK

    def test_segment_bytes_pinned(self, golden_segment):
        data = golden_segment.read_bytes()
        assert hashlib.sha256(data).hexdigest() == GOLDEN_SHA256

    def test_framing(self, golden_segment):
        data = golden_segment.read_bytes()
        assert data.startswith(MAGIC)
        assert data.endswith(END_MAGIC)

    def test_footer_index(self, golden_segment):
        with open_specs(golden_segment) as reader:
            assert reader.row_count == 5
            assert reader.rows_per_page == 2
            entries = reader.page_entries()
            # 5 rows at 2/page: pages of 2, 2, 1.
            assert [e.n_rows for e in entries] == [2, 2, 1]
            assert [e.first_row for e in entries] == [0, 2, 4]
            assert entries[0].offset == len(MAGIC)
            for prev, cur in zip(entries, entries[1:]):
                assert cur.offset == prev.offset + prev.length

    def test_rows_decode(self, golden_segment):
        with open_specs(golden_segment) as reader:
            assert list(reader.iter_rows()) == golden_specs()

    def test_schema_constant(self):
        assert SEGMENT_SCHEMA == 1


class TestCorruption:
    def _corrupt(self, path, offset):
        data = bytearray(path.read_bytes())
        data[offset] ^= 0xFF
        path.write_bytes(bytes(data))

    def test_flipped_page_byte_is_clean_error(self, golden_segment):
        # Inside the first page's payload (past magic + page header).
        self._corrupt(golden_segment, len(MAGIC) + 12)
        with open_specs(golden_segment) as reader:
            with pytest.raises(StoreError, match="checksum mismatch"):
                reader.get(0)

    def test_flipped_footer_byte_is_clean_error(self, golden_segment):
        size = golden_segment.stat().st_size
        self._corrupt(golden_segment, size - len(END_MAGIC) - 10)
        with pytest.raises(StoreError, match="footer checksum"):
            open_specs(golden_segment)

    def test_truncated_tail_is_clean_error(self, golden_segment):
        data = golden_segment.read_bytes()
        golden_segment.write_bytes(data[:-4])
        with pytest.raises(StoreError, match="truncated or torn"):
            open_specs(golden_segment)

    def test_truncated_to_header_is_clean_error(self, golden_segment):
        golden_segment.write_bytes(golden_segment.read_bytes()[:10])
        with pytest.raises(StoreError, match="too short"):
            open_specs(golden_segment)

    def test_wrong_magic_is_clean_error(self, golden_segment):
        data = bytearray(golden_segment.read_bytes())
        data[:8] = b"NOTSTORE"
        golden_segment.write_bytes(bytes(data))
        with pytest.raises(StoreError, match="bad magic"):
            open_specs(golden_segment)

    def test_wrong_table_is_clean_error(self, golden_segment):
        _, decode = table_codec("specs")
        with pytest.raises(StoreError, match="expected 'accounts'"):
            SegmentReader(golden_segment, decode, expect_table="accounts")

    def test_missing_file_is_clean_error(self, tmp_path):
        with pytest.raises(StoreError, match="cannot open"):
            open_specs(tmp_path / "absent.seg")


class TestWriterDiscipline:
    def test_abort_leaves_nothing(self, tmp_path):
        path = tmp_path / "a.seg"
        encode, _ = table_codec("specs")
        writer = SegmentWriter(path, "specs", encode)
        writer.append(golden_specs()[0])
        writer.abort()
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []

    def test_crash_mid_write_leaves_no_segment(self, tmp_path):
        """An exception inside the context publishes nothing."""
        path = tmp_path / "c.seg"
        encode, _ = table_codec("specs")
        with pytest.raises(RuntimeError):
            with SegmentWriter(path, "specs", encode) as writer:
                writer.append(golden_specs()[0])
                raise RuntimeError("boom")
        assert not path.exists()

    def test_append_after_close_rejected(self, tmp_path):
        path = tmp_path / "d.seg"
        encode, _ = table_codec("specs")
        with SegmentWriter(path, "specs", encode) as writer:
            writer.append(golden_specs()[0])
        with pytest.raises(StoreError, match="already closed"):
            writer.append(golden_specs()[1])
