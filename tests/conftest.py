"""Shared fixtures.

The expensive fixture is ``pilot_result`` — a small but complete pilot
run (registration batches, breaches, attacker campaigns, dumps) shared
session-wide by the analysis and integration tests.
"""

from __future__ import annotations

import pytest

from repro.core.scenario import PilotResult, PilotScenario, ScenarioConfig
from repro.core.system import TripwireSystem
from repro.net.dns import DnsResolver
from repro.net.transport import Transport
from repro.net.whois import WhoisRegistry
from repro.sim.clock import SimClock
from repro.util.rngtree import RngTree


@pytest.fixture
def tree() -> RngTree:
    return RngTree(1234)


@pytest.fixture
def clock() -> SimClock:
    return SimClock()


@pytest.fixture
def transport(clock: SimClock) -> Transport:
    return Transport(clock)


@pytest.fixture
def whois() -> WhoisRegistry:
    return WhoisRegistry()


@pytest.fixture
def dns() -> DnsResolver:
    return DnsResolver()


@pytest.fixture
def small_system() -> TripwireSystem:
    """A compact wired system for component-integration tests."""
    return TripwireSystem(seed=11, population_size=80)


SMALL_PILOT_CONFIG = ScenarioConfig(
    seed=5,
    population_size=300,
    seed_list_size=50,
    main_crawl_top=250,
    second_crawl_top=300,
    manual_top=12,
    breach_count=8,
    breach_hard_exposing=4,
    unused_account_count=80,
    control_account_count=4,
)


@pytest.fixture(scope="session")
def pilot_result() -> PilotResult:
    """One complete (small) pilot run shared by analysis tests."""
    return PilotScenario(SMALL_PILOT_CONFIG).run()
