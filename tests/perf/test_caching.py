"""Tests for the cache infrastructure behind the perf layer."""

import pytest

from repro.perf import caching as _perf
from repro.perf.caching import LruCache


@pytest.fixture(autouse=True)
def leave_enabled():
    yield
    _perf.set_enabled(True)


class TestLruCache:
    def test_get_put_roundtrip(self):
        cache = LruCache(maxsize=4, name="t-roundtrip")
        assert cache.get("k") is None
        cache.put("k", "v")
        assert cache.get("k") == "v"

    def test_eviction_drops_least_recently_used(self):
        cache = LruCache(maxsize=2, name="t-evict")
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a: b is now the oldest
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_stats_count_hits_and_misses(self):
        cache = LruCache(maxsize=2, name="t-stats")
        cache.get("missing")
        cache.put("k", "v")
        cache.get("k")
        assert cache.stats() == {"hits": 1, "misses": 1, "evictions": 0, "size": 1}
        assert len(cache) == 1

    def test_stats_count_evictions(self):
        cache = LruCache(maxsize=2, name="t-evict-stats")
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts a
        assert cache.stats()["evictions"] == 1

    def test_clear_resets_counters(self):
        # A/B perf runs toggle the layer between legs; counters must
        # restart from zero or the optimized leg inherits baseline noise.
        cache = LruCache(maxsize=1, name="t-clear-reset")
        cache.get("missing")
        cache.put("a", 1)
        cache.get("a")
        cache.put("b", 2)  # evicts a
        cache.clear()
        assert cache.stats() == {"hits": 0, "misses": 0, "evictions": 0, "size": 0}

    def test_disable_resets_counters_via_clear(self):
        cache = LruCache(maxsize=2, name="t-disable-reset")
        cache.get("missing")
        cache.put("k", "v")
        cache.get("k")
        _perf.set_enabled(False)
        assert cache.stats() == {"hits": 0, "misses": 0, "evictions": 0, "size": 0}
        _perf.set_enabled(True)

    def test_registered_by_name(self):
        cache = LruCache(maxsize=2, name="t-registry")
        cache.put("k", "v")
        assert "t-registry" in _perf.cache_stats()
        _perf.clear_all_caches()
        assert len(cache) == 0


class TestSwitch:
    def test_disable_clears_every_cache(self):
        cache = LruCache(maxsize=2, name="t-switch")
        cache.put("k", "v")
        cleared = []
        _perf.register_clearer(lambda: cleared.append(True))
        _perf.set_enabled(False)
        assert not _perf.enabled()
        assert len(cache) == 0
        assert cleared
        _perf.set_enabled(True)
        assert _perf.enabled()
