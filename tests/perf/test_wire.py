"""Round-trip property tests for the compact shard wire codec."""

import dataclasses
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.campaign import AttemptRecord, CampaignStats
from repro.core.runner import ShardPlan, ShardResult, ShardTelemetry, run_shard
from repro.core.substrate import WorldShard
from repro.crawler.outcomes import CrawlOutcome, TerminationCode
from repro.faults.report import FaultReport
from repro.identity.passwords import PasswordClass
from repro.identity.records import Identity, PostalAddress
from repro.obs import EventRecord
from repro.obs.journal import ShardObservation
from repro.obs.tracing import SpanRecord
from repro.perf.wire import (
    WIRE_SCHEMA,
    decode_shard_bytes,
    decode_shard_result,
    encode_shard_bytes,
    encode_shard_result,
    pickled_size,
)
from repro.util.rngtree import RngTree

# -- strategies ---------------------------------------------------------------

text = st.text(max_size=16)
instants = st.integers(min_value=0, max_value=10**9)


def counter_strategy(cls):
    """Any counter dataclass, every field an int."""
    return st.builds(
        cls, **{f.name: st.integers(0, 999) for f in dataclasses.fields(cls)}
    )


identities = st.builds(
    Identity,
    identity_id=st.integers(0, 10**6),
    first_name=text,
    last_name=text,
    gender=st.sampled_from(["female", "male"]),
    date_of_birth=instants,
    address=st.builds(PostalAddress, street=text, city=text, state=text, zip_code=text),
    phone=text,
    employer=text,
    email_local=text,
    email_domain=text,
    password=text,
    password_class=st.sampled_from(PasswordClass),
)

outcomes = st.builds(
    CrawlOutcome,
    site_host=text,
    url=text,
    code=st.sampled_from(TerminationCode),
    detail=text,
    exposed_email=st.booleans(),
    exposed_password=st.booleans(),
    pages_loaded=st.integers(0, 50),
    started_at=instants,
    finished_at=instants,
    filled_fields=st.tuples(text, text).map(tuple) | st.just(()),
)

attempts = st.builds(
    AttemptRecord,
    site_host=text,
    rank=st.integers(1, 30000),
    url=text,
    identity=identities,
    password_class=st.sampled_from(PasswordClass),
    outcome=outcomes,
    manual=st.booleans(),
    registered_at=instants,
)

attr_tuples = st.lists(
    st.tuples(text, st.one_of(text, st.integers(-100, 100))), max_size=3
).map(tuple)

spans = st.builds(
    SpanRecord,
    index=st.integers(0, 100),
    parent=st.integers(-1, 100),
    name=text,
    start=instants,
    end=instants,
    attrs=attr_tuples,
)

events = st.builds(
    EventRecord, time=instants, component=text, message=text, attrs=attr_tuples
)

observations = st.builds(
    ShardObservation,
    shard_index=st.integers(0, 64),
    counters=st.dictionaries(text, st.integers(0, 999), max_size=4),
    gauges=st.dictionaries(text, st.integers(0, 999), max_size=3),
    histograms=st.dictionaries(
        text, st.dictionaries(text, st.integers(0, 99), max_size=3), max_size=2
    ),
    spans=st.lists(spans, max_size=4),
    events=st.lists(events, max_size=4),
)

shard_results = st.builds(
    ShardResult,
    shard_index=st.integers(0, 64),
    site_attempts=st.lists(
        st.tuples(st.integers(0, 500), st.lists(attempts, max_size=3)), max_size=4
    ),
    stats=counter_strategy(CampaignStats),
    telemetry=counter_strategy(ShardTelemetry),
    fault_report=counter_strategy(FaultReport),
    observation=st.none() | observations,
)


# -- properties ---------------------------------------------------------------


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(result=shard_results)
    def test_decode_encode_is_identity(self, result):
        assert decode_shard_result(encode_shard_result(result)) == result

    @settings(max_examples=30, deadline=None)
    @given(result=shard_results)
    def test_bytes_round_trip(self, result):
        assert decode_shard_bytes(encode_shard_bytes(result)) == result

    @settings(max_examples=30, deadline=None)
    @given(result=shard_results)
    def test_wire_tuple_survives_pickle(self, result):
        # What actually crosses the pool: pickle of the flat structure.
        wire = pickle.loads(pickle.dumps(encode_shard_result(result)))
        assert decode_shard_result(wire) == result


class TestSchema:
    def test_wrong_schema_rejected(self):
        wire = list(encode_shard_result(ShardResult(0, [], CampaignStats(), ShardTelemetry())))
        wire[0] = WIRE_SCHEMA + 1
        with pytest.raises(ValueError, match="wire schema"):
            decode_shard_result(tuple(wire))

    def test_empty_wire_rejected(self):
        with pytest.raises(ValueError, match="wire schema"):
            decode_shard_result(())


class TestRealShard:
    def test_codec_beats_pickle_on_a_real_shard(self):
        seed, population, top = 523, 260, 24
        listing = WorldShard(RngTree(seed)).build_population(population)
        sites = listing.alexa_top(top)
        plan = ShardPlan(
            shard_index=0,
            shard_count=1,
            seed=seed,
            population_size=population,
            sites=tuple(sites),
            positions=tuple(range(len(sites))),
            obs_enabled=True,
        )
        result = run_shard(plan)
        assert result.site_attempts, "shard produced no attempts"
        blob = encode_shard_bytes(result)
        assert decode_shard_bytes(blob) == result
        assert len(blob) < pickled_size(result)


class TestStuffingWaves:
    """The stuffing-result payloads round-trip losslessly."""

    @staticmethod
    def make_waves():
        from array import array

        from repro.attacker.stuffing import SiteTargetReport, StuffingWaveResult

        return [
            StuffingWaveResult(
                wave=0,
                site_rank=17,
                site_host="breached.example",
                method="online_capture",
                acquisition="online_capture",
                candidates=120,
                attempts=120,
                successes=40,
                bad_passwords=80,
                throttled=0,
                hit_users=array("q", [3, 17, 44, 90]),
                site_targets=[
                    SiteTargetReport(target_rank=9, candidates=12, hits=5),
                    SiteTargetReport(target_rank=31, candidates=7, hits=2),
                ],
            ),
            StuffingWaveResult(
                wave=1,
                site_rank=9,
                site_host="other.example",
                method="db_dump",
                acquisition="offline_crack",
                candidates=60,
                attempts=60,
                successes=11,
                bad_passwords=48,
                throttled=1,
                hit_users=array("q"),
                site_targets=[],
            ),
        ]

    def test_round_trip_is_lossless(self):
        from repro.perf.wire import decode_stuffing_bytes, encode_stuffing_bytes

        waves = self.make_waves()
        decoded = decode_stuffing_bytes(encode_stuffing_bytes(waves))
        assert decoded == waves

    def test_repeated_hosts_intern_once(self):
        from repro.perf.wire import Interner, encode_stuffing_wave

        waves = self.make_waves() + self.make_waves()
        strings = Interner()
        for wave in waves:
            encode_stuffing_wave(wave, strings)
        assert strings.table.count("breached.example") == 1
        assert strings.table.count("online_capture") == 1

    def test_wrong_schema_rejected(self):
        from repro.perf.wire import (
            STUFFING_WIRE_SCHEMA,
            decode_stuffing_bytes,
            encode_stuffing_bytes,
        )

        wire = list(pickle.loads(encode_stuffing_bytes(self.make_waves())))
        wire[0] = STUFFING_WIRE_SCHEMA + 1
        with pytest.raises(ValueError, match="stuffing wire schema"):
            decode_stuffing_bytes(pickle.dumps(tuple(wire)))

    def test_service_waves_round_trip_from_a_live_run(self):
        """What serve actually produces survives the codec."""
        from repro.perf.wire import decode_stuffing_bytes, encode_stuffing_bytes
        from repro.service.daemon import CampaignDaemon
        from repro.service.scheduler import ServiceConfig
        from repro.util.timeutil import DAY

        config = ServiceConfig(
            seed=29, population_size=120, top=4, shards=1, epochs=1,
            epoch_length=8 * DAY, traffic_users=200,
            stuffing_interval=3 * DAY, stuffing_site_density=0.2,
        )
        result = CampaignDaemon(config).run()
        assert result.stuffing_waves, "run produced no stuffing waves"
        decoded = decode_stuffing_bytes(
            encode_stuffing_bytes(result.stuffing_waves)
        )
        assert decoded == result.stuffing_waves
