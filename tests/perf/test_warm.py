"""Warm per-worker world cache: keying, invalidation, bit-identity."""

import dataclasses

import pytest

from repro.core.runner import ShardPlan, pack_overrides, run_shard
from repro.core.substrate import WorldShard
from repro.core.system import TripwireSystem
from repro.perf import caching as _perf
from repro.perf.warm import (
    WarmWorld,
    world_for_key,
    world_for_plan,
    world_key,
)
from repro.util.rngtree import RngTree
from repro.web.generator import GeneratorConfig

SEED, POPULATION, TOP = 523, 260, 12


@pytest.fixture(autouse=True)
def fresh_layer():
    """Each test starts with the perf layer on and every cache empty."""
    _perf.set_enabled(True)
    _perf.clear_all_caches()
    yield
    _perf.set_enabled(True)
    _perf.clear_all_caches()


def make_plan(seed=SEED, population=POPULATION, warm=True, **kwargs) -> ShardPlan:
    listing = WorldShard(RngTree(seed)).build_population(population)
    sites = tuple(listing.alexa_top(TOP))
    return ShardPlan(
        shard_index=kwargs.pop("shard_index", 0),
        shard_count=1,
        seed=seed,
        population_size=population,
        sites=sites,
        positions=tuple(range(len(sites))),
        warm_enabled=warm,
        **kwargs,
    )


class TestWorldKey:
    def test_same_inputs_same_world(self):
        key = world_key(SEED, POPULATION, None, ())
        assert world_for_key(key) is world_for_key(key)

    def test_different_seed_different_world(self):
        a = world_for_key(world_key(SEED, POPULATION, None, ()))
        b = world_for_key(world_key(SEED + 1, POPULATION, None, ()))
        assert a is not b

    def test_different_population_different_world(self):
        a = world_for_key(world_key(SEED, POPULATION, None, ()))
        b = world_for_key(world_key(SEED, POPULATION + 1, None, ()))
        assert a is not b

    def test_different_generator_config_different_key(self):
        base = GeneratorConfig()
        tweaked = dataclasses.replace(base, username_rate=0.61)
        assert world_key(SEED, POPULATION, base, ()) != world_key(
            SEED, POPULATION, tweaked, ()
        )
        # ...but two equal configs agree, object identity notwithstanding.
        assert world_key(SEED, POPULATION, base, ()) == world_key(
            SEED, POPULATION, GeneratorConfig(), ()
        )

    def test_different_overrides_different_key(self):
        packed = pack_overrides({3: {"language": "de"}})
        assert world_key(SEED, POPULATION, None, ()) != world_key(
            SEED, POPULATION, None, packed
        )


class TestWorldForPlan:
    def test_cold_when_not_opted_in(self):
        assert world_for_plan(make_plan(warm=False)) is None

    def test_cold_when_layer_disabled(self):
        _perf.set_enabled(False)
        assert world_for_plan(make_plan(warm=True)) is None

    def test_warm_plan_gets_a_world(self):
        plan = make_plan(warm=True)
        world = world_for_plan(plan)
        assert isinstance(world, WarmWorld)
        assert world_for_plan(plan) is world

    def test_disable_clears_the_store(self):
        plan = make_plan(warm=True)
        before = world_for_plan(plan)
        _perf.set_enabled(False)
        _perf.set_enabled(True)
        assert world_for_plan(plan) is not before


def shard_fingerprint(result):
    return [
        (a.site_host, a.rank, a.identity.identity_id, a.identity.email_local,
         a.password_class.value, a.outcome.code.value, a.outcome.pages_loaded,
         a.registered_at, a.manual)
        for _pos, group in result.site_attempts
        for a in group
    ]


class TestWarmEqualsCold:
    def test_warm_shard_bit_matches_cold(self):
        cold = run_shard(make_plan(warm=False))
        first_warm = run_shard(make_plan(warm=True))   # populates the cache
        second_warm = run_shard(make_plan(warm=True))  # replays from it
        assert shard_fingerprint(cold) == shard_fingerprint(first_warm)
        assert shard_fingerprint(cold) == shard_fingerprint(second_warm)
        assert cold.stats == first_warm.stats == second_warm.stats
        assert cold.telemetry == first_warm.telemetry == second_warm.telemetry

    def test_warm_specs_match_cold_specs(self):
        plan = make_plan(warm=True)
        run_shard(plan)
        world = world_for_plan(plan)
        assert world is not None and world.spec_cache.specs
        cold_population = WorldShard(RngTree(SEED)).build_population(POPULATION)
        for rank, spec in world.spec_cache.specs.items():
            assert spec == cold_population.spec_at_rank(rank)

    def test_warm_provisioning_matches_cold_pool(self):
        plan = make_plan(warm=True)
        run_shard(plan)  # record the corpus
        warm_world = world_for_plan(plan)
        assert warm_world is not None and warm_world.identity_corpus

        def build_pool(warm):
            system = TripwireSystem(
                seed=SEED,
                population_size=POPULATION,
                apparatus_namespace=("shard", 0),
                warm=warm,
            )
            hard = 2 * TOP + plan.identity_headroom
            easy = TOP + plan.identity_headroom
            if warm is not None:
                warm.provision(system, hard, easy, ("shard", 0))
            else:
                from repro.identity.passwords import PasswordClass

                system.provision_identities(hard, PasswordClass.HARD)
                system.provision_identities(easy, PasswordClass.EASY)
            return system.pool

        cold_pool = build_pool(None)
        warm_pool = build_pool(warm_world)
        assert [i.identity_id for i in cold_pool.all_identities()] == [
            i.identity_id for i in warm_pool.all_identities()
        ]
        assert [i.email_local for i in cold_pool.all_identities()] == [
            i.email_local for i in warm_pool.all_identities()
        ]
