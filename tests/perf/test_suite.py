"""Tests for the perf suite's gating logic and one real quick bench."""

import json

import pytest

from repro.perf import caching as _perf
from repro.perf.suite import (
    BENCH_INDEX,
    BenchResult,
    check_against_baseline,
    main,
    render_summary,
    run_suite,
)


@pytest.fixture(autouse=True)
def leave_enabled():
    yield
    _perf.set_enabled(True)


def result(name="classify_micro", baseline=1.0, optimized=0.25, gated=True,
           **extras) -> BenchResult:
    return BenchResult(name=name, kind="micro", baseline_seconds=baseline,
                       optimized_seconds=optimized, gated=gated, extras=extras)


def payload_with(*results: BenchResult) -> dict:
    return {
        "schema_version": 1,
        "bench_index": BENCH_INDEX,
        "quick": True,
        "cpu_count": 4,
        "benches": {r.name: r.as_dict() for r in results},
    }


class TestBenchResult:
    def test_speedup_is_baseline_over_optimized(self):
        assert result(baseline=2.0, optimized=0.5).speedup == 4.0

    def test_zero_optimized_time_is_infinite_speedup(self):
        assert result(optimized=0.0).speedup == float("inf")

    def test_as_dict_carries_extras_and_gating(self):
        as_dict = result(gated=False, identical=True).as_dict()
        assert as_dict["speedup"] == 4.0
        assert as_dict["gated"] is False
        assert as_dict["identical"] is True


class TestBaselineCheck:
    def test_passes_when_speedups_hold(self):
        baseline = payload_with(result())
        current = payload_with(result(baseline=0.9, optimized=0.3))
        assert check_against_baseline(current, baseline) == []

    def test_passes_within_the_generous_budget(self):
        baseline = payload_with(result(baseline=4.0, optimized=1.0))  # 4x
        current = payload_with(result(baseline=2.2, optimized=1.0))  # 2.2x > 4/2
        assert check_against_baseline(current, baseline) == []

    def test_fails_when_speedup_halves_and_more(self):
        baseline = payload_with(result(baseline=4.0, optimized=1.0))  # 4x
        current = payload_with(result(baseline=1.5, optimized=1.0))  # 1.5x < 2x
        failures = check_against_baseline(current, baseline)
        assert len(failures) == 1
        assert "classify_micro" in failures[0]

    def test_missing_bench_fails(self):
        failures = check_against_baseline(payload_with(), payload_with(result()))
        assert failures == ["classify_micro: missing from current run"]

    def test_ungated_bench_never_fails_on_ratio(self):
        baseline = payload_with(result(name="sharded_campaign", baseline=4.0,
                                       optimized=1.0, gated=False))
        current = payload_with(result(name="sharded_campaign", baseline=1.0,
                                      optimized=4.0, gated=False))
        assert check_against_baseline(current, baseline) == []

    def test_lost_bit_identity_fails_even_when_fast(self):
        baseline = payload_with(result(identical=True))
        current = payload_with(result(baseline=9.0, identical=False))
        failures = check_against_baseline(current, baseline)
        assert any("bit-identical" in failure for failure in failures)


class TestRenderSummary:
    def test_lists_benches_and_flags(self):
        payload = payload_with(
            result(identical=True),
            result(name="sharded_campaign", gated=False),
        )
        text = render_summary(payload)
        assert "classify_micro" in text
        assert "identical" in text
        assert "ungated" in text

    def test_single_core_warning_is_surfaced(self):
        payload = payload_with(result())
        payload["single_core_warning"] = "only one core"
        assert "WARNING" in render_summary(payload)


class TestRealQuickBench:
    def test_parse_and_render_benches_run(self):
        payload = run_suite(quick=True, only=["parse", "render"])
        assert payload["benches"]["parse_micro"]["bodies"] > 0
        assert payload["benches"]["render_micro"]["specs"] > 0
        assert _perf.enabled()  # the A/B runs restore the switch

    def test_classify_bench_runs_and_reports_identical(self):
        payload = run_suite(quick=True, only=["classify"])
        bench = payload["benches"]["classify_micro"]
        assert bench["identical"] is True
        assert bench["speedup"] > 1.0
        assert payload["bench_index"] == BENCH_INDEX

    def test_main_writes_snapshot_and_checks_baseline(self, tmp_path, capsys):
        output = tmp_path / "BENCH_test.json"
        baseline = tmp_path / "baseline.json"
        assert main(["--quick", "--only", "classify",
                     "--output", str(output)]) == 0
        snapshot = json.loads(output.read_text())
        baseline.write_text(json.dumps(snapshot))
        assert main(["--quick", "--only", "classify", "--no-write",
                     "--check", str(baseline)]) == 0
        assert "regression check passed" in capsys.readouterr().out
