"""Chaos integration: the measurement survives injected faults.

The fast tests drive a sharded campaign and the crawler retry loop
under the ``moderate`` profile.  The full pilot under chaos — breaches,
attacker campaigns, lossy telemetry and all — is opt-in via
``-m slow`` (the chaos CI job).
"""

import pytest

from repro.core.runner import CampaignRunner
from repro.core.scenario import PilotScenario, ScenarioConfig
from repro.core.substrate import WorldShard
from repro.core.system import TripwireSystem
from repro.faults.plan import FaultPlan
from repro.util.rngtree import RngTree

SEED = 17
POPULATION = 200


@pytest.fixture(scope="module")
def ranked_sites():
    listing = WorldShard(RngTree(SEED)).build_population(POPULATION)
    return listing.alexa_top(40)


class TestCampaignUnderFaults:
    def test_moderate_campaign_completes(self, ranked_sites):
        plan = FaultPlan.from_profile("moderate", seed=2)
        result = CampaignRunner(
            seed=SEED, population_size=POPULATION, shards=3,
            fault_plan=plan,
        ).run(ranked_sites)
        # Degraded, not dead: attempts were made and faults were injected.
        assert result.stats.attempts > 0
        assert result.fault_report.total_injected > 0
        # Every attempt still carries a terminal outcome.
        assert all(a.outcome.code is not None for a in result.attempts)

    def test_off_profile_matches_no_plan(self, ranked_sites):
        with_off = CampaignRunner(
            seed=SEED, population_size=POPULATION, shards=3,
            fault_plan=FaultPlan.from_profile("off"),
        ).run(ranked_sites)
        without = CampaignRunner(
            seed=SEED, population_size=POPULATION, shards=3,
        ).run(ranked_sites)
        assert [(a.site_host, a.outcome.code, a.identity.email_local)
                for a in with_off.attempts] == \
               [(a.site_host, a.outcome.code, a.identity.email_local)
                for a in without.attempts]
        assert with_off.fault_report.total_injected == 0

    def test_fault_seed_changes_the_stream_not_the_world(self, ranked_sites):
        runs = [
            CampaignRunner(
                seed=SEED, population_size=POPULATION, shards=3,
                fault_plan=FaultPlan.from_profile("moderate", seed=fs),
            ).run(ranked_sites)
            for fs in (1, 2)
        ]
        # Different fault seeds draw different fault streams...
        assert runs[0].fault_report != runs[1].fault_report
        # ...but the site universe underneath is the same.
        assert {a.site_host for a in runs[0].attempts} <= \
            {entry.host for entry in ranked_sites}


class TestSystemUnderFaults:
    def test_system_wires_injectors_only_when_enabled(self):
        plain = TripwireSystem(seed=9, population_size=60)
        assert plain.fault_plan is None
        assert type(plain.transport).__name__ == "Transport"
        assert plain.apparatus.telemetry_faults is None

        chaotic = TripwireSystem(
            seed=9, population_size=60,
            fault_plan=FaultPlan.from_profile("moderate"),
        )
        assert type(chaotic.transport).__name__ == "TransportFaultInjector"
        assert type(chaotic.solver).__name__ == "SolverFaultInjector"
        assert chaotic.apparatus.telemetry_faults is not None
        assert chaotic.fault_report is chaotic.world.fault_report

    def test_site_specs_identical_with_and_without_faults(self):
        plain = TripwireSystem(seed=9, population_size=60)
        chaotic = TripwireSystem(
            seed=9, population_size=60,
            fault_plan=FaultPlan.from_profile("heavy", seed=5),
        )
        for rank in (1, 13, 37, 60):
            assert plain.population.spec_at_rank(rank) == \
                chaotic.population.spec_at_rank(rank)


@pytest.mark.slow
class TestPilotUnderFaults:
    PILOT_CONFIG = dict(
        seed=5, population_size=400, seed_list_size=40, main_crawl_top=150,
        second_crawl_top=200, manual_top=10, breach_count=6,
        breach_hard_exposing=3, unused_account_count=60,
        control_account_count=4,
    )

    @pytest.mark.parametrize("profile", ["moderate", "heavy"])
    def test_pilot_completes_under_faults(self, profile):
        config = ScenarioConfig(
            **self.PILOT_CONFIG,
            fault_plan=FaultPlan.from_profile(profile, seed=1),
        )
        result = PilotScenario(config).run()
        report = result.system.fault_report
        assert report.total_injected > 0
        # The measurement still functions end to end: registrations
        # happened, breaches executed, the monitor saw dumps.
        assert len(result.campaign.attempts) > 0
        assert len(result.breaches) > 0
        assert result.monitor.ingested_events > 0

    def test_pilot_fault_runs_are_deterministic(self):
        config = ScenarioConfig(
            **self.PILOT_CONFIG,
            fault_plan=FaultPlan.from_profile("moderate", seed=3),
        )
        first = PilotScenario(config).run()
        second = PilotScenario(config).run()
        assert first.system.fault_report == second.system.fault_report
        assert [(a.site_host, a.outcome.code) for a in first.campaign.attempts] == \
            [(a.site_host, a.outcome.code) for a in second.campaign.attempts]
        assert first.detected_hosts == second.detected_hosts
