"""Regression pin: the faults-disabled pilot is byte-stable.

These literals are the crawler outcome distribution and Table 1 counts
of the shared small pilot (``tests/conftest.py::SMALL_PILOT_CONFIG``,
seed 5) with no fault plan.  Fault injection must be a strict no-op
when disabled: if any of these numbers move, a change leaked into the
fault-free path and the determinism contract is broken.
"""

from collections import Counter

from repro.analysis.table1 import build_table1
from repro.crawler.outcomes import TerminationCode

#: Pinned distribution over automated (non-manual) attempts.
EXPECTED_CODE_COUNTS = {
    TerminationCode.OK_SUBMISSION: 60,
    TerminationCode.SUBMISSION_HEURISTICS_FAILED: 13,
    TerminationCode.REQUIRED_FIELDS_MISSING: 24,
    TerminationCode.NO_REGISTRATION_FOUND: 92,
    TerminationCode.NOT_ENGLISH: 107,
    TerminationCode.SYSTEM_ERROR: 36,
}

#: Pinned Table 1 counts: (attempted_total, attempted_sites, estimated_total).
EXPECTED_TABLE1 = {
    "Email verified": (31, 18, 30),
    "Email received": (2, 1, 2),
    "OK submission": (30, 16, 21),
    "Bad heuristics/Fields missing": (42, 42, 1),
    "Manual": (3, 3, 3),
    "Total": (108, 80, 57),
}


class TestFaultFreePilotIsPinned:
    def test_outcome_distribution(self, pilot_result):
        counts = Counter(
            a.outcome.code for a in pilot_result.campaign.attempts if not a.manual
        )
        assert dict(counts) == EXPECTED_CODE_COUNTS

    def test_no_budget_exhaustion_in_the_pilot(self, pilot_result):
        # The enum split must not relabel any fault-free pilot outcome:
        # the small pilot never exhausts a page or proxy budget.
        codes = {a.outcome.code for a in pilot_result.campaign.attempts}
        assert TerminationCode.BUDGET_EXHAUSTED not in codes

    def test_attempt_and_exposure_totals(self, pilot_result):
        assert len(pilot_result.campaign.attempts) == 335
        assert sum(1 for a in pilot_result.campaign.attempts if a.manual) == 3
        assert len(pilot_result.campaign.exposed_attempts()) == 108

    def test_table1_counts(self, pilot_result):
        rows = {
            row.label: (row.attempted_total, row.attempted_sites,
                        row.estimated_total)
            for row in build_table1(pilot_result.estimates)
        }
        assert rows == EXPECTED_TABLE1

    def test_no_faults_were_injected(self, pilot_result):
        report = pilot_result.system.fault_report
        assert report.total_injected == 0
        assert report.crawler_retries == 0
        assert pilot_result.system.fault_plan is None
