"""FaultPlan profiles, validation and value semantics."""

import dataclasses
import pickle

import pytest

from repro.faults.plan import PROFILES, FaultPlan


class TestProfiles:
    def test_known_profiles(self):
        assert set(PROFILES) == {"off", "mild", "moderate", "heavy"}

    def test_off_profile_is_disabled(self):
        assert not FaultPlan.from_profile("off").enabled

    @pytest.mark.parametrize("name", ["mild", "moderate", "heavy"])
    def test_named_profiles_are_enabled(self, name):
        plan = FaultPlan.from_profile(name)
        assert plan.enabled
        assert plan.profile == name

    def test_unknown_profile_raises(self):
        with pytest.raises(ValueError, match="unknown fault profile"):
            FaultPlan.from_profile("catastrophic")

    def test_from_profile_stamps_seed(self):
        plan = FaultPlan.from_profile("moderate", seed=42)
        assert plan.seed == 42
        # Everything else matches the preset.
        assert dataclasses.replace(plan, seed=0) == PROFILES["moderate"]

    def test_severity_ordering(self):
        mild = PROFILES["mild"]
        moderate = PROFILES["moderate"]
        heavy = PROFILES["heavy"]
        for name in ("transport_unreachable_rate", "captcha_unsolved_rate",
                     "mail_drop_rate", "telemetry_late_rate"):
            assert (getattr(mild, name) < getattr(moderate, name)
                    < getattr(heavy, name)), name


class TestValidation:
    @pytest.mark.parametrize("field", [
        "transport_unreachable_rate", "dns_failure_rate",
        "captcha_missolve_rate", "mail_drop_rate", "telemetry_late_rate",
    ])
    def test_rates_must_be_probabilities(self, field):
        with pytest.raises(ValueError, match="probability"):
            FaultPlan(**{field: 1.5})
        with pytest.raises(ValueError, match="probability"):
            FaultPlan(**{field: -0.1})

    def test_plan_is_frozen(self):
        plan = FaultPlan.from_profile("mild")
        with pytest.raises(dataclasses.FrozenInstanceError):
            plan.mail_drop_rate = 0.5  # type: ignore[misc]


class TestValueSemantics:
    def test_equal_plans_compare_equal(self):
        assert FaultPlan.from_profile("moderate", seed=9) == \
            FaultPlan.from_profile("moderate", seed=9)
        assert FaultPlan.from_profile("moderate", seed=9) != \
            FaultPlan.from_profile("moderate", seed=10)

    def test_plan_pickles_for_the_process_executor(self):
        plan = FaultPlan.from_profile("heavy", seed=3)
        assert pickle.loads(pickle.dumps(plan)) == plan
