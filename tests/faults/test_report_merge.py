"""FaultReport merges through the shared obs merge helper.

The journal and the fault report deliberately share one merge
discipline (:mod:`repro.obs.merge`); this pins the report's merged
bytes so a change to the shared helper that would silently reshape
FaultReport output fails here first.
"""

import json

from repro.faults.report import FaultReport
from repro.obs.merge import sum_counter_dataclasses

#: Byte-exact merged output of the two reports below.  Regenerate only
#: for a deliberate schema change, never to "fix" a failing merge.
PINNED = (
    '{"captcha_missolved": 7, "captcha_unsolved": 0, "crawler_gave_up": 1, '
    '"crawler_retries": 0, "dns_failures": 4, "mail_delayed": 0, '
    '"mail_dropped": 0, "mail_duplicated": 0, "mail_retries": 5, '
    '"mail_transient_failures": 0, "mail_undelivered": 0, '
    '"telemetry_dumps_delayed": 0, "telemetry_events_dropped": 5, '
    '"transport_slow_seconds": 0, "transport_slowdowns": 0, '
    '"transport_tls_errors": 0, "transport_unreachable": 3}'
)


def sample_reports() -> tuple[FaultReport, FaultReport]:
    a = FaultReport(transport_unreachable=2, mail_retries=3,
                    crawler_gave_up=1, telemetry_events_dropped=5)
    b = FaultReport(transport_unreachable=1, dns_failures=4,
                    mail_retries=2, captcha_missolved=7)
    return a, b


class TestMergedReportRegression:
    def test_merged_bytes_are_pinned(self):
        a, b = sample_reports()
        assert json.dumps(a.merged_with(b).as_dict(), sort_keys=True) == PINNED

    def test_merge_is_commutative(self):
        a, b = sample_reports()
        assert a.merged_with(b) == b.merged_with(a)

    def test_merged_with_equals_the_shared_helper(self):
        a, b = sample_reports()
        assert a.merged_with(b) == sum_counter_dataclasses(FaultReport, (a, b))

    def test_empty_fold_yields_default_report(self):
        assert sum_counter_dataclasses(FaultReport, ()) == FaultReport()
