"""Unit tests for the fault injectors over each Protocol seam."""

from random import Random

import pytest

from repro.faults.injectors import (
    DnsFaultInjector,
    MailFaultInjector,
    SolverFaultInjector,
    TelemetryFaultInjector,
    TransportFaultInjector,
)
from repro.faults.plan import FaultPlan
from repro.faults.report import FaultReport
from repro.faults.retry import RetryPolicy
from repro.mail.forwarding import ForwardingHop, TransientDeliveryError
from repro.mail.messages import EmailMessage
from repro.net.dns import DnsResolver, NxDomain
from repro.net.ipaddr import IPv4Address
from repro.net.transport import HostUnreachable, HttpResponse, TlsError, Transport
from repro.sim.clock import SimClock
from repro.sim.events import EventQueue


def message(recipient="probe@plainmailbox.example"):
    return EmailMessage(sender="site@ranked1.test", recipient=recipient,
                        subject="verify", body="click", time=0)


@pytest.fixture
def report():
    return FaultReport()


class TestTransportFaultInjector:
    def wrapped(self, plan, report, seed=1):
        clock = SimClock()
        transport = Transport(clock)
        transport.register_host("site.test", lambda r: HttpResponse(200, "ok"))
        transport.register_host("tls.test", lambda r: HttpResponse(200, "ok"),
                                https=True)
        return clock, TransportFaultInjector(transport, plan, Random(seed), report)

    def test_zero_rates_delegate_untouched(self, report):
        _clock, injector = self.wrapped(FaultPlan(), report)
        assert injector.get("http://site.test/").ok
        assert injector.post("http://site.test/submit", {"a": "1"}).ok
        assert injector.request("GET", "http://site.test/").ok
        assert report.total_injected == 0

    def test_certain_unreachable(self, report):
        _clock, injector = self.wrapped(
            FaultPlan(transport_unreachable_rate=1.0), report)
        with pytest.raises(HostUnreachable):
            injector.get("http://site.test/")
        assert report.transport_unreachable == 1

    def test_tls_faults_only_strike_https(self, report):
        plan = FaultPlan(transport_tls_rate=1.0)
        _clock, injector = self.wrapped(plan, report)
        assert injector.get("http://site.test/").ok  # plain HTTP untouched
        with pytest.raises(TlsError):
            injector.get("https://tls.test/")
        assert report.transport_tls_errors == 1

    def test_slowdown_advances_the_clock(self, report):
        plan = FaultPlan(transport_slow_rate=1.0, transport_slow_seconds=30)
        clock, injector = self.wrapped(plan, report)
        before = clock.now()
        assert injector.get("http://site.test/").ok
        # At least the injected extra second on top of network latency.
        assert clock.now() > before
        assert report.transport_slowdowns == 1
        assert 1 <= report.transport_slow_seconds <= 30

    def test_delegation_exposes_inner_surface(self, report):
        _clock, injector = self.wrapped(FaultPlan(), report)
        assert injector.is_registered("site.test")
        assert injector.supports_https("tls.test")
        injector.get("http://site.test/")
        assert injector.request_count == 1

    def test_same_seed_same_fault_sequence(self):
        plan = FaultPlan(transport_unreachable_rate=0.3)

        def failures(seed):
            report = FaultReport()
            _clock, injector = self.wrapped(plan, report, seed=seed)
            pattern = []
            for _ in range(40):
                try:
                    injector.get("http://site.test/")
                    pattern.append(False)
                except HostUnreachable:
                    pattern.append(True)
            return pattern, report.transport_unreachable

        assert failures(7) == failures(7)
        assert failures(7) != failures(8)


class TestDnsFaultInjector:
    def test_lookups_fail_at_rate_one(self, report):
        dns = DnsResolver()
        dns.register_host("mail.test", IPv4Address.parse("10.0.0.1"))
        injector = DnsFaultInjector(dns, FaultPlan(dns_failure_rate=1.0),
                                    Random(3), report)
        with pytest.raises(NxDomain):
            injector.resolve_a("mail.test")
        with pytest.raises(NxDomain):
            injector.resolve_mx("mail.test")
        assert report.dns_failures == 2

    def test_zone_management_delegates(self, report):
        dns = DnsResolver()
        injector = DnsFaultInjector(dns, FaultPlan(dns_failure_rate=1.0),
                                    Random(3), report)
        injector.register_host("new.test", IPv4Address.parse("10.0.0.2"))
        assert dns.has_zone("new.test")  # write went through untouched


class _EchoSolver:
    def solve(self, challenge_token, is_knowledge_question=False):
        return f"answer:{challenge_token}"


class TestSolverFaultInjector:
    def test_unsolved_returns_none(self, report):
        injector = SolverFaultInjector(
            _EchoSolver(), FaultPlan(captcha_unsolved_rate=1.0), Random(4), report)
        assert injector.solve("tok") is None
        assert report.captcha_unsolved == 1

    def test_missolved_returns_a_wrong_answer(self, report):
        injector = SolverFaultInjector(
            _EchoSolver(), FaultPlan(captcha_missolve_rate=1.0), Random(4), report)
        answer = injector.solve("tok")
        assert answer is not None and answer != "answer:tok"
        assert report.captcha_missolved == 1

    def test_zero_rates_delegate(self, report):
        injector = SolverFaultInjector(_EchoSolver(), FaultPlan(), Random(4), report)
        assert injector.solve("tok") == "answer:tok"
        assert report.total_injected == 0


class TestMailFaultInjector:
    def collect(self, plan, seed=5, queue=None):
        delivered = []
        report = FaultReport()
        injector = MailFaultInjector(delivered.append, plan, Random(seed),
                                     report, queue=queue)
        return delivered, report, injector

    def test_clean_delivery(self):
        delivered, report, injector = self.collect(FaultPlan())
        injector(message())
        assert len(delivered) == 1
        assert report.total_injected == 0

    def test_transient_failure_raises(self):
        delivered, report, injector = self.collect(
            FaultPlan(mail_transient_failure_rate=1.0))
        with pytest.raises(TransientDeliveryError):
            injector(message())
        assert delivered == []
        assert report.mail_transient_failures == 1

    def test_drop_is_silent(self):
        delivered, report, injector = self.collect(FaultPlan(mail_drop_rate=1.0))
        injector(message())
        assert delivered == []
        assert report.mail_dropped == 1

    def test_duplicate_delivers_twice(self):
        delivered, report, injector = self.collect(
            FaultPlan(mail_duplicate_rate=1.0))
        injector(message())
        assert len(delivered) == 2
        assert report.mail_duplicated == 1

    def test_delay_reschedules_on_the_queue(self):
        clock = SimClock()
        queue = EventQueue(clock)
        plan = FaultPlan(mail_delay_rate=1.0, mail_delay_seconds=3600)
        delivered, report, injector = self.collect(plan, queue=queue)
        injector(message())
        assert delivered == []  # not delivered yet
        assert report.mail_delayed == 1
        queue.run_until(clock.now() + 3600)
        assert len(delivered) == 1  # arrives once the delay elapses

    def test_delay_without_queue_delivers_inline(self):
        delivered, report, injector = self.collect(
            FaultPlan(mail_delay_rate=1.0), queue=None)
        injector(message())
        assert len(delivered) == 1
        assert report.mail_delayed == 0


class TestForwardingHopRetry:
    class FlakyDeliver:
        def __init__(self, failures):
            self.failures = failures
            self.delivered = []

        def __call__(self, msg):
            if self.failures > 0:
                self.failures -= 1
                raise TransientDeliveryError("relay hiccup")
            self.delivered.append(msg)

    def hop(self, deliver, retry, report=None, clock=None):
        return ForwardingHop(
            ["plainmailbox.example"], deliver, retry=retry,
            clock=clock, rng=Random(6), fault_report=report,
        )

    def test_retry_recovers_transient_failures(self, report):
        deliver = self.FlakyDeliver(failures=2)
        clock = SimClock()
        hop = self.hop(deliver, RetryPolicy(max_attempts=3), report, clock)
        before = clock.now()
        hop(message())
        assert len(deliver.delivered) == 1
        assert hop.relayed_count == 1
        assert hop.lost_count == 0
        assert report.mail_retries == 2
        assert clock.now() > before  # backoff advanced the clock

    def test_exhausted_budget_loses_the_message(self, report):
        deliver = self.FlakyDeliver(failures=5)
        hop = self.hop(deliver, RetryPolicy(max_attempts=2), report, SimClock())
        hop(message())
        assert deliver.delivered == []
        assert hop.lost_count == 1
        assert report.mail_undelivered == 1
        assert report.mail_retries == 1  # one retry, then gave up

    def test_no_policy_fails_immediately(self, report):
        deliver = self.FlakyDeliver(failures=1)
        hop = ForwardingHop(["plainmailbox.example"], deliver,
                            fault_report=report)
        hop(message())
        assert hop.lost_count == 1
        assert report.mail_retries == 0

    def test_policy_without_rng_rejected(self):
        with pytest.raises(ValueError, match="rng"):
            ForwardingHop(["plainmailbox.example"], lambda m: None,
                          retry=RetryPolicy())


class _FakeProvider:
    def __init__(self, events):
        self.events = events

    def collect_login_dump(self):
        return list(self.events)


class TestTelemetryFaultInjector:
    def test_clean_dump_passes_through(self, report):
        provider = _FakeProvider(["e1", "e2", "e3"])
        injector = TelemetryFaultInjector(provider, FaultPlan(), Random(8), report)
        events, postpone = injector.collect_dump()
        assert events == ["e1", "e2", "e3"]
        assert postpone is None

    def test_late_dump_returns_a_postponement(self, report):
        provider = _FakeProvider(["e1"])
        plan = FaultPlan(telemetry_late_rate=1.0, telemetry_delay_seconds=86400)
        injector = TelemetryFaultInjector(provider, plan, Random(8), report)
        events, postpone = injector.collect_dump()
        assert events == []
        assert postpone is not None and 1 <= postpone <= 86400
        assert report.telemetry_dumps_delayed == 1

    def test_truncated_dump_loses_the_tail(self, report):
        provider = _FakeProvider([f"e{i}" for i in range(10)])
        plan = FaultPlan(telemetry_truncate_rate=1.0,
                         telemetry_truncate_fraction=0.2)
        injector = TelemetryFaultInjector(provider, plan, Random(8), report)
        events, postpone = injector.collect_dump()
        assert postpone is None
        assert events == [f"e{i}" for i in range(8)]  # head preserved
        assert report.telemetry_events_dropped == 2

    def test_empty_dump_never_truncates(self, report):
        plan = FaultPlan(telemetry_truncate_rate=1.0)
        injector = TelemetryFaultInjector(_FakeProvider([]), plan, Random(8), report)
        events, postpone = injector.collect_dump()
        assert events == [] and postpone is None
        assert report.telemetry_events_dropped == 0


class TestFaultReport:
    def test_merge_sums_every_counter(self):
        left = FaultReport(transport_unreachable=2, crawler_retries=5)
        right = FaultReport(transport_unreachable=1, mail_dropped=4)
        merged = left.merged_with(right)
        assert merged.transport_unreachable == 3
        assert merged.crawler_retries == 5
        assert merged.mail_dropped == 4

    def test_as_dict_round_trips_every_field(self):
        report = FaultReport(dns_failures=7)
        mapping = report.as_dict()
        assert mapping["dns_failures"] == 7
        assert FaultReport(**mapping) == report

    def test_total_injected_excludes_recovery_counters(self):
        report = FaultReport(crawler_retries=10, mail_retries=3,
                             mail_undelivered=1, crawler_gave_up=2)
        assert report.total_injected == 0
