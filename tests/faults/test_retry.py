"""RetryPolicy unit tests (backoff shape, validation, determinism)."""

from random import Random

import pytest

from repro.faults.retry import NO_RETRY, RetryPolicy


class TestValidation:
    def test_defaults_are_valid(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3
        assert policy.retries == 2

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"base_delay": -1},
        {"multiplier": 0.5},
        {"max_delay": 2, "base_delay": 5},
        {"jitter_fraction": 1.5},
        {"jitter_fraction": -0.1},
    ])
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestBackoffShape:
    def test_delays_grow_exponentially_without_jitter(self):
        policy = RetryPolicy(max_attempts=5, base_delay=4, multiplier=2.0,
                             max_delay=1000, jitter_fraction=0.0)
        rng = Random(1)
        assert [policy.delay_for(i, rng) for i in range(4)] == [4, 8, 16, 32]

    def test_delay_capped_at_max(self):
        policy = RetryPolicy(max_attempts=10, base_delay=10, multiplier=3.0,
                             max_delay=60, jitter_fraction=0.25)
        rng = Random(2)
        for index in range(9):
            assert policy.delay_for(index, rng) <= 60

    def test_jitter_adds_at_most_the_fraction(self):
        policy = RetryPolicy(max_attempts=2, base_delay=100, multiplier=1.0,
                             max_delay=1000, jitter_fraction=0.25)
        delays = {policy.delay_for(0, Random(seed)) for seed in range(50)}
        assert all(100 <= d <= 125 for d in delays)
        assert len(delays) > 1  # jitter actually varies

    def test_schedule_is_monotone_nondecreasing(self):
        policy = RetryPolicy(max_attempts=6, base_delay=3, multiplier=1.5,
                             max_delay=40, jitter_fraction=0.5)
        schedule = policy.schedule(Random(7))
        assert len(schedule) == policy.retries
        assert schedule == sorted(schedule)

    def test_negative_retry_index_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay_for(-1, Random(0))


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        policy = RetryPolicy(max_attempts=5)
        assert policy.schedule(Random(99)) == policy.schedule(Random(99))

    def test_different_seeds_can_differ(self):
        policy = RetryPolicy(max_attempts=6, jitter_fraction=1.0,
                             max_delay=10_000)
        schedules = {tuple(policy.schedule(Random(s))) for s in range(20)}
        assert len(schedules) > 1


class TestNoRetry:
    def test_no_retry_never_retries(self):
        assert NO_RETRY.retries == 0
        assert NO_RETRY.schedule(Random(0)) == []
