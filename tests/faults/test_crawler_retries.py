"""The crawler's retry loop: transient-only, budget-aware, rate-limited."""

from repro.crawler.captcha import CaptchaSolverService
from repro.crawler.engine import CrawlerConfig, RegistrationCrawler
from repro.crawler.outcomes import TerminationCode
from repro.faults.report import FaultReport
from repro.faults.retry import RetryPolicy
from repro.identity.generator import IdentityFactory
from repro.identity.passwords import PasswordClass
from repro.net.dns import DnsResolver
from repro.net.transport import HostUnreachable, Transport
from repro.net.whois import WhoisRegistry
from repro.sim.clock import SimClock
from repro.util.rngtree import RngTree
from repro.web.population import InternetPopulation


class FlakyTransport:
    """Delegating transport whose first N fetches raise HostUnreachable."""

    def __init__(self, inner, failures):
        self._inner = inner
        self.failures = failures

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def get(self, url, **kwargs):
        if self.failures > 0:
            self.failures -= 1
            raise HostUnreachable(url)
        return self._inner.get(url, **kwargs)


def build_world():
    clock = SimClock()
    transport = Transport(clock)
    population = InternetPopulation(
        RngTree(701), clock, transport, WhoisRegistry(), DnsResolver(), size=3,
        overrides={1: {"bucket": "rest", "host": "retry.test", "language": "en",
                       "load_fails": False}},
    )
    population.site_at_rank(1)
    return clock, transport


def build_crawler(transport, policy, report=None, **config_kwargs):
    config_kwargs.setdefault("system_error_rate", 0.0)
    return RegistrationCrawler(
        transport, CaptchaSolverService(RngTree(702).rng()),
        RngTree(703).rng(), config=CrawlerConfig(**config_kwargs),
        retry_policy=policy, fault_report=report or FaultReport(),
    )


def identity():
    return IdentityFactory(RngTree(704)).create(PasswordClass.HARD)


class TestRetryRecovery:
    def test_transient_failure_is_retried_and_recovers(self):
        _clock, transport = build_world()
        flaky = FlakyTransport(transport, failures=1)
        report = FaultReport()
        crawler = build_crawler(flaky, RetryPolicy(max_attempts=3), report)
        outcome = crawler.register_at("http://retry.test/", identity())
        # First attempt died on the homepage; the retry got through.
        assert outcome.code is not TerminationCode.SYSTEM_ERROR
        assert report.crawler_retries == 1
        assert report.crawler_gave_up == 0

    def test_without_policy_failure_is_final(self):
        _clock, transport = build_world()
        flaky = FlakyTransport(transport, failures=1)
        crawler = RegistrationCrawler(
            flaky, CaptchaSolverService(RngTree(702).rng()), RngTree(703).rng(),
            config=CrawlerConfig(system_error_rate=0.0),
        )
        outcome = crawler.register_at("http://retry.test/", identity())
        assert outcome.code is TerminationCode.SYSTEM_ERROR

    def test_exhausted_attempts_give_up(self):
        _clock, transport = build_world()
        flaky = FlakyTransport(transport, failures=99)
        report = FaultReport()
        crawler = build_crawler(flaky, RetryPolicy(max_attempts=3), report)
        outcome = crawler.register_at("http://retry.test/", identity())
        assert outcome.code is TerminationCode.SYSTEM_ERROR
        assert report.crawler_retries == 2  # max_attempts - 1
        assert report.crawler_gave_up == 1


class TestRetryDiscipline:
    def test_permanent_codes_are_never_retried(self):
        _clock, transport = build_world()
        report = FaultReport()
        crawler = build_crawler(transport, RetryPolicy(max_attempts=4), report)
        attempts = []
        original = crawler._attempt_once

        def counting(url, ident, state):
            attempts.append(1)
            return original(url, ident, state)

        crawler._attempt_once = counting
        outcome = crawler.register_at("http://retry.test/", identity())
        assert not outcome.code.retryable
        assert len(attempts) == 1
        assert report.crawler_retries == 0

    def test_budget_exhaustion_stops_the_retry_loop(self):
        _clock, transport = build_world()
        report = FaultReport()
        crawler = build_crawler(transport, RetryPolicy(max_attempts=5), report,
                                max_pages=4)
        attempts = []

        def burned_out(url, ident, state):
            attempts.append(1)
            state.pages_loaded = crawler.config.max_pages  # budget gone
            return state.finish(transport, TerminationCode.SYSTEM_ERROR,
                                detail="crash after budget spent")

        crawler._attempt_once = burned_out
        outcome = crawler.register_at("http://retry.test/", identity())
        # Retryable code, but no page budget left: exactly one attempt.
        assert outcome.code is TerminationCode.SYSTEM_ERROR
        assert len(attempts) == 1
        assert report.crawler_retries == 0

    def test_backoff_respects_the_ethics_rate_limit(self):
        clock, transport = build_world()
        report = FaultReport()
        # Backoff below the §3 floor: waits must still be >= min_page_delay.
        policy = RetryPolicy(max_attempts=3, base_delay=1, multiplier=1.0,
                             max_delay=1, jitter_fraction=0.0)
        crawler = build_crawler(transport, policy, report, min_page_delay=3)

        def always_crash(url, ident, state):
            return state.finish(transport, TerminationCode.SYSTEM_ERROR,
                                detail="crash")

        crawler._attempt_once = always_crash
        before = clock.now()
        crawler.register_at("http://retry.test/", identity())
        waited = clock.now() - before
        assert waited >= policy.retries * 3  # min_page_delay floor per retry
