"""Hypothesis properties for RetryPolicy backoff schedules.

For *arbitrary* valid policies and RNG seeds:

- schedules are monotone non-decreasing, and
- every delay is bounded by ``max_delay``.

These two invariants are what the crawler's retry loop and the
forwarding hop rely on for the §3 ethics argument (waits only grow)
and for bounded simulated time under chaos.
"""

from random import Random

from hypothesis import given, settings, strategies as st

from repro.faults.retry import RetryPolicy


def policies() -> st.SearchStrategy[RetryPolicy]:
    """Arbitrary *valid* policies, built to satisfy the invariants."""
    return st.builds(
        lambda attempts, base, extra, mult, jitter: RetryPolicy(
            max_attempts=attempts,
            base_delay=base,
            multiplier=mult,
            max_delay=base + extra,
            jitter_fraction=jitter,
        ),
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=0, max_value=600),
        st.integers(min_value=0, max_value=10_000),
        st.floats(min_value=1.0, max_value=16.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )


@settings(max_examples=200, deadline=None)
@given(policy=policies(), seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_schedule_monotone_nondecreasing(policy: RetryPolicy, seed: int):
    schedule = policy.schedule(Random(seed))
    assert all(a <= b for a, b in zip(schedule, schedule[1:]))


@settings(max_examples=200, deadline=None)
@given(policy=policies(), seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_schedule_bounded_by_max_delay(policy: RetryPolicy, seed: int):
    schedule = policy.schedule(Random(seed))
    assert len(schedule) == policy.retries
    assert all(0 <= delay <= policy.max_delay for delay in schedule)


@settings(max_examples=100, deadline=None)
@given(policy=policies(), seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_schedule_is_a_pure_function_of_seed(policy: RetryPolicy, seed: int):
    assert policy.schedule(Random(seed)) == policy.schedule(Random(seed))
