"""Tests for select-control (dropdown) handling end to end."""

from repro.crawler.captcha import CaptchaSolverService
from repro.crawler.engine import CrawlerConfig, RegistrationCrawler
from repro.crawler.formfill import plan_form_fill
from repro.crawler.outcomes import TerminationCode
from repro.html.forms import extract_form_model
from repro.html.parser import parse_html
from repro.identity.generator import IdentityFactory
from repro.identity.passwords import PasswordClass
from repro.net.dns import DnsResolver
from repro.net.transport import Transport
from repro.net.whois import WhoisRegistry
from repro.sim.clock import SimClock
from repro.util.rngtree import RngTree
from repro.util.timeutil import instant_to_datetime
from repro.web.i18n import ENGLISH
from repro.web.pages import render_registration_page
from repro.web.population import InternetPopulation
from repro.web.spec import BotCheck, LinkPlacement, RegistrationStyle, ResponseStyle, SiteSpec


def identity():
    return IdentityFactory(RngTree(201)).create(PasswordClass.HARD)


class TestFillingSelects:
    def plan_for(self, **spec_overrides):
        spec = SiteSpec(host="sel.test", rank=5, category="News", language="en",
                        wants_username=False, wants_confirm_password=False,
                        label_style="for", **spec_overrides)
        html = render_registration_page(spec, ENGLISH)
        dom = parse_html(html)
        model = extract_form_model(dom, dom.find_first("form"))
        ident = identity()
        return ident, plan_form_fill(model, ident)

    def test_birthdate_selects_filled_from_identity(self):
        ident, plan = self.plan_for(wants_birthdate=True)
        dob = instant_to_datetime(ident.date_of_birth)
        assert plan.complete
        assert plan.values["birth_month"] == str(dob.month)
        assert plan.values["birth_day"] == str(dob.day)
        assert plan.values["birth_year"] == str(dob.year)

    def test_gender_select_matches_identity(self):
        ident, plan = self.plan_for(wants_gender=True)
        assert plan.complete
        assert plan.values["gender"] == ident.gender

    def test_unknown_select_takes_first_real_option(self):
        dom = parse_html(
            "<form><select name='mystery9'>"
            "<option value=''>pick</option>"
            "<option value='a'>A</option><option value='b'>B</option>"
            "</select></form>"
        )
        model = extract_form_model(dom, dom.find_first("form"))
        plan = plan_form_fill(model, identity())
        assert plan.complete
        assert plan.values["mystery9"] == "a"


class TestEndToEndWithSelects:
    def test_registration_succeeds_on_birthdate_site(self):
        clock = SimClock()
        transport = Transport(clock)
        overrides = {1: {
            "bucket": "rest", "host": "dob.test", "language": "en",
            "load_fails": False,
            "registration_style": RegistrationStyle.SIMPLE,
            "link_placement": LinkPlacement.PROMINENT,
            "registration_path": "/signup", "anchor_text": "Sign up",
            "bot_check": BotCheck.NONE,
            "response_style": ResponseStyle.CLEAR,
            "extra_unlabeled_field": False, "requires_special_char": False,
            "shadow_ban_rate": 0.0, "max_email_length": None,
            "max_username_length": None, "wants_birthdate": True,
            "wants_gender": True, "label_style": "for",
        }}
        population = InternetPopulation(
            RngTree(202), clock, transport, WhoisRegistry(), DnsResolver(),
            size=2, overrides=overrides,
        )
        site = population.site_at_rank(1)
        crawler = RegistrationCrawler(
            transport, CaptchaSolverService(RngTree(203).rng()),
            RngTree(204).rng(), config=CrawlerConfig(system_error_rate=0.0),
        )
        ident = identity()
        outcome = crawler.register_at("http://dob.test/", ident)
        assert outcome.code is TerminationCode.OK_SUBMISSION
        account = site.accounts.lookup(ident.email_address)
        assert account is not None
