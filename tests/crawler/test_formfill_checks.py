"""Tests for serial form filling and submission-response heuristics."""

import pytest

from repro.crawler.captcha import CaptchaSolverService
from repro.crawler.checks import SubmissionVerdict, judge_submission_response
from repro.crawler.formfill import plan_form_fill
from repro.html.browser import Page
from repro.html.forms import extract_form_model
from repro.html.parser import parse_html
from repro.identity.generator import IdentityFactory
from repro.identity.passwords import PasswordClass
from repro.util.rngtree import RngTree
from repro.web.captcha import captcha_answer_for


@pytest.fixture
def identity():
    return IdentityFactory(RngTree(31)).create(PasswordClass.HARD)


def model_from(html: str):
    dom = parse_html(f"<form action='/s' method='post'>{html}</form>")
    return extract_form_model(dom, dom.find_first("form"))


class TestFormFill:
    def test_simple_form_filled_completely(self, identity):
        model = model_from(
            '<input type="email" name="email" required>'
            '<input name="username" required>'
            '<input type="password" name="password" required>'
        )
        plan = plan_form_fill(model, identity)
        assert plan.complete
        assert plan.values["email"] == identity.email_address
        assert plan.values["username"] == identity.site_username
        assert plan.values["password"] == identity.password
        assert plan.exposed_email and plan.exposed_password

    def test_abort_on_required_unknown_after_exposure(self, identity):
        model = model_from(
            '<input type="email" name="email" required>'
            '<input type="password" name="password" required>'
            '<input name="x_fld_71" required>'
        )
        plan = plan_form_fill(model, identity)
        assert plan.aborted
        # The horizontal line in Figure 1: credentials were already typed.
        assert plan.exposed_email and plan.exposed_password

    def test_abort_before_exposure_when_unknown_comes_first(self, identity):
        model = model_from(
            '<input name="x_fld_71" required>'
            '<input type="email" name="email" required>'
            '<input type="password" name="password" required>'
        )
        plan = plan_form_fill(model, identity)
        assert plan.aborted
        assert not plan.exposed_email and not plan.exposed_password

    def test_optional_unknown_skipped(self, identity):
        model = model_from(
            '<input type="email" name="email" required>'
            '<input name="x_fld_71">'
            '<input type="password" name="password" required>'
        )
        plan = plan_form_fill(model, identity)
        assert plan.complete
        assert "x_fld_71" not in plan.values

    def test_card_number_unfillable(self, identity):
        model = model_from(
            '<input type="email" name="email" required>'
            '<input type="password" name="password" required>'
            '<input name="card_number" required>'
        )
        plan = plan_form_fill(model, identity)
        assert plan.aborted
        assert "card_number" in plan.abort_reason

    def test_terms_checkbox_checked(self, identity):
        model = model_from(
            '<input type="email" name="email" required>'
            '<input type="password" name="password" required>'
            '<label><input type="checkbox" name="tos" value="1" required> '
            "I agree to the terms</label>"
        )
        plan = plan_form_fill(model, identity)
        assert plan.complete
        assert plan.values["tos"] == "1"

    def test_maxlength_truncation(self, identity):
        model = model_from('<input name="username" maxlength="8" required>')
        plan = plan_form_fill(model, identity)
        assert len(plan.values["username"]) == 8

    def test_captcha_solved_via_service(self, identity):
        solver = CaptchaSolverService(RngTree(1).rng(), image_accuracy=1.0)
        model = model_from(
            '<input type="email" name="email" required>'
            '<input type="password" name="password" required>'
            '<input name="captcha" data-challenge="ch-9" required '
            ' placeholder="Enter the characters shown in the image">'
        )
        plan = plan_form_fill(model, identity, solver=solver)
        assert plan.complete
        assert plan.values["captcha"] == captcha_answer_for("ch-9")

    def test_captcha_without_solver_aborts(self, identity):
        model = model_from(
            '<input type="email" name="email" required>'
            '<input type="password" name="password" required>'
            '<input name="captcha" data-challenge="ch-9" required '
            ' placeholder="security code">'
        )
        plan = plan_form_fill(model, identity, solver=None)
        assert plan.aborted


def page_with(body: str) -> Page:
    return Page(url="http://s.test/r", status=200, dom=parse_html(body))


class TestSubmissionChecks:
    def test_success_copy(self):
        page = page_with("<p>Your registration was successful. Welcome aboard!</p>")
        assert judge_submission_response(page) is SubmissionVerdict.SUCCESS

    def test_error_copy(self):
        page = page_with("<p>Error: please try again</p>")
        assert judge_submission_response(page) is SubmissionVerdict.FAILURE

    def test_error_beats_success_wording(self):
        page = page_with("<p>Welcome aboard! If you entered an invalid email, "
                         "contact support.</p>")
        assert judge_submission_response(page) is SubmissionVerdict.FAILURE

    def test_neutral_page_ambiguous_ok(self):
        page = page_with("<p>Thanks for visiting our site today.</p>")
        assert judge_submission_response(page) is SubmissionVerdict.AMBIGUOUS_OK

    def test_check_your_email_hint_is_ok(self):
        page = page_with("<p>Check your email for more information.</p>")
        assert judge_submission_response(page) is SubmissionVerdict.AMBIGUOUS_OK

    def test_represented_password_form_is_failure(self):
        page = page_with('<form><input type="password" name="p"></form>')
        assert judge_submission_response(page) is SubmissionVerdict.FAILURE

    def test_next_stage_form_is_failure(self):
        page = page_with('<form><input name="first_name"><input name="last_name"></form>')
        assert judge_submission_response(page) is SubmissionVerdict.FAILURE


class TestCaptchaSolver:
    def test_perfect_accuracy_always_correct(self):
        solver = CaptchaSolverService(RngTree(2).rng(), image_accuracy=1.0)
        assert solver.solve("tok") == captcha_answer_for("tok")
        assert solver.solves_correct == 1

    def test_zero_accuracy_always_wrong(self):
        solver = CaptchaSolverService(RngTree(3).rng(), image_accuracy=0.0)
        assert solver.solve("tok") != captcha_answer_for("tok")

    def test_empty_token_unsupported(self):
        solver = CaptchaSolverService(RngTree(4).rng())
        assert solver.solve("") is None

    def test_question_accuracy_used(self):
        solver = CaptchaSolverService(RngTree(5).rng(), image_accuracy=1.0,
                                      question_accuracy=0.0)
        assert solver.solve("tok", is_knowledge_question=True) != captcha_answer_for("tok")

    def test_cost_accounting(self):
        solver = CaptchaSolverService(RngTree(6).rng(), cost_per_solve=0.01)
        solver.solve("a"); solver.solve("b")
        assert solver.total_cost == pytest.approx(0.02)

    def test_accuracy_validation(self):
        with pytest.raises(ValueError):
            CaptchaSolverService(RngTree(7).rng(), image_accuracy=1.5)
