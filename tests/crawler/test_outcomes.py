"""Tests for termination codes and crawl-outcome semantics."""

from repro.crawler.outcomes import (
    EXPOSING_CODES,
    CrawlOutcome,
    TerminationCode,
)


def outcome(code, email=False, password=False):
    return CrawlOutcome(site_host="s.test", url="http://s.test/", code=code,
                        exposed_email=email, exposed_password=password)


class TestTerminationCodes:
    def test_submission_codes(self):
        assert TerminationCode.OK_SUBMISSION.attempted_submission
        assert TerminationCode.SUBMISSION_HEURISTICS_FAILED.attempted_submission
        assert not TerminationCode.NO_REGISTRATION_FOUND.attempted_submission
        assert not TerminationCode.NOT_ENGLISH.attempted_submission
        assert not TerminationCode.SYSTEM_ERROR.attempted_submission

    def test_exposing_codes_include_fields_missing(self):
        # Figure 1's horizontal line sits inside the fill loop.
        assert TerminationCode.REQUIRED_FIELDS_MISSING in EXPOSING_CODES
        assert TerminationCode.NO_REGISTRATION_FOUND not in EXPOSING_CODES

    def test_all_codes_have_distinct_values(self):
        values = [code.value for code in TerminationCode]
        assert len(values) == len(set(values)) == 6


class TestCrawlOutcome:
    def test_exposure_requires_either_credential(self):
        assert not outcome(TerminationCode.OK_SUBMISSION).exposed_credentials
        assert outcome(TerminationCode.OK_SUBMISSION, email=True).exposed_credentials
        assert outcome(TerminationCode.OK_SUBMISSION, password=True).exposed_credentials

    def test_attempted_submission_delegates_to_code(self):
        assert outcome(TerminationCode.OK_SUBMISSION).attempted_submission
        assert not outcome(TerminationCode.SYSTEM_ERROR).attempted_submission

    def test_outcome_is_immutable(self):
        import dataclasses

        import pytest

        record = outcome(TerminationCode.OK_SUBMISSION)
        with pytest.raises(dataclasses.FrozenInstanceError):
            record.code = TerminationCode.SYSTEM_ERROR  # type: ignore[misc]
