"""Tests for termination codes and crawl-outcome semantics."""

from repro.crawler.outcomes import (
    EXPOSING_CODES,
    RETRYABLE_CODES,
    CrawlOutcome,
    TerminationCode,
)


def outcome(code, email=False, password=False):
    return CrawlOutcome(site_host="s.test", url="http://s.test/", code=code,
                        exposed_email=email, exposed_password=password)


class TestTerminationCodes:
    def test_submission_codes(self):
        assert TerminationCode.OK_SUBMISSION.attempted_submission
        assert TerminationCode.SUBMISSION_HEURISTICS_FAILED.attempted_submission
        assert not TerminationCode.NO_REGISTRATION_FOUND.attempted_submission
        assert not TerminationCode.NOT_ENGLISH.attempted_submission
        assert not TerminationCode.SYSTEM_ERROR.attempted_submission

    def test_exposing_codes_include_fields_missing(self):
        # Figure 1's horizontal line sits inside the fill loop.
        assert TerminationCode.REQUIRED_FIELDS_MISSING in EXPOSING_CODES
        assert TerminationCode.NO_REGISTRATION_FOUND not in EXPOSING_CODES

    def test_all_codes_have_distinct_values(self):
        values = [code.value for code in TerminationCode]
        assert len(values) == len(set(values)) == 7


class TestRetryability:
    """The transient/permanent split: exactly one code is retryable."""

    EXPECTED = {
        TerminationCode.OK_SUBMISSION: False,          # success is final
        TerminationCode.SUBMISSION_HEURISTICS_FAILED: False,  # site's answer
        TerminationCode.REQUIRED_FIELDS_MISSING: False,  # property of the form
        TerminationCode.NO_REGISTRATION_FOUND: False,  # property of the site
        TerminationCode.SYSTEM_ERROR: True,            # transient infrastructure
        TerminationCode.BUDGET_EXHAUSTED: False,       # budget never comes back
        TerminationCode.NOT_ENGLISH: False,            # language gate
    }

    def test_every_code_has_a_pinned_retryability(self):
        assert set(self.EXPECTED) == set(TerminationCode)

    def test_retryable_per_code(self):
        for code, expected in self.EXPECTED.items():
            assert code.retryable is expected, code

    def test_retryable_codes_set_matches_property(self):
        assert RETRYABLE_CODES == {c for c in TerminationCode if c.retryable}

    def test_budget_exhaustion_still_counts_as_exposing(self):
        # The page budget can run out after the form was filled.
        assert TerminationCode.BUDGET_EXHAUSTED in EXPOSING_CODES


class TestCrawlOutcome:
    def test_exposure_requires_either_credential(self):
        assert not outcome(TerminationCode.OK_SUBMISSION).exposed_credentials
        assert outcome(TerminationCode.OK_SUBMISSION, email=True).exposed_credentials
        assert outcome(TerminationCode.OK_SUBMISSION, password=True).exposed_credentials

    def test_attempted_submission_delegates_to_code(self):
        assert outcome(TerminationCode.OK_SUBMISSION).attempted_submission
        assert not outcome(TerminationCode.SYSTEM_ERROR).attempted_submission

    def test_outcome_is_immutable(self):
        import dataclasses

        import pytest

        record = outcome(TerminationCode.OK_SUBMISSION)
        with pytest.raises(dataclasses.FrozenInstanceError):
            record.code = TerminationCode.SYSTEM_ERROR  # type: ignore[misc]
