"""Tests for the multi-language crawler extension (§7.2)."""

import pytest

from repro.crawler.captcha import CaptchaSolverService
from repro.crawler.engine import CrawlerConfig, RegistrationCrawler
from repro.crawler.fields import FieldMeaning, classify_field
from repro.crawler.langpacks import AVAILABLE_PACKS, packs_for
from repro.crawler.language import detect_language
from repro.crawler.links import LINK_SCORE_THRESHOLD, score_registration_link
from repro.crawler.outcomes import TerminationCode
from repro.html.forms import extract_form_model
from repro.html.parser import parse_html
from repro.identity.generator import IdentityFactory
from repro.identity.passwords import PasswordClass
from repro.net.dns import DnsResolver
from repro.net.transport import Transport
from repro.net.whois import WhoisRegistry
from repro.sim.clock import SimClock
from repro.util.rngtree import RngTree
from repro.web.i18n import lexicon_for
from repro.web.pages import render_homepage, render_registration_page
from repro.web.population import InternetPopulation
from repro.web.spec import BotCheck, LinkPlacement, RegistrationStyle, SiteSpec


class TestPackRegistry:
    def test_available_languages(self):
        assert set(AVAILABLE_PACKS) == {"de", "es", "fr"}

    def test_packs_for_filters_unknown(self):
        packs = packs_for({"de", "zz", "fr"})
        assert [p.language for p in packs] == ["de", "fr"]


class TestDetectLanguage:
    @pytest.mark.parametrize("lang", ["de", "fr", "es", "pt"])
    def test_latin_script_languages(self, lang):
        lexicon = lexicon_for(lang)
        spec = SiteSpec(host="x.test", rank=5, category="News", language=lang,
                        anchor_text=lexicon.sign_up)
        dom = parse_html(render_homepage(spec, lexicon))
        assert detect_language(dom) == lang

    def test_english(self):
        spec = SiteSpec(host="x.test", rank=5, category="News", language="en")
        dom = parse_html(render_homepage(spec, lexicon_for("en")))
        assert detect_language(dom) == "en"

    @pytest.mark.parametrize("lang", ["ru", "zh", "ja"])
    def test_non_latin_scripts(self, lang):
        lexicon = lexicon_for(lang)
        spec = SiteSpec(host="x.test", rank=5, category="News", language=lang,
                        anchor_text=lexicon.sign_up)
        dom = parse_html(render_homepage(spec, lexicon))
        assert detect_language(dom) == lang


class TestPackHeuristics:
    def test_german_fields_classified_with_pack(self):
        spec = SiteSpec(host="de.test", rank=5, category="News", language="de",
                        label_style="for")
        html = render_registration_page(spec, lexicon_for("de"))
        dom = parse_html(html)
        model = extract_form_model(dom, dom.find_first("form"))
        packs = packs_for({"de"})
        meanings = {classify_field(f, packs=packs)[0] for f in model.visible_fields()}
        assert FieldMeaning.EMAIL in meanings
        assert FieldMeaning.PASSWORD in meanings

    def test_german_anchor_scored_with_pack(self):
        packs = packs_for({"de"})
        score = score_registration_link("http://x.test/portal", "Registrieren",
                                        packs=packs)
        assert score >= LINK_SCORE_THRESHOLD

    def test_without_pack_german_anchor_fails(self):
        assert score_registration_link("http://x.test/portal", "Registrieren") \
            < LINK_SCORE_THRESHOLD


class TestEndToEndGermanRegistration:
    def build_world(self, enabled_languages):
        clock = SimClock()
        transport = Transport(clock)
        overrides = {
            "bucket": "non_english",
            "host": "deutsch.test",
            "language": "de",
            "load_fails": False,
            "registration_style": RegistrationStyle.SIMPLE,
            "link_placement": LinkPlacement.PROMINENT,
            "registration_path": "/registrierung",
            "anchor_text": "Registrieren",
            "bot_check": BotCheck.NONE,
            "extra_unlabeled_field": False,
            "requires_special_char": False,
            "shadow_ban_rate": 0.0,
            "max_email_length": None,
            "max_username_length": None,
            "label_style": "for",
        }
        from repro.web.spec import ResponseStyle

        overrides["response_style"] = ResponseStyle.CLEAR
        population = InternetPopulation(
            RngTree(81), clock, transport, WhoisRegistry(), DnsResolver(), size=3,
            overrides={1: overrides},
        )
        site = population.site_at_rank(1)
        crawler = RegistrationCrawler(
            transport,
            CaptchaSolverService(RngTree(82).rng(), image_accuracy=1.0),
            RngTree(83).rng(),
            config=CrawlerConfig(system_error_rate=0.0,
                                 enabled_languages=frozenset(enabled_languages)),
        )
        identity = IdentityFactory(RngTree(84)).create(PasswordClass.HARD)
        return site, crawler, identity

    def test_english_only_crawler_skips_german_site(self):
        _site, crawler, identity = self.build_world(())
        outcome = crawler.register_at("http://deutsch.test/", identity)
        assert outcome.code is TerminationCode.NOT_ENGLISH

    def test_german_pack_registers_successfully(self):
        site, crawler, identity = self.build_world(("de",))
        outcome = crawler.register_at("http://deutsch.test/", identity)
        assert outcome.code is TerminationCode.OK_SUBMISSION
        assert site.accounts.lookup(identity.email_address) is not None

    def test_pack_for_wrong_language_does_not_help(self):
        _site, crawler, identity = self.build_world(("fr",))
        outcome = crawler.register_at("http://deutsch.test/", identity)
        assert outcome.code is TerminationCode.NOT_ENGLISH
