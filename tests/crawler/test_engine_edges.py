"""Edge-case tests for the crawler engine."""

import pytest

from repro.crawler.captcha import CaptchaSolverService
from repro.crawler.engine import CrawlerConfig, RegistrationCrawler
from repro.crawler.outcomes import TerminationCode
from repro.identity.generator import IdentityFactory
from repro.identity.passwords import PasswordClass
from repro.net.dns import DnsResolver
from repro.net.proxies import ResearchProxyPool
from repro.net.transport import HttpResponse, Transport
from repro.net.whois import WhoisRegistry
from repro.sim.clock import SimClock
from repro.util.rngtree import RngTree
from repro.web.population import InternetPopulation


@pytest.fixture
def simple_world():
    clock = SimClock()
    transport = Transport(clock)
    population = InternetPopulation(
        RngTree(301), clock, transport, WhoisRegistry(), DnsResolver(), size=3,
        overrides={1: {"bucket": "rest", "host": "edge.test", "language": "en",
                       "load_fails": False}},
    )
    population.site_at_rank(1)
    return clock, transport, population


def make_crawler(transport, pool=None, **config_kwargs):
    config_kwargs.setdefault("system_error_rate", 0.0)
    return RegistrationCrawler(
        transport, CaptchaSolverService(RngTree(302).rng()),
        RngTree(303).rng(), config=CrawlerConfig(**config_kwargs),
        proxy_pool=pool,
    )


class TestEngineEdges:
    def test_proxy_exhaustion_is_budget_exhausted(self, simple_world, whois):
        _clock, transport, _population = simple_world
        pool = ResearchProxyPool(whois, RngTree(304).rng(), pool_size=1)
        crawler = make_crawler(transport, pool=pool)
        factory = IdentityFactory(RngTree(305))
        first = crawler.register_at("http://edge.test/",
                                    factory.create(PasswordClass.HARD))
        assert first.code is not None  # consumed the only proxy IP
        second = crawler.register_at("http://edge.test/",
                                     factory.create(PasswordClass.HARD))
        assert second.code is TerminationCode.BUDGET_EXHAUSTED
        assert "proxy" in second.detail

    def test_page_budget_exhaustion(self, simple_world):
        _clock, transport, _population = simple_world
        crawler = make_crawler(transport, max_pages=1)
        outcome = crawler.register_at("http://edge.test/",
                                      IdentityFactory(RngTree(306)).create(PasswordClass.HARD))
        # One page is only ever enough when the homepage itself carries
        # the form; this spec uses a separate registration page.
        assert outcome.pages_loaded <= 1
        assert outcome.code in (TerminationCode.NO_REGISTRATION_FOUND,
                                TerminationCode.BUDGET_EXHAUSTED)

    def test_404_homepage_is_system_error(self, transport):
        transport.register_host("broken.test", lambda r: HttpResponse(500, "boom"))
        crawler = make_crawler(transport)
        outcome = crawler.register_at("http://broken.test/",
                                      IdentityFactory(RngTree(307)).create(PasswordClass.HARD))
        assert outcome.code is TerminationCode.SYSTEM_ERROR

    def test_outcome_timestamps_ordered(self, simple_world):
        _clock, transport, _population = simple_world
        crawler = make_crawler(transport)
        outcome = crawler.register_at("http://edge.test/",
                                      IdentityFactory(RngTree(308)).create(PasswordClass.HARD))
        assert outcome.finished_at >= outcome.started_at

    def test_filled_fields_recorded_on_submission(self, simple_world):
        _clock, transport, _population = simple_world
        crawler = make_crawler(transport)
        outcome = crawler.register_at("http://edge.test/",
                                      IdentityFactory(RngTree(309)).create(PasswordClass.HARD))
        if outcome.attempted_submission:
            assert outcome.filled_fields  # the serialized field names
