"""Tests for the crawler engine against real generated sites."""


from repro.crawler.captcha import CaptchaSolverService
from repro.crawler.engine import CrawlerConfig, RegistrationCrawler
from repro.crawler.outcomes import TerminationCode
from repro.identity.generator import IdentityFactory
from repro.identity.passwords import PasswordClass
from repro.net.dns import DnsResolver
from repro.net.transport import Transport
from repro.net.whois import WhoisRegistry
from repro.sim.clock import SimClock
from repro.util.rngtree import RngTree
from repro.web.population import InternetPopulation
from repro.web.spec import BotCheck, EmailBehavior, LinkPlacement, RegistrationStyle


def build_world(overrides, seed=77):
    """One-site world with fully pinned characteristics."""
    base = {
        "bucket": "rest",
        "host": "target.test",
        "language": "en",
        "load_fails": False,
        "registration_style": RegistrationStyle.SIMPLE,
        "link_placement": LinkPlacement.PROMINENT,
        "registration_path": "/signup",
        "anchor_text": "Sign up",
        "bot_check": BotCheck.NONE,
        "email_behavior": EmailBehavior.NOTHING,
        "wants_username": True,
        "wants_confirm_password": False,
        "wants_terms_checkbox": False,
        "wants_name": False,
        "wants_phone": False,
        "extra_unlabeled_field": False,
        "extra_field_required": False,
        "requires_special_char": False,
        "max_email_length": None,
        "max_username_length": None,
        "shadow_ban_rate": 0.0,
        "supports_https": False,
        "label_style": "for",
    }
    base.update(overrides)
    clock = SimClock()
    transport = Transport(clock)
    population = InternetPopulation(
        RngTree(seed), clock, transport, WhoisRegistry(), DnsResolver(),
        size=3, overrides={1: base},
    )
    site = population.site_at_rank(1)
    crawler = RegistrationCrawler(
        transport,
        CaptchaSolverService(RngTree(seed).child("solver").rng(), image_accuracy=1.0),
        RngTree(seed).child("crawler").rng(),
        config=CrawlerConfig(system_error_rate=0.0),
    )
    identity = IdentityFactory(RngTree(seed)).create(PasswordClass.HARD)
    return site, crawler, identity, clock


class TestHappyPath:
    def test_simple_registration_succeeds(self):
        site, crawler, identity, _clock = build_world({})
        outcome = crawler.register_at("http://target.test/", identity)
        assert outcome.code is TerminationCode.OK_SUBMISSION
        assert outcome.exposed_credentials
        assert site.accounts.lookup(identity.email_address) is not None

    def test_account_password_matches_identity(self):
        site, crawler, identity, _clock = build_world({})
        crawler.register_at("http://target.test/", identity)
        assert site.check_credentials(identity.email_address, identity.password)

    def test_footer_link_found(self):
        site, crawler, identity, _clock = build_world(
            {"link_placement": LinkPlacement.FOOTER})
        outcome = crawler.register_at("http://target.test/", identity)
        assert outcome.code is TerminationCode.OK_SUBMISSION

    def test_captcha_site_with_perfect_solver(self):
        site, crawler, identity, _clock = build_world(
            {"bot_check": BotCheck.CAPTCHA_IMAGE})
        outcome = crawler.register_at("http://target.test/", identity)
        assert outcome.code is TerminationCode.OK_SUBMISSION
        assert len(site.accounts) == 1

    def test_https_preferred_when_available(self):
        site, crawler, identity, _clock = build_world({"supports_https": True})
        outcome = crawler.register_at("http://target.test/", identity)
        assert outcome.code is TerminationCode.OK_SUBMISSION


class TestFailureModes:
    def test_image_only_link_not_found(self):
        _site, crawler, identity, _clock = build_world(
            {"link_placement": LinkPlacement.IMAGE_ONLY,
             "registration_path": "/members"})
        outcome = crawler.register_at("http://target.test/", identity)
        assert outcome.code is TerminationCode.NO_REGISTRATION_FOUND
        assert not outcome.exposed_credentials

    def test_unusual_anchor_not_found(self):
        _site, crawler, identity, _clock = build_world(
            {"anchor_text": "Become a member", "registration_path": "/members"})
        outcome = crawler.register_at("http://target.test/", identity)
        assert outcome.code is TerminationCode.NO_REGISTRATION_FOUND

    def test_non_english_site_gated(self):
        _site, crawler, identity, _clock = build_world(
            {"bucket": "non_english", "language": "de", "anchor_text": "Registrieren"})
        outcome = crawler.register_at("http://target.test/", identity)
        assert outcome.code is TerminationCode.NOT_ENGLISH

    def test_external_only_no_form(self):
        _site, crawler, identity, _clock = build_world(
            {"registration_style": RegistrationStyle.EXTERNAL_ONLY,
             "bucket": "no_registration"})
        outcome = crawler.register_at("http://target.test/", identity)
        assert outcome.code is TerminationCode.NO_REGISTRATION_FOUND

    def test_load_failure_is_system_error(self):
        _site, crawler, identity, _clock = build_world(
            {"load_fails": True, "bucket": "load_failure"})
        outcome = crawler.register_at("http://target.test/", identity)
        assert outcome.code is TerminationCode.SYSTEM_ERROR

    def test_payment_site_aborts_after_exposure(self):
        site, crawler, identity, _clock = build_world(
            {"registration_style": RegistrationStyle.PAYMENT_REQUIRED,
             "bucket": "ineligible"})
        outcome = crawler.register_at("http://target.test/", identity)
        assert outcome.code is TerminationCode.REQUIRED_FIELDS_MISSING
        assert outcome.exposed_credentials  # email/password typed before card
        assert len(site.accounts) == 0

    def test_required_opaque_field_aborts(self):
        _site, crawler, identity, _clock = build_world(
            {"extra_unlabeled_field": True, "extra_field_required": True})
        outcome = crawler.register_at("http://target.test/", identity)
        assert outcome.code is TerminationCode.REQUIRED_FIELDS_MISSING
        assert outcome.exposed_credentials

    def test_optional_opaque_field_silent_rejection(self):
        site, crawler, identity, _clock = build_world(
            {"extra_unlabeled_field": True, "extra_field_required": False})
        outcome = crawler.register_at("http://target.test/", identity)
        # The crawler submits without the field; the server rejects.
        assert outcome.attempted_submission
        assert len(site.accounts) == 0

    def test_multistage_email_first_unsupported(self):
        _site, crawler, identity, _clock = build_world(
            {"registration_style": RegistrationStyle.MULTISTAGE,
             "multistage_credentials_first": False})
        outcome = crawler.register_at("http://target.test/", identity)
        assert outcome.code in (TerminationCode.NO_REGISTRATION_FOUND,
                                TerminationCode.REQUIRED_FIELDS_MISSING)

    def test_multistage_credentials_first_exposes_then_fails(self):
        site, crawler, identity, _clock = build_world(
            {"registration_style": RegistrationStyle.MULTISTAGE,
             "multistage_credentials_first": True,
             "multistage_creates_at_step1": True})
        outcome = crawler.register_at("http://target.test/", identity)
        assert outcome.code is TerminationCode.SUBMISSION_HEURISTICS_FAILED
        assert outcome.exposed_credentials
        # ...yet the account actually exists: the 7%-valid bucket.
        assert site.accounts.lookup(identity.email_address) is not None

    def test_interactive_captcha_rejected_at_submit(self):
        site, crawler, identity, _clock = build_world(
            {"bot_check": BotCheck.INTERACTIVE})
        outcome = crawler.register_at("http://target.test/", identity)
        assert outcome.attempted_submission
        assert len(site.accounts) == 0

    def test_forced_system_error(self):
        _site, crawler, identity, _clock = build_world({})
        crawler.config.system_error_rate = 1.0
        outcome = crawler.register_at("http://target.test/", identity)
        assert outcome.code is TerminationCode.SYSTEM_ERROR


class TestEthicsConstraints:
    def test_rate_limit_between_page_loads(self):
        _site, crawler, identity, clock = build_world({})
        start = clock.now()
        outcome = crawler.register_at("http://target.test/", identity)
        elapsed = clock.now() - start
        # At least min_page_delay per page load.
        assert elapsed >= outcome.pages_loaded * crawler.config.min_page_delay

    def test_page_budget_bounded(self):
        _site, crawler, identity, _clock = build_world({})
        outcome = crawler.register_at("http://target.test/", identity)
        assert outcome.pages_loaded <= crawler.config.max_pages
