"""Tests for the field-identification heuristics."""

import pytest

from repro.crawler.fields import FieldMeaning, classify_field
from repro.html.forms import extract_form_model
from repro.html.parser import parse_html


def field_from(html: str):
    dom = parse_html(f"<form>{html}</form>")
    model = extract_form_model(dom, dom.find_first("form"))
    return model.fields[0]


def classify(html: str) -> FieldMeaning:
    meaning, _score = classify_field(field_from(html))
    return meaning


class TestEnglishFields:
    @pytest.mark.parametrize("html,expected", [
        ('<input name="email">', FieldMeaning.EMAIL),
        ('<input type="email" name="u1">', FieldMeaning.EMAIL),
        ('<input name="x" placeholder="Your e-mail address">', FieldMeaning.EMAIL),
        ('<input type="password" name="p">', FieldMeaning.PASSWORD),
        ('<input name="passwd">', FieldMeaning.PASSWORD),
        ('<input type="password" name="p2" placeholder="Confirm password">',
         FieldMeaning.PASSWORD_CONFIRM),
        ('<input name="confirm_email">', FieldMeaning.EMAIL_CONFIRM),
        ('<input name="username">', FieldMeaning.USERNAME),
        ('<input name="screen_name">', FieldMeaning.USERNAME),
        ('<input name="first_name">', FieldMeaning.FIRST_NAME),
        ('<input name="fname">', FieldMeaning.FIRST_NAME),
        ('<input name="surname">', FieldMeaning.LAST_NAME),
        ('<input name="full_name">', FieldMeaning.FULL_NAME),
        ('<input type="tel" name="x9">', FieldMeaning.PHONE),
        ('<input name="mobile">', FieldMeaning.PHONE),
        ('<input name="zip">', FieldMeaning.ZIP),
        ('<input name="city">', FieldMeaning.CITY),
        ('<input name="dob">', FieldMeaning.BIRTHDATE),
        ('<input name="company">', FieldMeaning.EMPLOYER),
        ('<input name="gender">', FieldMeaning.GENDER),
        ('<input name="card_number">', FieldMeaning.CARD_NUMBER),
        ('<input name="cvv">', FieldMeaning.CARD_CVV),
    ])
    def test_classification(self, html, expected):
        assert classify(html) is expected

    def test_label_text_drives_classification(self):
        dom = parse_html(
            '<form><label for="f">Email address</label><input id="f" name="q7"></form>'
        )
        model = extract_form_model(dom, dom.find_first("form"))
        meaning, _ = classify_field(model.fields[0])
        assert meaning is FieldMeaning.EMAIL

    def test_captcha_by_prompt(self):
        assert classify(
            '<input name="q" placeholder="Enter the characters shown in the image">'
        ) is FieldMeaning.CAPTCHA

    def test_captcha_by_challenge_token(self):
        assert classify('<input name="z" data-challenge="ch-1" '
                        'placeholder="security code">') is FieldMeaning.CAPTCHA

    def test_knowledge_question(self):
        assert classify(
            '<input name="k" placeholder="What do you get when you add three and four?">'
        ) is FieldMeaning.CAPTCHA

    def test_terms_checkbox(self):
        dom = parse_html(
            '<form><label><input type="checkbox" name="tos"> I agree to the terms'
            "</label></form>"
        )
        model = extract_form_model(dom, dom.find_first("form"))
        meaning, _ = classify_field(model.fields[0])
        assert meaning is FieldMeaning.TERMS


class TestFailureModes:
    def test_opaque_name_unknown(self):
        assert classify('<input name="x_fld_71">') is FieldMeaning.UNKNOWN

    def test_non_english_names_unknown(self):
        # German field names defeat the English-only heuristics (§4.3.1).
        for html in ('<input name="passwort">', '<input name="benutzername">',
                     '<input name="vorname">'):
            assert classify(html) is FieldMeaning.UNKNOWN

    def test_non_english_labels_unknown(self):
        dom = parse_html(
            '<form><label for="f">E-Mail-Adresse bestätigen Sie</label>'
            '<input id="f" name="q"></form>'
        )
        model = extract_form_model(dom, dom.find_first("form"))
        meaning, _ = classify_field(model.fields[0])
        # "E-Mail" still matches the email regex — descriptive labels in
        # Latin-script languages can coincide; the *names* do not.
        assert meaning in (FieldMeaning.EMAIL, FieldMeaning.UNKNOWN)

    def test_confirm_beats_plain_password(self):
        meaning = classify('<input type="password" name="password_confirm">')
        assert meaning is FieldMeaning.PASSWORD_CONFIRM

    def test_score_threshold(self):
        _meaning, score = classify_field(field_from('<input name="email">'))
        assert score >= 2.0
