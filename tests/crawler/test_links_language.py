"""Tests for link heuristics and the language gate."""

from repro.crawler.language import english_word_fraction, looks_english
from repro.crawler.links import (
    LINK_SCORE_THRESHOLD,
    rank_registration_links,
    score_registration_link,
)
from repro.html.parser import parse_html
from repro.web.i18n import LEXICONS, lexicon_for
from repro.web.pages import render_homepage
from repro.web.spec import SiteSpec


class TestLinkScoring:
    def test_signup_text_scores_high(self):
        assert score_registration_link("http://x.test/signup", "Sign up") >= 5

    def test_login_text_penalized(self):
        assert score_registration_link("http://x.test/login", "Log in") < 0

    def test_href_alone_can_qualify(self):
        assert score_registration_link("http://x.test/register", "") >= LINK_SCORE_THRESHOLD

    def test_unusual_anchor_with_neutral_path_fails(self):
        # The §6.2.2 miss: nothing matches "Become a member" at /members.
        assert score_registration_link("http://x.test/members", "Become a member") \
            < LINK_SCORE_THRESHOLD

    def test_ranking_sorted_and_thresholded(self):
        candidates = rank_registration_links([
            ("http://x.test/signup", "Sign up"),
            ("http://x.test/about", "About us"),
            ("http://x.test/join", "Join now"),
        ])
        urls = [c.url for c in candidates]
        assert "http://x.test/about" not in urls
        assert urls[0] == "http://x.test/signup"

    def test_duplicate_urls_keep_best_score(self):
        candidates = rank_registration_links([
            ("http://x.test/signup", ""),
            ("http://x.test/signup", "Sign up"),
        ])
        assert len(candidates) == 1
        assert candidates[0].text == "Sign up"

    def test_non_english_anchor_fails(self):
        for lang in ("de", "fr", "ru", "zh"):
            anchor = lexicon_for(lang).sign_up
            assert score_registration_link("http://x.test/portal", anchor) \
                < LINK_SCORE_THRESHOLD, lang


def homepage_dom(language: str):
    lexicon = lexicon_for(language)
    spec = SiteSpec(host="l.test", rank=10, category="News", language=language,
                    anchor_text=lexicon.sign_up)
    return parse_html(render_homepage(spec, lexicon))


class TestLanguageGate:
    def test_english_site_passes(self):
        assert looks_english(homepage_dom("en"))

    def test_all_non_english_sites_fail(self):
        for lang in LEXICONS:
            if lang == "en":
                continue
            assert not looks_english(homepage_dom(lang)), lang

    def test_fraction_zero_for_empty(self):
        assert english_word_fraction("") == 0.0

    def test_fraction_high_for_english(self):
        assert english_word_fraction("this is the news about your account and more") > 0.3

    def test_lang_attr_hint_for_sparse_pages(self):
        assert looks_english(parse_html('<html lang="en"><body>xq</body></html>'))

    def test_non_latin_scripts_rejected(self):
        body = "这是一个中文网站 " * 10
        assert not looks_english(parse_html(f"<html><body>{body}</body></html>"))
