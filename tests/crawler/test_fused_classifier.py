"""The fused field classifier must be bit-identical to the reference.

:func:`repro.crawler.fields.classify_field` replaces the original
four-deep (table x meaning x pattern x text) loop with per-meaning
alternation prefilters plus an LRU cache; these tests pin it to
:func:`repro.crawler.fields.classify_field_reference` — the retained
naive implementation — over a golden corpus of rendered registration
pages and over hypothesis-generated descriptor soup, including exact
float scores and first-wins tie-breaking.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crawler.fields import (
    FieldMeaning,
    classify_field,
    classify_field_reference,
)
from repro.crawler.langpacks import packs_for
from repro.html.dom import Element
from repro.html.forms import FormField, extract_form_model
from repro.html.parser import parse_html
from repro.perf import caching as _perf
from repro.web.i18n import LEXICONS
from repro.web.pages import render_registration_page
from repro.web.spec import BotCheck, SiteSpec

ALL_PACKS = packs_for({"de", "es", "fr"})


def make_field(
    texts: list[str], input_type: str = "text", challenge: bool = False
) -> FormField:
    """A FormField whose descriptor texts are exactly ``texts``."""
    slots = (list(texts) + ["", "", "", "", ""])[:5]
    element = Element("input", {"data-challenge": "tok-1"} if challenge else None)
    return FormField(
        element=element,
        control="input",
        input_type=input_type,
        name=slots[0],
        field_id=slots[1],
        placeholder=slots[2],
        label_text=slots[3],
        nearby_text=slots[4],
        required=False,
        maxlength=None,
    )


def golden_corpus() -> list[FormField]:
    """Fields from fully-loaded registration pages in every language."""
    fields = []
    for lang in ("en", "de", "es", "fr"):
        for style in ("for", "wrap", "placeholder", "adjacent"):
            spec = SiteSpec(
                host=f"{lang}-{style}.golden.test",
                rank=3,
                category="News",
                language=lang,
                label_style=style,
                wants_name=True,
                wants_phone=True,
                wants_confirm_password=True,
                wants_terms_checkbox=True,
                bot_check=BotCheck.CAPTCHA_IMAGE,
            )
            dom = parse_html(
                render_registration_page(spec, LEXICONS[lang], captcha_token="ch-g-1")
            )
            model = extract_form_model(dom, dom.find_first("form"))
            fields.extend(model.fields)
    return fields


class TestGoldenCorpus:
    @pytest.mark.parametrize("packs", [(), ALL_PACKS, packs_for({"de"})],
                             ids=["no-packs", "all-packs", "de-only"])
    def test_fused_equals_reference_on_rendered_pages(self, packs):
        corpus = golden_corpus()
        assert len(corpus) > 100  # the corpus must actually exercise things
        for item in corpus:
            assert classify_field(item, packs=packs) == \
                classify_field_reference(item, packs=packs)

    def test_equivalence_holds_with_perf_disabled(self):
        corpus = golden_corpus()
        _perf.set_enabled(False)
        try:
            for item in corpus:
                assert classify_field(item, packs=ALL_PACKS) == \
                    classify_field_reference(item, packs=ALL_PACKS)
        finally:
            _perf.set_enabled(True)


class TestTieBreaking:
    def test_first_listed_meaning_wins_exact_tie(self):
        # "city" and "state" rows both score 4.0/3.5 on their own; build
        # one field where two meanings reach the same total and check the
        # fused path keeps the reference's first-wins choice.
        item = make_field(["city", "gender"])  # both rows weigh 4.0
        expected = classify_field_reference(item)
        assert expected[0] is FieldMeaning.CITY  # CITY precedes GENDER
        assert classify_field(item) == expected

    def test_scores_are_float_identical(self):
        item = make_field(["email address", "e-mail", "your e mail"],
                          input_type="email")
        _meaning, fused_score = classify_field(item)
        _meaning, naive_score = classify_field_reference(item)
        assert fused_score == naive_score  # exact, not approx


#: Vocabulary skewed toward the heuristic tables (all languages) plus
#: noise, so generated texts regularly hit patterns, overlap meanings
#: and produce ties.
_WORDS = st.sampled_from([
    "email", "e-mail", "e mail", "confirm", "verify", "repeat", "again",
    "password", "pass word", "passwd", "pwd", "choose", "user name",
    "login", "nickname", "handle", "first name", "last name", "surname",
    "full name", "name", "phone", "mobile", "tel", "zip", "postal code",
    "city", "town", "state", "address", "street", "birth", "dob", "age",
    "employer", "gender", "sex", "captcha", "security code", "human",
    "terms", "agree", "privacy policy", "credit card", "cvv",
    "benutzername", "passwort", "kennwort", "wiederholen", "vorname",
    "nachname", "telefon", "correo", "contrasena", "usuario", "nombre",
    "apellido", "courriel", "mot de passe", "utilisateur", "prenom",
    "nom", "telephone", "xyzzy", "q", "2",
])
_TEXT = st.lists(_WORDS, min_size=0, max_size=4).map(" ".join)


class TestHypothesisEquivalence:
    @settings(max_examples=300, deadline=None)
    @given(
        texts=st.lists(_TEXT, min_size=0, max_size=5),
        input_type=st.sampled_from(["text", "email", "password", "tel",
                                    "checkbox", "hidden"]),
        challenge=st.booleans(),
        languages=st.sets(st.sampled_from(["de", "es", "fr"])),
    )
    def test_fused_equals_reference(self, texts, input_type, challenge, languages):
        item = make_field(texts, input_type=input_type, challenge=challenge)
        packs = packs_for(languages)
        assert classify_field(item, packs=packs) == \
            classify_field_reference(item, packs=packs)
