"""Benign traffic: deterministic windows, bounded batches, the
backpressure queue and population registration."""

import pytest

from repro.email_provider.provider import EmailProvider
from repro.sim.clock import SimClock
from repro.traffic import (
    BackpressureQueue,
    BenignPopulation,
    TrafficGenerator,
    TrafficProfile,
)
from repro.traffic.population import benign_home_ip, benign_local, benign_password
from repro.util.rngtree import RngTree
from repro.util.timeutil import HOUR

START = 1_400_000_000
USERS = 500


def make_generator(registered=False, **profile_kwargs):
    profile = TrafficProfile(users=USERS, logins_per_user_day=4.0, **profile_kwargs)
    population = BenignPopulation(USERS)
    if registered:
        provider = EmailProvider("t.example", SimClock(START), RngTree(7))
        population.register_with(provider)
    return TrafficGenerator(profile, population, RngTree(7)), population


class TestDeterminism:
    def test_same_window_index_reproduces_identical_events(self):
        gen_a, _ = make_generator()
        gen_b, _ = make_generator()
        wa = gen_a.window(3, START + 4 * 6 * HOUR)
        wb = gen_b.window(3, START + 4 * 6 * HOUR)
        assert wa.login_count == wb.login_count
        for ba, bb in zip(wa.batches, wb.batches):
            assert ba.keys == bb.keys
            assert ba.passwords == bb.passwords
            assert ba.ips == bb.ips
            assert ba.methods == bb.methods

    def test_windows_independent_of_generation_order(self):
        gen_a, _ = make_generator()
        gen_b, _ = make_generator()
        forward = [gen_a.window(k, START + k * HOUR) for k in range(4)]
        backward = [gen_b.window(k, START + k * HOUR) for k in reversed(range(4))]
        backward.reverse()
        for wf, wb in zip(forward, backward):
            assert [b.keys for b in wf.batches] == [b.keys for b in wb.batches]
            assert [b.ips for b in wf.batches] == [b.ips for b in wb.batches]

    def test_mostly_home_ips(self):
        gen, _ = make_generator()
        window = gen.window(0, START)
        home = sum(
            1
            for batch in window.batches
            for key, ip in zip(batch.keys, batch.ips)
            if ip == benign_home_ip(int(key[2:]))
        )
        assert home / window.login_count > 0.85


class TestBatchSplitting:
    def test_windows_split_into_bounded_batches(self):
        gen, _ = make_generator(batch_events=64)
        window = gen.window(0, START)
        assert len(window.batches) > 1
        assert all(len(b) <= 64 for b in window.batches)
        assert sum(len(b) for b in window.batches) == window.login_count
        for batch in window.batches:
            assert len(batch.keys) == len(batch.passwords)
            assert len(batch.keys) == len(batch.ips) == len(batch.methods)

    def test_splitting_preserves_event_order(self):
        gen_whole, _ = make_generator()
        gen_split, _ = make_generator(batch_events=32)
        whole = gen_whole.window(1, START)
        split = gen_split.window(1, START)
        flat_keys = [k for b in split.batches for k in b.keys]
        flat_ips = [ip for b in split.batches for ip in b.ips]
        assert flat_keys == [k for b in whole.batches for k in b.keys]
        assert flat_ips == [ip for b in whole.batches for ip in b.ips]


class TestProducerRows:
    def test_rows_absent_before_registration(self):
        gen, _ = make_generator(registered=False)
        window = gen.window(0, START)
        assert all(batch.rows is None for batch in window.batches)

    def test_rows_resolve_keys_after_registration(self):
        gen, population = make_generator(registered=True, batch_events=64)
        window = gen.window(0, START)
        first_row = population.first_row
        assert first_row is not None
        for batch in window.batches:
            assert batch.rows is not None
            assert len(batch.rows) == len(batch.keys)
            for key, row in zip(batch.keys, batch.rows):
                assert row == first_row + int(key[2:])


class TestPopulation:
    def test_registration_returns_first_row_and_counts(self):
        provider = EmailProvider("t.example", SimClock(START), RngTree(9))
        provider.provision("honey.user.00", "H", "HoneyPw!99")
        population = BenignPopulation(50)
        first_row = population.register_with(provider)
        assert first_row == 1
        assert population.first_row == 1
        assert provider.total_account_count() == 51
        # Benign rows authenticate with their derived credentials.
        from repro.email_provider.provider import LoginResult
        from repro.email_provider.telemetry import LoginMethod
        from repro.net.ipaddr import IPv4Address

        assert (
            provider.attempt_login(
                benign_local(7),
                benign_password(7),
                IPv4Address(benign_home_ip(7)),
                LoginMethod.IMAP,
            )
            is LoginResult.SUCCESS
        )

    def test_population_size_must_match_profile(self):
        profile = TrafficProfile(users=10)
        with pytest.raises(ValueError):
            TrafficGenerator(profile, BenignPopulation(11), RngTree(1))


class TestBackpressureQueue:
    def test_offer_refuses_when_full(self):
        queue = BackpressureQueue(max_depth=2)
        assert queue.offer("a") and queue.offer("b")
        assert not queue.offer("c")
        assert queue.refused == 1
        assert queue.take() == "a"  # FIFO
        assert queue.offer("c")

    def test_pump_consumes_everything_in_order(self):
        queue = BackpressureQueue(max_depth=3)
        seen = []
        consumed = queue.pump(iter(range(20)), seen.append)
        assert consumed == 20
        assert seen == list(range(20))
        assert queue.peak_depth <= 3
        assert len(queue) == 0

    def test_pump_records_backpressure(self):
        queue = BackpressureQueue(max_depth=1)
        queue.pump(iter(range(5)), lambda item: None)
        assert queue.refused > 0
        assert queue.taken == 5

    def test_depth_must_be_positive(self):
        with pytest.raises(ValueError):
            BackpressureQueue(max_depth=0)
