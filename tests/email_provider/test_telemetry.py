"""Tests for login telemetry and the retention gap."""

import pytest

from repro.email_provider.telemetry import LoginEvent, LoginMethod, LoginTelemetry
from repro.net.ipaddr import IPv4Address
from repro.util.timeutil import DAY


def event(local, day):
    return LoginEvent(local, day * DAY, IPv4Address(1000 + day), LoginMethod.IMAP)


class TestDumps:
    def test_dump_includes_new_events_once(self):
        telemetry = LoginTelemetry(retention_days=60)
        telemetry.record(event("a", 10))
        first = telemetry.collect_dump(now=20 * DAY)
        assert [e.local_part for e in first] == ["a"]
        assert telemetry.collect_dump(now=21 * DAY) == []

    def test_events_must_be_ordered(self):
        telemetry = LoginTelemetry()
        telemetry.record(event("a", 10))
        with pytest.raises(ValueError):
            telemetry.record(event("b", 5))

    def test_retention_gap_loses_events(self):
        telemetry = LoginTelemetry(retention_days=60)
        telemetry.record(event("early", 10))
        telemetry.collect_dump(now=15 * DAY)
        # An event at day 30, next dump at day 120: the event expired
        # at day 60 of retention (120-60=60 > 30) before collection.
        telemetry.record(event("lost", 30))
        telemetry.record(event("kept", 100))
        dump = telemetry.collect_dump(now=120 * DAY)
        assert [e.local_part for e in dump] == ["kept"]
        assert telemetry.lost_windows() == [(15 * DAY, 60 * DAY)]

    def test_no_gap_when_dumps_frequent(self):
        telemetry = LoginTelemetry(retention_days=60)
        telemetry.record(event("a", 10))
        telemetry.collect_dump(now=30 * DAY)
        telemetry.record(event("b", 40))
        telemetry.collect_dump(now=70 * DAY)
        assert telemetry.lost_windows() == []

    def test_no_gap_recorded_without_lost_events(self):
        telemetry = LoginTelemetry(retention_days=30)
        telemetry.collect_dump(now=100 * DAY)
        telemetry.collect_dump(now=400 * DAY)
        assert telemetry.lost_windows() == []

    def test_retention_validation(self):
        with pytest.raises(ValueError):
            LoginTelemetry(retention_days=0)


class TestAnonymization:
    def test_anonymized_granularity(self):
        raw = LoginEvent("acct", 5 * DAY + 12345, IPv4Address.parse("25.3.7.99"),
                         LoginMethod.POP3)
        local, day, slash24, method = raw.anonymized()
        assert local == "acct"
        assert day == 5 * DAY  # rounded to the day
        assert slash24 == "25.3.7.0/24"  # /24, not the full address
        assert method == "POP3"
