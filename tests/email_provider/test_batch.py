"""Batch login engine: decision-for-decision equivalence with the
scalar path, across the vectorized, serial-fallback and no-numpy
configurations."""

import pytest

from repro.email_provider import batch as batch_mod
from repro.email_provider.batch import LoginBatch
from repro.email_provider.provider import (
    EmailProvider,
    LoginResult,
    RESULT_CODES,
)
from repro.email_provider.telemetry import LoginMethod
from repro.net.ipaddr import IPv4Address
from repro.sim.clock import SimClock
from repro.util.rngtree import RngTree

try:
    from hypothesis import given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    HAVE_HYPOTHESIS = False

START = 1_000_000
SEED = 11


def make_provider():
    provider = EmailProvider("batch.example", SimClock(START), RngTree(SEED))
    for i in range(6):
        assert provider.provision(
            f"monitored.{i}", f"Mon {i}", f"MonPw!{i:04d}"
        ).created
    locals_lower = [f"bg{i:08d}" for i in range(40)]
    passwords = [f"bg-pw-{i:08d}" for i in range(40)]
    provider.register_benign_accounts(locals_lower, passwords)
    return provider


def world_state(provider):
    """Everything the equivalence contract compares."""
    return {
        "telemetry": provider.telemetry.columns(),
        "states": bytes(provider._table.states),
        "throttle": dict(provider._throttle),
        "windows": provider.login_window_snapshot(),
        "first_ips": bytes(provider._ip_first),
        "distinct": bytes(provider._ip_distinct),
    }


def attempts_from(spec):
    """Turn (key, password, ip_int, method_idx) tuples into attempts."""
    methods = tuple(LoginMethod)
    return [
        (key, password, IPv4Address(ip), methods[m % len(methods)])
        for key, password, ip, m in spec
    ]


def run_scalar(provider, attempts):
    return [
        RESULT_CODES[provider.attempt_login(*attempt)] for attempt in attempts
    ]


def run_batched(provider, attempts):
    receipt = provider.attempt_logins(LoginBatch.from_attempts(attempts))
    return list(receipt.results)


MIXED_SPEC = (
    # clean successes on distinct rows
    [(f"bg{i:08d}", f"bg-pw-{i:08d}", 0x30000000 + i, i) for i in range(25)]
    # monitored successes
    + [(f"monitored.{i}", f"MonPw!{i:04d}", 0x40000000 + i, i) for i in range(6)]
    # failures, repeats on one row, an unknown account
    + [
        ("bg00000003", "wrong-guess", 0x50000001, 0),
        ("bg00000003", "bg-pw-00000003", 0x50000002, 1),
        ("ghost.user", "whatever", 0x50000003, 2),
        ("bg00000025", "bg-pw-00000025", 0x50000004, 3),
    ]
)


class TestEquivalence:
    def test_batched_matches_scalar_on_mixed_batch(self):
        attempts = attempts_from(MIXED_SPEC)
        scalar = make_provider()
        scalar_codes = run_scalar(scalar, attempts)
        batched = make_provider()
        batched_codes = run_batched(batched, attempts)
        assert batched_codes == scalar_codes
        assert world_state(batched) == world_state(scalar)

    def test_vectorized_matches_no_numpy_fallback(self, monkeypatch):
        attempts = attempts_from(MIXED_SPEC)
        vec = make_provider()
        # The unknown account forces the serial path regardless, so
        # drop it to genuinely exercise the vectorized commit here.
        vec_codes = run_batched(vec, attempts[:-4])
        monkeypatch.setattr(batch_mod, "np", None)
        fallback = make_provider()
        fallback_codes = run_batched(fallback, attempts[:-4])
        assert vec_codes == fallback_codes
        assert world_state(vec) == world_state(fallback)

    def test_unknown_account_takes_serial_path_with_correct_codes(self):
        attempts = attempts_from(MIXED_SPEC)
        receipt = make_provider().attempt_logins(LoginBatch.from_attempts(attempts))
        assert receipt.result(len(attempts) - 2) is LoginResult.NO_SUCH_ACCOUNT
        tally = receipt.tally()
        assert tally[LoginResult.NO_SUCH_ACCOUNT] == 1
        assert tally[LoginResult.BAD_PASSWORD] == 1
        assert tally[LoginResult.SUCCESS] == len(attempts) - 2

    def test_producer_rows_match_key_resolution(self):
        keys = [f"bg{i:08d}" for i in range(35)]
        passwords = [f"bg-pw-{i:08d}" for i in range(35)]
        from array import array

        ips = array("Q", [0x61000000 + i for i in range(35)])
        methods = bytearray(35)
        by_keys = make_provider()
        receipt_keys = by_keys.attempt_logins(
            LoginBatch(list(keys), list(passwords), ips[:], bytearray(methods))
        )
        by_rows = make_provider()
        rows = array("q", (by_rows._table._index[k] for k in keys))
        receipt_rows = by_rows.attempt_logins(
            LoginBatch(list(keys), list(passwords), ips[:], bytearray(methods), rows)
        )
        assert bytes(receipt_rows.results) == bytes(receipt_keys.results)
        assert world_state(by_rows) == world_state(by_keys)

    def test_mismatched_columns_rejected(self):
        from array import array

        with pytest.raises(ValueError):
            LoginBatch(["a"], ["p", "q"], array("Q", [1]), bytearray(1))
        with pytest.raises(ValueError):
            LoginBatch(
                ["a"], ["p"], array("Q", [1]), bytearray(1), array("q", [1, 2])
            )


class TestCleanFailurePath:
    def test_bulk_failures_commit_vectorized_and_match_scalar(self):
        spec = [
            (f"bg{i:08d}", "stuffed-wrong-guess", 0x51000000 + i, i)
            for i in range(36)
        ]
        attempts = attempts_from(spec)
        scalar = make_provider()
        scalar_codes = run_scalar(scalar, attempts)
        batched = make_provider()
        batched_codes = run_batched(batched, attempts)
        assert batched_codes == scalar_codes
        assert set(batched_codes) == {RESULT_CODES[LoginResult.BAD_PASSWORD]}
        assert world_state(batched) == world_state(scalar)
        stats = batched.batch_engine_stats()
        assert stats["vector_failed"] == 36
        assert stats["scalar_replayed"] == 0

    def test_second_window_routes_throttled_rows_rare(self):
        """A clean failure leaves a throttle entry; the next window's
        membership probe must see it and route the row rare."""
        spec = [
            (f"bg{i:08d}", "stuffed-wrong-guess", 0x51000000 + i, i)
            for i in range(36)
        ]
        provider = make_provider()
        run_batched(provider, attempts_from(spec))
        run_batched(provider, attempts_from(spec))
        stats = provider.batch_engine_stats()
        assert stats["vector_failed"] == 36
        assert stats["scalar_replayed"] == 36
        # Scalar replay accumulated the second failure per row.
        assert all(
            entry[0] == 2 for entry in provider._throttle.values()
        )

    def test_eviction_invalidates_the_sorted_key_cache(self):
        spec = [
            (f"bg{i:08d}", "stuffed-wrong-guess", 0x51000000 + i, i)
            for i in range(36)
        ]
        provider = make_provider()
        run_batched(provider, attempts_from(spec))
        engine = provider._batch_engine
        assert engine._throttle_rev == provider._throttle_rev
        assert list(engine._throttle_keys) == sorted(provider._throttle)
        provider._clock.advance(8 * 3600)  # past window + lockout
        provider.evict_expired()
        assert not provider._throttle
        assert engine._throttle_rev != provider._throttle_rev
        # A fresh window probes the rebuilt (empty) key set cleanly.
        ok_spec = [
            (f"bg{i:08d}", f"bg-pw-{i:08d}", 0x52000000 + i, i)
            for i in range(36)
        ]
        codes = run_batched(provider, attempts_from(ok_spec))
        assert set(codes) == {RESULT_CODES[LoginResult.SUCCESS]}


class TestTelemetrySift:
    def test_dump_contains_only_monitored_accounts(self):
        provider = make_provider()
        run_batched(provider, attempts_from(MIXED_SPEC))
        dump = provider.collect_login_dump()
        assert dump, "monitored successes must surface in the dump"
        assert all(e.local_part.startswith("monitored.") for e in dump)

    def test_ground_truth_sees_every_success(self):
        provider = make_provider()
        codes = run_batched(provider, attempts_from(MIXED_SPEC))
        events = provider.telemetry.all_events_ground_truth()
        assert len(events) == codes.count(0)


class TestHotRowEquivalence:
    def test_promotion_and_review_agree_between_engines(self):
        """Drive one row across the suspicion threshold both ways."""
        threshold = EmailProvider.SUSPICION_DISTINCT_IPS
        spec = [
            ("bg00000000", "bg-pw-00000000", 0x21000000 + i, i)
            for i in range(threshold + 20)
        ]
        attempts = attempts_from(spec)
        scalar = make_provider()
        scalar_codes = run_scalar(scalar, attempts)
        batched = make_provider()
        # Repeated rows route through the shared decision core, so the
        # promotion, the RNG draws and any freeze land identically.
        batched_codes = run_batched(batched, attempts)
        assert batched_codes == scalar_codes
        assert world_state(batched) == world_state(scalar)
        assert batched.ip_window_promotions == scalar.ip_window_promotions == 1


if HAVE_HYPOTHESIS:

    @st.composite
    def attempt_streams(draw):
        n = draw(st.integers(min_value=1, max_value=80))
        spec = []
        for _ in range(n):
            u = draw(st.integers(min_value=0, max_value=41))
            key = f"bg{u:08d}" if u < 40 else f"nobody{u}"
            good = draw(st.booleans())
            password = f"bg-pw-{u:08d}" if good else "not-the-password"
            ip = draw(st.integers(min_value=1, max_value=12)) + 0x22000000
            method = draw(st.integers(min_value=0, max_value=4))
            spec.append((key, password, ip, method))
        return spec

    class TestHypothesisEquivalence:
        @settings(max_examples=40, deadline=None)
        @given(spec=attempt_streams())
        def test_batched_equals_scalar_on_generated_streams(self, spec):
            attempts = attempts_from(spec)
            scalar = make_provider()
            scalar_codes = run_scalar(scalar, attempts)
            # Force the vectorized path even for tiny generated
            # batches so hypothesis exercises the interesting engine.
            floor = batch_mod.VECTOR_MIN_EVENTS
            batch_mod.VECTOR_MIN_EVENTS = 1
            try:
                batched = make_provider()
                batched_codes = run_batched(batched, attempts)
            finally:
                batch_mod.VECTOR_MIN_EVENTS = floor
            assert batched_codes == scalar_codes
            assert world_state(batched) == world_state(scalar)
