"""Tests for the email provider (Section 4.2)."""

import pytest

from repro.email_provider.accounts import AccountState, NamingPolicy
from repro.email_provider.provider import EmailProvider, LoginResult
from repro.email_provider.telemetry import LoginMethod
from repro.mail.messages import EmailMessage
from repro.net.ipaddr import IPv4Address
from repro.sim.clock import SimClock
from repro.util.rngtree import RngTree
from repro.util.timeutil import HOUR


IP = IPv4Address.parse("25.1.2.3")
OTHER_IP = IPv4Address.parse("25.9.9.9")


@pytest.fixture
def provider():
    clock = SimClock(1_000_000)
    provider = EmailProvider("prov.example", clock, RngTree(5))
    provider.provision("AlphaUser01", "Alpha User", "Secret1234")
    return provider


class TestProvisioning:
    def test_collision_rejected(self, provider):
        result = provider.provision("alphauser01", "Dup", "x" * 10)
        assert not result.created
        assert "taken" in result.reason

    def test_preexisting_names_collide(self):
        clock = SimClock()
        provider = EmailProvider(
            "p.example", clock, RngTree(1), preexisting_locals=frozenset({"organic"})
        )
        assert not provider.provision("Organic", "X", "pass123456").created

    def test_naming_policy_enforced(self, provider):
        too_short = provider.provision("abc", "X", "p" * 10)
        assert not too_short.created
        bad_chars = provider.provision("has space!", "X", "p" * 10)
        assert not bad_chars.created

    def test_account_count(self, provider):
        assert provider.account_count() == 1

    def test_policy_violation_messages(self):
        policy = NamingPolicy(min_length=6, max_length=10)
        assert "shorter" in policy.violation("abc")
        assert "longer" in policy.violation("a" * 11)
        assert "characters" in policy.violation("9starts")
        assert policy.violation("Fine123") is None


class TestLogin:
    def test_success_recorded_in_telemetry(self, provider):
        result = provider.attempt_login("AlphaUser01", "Secret1234", IP, LoginMethod.IMAP)
        assert result is LoginResult.SUCCESS
        events = provider.telemetry.all_events_ground_truth()
        assert len(events) == 1
        assert events[0].ip == IP
        assert events[0].method is LoginMethod.IMAP

    def test_bad_password_not_in_telemetry(self, provider):
        result = provider.attempt_login("AlphaUser01", "wrong", IP, LoginMethod.IMAP)
        assert result is LoginResult.BAD_PASSWORD
        assert provider.telemetry.all_events_ground_truth() == []

    def test_no_such_account(self, provider):
        assert (
            provider.attempt_login("Ghost", "x", IP, LoginMethod.IMAP)
            is LoginResult.NO_SUCH_ACCOUNT
        )

    def test_case_insensitive_local(self, provider):
        assert (
            provider.attempt_login("ALPHAUSER01", "Secret1234", IP, LoginMethod.POP3)
            is LoginResult.SUCCESS
        )

    def test_brute_force_throttling(self, provider):
        for _ in range(EmailProvider.BRUTE_FORCE_LIMIT):
            provider.attempt_login("AlphaUser01", "wrong", IP, LoginMethod.IMAP)
        # Even the correct password is now rejected.
        assert (
            provider.attempt_login("AlphaUser01", "Secret1234", IP, LoginMethod.IMAP)
            is LoginResult.THROTTLED
        )

    def test_throttle_expires(self, provider):
        for _ in range(EmailProvider.BRUTE_FORCE_LIMIT):
            provider.attempt_login("AlphaUser01", "wrong", IP, LoginMethod.IMAP)
        provider._clock.advance(EmailProvider.BRUTE_FORCE_LOCKOUT + HOUR)
        assert (
            provider.attempt_login("AlphaUser01", "Secret1234", IP, LoginMethod.IMAP)
            is LoginResult.SUCCESS
        )


class TestThrottleWindowEdges:
    def login(self, provider, password):
        return provider.attempt_login("AlphaUser01", password, IP, LoginMethod.IMAP)

    def test_failure_window_resets_strictly_after_boundary(self, provider):
        """Failures age out only *past* BRUTE_FORCE_WINDOW, not at it."""
        limit = EmailProvider.BRUTE_FORCE_LIMIT
        for _ in range(limit - 1):
            self.login(provider, "wrong")
        # Exactly at the window boundary the counter must still stand:
        # one more failure is the limit-th and locks the account.
        provider._clock.advance(EmailProvider.BRUTE_FORCE_WINDOW)
        self.login(provider, "wrong")
        assert self.login(provider, "Secret1234") is LoginResult.THROTTLED

    def test_failure_window_reset_one_past_boundary(self, provider):
        limit = EmailProvider.BRUTE_FORCE_LIMIT
        for _ in range(limit - 1):
            self.login(provider, "wrong")
        provider._clock.advance(EmailProvider.BRUTE_FORCE_WINDOW + 1)
        # The window expired: this failure starts a fresh count of 1.
        self.login(provider, "wrong")
        assert self.login(provider, "Secret1234") is LoginResult.SUCCESS

    def test_lockout_readmits_exactly_at_expiry(self, provider):
        for _ in range(EmailProvider.BRUTE_FORCE_LIMIT):
            self.login(provider, "wrong")
        provider._clock.advance(EmailProvider.BRUTE_FORCE_LOCKOUT - 1)
        assert self.login(provider, "Secret1234") is LoginResult.THROTTLED
        provider._clock.advance(1)
        assert self.login(provider, "Secret1234") is LoginResult.SUCCESS

    def test_success_resets_failure_count(self, provider):
        for _ in range(EmailProvider.BRUTE_FORCE_LIMIT - 1):
            self.login(provider, "wrong")
        assert self.login(provider, "Secret1234") is LoginResult.SUCCESS
        for _ in range(EmailProvider.BRUTE_FORCE_LIMIT - 1):
            self.login(provider, "wrong")
        assert self.login(provider, "Secret1234") is LoginResult.SUCCESS


class TestLoginWindowMachinery:
    def test_cold_logins_do_constant_work(self, provider):
        """Micro-regression for the O(window) rebuild: a cold account's
        logins never prune, promote or materialize per-row state, no
        matter how long its history grows — the per-login work is one
        log append plus one first-IP compare."""
        clock = provider._clock
        for i in range(500):
            provider.attempt_login("AlphaUser01", "Secret1234", IP, LoginMethod.IMAP)
            clock.advance(HOUR)
        assert provider._ip_hot == {}
        assert provider.ip_window_promotions == 0
        assert provider.ip_window_pruned == 0
        row = provider._table._index["alphauser01"]
        # One log entry per success, chained; bound stays at 1 for a
        # single-address account.
        assert len(provider._log_times) == 500
        assert provider._ip_distinct[row] == 1

    def test_promotion_materializes_exact_window(self, provider):
        clock = provider._clock
        threshold = EmailProvider.SUSPICION_DISTINCT_IPS
        for i in range(threshold):
            ip = IPv4Address(0x19000000 + i)
            provider.attempt_login("AlphaUser01", "Secret1234", ip, LoginMethod.IMAP)
            clock.advance(60)
        row = provider._table._index["alphauser01"]
        assert provider.ip_window_promotions == 1
        assert row in provider._ip_hot
        snapshot = provider.login_window_snapshot()[row]
        assert snapshot["hot"]
        assert snapshot["distinct"] == threshold
        assert len(snapshot["entries"]) == threshold

    def test_first_ip_bound_overestimates_but_promotion_restores_exact(
        self, provider
    ):
        """Alternating between two addresses inflates the cold bound
        (each away-from-first event bumps it), which at worst promotes
        the row early — and promotion recounts the exact distinct."""
        clock = provider._clock
        threshold = EmailProvider.SUSPICION_DISTINCT_IPS
        # Only away-from-first events bump the bound, so alternating
        # needs ~2x threshold logins before the bound reaches it.
        for i in range(2 * threshold):
            ip = IP if i % 2 == 0 else OTHER_IP
            provider.attempt_login("AlphaUser01", "Secret1234", ip, LoginMethod.IMAP)
            clock.advance(60)
        row = provider._table._index["alphauser01"]
        assert provider.ip_window_promotions == 1
        assert row in provider._ip_hot
        assert provider._ip_distinct[row] == 2  # exact after promotion
        assert provider.account("AlphaUser01").state is AccountState.ACTIVE

    def test_evict_expired_drops_throttle_and_stale_windows(self, provider):
        clock = provider._clock
        provider.attempt_login("AlphaUser01", "wrong", IP, LoginMethod.IMAP)
        provider.attempt_login("AlphaUser01", "Secret1234", IP, LoginMethod.IMAP)
        clock.advance(EmailProvider.SUSPICION_WINDOW + HOUR)
        throttle_evicted, window_evicted = provider.evict_expired()
        assert throttle_evicted == 1
        assert window_evicted == 1
        assert provider._throttle == {}
        assert provider.login_window_snapshot() == {}
        row = provider._table._index["alphauser01"]
        assert provider._ip_distinct[row] == 0

    def test_compaction_recounts_surviving_bounds(self, provider):
        clock = provider._clock
        # Two old away-IP logins that will expire, then two fresh ones
        # (one from the first-seen address, one from elsewhere).
        provider.attempt_login("AlphaUser01", "Secret1234", IP, LoginMethod.IMAP)
        provider.attempt_login("AlphaUser01", "Secret1234", OTHER_IP, LoginMethod.IMAP)
        clock.advance(EmailProvider.SUSPICION_WINDOW + HOUR)
        provider.attempt_login("AlphaUser01", "Secret1234", IP, LoginMethod.IMAP)
        provider.attempt_login("AlphaUser01", "Secret1234", OTHER_IP, LoginMethod.IMAP)
        row = provider._table._index["alphauser01"]
        assert provider._ip_distinct[row] == 3  # 1 first + 2 away events
        _, window_evicted = provider.evict_expired()
        assert window_evicted == 2
        snapshot = provider.login_window_snapshot()[row]
        assert len(snapshot["entries"]) == 2
        # Recount: one credit for the first-seen IP + one away event.
        assert provider._ip_distinct[row] == 2

    def test_hot_row_demoted_once_window_expires(self, provider):
        clock = provider._clock
        threshold = EmailProvider.SUSPICION_DISTINCT_IPS
        for i in range(threshold):
            ip = IPv4Address(0x19000000 + i)
            provider.attempt_login("AlphaUser01", "Secret1234", ip, LoginMethod.IMAP)
            clock.advance(60)
        row = provider._table._index["alphauser01"]
        assert row in provider._ip_hot
        clock.advance(EmailProvider.SUSPICION_WINDOW + HOUR)
        _, window_evicted = provider.evict_expired()
        assert row not in provider._ip_hot
        assert provider._ip_distinct[row] == 0
        assert window_evicted >= 1

    def test_eviction_never_changes_decisions(self, provider):
        """Evicted state is indistinguishable from never-created state."""
        clock = provider._clock
        provider.attempt_login("AlphaUser01", "wrong", IP, LoginMethod.IMAP)
        clock.advance(EmailProvider.SUSPICION_WINDOW + HOUR)
        provider.evict_expired()
        assert (
            provider.attempt_login("AlphaUser01", "Secret1234", IP, LoginMethod.IMAP)
            is LoginResult.SUCCESS
        )


class TestAbuseHandling:
    def test_spam_deactivation(self, provider):
        sent = provider.send_spam_from(
            "AlphaUser01", "Secret1234", EmailProvider.SPAM_DEACTIVATION_THRESHOLD + 10
        )
        assert sent == EmailProvider.SPAM_DEACTIVATION_THRESHOLD
        account = provider.account("AlphaUser01")
        assert account.state is AccountState.DEACTIVATED
        assert (
            provider.attempt_login("AlphaUser01", "Secret1234", IP, LoginMethod.IMAP)
            is LoginResult.ACCOUNT_DEACTIVATED
        )

    def test_spam_requires_password(self, provider):
        assert provider.send_spam_from("AlphaUser01", "wrong", 5) == 0

    def test_change_password(self, provider):
        assert provider.change_password("AlphaUser01", "Secret1234", "NewPass999")
        assert (
            provider.attempt_login("AlphaUser01", "NewPass999", IP, LoginMethod.IMAP)
            is LoginResult.SUCCESS
        )
        assert not provider.change_password("AlphaUser01", "Secret1234", "zzz")

    def test_remove_forwarding(self):
        clock = SimClock()
        provider = EmailProvider("p.example", clock, RngTree(2))
        provider.provision("BravoUser", "B", "pw12345678",
                           forwarding_address="BravoUser@cover.example")
        assert provider.remove_forwarding("BravoUser", "pw12345678")
        assert provider.account("BravoUser").forwarding_address is None

    def test_suspicious_ip_diversity_can_freeze(self):
        clock = SimClock(1_000_000)
        provider = EmailProvider("p.example", clock, RngTree(3))
        provider.provision("CharlieUsr", "C", "pw12345678")
        for i in range(600):
            ip = IPv4Address(0x19000000 + i)
            provider.attempt_login("CharlieUsr", "pw12345678", ip, LoginMethod.IMAP)
            clock.advance(600)
            if provider.account("CharlieUsr").state is not AccountState.ACTIVE:
                break
        assert provider.account("CharlieUsr").state in (
            AccountState.FROZEN, AccountState.RESET_FORCED,
        )


class TestDelivery:
    def make_message(self, recipient):
        return EmailMessage(sender="a@b.test", recipient=recipient,
                            subject="s", body="b", time=0)

    def test_delivery_to_existing_account(self, provider):
        assert provider.deliver(self.make_message("AlphaUser01@prov.example"))
        assert provider.account("AlphaUser01").received_message_count == 1

    def test_delivery_wrong_domain_rejected(self, provider):
        assert not provider.deliver(self.make_message("AlphaUser01@other.example"))

    def test_delivery_to_missing_account_rejected(self, provider):
        assert not provider.deliver(self.make_message("Ghost@prov.example"))

    def test_forwarding_hop_invoked(self):
        clock = SimClock()
        provider = EmailProvider("p.example", clock, RngTree(4))
        provider.provision("DeltaUser1", "D", "pw12345678",
                           forwarding_address="DeltaUser1@cover.example")
        relayed = []
        provider.set_forwarding_hop(relayed.append)
        provider.deliver(self.make_message("DeltaUser1@p.example"))
        assert len(relayed) == 1
        assert relayed[0].recipient == "DeltaUser1@cover.example"

    def test_deactivated_account_bounces(self, provider):
        provider.send_spam_from("AlphaUser01", "Secret1234", 100)
        assert not provider.deliver(self.make_message("AlphaUser01@prov.example"))
