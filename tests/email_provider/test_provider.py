"""Tests for the email provider (Section 4.2)."""

import pytest

from repro.email_provider.accounts import AccountState, NamingPolicy
from repro.email_provider.provider import EmailProvider, LoginResult
from repro.email_provider.telemetry import LoginMethod
from repro.mail.messages import EmailMessage
from repro.net.ipaddr import IPv4Address
from repro.sim.clock import SimClock
from repro.util.rngtree import RngTree
from repro.util.timeutil import HOUR


IP = IPv4Address.parse("25.1.2.3")
OTHER_IP = IPv4Address.parse("25.9.9.9")


@pytest.fixture
def provider():
    clock = SimClock(1_000_000)
    provider = EmailProvider("prov.example", clock, RngTree(5))
    provider.provision("AlphaUser01", "Alpha User", "Secret1234")
    return provider


class TestProvisioning:
    def test_collision_rejected(self, provider):
        result = provider.provision("alphauser01", "Dup", "x" * 10)
        assert not result.created
        assert "taken" in result.reason

    def test_preexisting_names_collide(self):
        clock = SimClock()
        provider = EmailProvider(
            "p.example", clock, RngTree(1), preexisting_locals=frozenset({"organic"})
        )
        assert not provider.provision("Organic", "X", "pass123456").created

    def test_naming_policy_enforced(self, provider):
        too_short = provider.provision("abc", "X", "p" * 10)
        assert not too_short.created
        bad_chars = provider.provision("has space!", "X", "p" * 10)
        assert not bad_chars.created

    def test_account_count(self, provider):
        assert provider.account_count() == 1

    def test_policy_violation_messages(self):
        policy = NamingPolicy(min_length=6, max_length=10)
        assert "shorter" in policy.violation("abc")
        assert "longer" in policy.violation("a" * 11)
        assert "characters" in policy.violation("9starts")
        assert policy.violation("Fine123") is None


class TestLogin:
    def test_success_recorded_in_telemetry(self, provider):
        result = provider.attempt_login("AlphaUser01", "Secret1234", IP, LoginMethod.IMAP)
        assert result is LoginResult.SUCCESS
        events = provider.telemetry.all_events_ground_truth()
        assert len(events) == 1
        assert events[0].ip == IP
        assert events[0].method is LoginMethod.IMAP

    def test_bad_password_not_in_telemetry(self, provider):
        result = provider.attempt_login("AlphaUser01", "wrong", IP, LoginMethod.IMAP)
        assert result is LoginResult.BAD_PASSWORD
        assert provider.telemetry.all_events_ground_truth() == []

    def test_no_such_account(self, provider):
        assert (
            provider.attempt_login("Ghost", "x", IP, LoginMethod.IMAP)
            is LoginResult.NO_SUCH_ACCOUNT
        )

    def test_case_insensitive_local(self, provider):
        assert (
            provider.attempt_login("ALPHAUSER01", "Secret1234", IP, LoginMethod.POP3)
            is LoginResult.SUCCESS
        )

    def test_brute_force_throttling(self, provider):
        for _ in range(EmailProvider.BRUTE_FORCE_LIMIT):
            provider.attempt_login("AlphaUser01", "wrong", IP, LoginMethod.IMAP)
        # Even the correct password is now rejected.
        assert (
            provider.attempt_login("AlphaUser01", "Secret1234", IP, LoginMethod.IMAP)
            is LoginResult.THROTTLED
        )

    def test_throttle_expires(self, provider):
        for _ in range(EmailProvider.BRUTE_FORCE_LIMIT):
            provider.attempt_login("AlphaUser01", "wrong", IP, LoginMethod.IMAP)
        provider._clock.advance(EmailProvider.BRUTE_FORCE_LOCKOUT + HOUR)
        assert (
            provider.attempt_login("AlphaUser01", "Secret1234", IP, LoginMethod.IMAP)
            is LoginResult.SUCCESS
        )


class TestAbuseHandling:
    def test_spam_deactivation(self, provider):
        sent = provider.send_spam_from(
            "AlphaUser01", "Secret1234", EmailProvider.SPAM_DEACTIVATION_THRESHOLD + 10
        )
        assert sent == EmailProvider.SPAM_DEACTIVATION_THRESHOLD
        account = provider.account("AlphaUser01")
        assert account.state is AccountState.DEACTIVATED
        assert (
            provider.attempt_login("AlphaUser01", "Secret1234", IP, LoginMethod.IMAP)
            is LoginResult.ACCOUNT_DEACTIVATED
        )

    def test_spam_requires_password(self, provider):
        assert provider.send_spam_from("AlphaUser01", "wrong", 5) == 0

    def test_change_password(self, provider):
        assert provider.change_password("AlphaUser01", "Secret1234", "NewPass999")
        assert (
            provider.attempt_login("AlphaUser01", "NewPass999", IP, LoginMethod.IMAP)
            is LoginResult.SUCCESS
        )
        assert not provider.change_password("AlphaUser01", "Secret1234", "zzz")

    def test_remove_forwarding(self):
        clock = SimClock()
        provider = EmailProvider("p.example", clock, RngTree(2))
        provider.provision("BravoUser", "B", "pw12345678",
                           forwarding_address="BravoUser@cover.example")
        assert provider.remove_forwarding("BravoUser", "pw12345678")
        assert provider.account("BravoUser").forwarding_address is None

    def test_suspicious_ip_diversity_can_freeze(self):
        clock = SimClock(1_000_000)
        provider = EmailProvider("p.example", clock, RngTree(3))
        provider.provision("CharlieUsr", "C", "pw12345678")
        for i in range(600):
            ip = IPv4Address(0x19000000 + i)
            provider.attempt_login("CharlieUsr", "pw12345678", ip, LoginMethod.IMAP)
            clock.advance(600)
            if provider.account("CharlieUsr").state is not AccountState.ACTIVE:
                break
        assert provider.account("CharlieUsr").state in (
            AccountState.FROZEN, AccountState.RESET_FORCED,
        )


class TestDelivery:
    def make_message(self, recipient):
        return EmailMessage(sender="a@b.test", recipient=recipient,
                            subject="s", body="b", time=0)

    def test_delivery_to_existing_account(self, provider):
        assert provider.deliver(self.make_message("AlphaUser01@prov.example"))
        assert provider.account("AlphaUser01").received_message_count == 1

    def test_delivery_wrong_domain_rejected(self, provider):
        assert not provider.deliver(self.make_message("AlphaUser01@other.example"))

    def test_delivery_to_missing_account_rejected(self, provider):
        assert not provider.deliver(self.make_message("Ghost@prov.example"))

    def test_forwarding_hop_invoked(self):
        clock = SimClock()
        provider = EmailProvider("p.example", clock, RngTree(4))
        provider.provision("DeltaUser1", "D", "pw12345678",
                           forwarding_address="DeltaUser1@cover.example")
        relayed = []
        provider.set_forwarding_hop(relayed.append)
        provider.deliver(self.make_message("DeltaUser1@p.example"))
        assert len(relayed) == 1
        assert relayed[0].recipient == "DeltaUser1@cover.example"

    def test_deactivated_account_bounces(self, provider):
        provider.send_spam_from("AlphaUser01", "Secret1234", 100)
        assert not provider.deliver(self.make_message("AlphaUser01@prov.example"))
