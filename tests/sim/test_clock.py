"""Tests for the simulation clock."""

import pytest

from repro.sim.clock import ClockMovedBackward, SimClock
from repro.util.timeutil import STUDY_START


class TestSimClock:
    def test_starts_at_study_start_by_default(self):
        assert SimClock().now() == STUDY_START

    def test_custom_start(self):
        assert SimClock(100).now() == 100

    def test_advance(self):
        clock = SimClock(0)
        assert clock.advance(10) == 10
        assert clock.now() == 10

    def test_advance_zero_is_noop(self):
        clock = SimClock(5)
        clock.advance(0)
        assert clock.now() == 5

    def test_advance_negative_rejected(self):
        with pytest.raises(ClockMovedBackward):
            SimClock(0).advance(-1)

    def test_advance_to_forward(self):
        clock = SimClock(0)
        clock.advance_to(50)
        assert clock.now() == 50

    def test_advance_to_past_is_noop(self):
        clock = SimClock(100)
        clock.advance_to(50)
        assert clock.now() == 100
