"""Tests for the event queue."""

import pytest

from repro.sim.clock import SimClock
from repro.sim.events import EventQueue


def make_queue(start=0, **kwargs):
    clock = SimClock(start)
    return clock, EventQueue(clock, **kwargs)


class TestEventQueue:
    def test_events_fire_in_time_order(self):
        clock, queue = make_queue()
        fired = []
        queue.schedule(30, "b", lambda: fired.append("b"))
        queue.schedule(10, "a", lambda: fired.append("a"))
        queue.schedule(20, "m", lambda: fired.append("m"))
        queue.run_until(100)
        assert fired == ["a", "m", "b"]

    def test_ties_break_by_insertion_order(self):
        clock, queue = make_queue()
        fired = []
        queue.schedule(10, "first", lambda: fired.append(1))
        queue.schedule(10, "second", lambda: fired.append(2))
        queue.run_until(10)
        assert fired == [1, 2]

    def test_clock_jumps_to_event_times(self):
        clock, queue = make_queue()
        seen = []
        queue.schedule(25, "x", lambda: seen.append(clock.now()))
        queue.run_until(100)
        assert seen == [25]
        assert clock.now() == 100

    def test_run_until_leaves_future_events(self):
        clock, queue = make_queue()
        fired = []
        queue.schedule(10, "now", lambda: fired.append("now"))
        queue.schedule(200, "later", lambda: fired.append("later"))
        executed = queue.run_until(50)
        assert executed == 1
        assert fired == ["now"]
        assert len(queue) == 1
        assert queue.peek_time() == 200

    def test_events_scheduled_during_run_are_honored(self):
        clock, queue = make_queue()
        fired = []

        def chain():
            fired.append("outer")
            queue.schedule(clock.now() + 5, "inner", lambda: fired.append("inner"))

        queue.schedule(10, "outer", chain)
        queue.run_until(100)
        assert fired == ["outer", "inner"]

    def test_run_all_drains_everything(self):
        clock, queue = make_queue()
        fired = []
        for t in (5, 500, 50):
            queue.schedule(t, str(t), lambda t=t: fired.append(t))
        assert queue.run_all() == 3
        assert fired == [5, 50, 500]
        assert len(queue) == 0

    def test_past_events_fire_immediately_without_moving_clock_back(self):
        clock, queue = make_queue(start=100)
        fired = []
        queue.schedule(10, "past", lambda: fired.append(clock.now()))
        queue.run_until(100)
        assert fired == [100]

    def test_executed_events_recorded(self):
        clock, queue = make_queue(keep_history=True)
        queue.schedule(1, "a", lambda: None)
        queue.run_until(5)
        assert [e.label for e in queue.executed_events()] == ["a"]
        assert queue.executed_count == 1

    def test_history_disabled_by_default_but_counted(self):
        clock, queue = make_queue()
        queue.schedule(1, "a", lambda: None)
        queue.schedule(2, "b", lambda: None)
        queue.run_until(5)
        assert queue.executed_count == 2
        with pytest.raises(RuntimeError, match="keep_history"):
            queue.executed_events()

    def test_peek_time_empty(self):
        _clock, queue = make_queue()
        assert queue.peek_time() is None


class TestCancellation:
    def test_cancelled_event_never_fires(self):
        clock, queue = make_queue()
        fired = []
        doomed = queue.schedule(10, "doomed", lambda: fired.append("doomed"))
        queue.schedule(20, "kept", lambda: fired.append("kept"))
        assert queue.cancel(doomed) is True
        queue.run_until(100)
        assert fired == ["kept"]

    def test_cancel_is_idempotent_and_reports_outcome(self):
        clock, queue = make_queue()
        event = queue.schedule(10, "x", lambda: None)
        assert queue.cancel(event) is True
        assert queue.cancel(event) is False

    def test_cancel_after_execution_returns_false(self):
        clock, queue = make_queue()
        event = queue.schedule(10, "x", lambda: None)
        queue.run_until(10)
        assert queue.cancel(event) is False

    def test_cancelled_events_do_not_count_or_enter_history(self):
        clock, queue = make_queue(keep_history=True)
        doomed = queue.schedule(10, "doomed", lambda: None)
        queue.schedule(20, "kept", lambda: None)
        queue.cancel(doomed)
        queue.run_until(100)
        assert queue.executed_count == 1
        assert [e.label for e in queue.executed_events()] == ["kept"]

    def test_len_and_peek_skip_cancelled(self):
        clock, queue = make_queue()
        first = queue.schedule(10, "first", lambda: None)
        queue.schedule(20, "second", lambda: None)
        assert len(queue) == 2
        queue.cancel(first)
        assert len(queue) == 1
        assert queue.peek_time() == 20

    def test_cancelled_head_does_not_advance_clock(self):
        clock, queue = make_queue()
        doomed = queue.schedule(10, "doomed", lambda: None)
        queue.cancel(doomed)
        queue.run_all()
        assert clock.now() == 0

    def test_event_can_cancel_a_later_event(self):
        clock, queue = make_queue()
        fired = []
        later = queue.schedule(20, "later", lambda: fired.append("later"))
        queue.schedule(10, "canceller", lambda: queue.cancel(later))
        queue.run_until(100)
        assert fired == []


class TestRecurring:
    def test_fires_on_interval_until_bound(self):
        clock, queue = make_queue()
        times = []
        handle = queue.schedule_recurring(
            10, 10, "tick", lambda: times.append(clock.now()), until=45
        )
        queue.run_until(100)
        assert times == [10, 20, 30, 40]
        assert handle.fired == 4
        assert not handle.active
        assert handle.next_time is None

    def test_until_bound_is_inclusive(self):
        clock, queue = make_queue()
        times = []
        queue.schedule_recurring(
            10, 10, "tick", lambda: times.append(clock.now()), until=30
        )
        queue.run_until(100)
        assert times == [10, 20, 30]

    def test_unbounded_chain_keeps_rescheduling(self):
        clock, queue = make_queue()
        times = []
        handle = queue.schedule_recurring(
            5, 5, "tick", lambda: times.append(clock.now())
        )
        queue.run_until(23)
        assert times == [5, 10, 15, 20]
        assert handle.active
        assert handle.next_time == 25

    def test_cancel_stops_the_chain(self):
        clock, queue = make_queue()
        times = []
        handle = queue.schedule_recurring(
            10, 10, "tick", lambda: times.append(clock.now())
        )
        queue.run_until(25)
        assert handle.cancel() is True
        assert handle.cancel() is False  # idempotent
        queue.run_until(100)
        assert times == [10, 20]
        assert len(queue) == 0

    def test_action_may_cancel_its_own_handle(self):
        clock, queue = make_queue()
        times = []
        handles = {}

        def action():
            times.append(clock.now())
            if len(times) == 2:
                handles["tick"].cancel()

        handles["tick"] = queue.schedule_recurring(10, 10, "tick", action)
        queue.run_until(100)
        assert times == [10, 20]

    def test_recurring_interval_must_be_positive(self):
        clock, queue = make_queue()
        with pytest.raises(ValueError, match="interval"):
            queue.schedule_recurring(10, 0, "bad", lambda: None)

    def test_recurring_fires_count_in_executed_count(self):
        clock, queue = make_queue()
        queue.schedule_recurring(10, 10, "tick", lambda: None, until=30)
        queue.run_until(100)
        assert queue.executed_count == 3
