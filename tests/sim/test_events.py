"""Tests for the event queue."""

import pytest

from repro.sim.clock import SimClock
from repro.sim.events import EventQueue


def make_queue(start=0, **kwargs):
    clock = SimClock(start)
    return clock, EventQueue(clock, **kwargs)


class TestEventQueue:
    def test_events_fire_in_time_order(self):
        clock, queue = make_queue()
        fired = []
        queue.schedule(30, "b", lambda: fired.append("b"))
        queue.schedule(10, "a", lambda: fired.append("a"))
        queue.schedule(20, "m", lambda: fired.append("m"))
        queue.run_until(100)
        assert fired == ["a", "m", "b"]

    def test_ties_break_by_insertion_order(self):
        clock, queue = make_queue()
        fired = []
        queue.schedule(10, "first", lambda: fired.append(1))
        queue.schedule(10, "second", lambda: fired.append(2))
        queue.run_until(10)
        assert fired == [1, 2]

    def test_clock_jumps_to_event_times(self):
        clock, queue = make_queue()
        seen = []
        queue.schedule(25, "x", lambda: seen.append(clock.now()))
        queue.run_until(100)
        assert seen == [25]
        assert clock.now() == 100

    def test_run_until_leaves_future_events(self):
        clock, queue = make_queue()
        fired = []
        queue.schedule(10, "now", lambda: fired.append("now"))
        queue.schedule(200, "later", lambda: fired.append("later"))
        executed = queue.run_until(50)
        assert executed == 1
        assert fired == ["now"]
        assert len(queue) == 1
        assert queue.peek_time() == 200

    def test_events_scheduled_during_run_are_honored(self):
        clock, queue = make_queue()
        fired = []

        def chain():
            fired.append("outer")
            queue.schedule(clock.now() + 5, "inner", lambda: fired.append("inner"))

        queue.schedule(10, "outer", chain)
        queue.run_until(100)
        assert fired == ["outer", "inner"]

    def test_run_all_drains_everything(self):
        clock, queue = make_queue()
        fired = []
        for t in (5, 500, 50):
            queue.schedule(t, str(t), lambda t=t: fired.append(t))
        assert queue.run_all() == 3
        assert fired == [5, 50, 500]
        assert len(queue) == 0

    def test_past_events_fire_immediately_without_moving_clock_back(self):
        clock, queue = make_queue(start=100)
        fired = []
        queue.schedule(10, "past", lambda: fired.append(clock.now()))
        queue.run_until(100)
        assert fired == [100]

    def test_executed_events_recorded(self):
        clock, queue = make_queue(keep_history=True)
        queue.schedule(1, "a", lambda: None)
        queue.run_until(5)
        assert [e.label for e in queue.executed_events()] == ["a"]
        assert queue.executed_count == 1

    def test_history_disabled_by_default_but_counted(self):
        clock, queue = make_queue()
        queue.schedule(1, "a", lambda: None)
        queue.schedule(2, "b", lambda: None)
        queue.run_until(5)
        assert queue.executed_count == 2
        with pytest.raises(RuntimeError, match="keep_history"):
            queue.executed_events()

    def test_peek_time_empty(self):
        _clock, queue = make_queue()
        assert queue.peek_time() is None
