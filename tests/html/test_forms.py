"""Tests for form extraction and serialization."""

from repro.html.forms import extract_form_model
from repro.html.parser import parse_html


def model_from(html: str):
    dom = parse_html(html)
    form = dom.find_first("form")
    assert form is not None
    return extract_form_model(dom, form, base_url="http://s.test/page")


class TestFieldExtraction:
    def test_label_for_association(self):
        model = model_from(
            '<form><label for="em">Email address</label>'
            '<input id="em" name="email"></form>'
        )
        field = model.field_by_name("email")
        assert field.label_text == "Email address"

    def test_wrapping_label(self):
        model = model_from(
            "<form><label>Password <input type=password name=pw></label></form>"
        )
        assert model.field_by_name("pw").label_text.startswith("Password")

    def test_placeholder_captured(self):
        model = model_from('<form><input name=u placeholder="Your username"></form>')
        assert "Your username" in model.field_by_name("u").descriptor_texts()

    def test_nearby_text(self):
        model = model_from(
            "<form><div><span>Phone number</span><input name=ph></div></form>"
        )
        assert "Phone number" in model.field_by_name("ph").nearby_text

    def test_required_and_maxlength(self):
        model = model_from('<form><input name=x required maxlength="14"></form>')
        field = model.field_by_name("x")
        assert field.required
        assert field.maxlength == 14

    def test_select_options_and_default(self):
        model = model_from(
            "<form><select name=state><option value=CA>California</option>"
            "<option value=NY selected>New York</option></select></form>"
        )
        field = model.field_by_name("state")
        assert field.options == ["CA", "NY"]
        assert field.default_value == "NY"

    def test_submit_controls_separated(self):
        model = model_from(
            "<form><input name=a><button type=submit>Go</button>"
            '<input type="submit" value="Send"></form>'
        )
        assert len(model.fields) == 1
        assert len(model.submit_controls) == 2

    def test_hidden_fields_not_visible(self):
        model = model_from('<form><input type=hidden name=t value=tok><input name=v></form>')
        assert [f.name for f in model.visible_fields()] == ["v"]

    def test_challenge_token_property(self):
        model = model_from('<form><input name=c data-challenge="ch-1"></form>')
        field = model.field_by_name("c")
        assert field.has_challenge_token
        assert field.challenge_token == "ch-1"

    def test_method_and_action(self):
        model = model_from('<form action="/go" method="POST"><input name=a></form>')
        assert model.action == "/go"
        assert model.method == "post"

    def test_action_defaults_to_base(self):
        model = model_from("<form><input name=a></form>")
        assert model.action == "http://s.test/page"


class TestSerialization:
    def test_filled_values_win(self):
        model = model_from('<form><input name=email value="old"></form>')
        assert model.serialize({"email": "new@x.test"}) == {"email": "new@x.test"}

    def test_hidden_defaults_carried(self):
        model = model_from('<form><input type=hidden name=tok value=T><input name=a></form>')
        payload = model.serialize({"a": "1"})
        assert payload == {"tok": "T", "a": "1"}

    def test_unchecked_checkbox_omitted(self):
        model = model_from('<form><input type=checkbox name=tos value=1></form>')
        assert model.serialize({}) == {}
        assert model.serialize({"tos": "1"}) == {"tos": "1"}

    def test_select_default_carried(self):
        model = model_from(
            "<form><select name=s><option value=x>X</option></select></form>"
        )
        assert model.serialize({}) == {"s": "x"}

    def test_unnamed_fields_skipped(self):
        model = model_from("<form><input id=noname></form>")
        assert model.serialize({}) == {}

    def test_text_like_classification(self):
        model = model_from(
            "<form><input type=email name=a><textarea name=b></textarea>"
            "<input type=checkbox name=c></form>"
        )
        assert model.field_by_name("a").is_text_like
        assert model.field_by_name("b").is_text_like
        assert not model.field_by_name("c").is_text_like
        assert model.field_by_name("c").is_checkbox
