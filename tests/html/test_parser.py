"""Tests for the HTML parser."""

from hypothesis import given
from hypothesis import strategies as st

from repro.html.builder import el, page_skeleton, render_document
from repro.html.parser import parse_html


class TestBasicParsing:
    def test_simple_nesting(self):
        dom = parse_html("<div><p>hello</p></div>")
        p = dom.find_first("p")
        assert p is not None
        assert p.text_content() == "hello"
        assert p.parent.tag == "div"

    def test_attributes_quoted_and_unquoted(self):
        dom = parse_html('<input type="text" name=email required>')
        node = dom.find_first("input")
        assert node.get("type") == "text"
        assert node.get("name") == "email"
        assert node.has("required")

    def test_single_quoted_attributes(self):
        dom = parse_html("<a href='/x'>link</a>")
        assert dom.find_first("a").get("href") == "/x"

    def test_void_elements_do_not_nest(self):
        dom = parse_html("<p><br>text<img src=x>more</p>")
        p = dom.find_first("p")
        assert p.text_content() == "text more"

    def test_self_closing(self):
        dom = parse_html("<div><span/>after</div>")
        assert dom.find_first("div").text_content() == "after"

    def test_comments_skipped(self):
        dom = parse_html("<div><!-- secret --><p>shown</p></div>")
        assert "secret" not in dom.text_content()
        assert dom.find_first("p") is not None

    def test_doctype_skipped(self):
        dom = parse_html("<!DOCTYPE html><p>x</p>")
        assert dom.find_first("p").text_content() == "x"

    def test_entities_decoded(self):
        dom = parse_html("<p>a &amp; b &lt;c&gt;</p>")
        assert dom.find_first("p").text_content() == "a & b <c>"

    def test_bare_lt_in_text(self):
        dom = parse_html("<p>1 < 2</p>")
        assert "<" in dom.find_first("p").text_content()


class TestRecovery:
    def test_unclosed_tags_implicitly_closed(self):
        dom = parse_html("<div><p>one<p>two</div>")
        paragraphs = dom.find_all("p")
        assert len(paragraphs) == 2

    def test_stray_close_tag_ignored(self):
        dom = parse_html("</div><p>x</p>")
        assert dom.find_first("p").text_content() == "x"

    def test_mismatched_close_recovers(self):
        dom = parse_html("<div><span>inner</div>after")
        assert "after" in dom.text_content()

    def test_empty_input(self):
        dom = parse_html("")
        assert dom.tag == "html"
        assert dom.text_content() == ""

    def test_truncated_tag(self):
        dom = parse_html("<div><input type=")
        assert dom.find_first("div") is not None


class TestRawText:
    def test_script_contents_not_parsed(self):
        dom = parse_html("<script>if (a < b) { x('<div>'); }</script><p>y</p>")
        assert dom.find_first("p") is not None
        assert dom.find_all("div") == []

    def test_script_excluded_from_text(self):
        dom = parse_html("<body><script>var x=1;</script>visible</body>")
        assert dom.text_content() == "visible"

    def test_textarea_entities(self):
        dom = parse_html("<textarea>&amp;</textarea>")
        node = dom.find_first("textarea")
        assert node.text_content() == "&"

    def test_html_root_attrs_merged(self):
        dom = parse_html('<html lang="de"><body>x</body></html>')
        assert dom.get("lang") == "de"


class TestRoundtrip:
    def test_builder_roundtrip(self):
        root, body = page_skeleton("Title", lang="en")
        body.append(el("div", {"class": "a b"}, el("a", {"href": "/x"}, "text")))
        html = render_document(root)
        reparsed = parse_html(html)
        assert reparsed.get("lang") == "en"
        anchor = reparsed.find_first("a")
        assert anchor.get("href") == "/x"
        assert anchor.text_content() == "text"

    @given(st.text(alphabet=st.characters(blacklist_characters="<>&\x00",
                                          blacklist_categories=("Cs", "Cc")),
                   min_size=0, max_size=60))
    def test_text_roundtrip_property(self, text):
        root, body = page_skeleton("T")
        body.append(el("p", None, text))
        reparsed = parse_html(render_document(root))
        expected = " ".join(text.split())
        assert reparsed.find_first("p").text_content() == expected

    @given(st.dictionaries(
        keys=st.from_regex(r"[a-z][a-z0-9-]{0,8}", fullmatch=True),
        values=st.text(alphabet=st.characters(blacklist_characters="\x00",
                                              blacklist_categories=("Cs", "Cc")),
                       max_size=30),
        max_size=5,
    ))
    def test_attribute_roundtrip_property(self, attrs):
        root, body = page_skeleton("T")
        body.append(el("div", attrs))
        reparsed = parse_html(render_document(root))
        div = reparsed.find_first("div")
        for name, value in attrs.items():
            assert div.get(name) == value


class TestManyRawTextTags:
    """Regression: lowercasing the whole source per raw-text tag made
    script-heavy pages quadratic; the lowered copy is now built once."""

    def test_hundreds_of_scripts_parse_correctly(self):
        blocks = "".join(
            f"<script>var v{i} = '<p>not markup</p>';</script><p>t{i}</p>"
            for i in range(400)
        )
        dom = parse_html(f"<body>{blocks}</body>")
        scripts = dom.find_all("script")
        paragraphs = dom.find_all("p")
        assert len(scripts) == 400
        assert len(paragraphs) == 400  # none swallowed by script bodies
        assert scripts[0].children[0].text == "var v0 = '<p>not markup</p>';"
        assert scripts[399].children[0].text == "var v399 = '<p>not markup</p>';"

    def test_mixed_case_closing_tags_still_close(self):
        dom = parse_html("<script>a</SCRIPT><STYLE>b</style><p>after</p>")
        assert dom.find_first("p").text_content() == "after"
        assert dom.find_first("script").children[0].text == "a"

    def test_script_heavy_page_scales_linearly(self):
        import time

        def wall(tags: int) -> float:
            text = "<body>" + "<script>var x = 1;</script>" * tags + "</body>"
            began = time.perf_counter()
            parse_html(text)
            return time.perf_counter() - began

        wall(100)  # warm-up
        small, large = wall(200), wall(800)
        # 4x the tags must not cost anything near the quadratic 16x;
        # the bound is loose enough for noisy CI machines.
        assert large < small * 10
