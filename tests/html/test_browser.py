"""Tests for the headless browser."""

import pytest

from repro.html.browser import Browser, BrowserError
from repro.net.transport import HttpResponse


HOMEPAGE = """
<html><head><title>My Site</title></head><body>
<a href="/signup">Sign up</a>
<a href="#frag">skip</a>
<a href="javascript:void(0)">skip too</a>
<a href="mailto:a@b.c">mail</a>
<a href="http://other.test/abs">elsewhere</a>
<form action="/register" method="post">
  <input name="email"><input type="password" name="pw">
  <button type="submit">Go</button>
</form>
</body></html>
"""


@pytest.fixture
def site(transport):
    posts = []

    def handler(request):
        if request.method == "POST":
            posts.append(dict(request.form))
            return HttpResponse(200, "<p>registration successful</p>")
        return HttpResponse(200, HOMEPAGE)

    transport.register_host("b.test", handler)
    return posts


class TestLoad:
    def test_load_sets_current_page(self, transport, site):
        browser = Browser(transport)
        page = browser.load("http://b.test/")
        assert page.ok
        assert browser.current_page is page
        assert page.title == "My Site"

    def test_links_absolute_and_filtered(self, transport, site):
        page = Browser(transport).load("http://b.test/")
        urls = [url for url, _text in page.links()]
        assert "http://b.test/signup" in urls
        assert "http://other.test/abs" in urls
        assert not any(u.startswith(("javascript:", "mailto:")) for u in urls)
        assert not any("#" in u for u in urls)

    def test_unreachable_host_raises_browser_error(self, transport):
        with pytest.raises(BrowserError):
            Browser(transport).load("http://ghost.test/")


class TestSubmit:
    def test_submit_posts_serialized_values(self, transport, site):
        browser = Browser(transport)
        page = browser.load("http://b.test/")
        form = page.forms()[0]
        landing = browser.submit_form(form, {"email": "a@x.test", "pw": "secret"})
        assert "successful" in landing.visible_text()
        assert site == [{"email": "a@x.test", "pw": "secret"}]

    def test_submit_without_page_rejected(self, transport, site):
        browser = Browser(transport)
        page = Browser(transport).load("http://b.test/")
        form = page.forms()[0]
        with pytest.raises(BrowserError):
            browser.submit_form(form, {})

    def test_get_method_form_uses_query(self, transport):
        seen = {}

        def handler(request):
            if request.path == "/search":
                seen.update(request.query)
                return HttpResponse(200, "<p>results</p>")
            return HttpResponse(
                200, '<form action="/search" method="get"><input name="q"></form>'
            )

        transport.register_host("g.test", handler)
        browser = Browser(transport)
        page = browser.load("http://g.test/")
        browser.submit_form(page.forms()[0], {"q": "term"})
        assert seen == {"q": "term"}


class TestParsedDomCache:
    """The DOM cache hands out clones; mutations must never leak."""

    def test_repeat_loads_get_independent_trees(self, transport, site):
        browser = Browser(transport)
        first = browser.load("http://b.test/")
        first.dom.find_first("title").children.clear()
        first.dom.find_first("form").set("action", "/hijacked")

        second = browser.load("http://b.test/")
        assert second.dom is not first.dom
        assert second.title == "My Site"
        assert second.dom.find_first("form").get("action") == "/register"

    def test_cached_tree_matches_uncached_parse(self, transport, site):
        from repro.html.browser import _parse_body
        from repro.html.parser import parse_html
        from repro.perf import caching as _perf

        _perf.clear_all_caches()
        cached_cold = _parse_body(HOMEPAGE)
        cached_warm = _parse_body(HOMEPAGE)
        plain = parse_html(HOMEPAGE)
        assert cached_cold.to_html() == plain.to_html()
        assert cached_warm.to_html() == plain.to_html()

    def test_clone_reparents_children_to_the_clone(self):
        from repro.html.parser import parse_html

        tree = parse_html("<div><p>x<span>y</span></p></div>")
        copy = tree.clone()
        p = copy.find_first("p")
        assert p.parent.tag == "div"
        assert p.parent is not tree.find_first("div")
        assert copy.to_html() == tree.to_html()

    def test_disabled_layer_bypasses_the_cache(self, transport, site):
        from repro.html.browser import _DOM_CACHE
        from repro.perf import caching as _perf

        _perf.set_enabled(False)
        hits, misses = _DOM_CACHE.hits, _DOM_CACHE.misses
        try:
            browser = Browser(transport)
            browser.load("http://b.test/")
            browser.load("http://b.test/")
            assert (_DOM_CACHE.hits, _DOM_CACHE.misses) == (hits, misses)
        finally:
            _perf.set_enabled(True)
