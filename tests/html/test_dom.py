"""Tests for the DOM layer."""

from repro.html.builder import el
from repro.html.dom import Element, TextNode


def sample_tree() -> Element:
    return el(
        "div", {"id": "root", "class": "outer box"},
        el("p", {"id": "p1"}, "one"),
        el("section", None,
           el("p", {"id": "p2"}, "two"),
           el("span", None, "three")),
    )


class TestQueries:
    def test_iter_preorder(self):
        tags = [node.tag for node in sample_tree().iter()]
        assert tags == ["div", "p", "section", "p", "span"]

    def test_find_all(self):
        assert [p.id for p in sample_tree().find_all("p")] == ["p1", "p2"]

    def test_find_first(self):
        assert sample_tree().find_first("span").text_content() == "three"
        assert sample_tree().find_first("table") is None

    def test_find_by_id(self):
        assert sample_tree().find_by_id("p2").text_content() == "two"
        assert sample_tree().find_by_id("missing") is None

    def test_text_content_normalizes_whitespace(self):
        node = el("div", None, "  a  ", el("b", None, " b "), " c ")
        assert node.text_content() == "a b c"

    def test_classes(self):
        assert sample_tree().classes == ["outer", "box"]

    def test_ancestors_and_closest(self):
        tree = sample_tree()
        span = tree.find_first("span")
        assert [a.tag for a in span.ancestors()] == ["section", "div"]
        assert span.closest("div") is tree
        assert span.closest("span") is span
        assert span.closest("table") is None


class TestMutation:
    def test_append_string_becomes_text(self):
        node = Element("p")
        child = node.append("hello")
        assert isinstance(child, TextNode)
        assert node.text_content() == "hello"

    def test_extend(self):
        node = Element("p")
        node.extend(["a", Element("b")])
        assert len(node.children) == 2

    def test_attribute_access_case_insensitive(self):
        node = Element("input", {"TYPE": "text"})
        assert node.get("type") == "text"
        node.set("NAME", "x")
        assert node.get("name") == "x"
        assert node.has("Name")


class TestSerialization:
    def test_void_element_no_close_tag(self):
        assert Element("br").to_html() == "<br>"

    def test_attribute_escaping(self):
        node = Element("div", {"title": 'a"b'})
        assert "&quot;" in node.to_html()

    def test_text_escaping(self):
        node = el("p", None, "a < b & c")
        html = node.to_html()
        assert "&lt;" in html and "&amp;" in html

    def test_nested_serialization(self):
        assert sample_tree().to_html().startswith('<div id="root"')
