"""Property-based tests: the HTML substrate never breaks."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.html.builder import el, page_skeleton, render_document
from repro.html.dom import VOID_ELEMENTS, Element
from repro.html.parser import parse_html

# Arbitrary text, excluding raw control characters and surrogates.
printable_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc")), max_size=120
)

# Void elements (br, img, ...) can't hold children, so a chain that
# includes one legitimately drops everything nested inside it.
tag_names = st.from_regex(r"[a-z][a-z0-9]{0,6}", fullmatch=True).filter(
    lambda tag: tag not in VOID_ELEMENTS
)


class TestParserRobustness:
    @given(printable_text)
    @settings(max_examples=200)
    def test_parser_never_raises_on_arbitrary_text(self, text):
        dom = parse_html(text)
        assert dom.tag == "html"

    @given(printable_text)
    def test_parser_never_raises_on_tag_soup(self, text):
        soup = f"<div><p>{text}</p><input value='{text[:10]}'><unclosed>"
        dom = parse_html(soup)
        assert dom.find_first("div") is not None

    @given(st.lists(tag_names, min_size=1, max_size=6))
    def test_nested_structure_roundtrip(self, tags):
        node = root = Element("body")
        for tag in tags:
            child = Element(tag)
            node.append(child)
            node = child
        node.append("leaf")
        reparsed = parse_html(root.to_html())
        # The nesting chain survives (void tags flatten out, so walk
        # what remains and check the leaf text is reachable).
        assert "leaf" in reparsed.text_content()


class TestSerializationProperties:
    @given(printable_text)
    def test_text_escaping_roundtrip(self, text):
        node = el("p", None, text)
        reparsed = parse_html(f"<html>{node.to_html()}</html>")
        assert reparsed.find_first("p").text_content() == " ".join(text.split())

    @given(st.dictionaries(
        keys=st.from_regex(r"[a-z][a-z0-9]{0,7}", fullmatch=True),
        values=printable_text,
        min_size=0, max_size=4,
    ))
    def test_attribute_escaping_roundtrip(self, attrs):
        node = el("div", attrs)
        reparsed = parse_html(node.to_html())
        div = reparsed.find_first("div")
        for name, value in attrs.items():
            assert div.get(name) == value

    @given(printable_text)
    def test_serialize_parse_serialize_stable(self, text):
        root, body = page_skeleton("T")
        body.append(el("p", {"class": "x"}, text))
        once = render_document(root)
        twice = "<!DOCTYPE html>\n" + parse_html(once).to_html()
        assert parse_html(twice).text_content() == parse_html(once).text_content()
