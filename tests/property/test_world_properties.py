"""Property-based tests over the simulation substrate."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacker.cracking import crack_records
from repro.attacker.breach import StolenRecord
from repro.identity.passwords import (
    generate_easy_password,
    generate_hard_password,
)
from repro.sim.clock import SimClock
from repro.sim.events import EventQueue
from repro.web.passwords import PasswordStorage, StoredCredential


class TestEventQueueProperties:
    @given(st.lists(st.integers(min_value=0, max_value=10**6), max_size=40))
    def test_random_schedules_execute_sorted(self, times):
        clock = SimClock(0)
        queue = EventQueue(clock)
        fired: list[int] = []
        for t in times:
            queue.schedule(t, "e", lambda t=t: fired.append(t))
        queue.run_all()
        assert fired == sorted(times)

    @given(st.lists(st.integers(min_value=0, max_value=10**6), max_size=40),
           st.integers(min_value=0, max_value=10**6))
    def test_run_until_partitions_by_deadline(self, times, deadline):
        clock = SimClock(0)
        queue = EventQueue(clock)
        fired: list[int] = []
        for t in times:
            queue.schedule(t, "e", lambda t=t: fired.append(t))
        queue.run_until(deadline)
        assert fired == sorted(t for t in times if t <= deadline)
        assert clock.now() >= deadline

    @given(st.lists(st.integers(min_value=0, max_value=10**5), min_size=1, max_size=30))
    def test_clock_never_goes_backward(self, times):
        clock = SimClock(0)
        queue = EventQueue(clock)
        observed: list[int] = []
        for t in times:
            queue.schedule(t, "e", lambda: observed.append(clock.now()))
        queue.run_all()
        assert observed == sorted(observed)


def _stored(storage: PasswordStorage, password: str) -> StolenRecord:
    return StolenRecord(
        site_host="s.test", username="u", email="u@bigmail.example",
        credential=StoredCredential.store(storage, password, salt_source="u"),
        plaintext=password if storage.exposes_all_passwords else None,
    )


class TestCrackingProperties:
    @given(st.integers(), st.sampled_from(list(PasswordStorage)))
    @settings(max_examples=60, deadline=None)
    def test_easy_passwords_always_recoverable(self, seed, storage):
        """Dictionary-derived passwords fall to any storage policy."""
        password = generate_easy_password(random.Random(seed))
        cracked = crack_records([_stored(storage, password)], breach_time=0)
        assert len(cracked) == 1
        assert cracked[0].password == password

    @given(st.integers(), st.sampled_from([
        PasswordStorage.UNSALTED_MD5, PasswordStorage.SALTED_HASH,
        PasswordStorage.STRONG_HASH,
    ]))
    @settings(max_examples=60, deadline=None)
    def test_hard_passwords_never_crack_from_hashes(self, seed, storage):
        password = generate_hard_password(random.Random(seed))
        cracked = crack_records([_stored(storage, password)], breach_time=0)
        assert cracked == []

    @given(st.integers(), st.sampled_from([
        PasswordStorage.PLAINTEXT, PasswordStorage.REVERSIBLE,
    ]))
    @settings(max_examples=60, deadline=None)
    def test_hard_passwords_fall_to_reversible_storage(self, seed, storage):
        password = generate_hard_password(random.Random(seed))
        cracked = crack_records([_stored(storage, password)], breach_time=0)
        assert [c.password for c in cracked] == [password]

    @given(st.integers())
    @settings(max_examples=30, deadline=None)
    def test_crack_availability_never_precedes_breach(self, seed):
        rng = random.Random(seed)
        storage = rng.choice(list(PasswordStorage))
        password = generate_easy_password(rng)
        breach_time = rng.randrange(0, 10**9)
        cracked = crack_records([_stored(storage, password)], breach_time=breach_time)
        assert all(c.available_at >= breach_time for c in cracked)


class TestPasswordClassSeparation:
    @given(st.integers(), st.integers())
    @settings(max_examples=60)
    def test_classes_never_collide(self, seed_a, seed_b):
        easy = generate_easy_password(random.Random(seed_a))
        hard = generate_hard_password(random.Random(seed_b))
        assert easy != hard  # length 8 vs 10, structurally disjoint
