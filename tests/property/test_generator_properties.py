"""Property-based tests over the site generator and population."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.rngtree import RngTree
from repro.web.generator import SiteGenerator, bot_check_prob, eligibility_probs
from repro.web.spec import LinkPlacement, RegistrationStyle


class TestGeneratorProperties:
    @given(st.integers(min_value=1, max_value=10**6), st.integers(min_value=0, max_value=100))
    @settings(max_examples=80, deadline=None)
    def test_spec_deterministic_for_any_rank_and_seed(self, rank, seed):
        a = SiteGenerator(RngTree(seed)).spec_for_rank(rank)
        b = SiteGenerator(RngTree(seed)).spec_for_rank(rank)
        assert a.host == b.host
        assert a.language == b.language
        assert a.registration_style == b.registration_style
        assert a.password_storage == b.password_storage
        assert a.anchor_text == b.anchor_text

    @given(st.integers(min_value=1, max_value=10**7))
    @settings(max_examples=100, deadline=None)
    def test_eligibility_probs_are_a_subdistribution(self, rank):
        probs = eligibility_probs(rank)
        assert all(0.0 <= p <= 1.0 for p in probs)
        assert sum(probs) < 1.0  # the residual is the "rest" bucket

    @given(st.integers(min_value=1, max_value=10**7))
    @settings(max_examples=100, deadline=None)
    def test_bot_check_prob_bounded(self, rank):
        assert 0.10 <= bot_check_prob(rank) <= 0.40

    @given(st.integers(min_value=1, max_value=2000))
    @settings(max_examples=60, deadline=None)
    def test_spec_internal_consistency(self, rank):
        spec = SiteGenerator(RngTree(77)).spec_for_rank(rank)
        # Hidden links imply neutral registration paths.
        if spec.link_placement in (LinkPlacement.IMAGE_ONLY, LinkPlacement.UNLINKED):
            assert "signup" not in spec.registration_path
            assert "regist" not in spec.registration_path
        # Multistage metadata only appears on multistage sites.
        if spec.registration_style is not RegistrationStyle.MULTISTAGE:
            assert not spec.multistage_credentials_first
            assert not spec.multistage_creates_at_step1
        # Step-1 creation requires credentials-first ordering.
        if spec.multistage_creates_at_step1:
            assert spec.multistage_credentials_first
        # Non-English sites never carry English anchor texts.
        if not spec.is_english:
            assert spec.anchor_text not in (
                "Sign up", "Register", "Create an account", "Join now",
            )
        # The shadow-ban probability is a probability.
        assert 0.0 <= spec.shadow_ban_rate <= 1.0
