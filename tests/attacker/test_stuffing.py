"""Credential stuffing engine: corpus determinism, join equivalence,
and batched-vs-per-event dispatch producing identical provider worlds."""

import pytest
from array import array

from repro.attacker.breach import BreachMethod
from repro.attacker import stuffing as stuffing_mod
from repro.attacker.stuffing import (
    AttackClass,
    StuffingEngine,
    _intersect_sorted,
    build_benign_corpus,
)
from repro.email_provider.provider import EmailProvider
from repro.identity.reuse import CrossSiteReuseModel
from repro.sim.clock import SimClock
from repro.traffic.population import BenignPopulation
from repro.util.rngtree import RngTree

START = 1_500_000
SEED = 23
UNIVERSE = 600


@pytest.fixture(scope="module")
def model():
    return CrossSiteReuseModel.from_tree(
        RngTree(SEED), exact_rate=0.35, derive_rate=0.3, site_density=0.2
    )


def make_world(size=400):
    provider = EmailProvider("stuff.example", SimClock(START), RngTree(SEED))
    population = BenignPopulation(size)
    population.register_with(provider)
    return provider, population


def make_engine(model, size=400, batch_events=64):
    provider, population = make_world(size)
    engine = StuffingEngine(
        provider, population, model, RngTree(SEED + 1), batch_events=batch_events
    )
    return provider, engine


def world_state(provider):
    return {
        "telemetry": provider.telemetry.columns(),
        "states": bytes(provider._table.states),
        "throttle": dict(provider._throttle),
        "windows": provider.login_window_snapshot(),
        "first_ips": bytes(provider._ip_first),
    }


class TestCorpus:
    def test_online_capture_takes_every_member(self, model):
        corpus = build_benign_corpus(
            model, UNIVERSE, 7, "breached.test", BreachMethod.ONLINE_CAPTURE
        )
        assert list(corpus.users) == list(model.members(7, UNIVERSE))
        assert corpus.acquisition is AttackClass.ONLINE_CAPTURE
        assert len(corpus.passwords) == len(corpus)

    def test_db_dump_keeps_only_cracked_rows(self, model):
        full = build_benign_corpus(
            model, UNIVERSE, 7, "breached.test", BreachMethod.ONLINE_CAPTURE
        )
        dump = build_benign_corpus(
            model, UNIVERSE, 7, "breached.test", BreachMethod.DB_DUMP,
            crack_rate=0.5,
        )
        assert dump.acquisition is AttackClass.OFFLINE_CRACK
        assert 0 < len(dump) < len(full)
        assert set(dump.users) <= set(full.users)
        # The cracked subset is a pure per-(user, site) coin.
        again = build_benign_corpus(
            model, UNIVERSE, 7, "breached.test", BreachMethod.DB_DUMP,
            crack_rate=0.5,
        )
        assert again.users == dump.users
        assert again.passwords == dump.passwords

    def test_corpus_passwords_are_the_site_passwords(self, model):
        corpus = build_benign_corpus(
            model, UNIVERSE, 7, "breached.test", BreachMethod.ONLINE_CAPTURE
        )
        for u, pw in zip(corpus.users, corpus.passwords):
            assert pw == model.site_password(u, 7)

    def test_corpus_prefix_closed_across_universes(self, model):
        small = build_benign_corpus(
            model, 300, 7, "breached.test", BreachMethod.ONLINE_CAPTURE
        )
        large = build_benign_corpus(
            model, UNIVERSE, 7, "breached.test", BreachMethod.ONLINE_CAPTURE
        )
        n = len(small)
        assert list(large.users)[:n] == list(small.users)
        assert large.passwords[:n] == small.passwords


class TestSortedJoin:
    def test_numpy_join_matches_two_pointer_reference(self, monkeypatch):
        a = array("q", [1, 4, 5, 9, 20, 21, 40])
        b = array("q", [0, 4, 9, 21, 22, 39, 40, 41])
        vectorized = _intersect_sorted(a, b)
        monkeypatch.setattr(stuffing_mod, "np", None)
        reference = _intersect_sorted(a, b)
        assert list(vectorized) == list(reference) == [4, 9, 21, 40]

    def test_empty_and_disjoint_joins(self):
        assert list(_intersect_sorted(array("q"), array("q", [1]))) == []
        assert list(_intersect_sorted(array("q", [1, 2]), array("q", [3]))) == []


class TestWavePlanning:
    def test_candidates_are_corpus_rows_inside_the_population(self, model):
        provider, engine = make_engine(model, size=300)
        corpus = build_benign_corpus(
            model, UNIVERSE, 7, "breached.test", BreachMethod.ONLINE_CAPTURE
        )
        wave = engine.plan_wave(corpus)
        assert list(wave.users) == [u for u in corpus.users if u < 300]
        total = sum(len(b.keys) for b in wave.batches)
        assert total == wave.candidates

    def test_batch_splitting_preserves_event_order(self, model):
        _, engine_small = make_engine(model, batch_events=16)
        _, engine_big = make_engine(model, batch_events=10_000)
        corpus = build_benign_corpus(
            model, UNIVERSE, 7, "breached.test", BreachMethod.ONLINE_CAPTURE
        )
        small = engine_small.plan_wave(corpus)
        big = engine_big.plan_wave(corpus)
        assert len(small.batches) > 1
        assert len(big.batches) == 1
        flat = lambda waves, col: [
            v for b in waves.batches for v in getattr(b, col)
        ]
        for col in ("keys", "passwords", "ips", "methods", "rows"):
            assert flat(small, col) == flat(big, col)

    def test_proxy_ips_stay_out_of_the_benign_space(self, model):
        _, engine = make_engine(model)
        corpus = build_benign_corpus(
            model, UNIVERSE, 7, "breached.test", BreachMethod.ONLINE_CAPTURE
        )
        wave = engine.plan_wave(corpus)
        for batch in wave.batches:
            for ip in batch.ips:
                assert ip >> 24 == 0x2E
                assert not (0x60000000 <= ip < 0x80000000)

    def test_site_target_reports_reflect_reuse(self, model):
        _, engine = make_engine(model)
        corpus = build_benign_corpus(
            model, UNIVERSE, 7, "breached.test", BreachMethod.ONLINE_CAPTURE
        )
        wave = engine.plan_wave(corpus, targets=(7, 9, 11))
        by_rank = {t.target_rank: t for t in wave.site_targets}
        # Self-target: every held credential trivially works.
        assert by_rank[7].hits == by_rank[7].candidates == len(corpus)
        for rank in (9, 11):
            report = by_rank[rank]
            members = set(model.members(rank, UNIVERSE))
            expected_candidates = [u for u in corpus.users if u in members]
            assert report.candidates == len(expected_candidates)
            expected_hits = sum(
                1
                for u in expected_candidates
                if model.site_password(u, 7) == model.site_password(u, rank)
            )
            assert report.hits == expected_hits
            assert 0 < report.candidates
            assert report.hits <= report.candidates


class TestDispatchEquivalence:
    def test_batched_and_per_event_worlds_are_identical(self, model):
        corpus = build_benign_corpus(
            model, UNIVERSE, 7, "breached.test", BreachMethod.ONLINE_CAPTURE
        )
        provider_b, engine_b = make_engine(model, batch_events=32)
        result_b = engine_b.execute_wave(engine_b.plan_wave(corpus), batched=True)
        provider_s, engine_s = make_engine(model, batch_events=32)
        result_s = engine_s.execute_wave(engine_s.plan_wave(corpus), batched=False)
        assert world_state(provider_b) == world_state(provider_s)
        assert result_b == result_s

    def test_wave_result_separates_hits_from_misses(self, model):
        corpus = build_benign_corpus(
            model, UNIVERSE, 7, "breached.test", BreachMethod.ONLINE_CAPTURE
        )
        _, engine = make_engine(model)
        result = engine.execute_wave(engine.plan_wave(corpus))
        assert result.attack_class is AttackClass.STUFFED_REUSE
        assert result.attempts == result.candidates
        assert result.successes + result.bad_passwords == result.attempts
        assert 0 < result.successes < result.attempts
        # Hits are exactly the EXACT reusers (mailbox password leaked
        # verbatim at the breached site).
        from repro.identity.reuse import ReuseClass

        expected = [
            u
            for u in engine.plan_wave(corpus).users
            if model.behavior(u) is ReuseClass.EXACT
        ]
        assert list(result.hit_users) == expected
        assert engine.stats()["successes"] == result.successes

    def test_wave_columns_are_deterministic_per_wave_index(self, model):
        corpus = build_benign_corpus(
            model, UNIVERSE, 7, "breached.test", BreachMethod.ONLINE_CAPTURE,
            wave=3,
        )
        _, engine_a = make_engine(model)
        _, engine_b = make_engine(model)
        wave_a = engine_a.plan_wave(corpus)
        # Planning other waves first must not shift wave 3's columns.
        other = build_benign_corpus(
            model, UNIVERSE, 9, "other.test", BreachMethod.ONLINE_CAPTURE,
            wave=1,
        )
        engine_b.plan_wave(other)
        wave_b = engine_b.plan_wave(corpus)
        for a, b in zip(wave_a.batches, wave_b.batches):
            assert a.ips == b.ips
            assert a.methods == b.methods
            assert a.keys == b.keys
