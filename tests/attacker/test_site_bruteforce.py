"""Tests for the online site brute-force channel (§4.4, §6.3.5)."""

import pytest

from repro.attacker.checker import CredentialChecker
from repro.attacker.botnet import BotnetProxyNetwork
from repro.attacker.profiles import CheckerArchetype, CheckerProfile
from repro.attacker.site_bruteforce import SiteBruteForcer
from repro.core.monitor import CompromiseMonitor
from repro.core.system import TripwireSystem
from repro.identity.passwords import PasswordClass
from repro.net.ipaddr import IPv4Address
from repro.util.timeutil import DAY
from repro.web.spec import BotCheck, LinkPlacement, RegistrationStyle, ResponseStyle

ATTACKER_IP = IPv4Address.parse("25.99.0.7")


def build_world(protection: bool, public_list: bool = True):
    overrides = {1: {
        "bucket": "rest",
        "host": "forum.test",
        "language": "en",
        "load_fails": False,
        "registration_style": RegistrationStyle.SIMPLE,
        "link_placement": LinkPlacement.PROMINENT,
        "registration_path": "/signup",
        "anchor_text": "Sign up",
        "bot_check": BotCheck.NONE,
        "response_style": ResponseStyle.CLEAR,
        "extra_unlabeled_field": False,
        "requires_special_char": False,
        "shadow_ban_rate": 0.0,
        "max_email_length": None,
        "max_username_length": None,
        "requires_admin_approval": False,
        "email_behavior": __import__("repro.web.spec", fromlist=["EmailBehavior"]).EmailBehavior.NOTHING,
        "site_brute_force_protection": protection,
        "lists_usernames_publicly": public_list,
        "wants_username": True,
        "wants_confirm_password": False,
        "wants_terms_checkbox": False,
        "wants_name": False,
        "wants_phone": False,
        "label_style": "for",
    }}
    system = TripwireSystem(seed=314, population_size=2, site_overrides=overrides)
    system.crawler.config.system_error_rate = 0.0
    system.provision_identities(2, PasswordClass.EASY)
    site = system.population.site_at_rank(1)
    # Register an easy-password honey account directly through HTTP.
    identity = system.pool.checkout_any("forum.test", PasswordClass.EASY)
    system.transport.post("http://forum.test/signup/submit", {
        "email": identity.email_address,
        "username": identity.site_username,
        "password": identity.password,
    }, client_ip=system.proxy_pool.acquire_for_site("forum.test"))
    system.pool.burn(identity.identity_id)
    assert site.accounts.lookup(identity.email_address) is not None
    return system, site, identity


class TestHarvesting:
    def test_public_member_list_scraped(self):
        system, _site, identity = build_world(protection=False)
        forcer = SiteBruteForcer(system.transport, ATTACKER_IP)
        usernames = forcer.harvest_usernames("forum.test")
        assert identity.site_username in usernames

    def test_no_public_list_no_usernames(self):
        system, _site, _identity = build_world(protection=False, public_list=False)
        forcer = SiteBruteForcer(system.transport, ATTACKER_IP)
        assert forcer.harvest_usernames("forum.test") == []


class TestBruteForce:
    def test_unprotected_site_leaks_easy_credentials(self):
        system, _site, identity = build_world(protection=False)
        forcer = SiteBruteForcer(system.transport, ATTACKER_IP,
                                 provider_domain=system.provider.domain)
        recovered = forcer.attack("forum.test", when=system.clock.now())
        passwords = {c.password for c in recovered}
        assert identity.password in passwords
        assert forcer.stats.login_attempts > 0

    def test_rate_limited_site_resists(self):
        system, _site, _identity = build_world(protection=True)
        forcer = SiteBruteForcer(system.transport, ATTACKER_IP,
                                 provider_domain=system.provider.domain)
        recovered = forcer.attack("forum.test", when=system.clock.now())
        assert recovered == []
        assert forcer.stats.locked_out_accounts >= 1

    def test_tripwire_detects_bruteforce_channel(self):
        """§4.4: "Tripwire would correctly declare a site as compromised
        in this situation" — no database breach required."""
        system, _site, identity = build_world(protection=False)
        if identity.site_username != identity.email_local:
            pytest.skip("local part longer than the site-username prefix")
        forcer = SiteBruteForcer(system.transport, ATTACKER_IP,
                                 provider_domain=system.provider.domain)
        recovered = forcer.attack("forum.test", when=system.clock.now())
        botnet = BotnetProxyNetwork(system.whois, system.tree.child("botnet").rng())
        checker = CredentialChecker(system.provider, botnet, system.queue,
                                    system.tree.child("checker").rng())
        profile = CheckerProfile(archetype=CheckerArchetype.VERIFIER,
                                 initial_delay_days=1, session_count=1,
                                 period_days=5, multi_ip_burst_prob=0.0,
                                 hammer_prob=0.0)
        checker.launch(recovered, profile)
        system.queue.run_until(system.clock.now() + 10 * DAY)
        monitor = CompromiseMonitor(system.pool, system.control_locals,
                                    system.provider.domain)
        monitor.ingest_dump(system.provider.collect_login_dump())
        assert "forum.test" in monitor.detections
        assert monitor.alarms == []
