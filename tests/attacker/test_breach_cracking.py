"""Tests for breaches and offline cracking (Sections 6.1.2, 4.4)."""


from repro.attacker.breach import BreachEvent, BreachMethod, execute_breach
from repro.attacker.cracking import crack_records, dictionary_guesses
from repro.sim.clock import SimClock
from repro.util.rngtree import RngTree
from repro.util.timeutil import DAY
from repro.web.site import Website
from repro.web.spec import SiteSpec


def make_site(storage: str, shards: int = 1) -> Website:
    spec = SiteSpec(host="victim.test", rank=100, category="Gaming", language="en",
                    password_storage=storage, shard_count=shards)
    return Website(spec, SimClock(500_000), RngTree(41).rng())


def populate(site: Website):
    site.accounts.register("easyuser", "easy@bigmail.example", "Website1",
                           created_at=0)
    site.accounts.register("harduser", "hard@bigmail.example", "i5Nss87yf3",
                           created_at=0)
    site._observed_plaintexts["easyuser"] = "Website1"
    site._observed_plaintexts["harduser"] = "i5Nss87yf3"


class TestBreachExecution:
    def test_db_dump_takes_all_accounts(self):
        site = make_site("salted_hash")
        populate(site)
        records = execute_breach(site, BreachEvent("victim.test", 100, BreachMethod.DB_DUMP))
        assert {r.username for r in records} == {"easyuser", "harduser"}

    def test_db_dump_plaintext_storage_reveals_passwords(self):
        site = make_site("plaintext")
        populate(site)
        records = execute_breach(site, BreachEvent("victim.test", 100, BreachMethod.DB_DUMP))
        assert {r.plaintext for r in records} == {"Website1", "i5Nss87yf3"}

    def test_db_dump_hashed_storage_hides_passwords(self):
        site = make_site("strong_hash")
        populate(site)
        records = execute_breach(site, BreachEvent("victim.test", 100, BreachMethod.DB_DUMP))
        assert all(r.plaintext is None for r in records)

    def test_online_capture_bypasses_hashing(self):
        site = make_site("strong_hash")
        populate(site)
        records = execute_breach(
            site, BreachEvent("victim.test", 100, BreachMethod.ONLINE_CAPTURE))
        assert {r.plaintext for r in records} == {"Website1", "i5Nss87yf3"}

    def test_sharded_breach_exposes_subset(self):
        site = make_site("salted_hash", shards=4)
        for i in range(40):
            site.accounts.register(f"user{i}", f"u{i}@m.test", "Website1", created_at=0)
        event = BreachEvent("victim.test", 100, BreachMethod.DB_DUMP,
                            exposed_shards=frozenset({0}))
        records = execute_breach(site, event)
        assert 0 < len(records) < 40

    def test_describe(self):
        event = BreachEvent("victim.test", 100, BreachMethod.DB_DUMP)
        assert "victim.test" in event.describe()
        assert "all shards" in event.describe()


class TestCracking:
    def test_easy_passwords_fall_to_dictionary(self):
        site = make_site("strong_hash")
        populate(site)
        records = execute_breach(site, BreachEvent("victim.test", 100, BreachMethod.DB_DUMP))
        cracked = crack_records(records, breach_time=100)
        assert [c.password for c in cracked] == ["Website1"]

    def test_hard_passwords_survive_hashing(self):
        site = make_site("salted_hash")
        populate(site)
        records = execute_breach(site, BreachEvent("victim.test", 100, BreachMethod.DB_DUMP))
        cracked = crack_records(records, breach_time=100)
        assert all(c.password != "i5Nss87yf3" for c in cracked)

    def test_plaintext_available_immediately(self):
        site = make_site("plaintext")
        populate(site)
        records = execute_breach(site, BreachEvent("victim.test", 100, BreachMethod.DB_DUMP))
        cracked = crack_records(records, breach_time=100)
        assert all(c.available_at == 100 for c in cracked)
        assert len(cracked) == 2

    def test_crack_delay_scales_with_hash_strength(self):
        weak_site = make_site("unsalted_md5")
        populate(weak_site)
        strong_site = make_site("strong_hash")
        populate(strong_site)
        weak = crack_records(
            execute_breach(weak_site, BreachEvent("victim.test", 0, BreachMethod.DB_DUMP)),
            breach_time=0)
        strong = crack_records(
            execute_breach(strong_site, BreachEvent("victim.test", 0, BreachMethod.DB_DUMP)),
            breach_time=0)
        assert weak[0].available_at < strong[0].available_at
        assert strong[0].available_at >= 21 * DAY

    def test_dictionary_guesses_shape(self):
        guesses = dictionary_guesses()
        assert "Website1" in guesses
        assert all(len(g) == 8 for g in guesses)


class TestFastDictionaryAttack:
    """The prepared-guesses fast path must match the naive scan exactly."""

    @staticmethod
    def record_for(storage: str, password: str):
        from repro.attacker.breach import StolenRecord
        from repro.web.passwords import PasswordStorage, StoredCredential

        credential = StoredCredential.store(
            PasswordStorage(storage), password, salt_source="someuser"
        )
        return StolenRecord(site_host="victim.test", username="someuser",
                            email="s@m.test", credential=credential,
                            plaintext=None)

    def test_fast_path_matches_naive_scan_per_scheme(self):
        from repro.attacker.cracking import _dictionary_attack, _prepared_for

        guesses = dictionary_guesses()
        prepared = _prepared_for(guesses)
        for storage in ("plaintext", "reversible", "unsalted_md5",
                        "salted_hash", "strong_hash"):
            for password in ("Website1", "i5Nss87yf3"):
                record = self.record_for(storage, password)
                naive = _dictionary_attack(record, guesses, None)
                fast = _dictionary_attack(record, guesses, prepared)
                assert fast == naive, (storage, password)

    def test_crack_records_identical_with_layer_off(self):
        from repro.attacker.cracking import crack_records
        from repro.perf import caching as _perf

        records = [self.record_for("unsalted_md5", "Website1"),
                   self.record_for("salted_hash", "Website1"),
                   self.record_for("strong_hash", "i5Nss87yf3")]
        fast = crack_records(records, breach_time=100)
        _perf.set_enabled(False)
        try:
            naive = crack_records(records, breach_time=100)
        finally:
            _perf.set_enabled(True)
        assert fast == naive
        assert [c.password for c in fast] == ["Website1", "Website1"]

    def test_default_dictionary_memoizes_on_identity(self):
        """Repeat campaigns with the canonical dictionary must reuse
        the prepared object via the id-keyed memo (no O(n) tuple
        build + hash per crack_records call)."""
        from repro.attacker.cracking import (
            _PREPARED_CACHE,
            _mangled_guesses,
            _prepared_for,
            crack_records,
        )
        from repro.perf import caching as _perf

        _PREPARED_CACHE.clear()
        canonical = _mangled_guesses()
        first = _prepared_for(canonical)
        hits_before = _PREPARED_CACHE.hits
        for _ in range(3):
            assert _prepared_for(canonical) is first
        assert _PREPARED_CACHE.hits == hits_before + 3
        # The id-keyed entry pins the keying tuple, so the id cannot
        # be recycled while the memo entry lives.
        record = self.record_for("unsalted_md5", "Website1")
        assert crack_records([record], breach_time=0)[0].password == "Website1"
        assert _prepared_for(canonical) is first

    def test_mutable_guess_lists_never_take_the_identity_path(self):
        from repro.attacker.cracking import _PREPARED_CACHE, _prepared_for

        _PREPARED_CACHE.clear()
        guesses = ["Website1", "Website2"]
        first = _prepared_for(guesses)
        guesses.append("Website3")
        second = _prepared_for(guesses)
        assert second is not first
        assert second.guesses == ("Website1", "Website2", "Website3")

    def test_disable_clears_the_identity_memo(self):
        from repro.attacker.cracking import (
            _PREPARED_CACHE,
            _mangled_guesses,
            _prepared_for,
        )
        from repro.perf import caching as _perf

        _prepared_for(_mangled_guesses())
        _perf.set_enabled(False)
        try:
            assert len(_PREPARED_CACHE) == 0
        finally:
            _perf.set_enabled(True)
