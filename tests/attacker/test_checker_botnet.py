"""Tests for the botnet and the credential checker."""

import pytest

from repro.attacker.botnet import BotnetProxyNetwork
from repro.attacker.checker import CredentialChecker
from repro.attacker.cracking import CrackedCredential
from repro.attacker.monetize import Monetizer
from repro.attacker.profiles import CheckerArchetype, CheckerProfile, draw_profile
from repro.email_provider.provider import EmailProvider
from repro.email_provider.telemetry import LoginMethod
from repro.net.whois import HostKind, WhoisRegistry
from repro.sim.clock import SimClock
from repro.sim.events import EventQueue
from repro.util.rngtree import RngTree
from repro.util.timeutil import DAY


class TestBotnet:
    def test_blocks_mostly_residential(self, whois):
        botnet = BotnetProxyNetwork(whois, RngTree(1).rng(), block_count=60)
        kinds = [b.kind for b in botnet.blocks()]
        residential = sum(1 for k in kinds if k is HostKind.RESIDENTIAL)
        assert residential / len(kinds) > 0.6

    def test_country_diversity(self, whois):
        botnet = BotnetProxyNetwork(whois, RngTree(2).rng(), block_count=80)
        countries = {b.country for b in botnet.blocks()}
        assert len(countries) >= 10

    def test_fresh_ips_mostly_distinct(self, whois):
        botnet = BotnetProxyNetwork(whois, RngTree(3).rng(), block_count=40)
        ips = [botnet.fresh_ip() for _ in range(300)]
        assert len(set(ips)) > 200

    def test_ips_come_from_leased_blocks(self, whois):
        botnet = BotnetProxyNetwork(whois, RngTree(4).rng(), block_count=10)
        blocks = botnet.blocks()
        for _ in range(50):
            ip = botnet.fresh_ip()
            assert any(b.block.contains(ip) for b in blocks)

    def test_block_count_validated(self, whois):
        with pytest.raises(ValueError):
            BotnetProxyNetwork(whois, RngTree(5).rng(), block_count=0)


class TestProfiles:
    def test_draw_profile_diversity(self):
        rng = RngTree(6).rng()
        archetypes = {draw_profile(rng).archetype for _ in range(60)}
        assert archetypes == set(CheckerArchetype)

    def test_verifier_small_session_counts(self):
        rng = RngTree(7).rng()
        profiles = [draw_profile(rng) for _ in range(200)]
        verifiers = [p for p in profiles if p.archetype is CheckerArchetype.VERIFIER]
        assert all(p.session_count <= 4 for p in verifiers)

    def test_method_draw_dominated_by_imap(self):
        rng = RngTree(8).rng()
        profile = draw_profile(rng)
        methods = [profile.draw_method(rng) for _ in range(500)]
        imap_share = sum(1 for m in methods if m is LoginMethod.IMAP) / len(methods)
        assert imap_share > 0.6


def checker_world(test_fraction=1.0, avoided=(), horizon=None):
    clock = SimClock(0)
    queue = EventQueue(clock)
    provider = EmailProvider("prov.example", clock, RngTree(9))
    provider.provision("VictimAcct1", "V", "Website1")
    whois = WhoisRegistry()
    botnet = BotnetProxyNetwork(whois, RngTree(10).rng(), block_count=20)
    checker = CredentialChecker(
        provider, botnet, queue, RngTree(11).rng(),
        test_fraction=test_fraction,
        avoided_domains=frozenset(avoided),
        horizon=horizon,
    )
    return clock, queue, provider, checker


def credential(email="VictimAcct1@prov.example", password="Website1", at=0):
    return CrackedCredential(site_host="victim.test", username="victim",
                             email=email, password=password, available_at=at)


def quick_profile(sessions=3):
    return CheckerProfile(
        archetype=CheckerArchetype.SCRAPER,
        initial_delay_days=1.0,
        session_count=sessions,
        period_days=2.0,
        multi_ip_burst_prob=0.0,
        hammer_prob=0.0,
    )


class TestCredentialChecker:
    def test_successful_campaign_produces_telemetry(self):
        clock, queue, provider, checker = checker_world()
        assert checker.launch([credential()], quick_profile()) == 1
        queue.run_until(60 * DAY)
        events = provider.telemetry.all_events_ground_truth()
        assert len(events) == 3  # one per session
        assert all(e.local_part == "VictimAcct1" for e in events)

    def test_wrong_password_abandons_after_first_try(self):
        clock, queue, provider, checker = checker_world()
        checker.launch([credential(password="WrongOne1")], quick_profile())
        queue.run_until(60 * DAY)
        assert provider.telemetry.all_events_ground_truth() == []
        assert checker.campaigns[0].abandoned

    def test_other_provider_domains_ignored(self):
        clock, queue, provider, checker = checker_world()
        started = checker.launch([credential(email="x@gmailish.example")], quick_profile())
        assert started == 0

    def test_avoided_domain_skipped(self):
        clock, queue, provider, checker = checker_world(avoided=("prov.example",))
        started = checker.launch([credential()], quick_profile())
        assert started == 0
        assert checker.skipped_by_avoidance == 1

    def test_sampling_fraction_zero_tests_nothing(self):
        clock, queue, provider, checker = checker_world(test_fraction=0.0)
        started = checker.launch([credential()], quick_profile())
        assert started == 0
        assert checker.skipped_by_sampling == 1

    def test_sampling_fraction_validated(self):
        with pytest.raises(ValueError):
            checker_world(test_fraction=1.5)

    def test_horizon_pulls_first_check_inside(self):
        horizon = 30 * DAY
        clock, queue, provider, checker = checker_world(horizon=horizon)
        late_profile = CheckerProfile(
            archetype=CheckerArchetype.VERIFIER,
            initial_delay_days=400.0,  # would land past the horizon
            session_count=1, period_days=10.0,
            multi_ip_burst_prob=0.0, hammer_prob=0.0,
        )
        checker.launch([credential()], late_profile)
        queue.run_until(horizon)
        assert len(provider.telemetry.all_events_ground_truth()) == 1

    def test_burst_uses_many_ips(self):
        clock, queue, provider, checker = checker_world()
        profile = CheckerProfile(
            archetype=CheckerArchetype.COLLECTOR,
            initial_delay_days=0.5, session_count=1, period_days=5.0,
            multi_ip_burst_prob=1.0, hammer_prob=0.0,
        )
        checker.launch([credential()], profile)
        queue.run_until(10 * DAY)
        events = provider.telemetry.all_events_ground_truth()
        assert len(events) >= 5
        assert len({e.ip for e in events}) >= 5

    def test_hammer_reuses_one_ip(self):
        clock, queue, provider, checker = checker_world()
        profile = CheckerProfile(
            archetype=CheckerArchetype.COLLECTOR,
            initial_delay_days=0.5, session_count=1, period_days=5.0,
            multi_ip_burst_prob=0.0, hammer_prob=1.0,
        )
        checker.launch([credential()], profile)
        queue.run_until(10 * DAY)
        events = provider.telemetry.all_events_ground_truth()
        assert len(events) >= 15
        assert len({e.ip for e in events}) == 1


class TestMonetizer:
    def test_spam_eventually_deactivates(self):
        clock = SimClock(0)
        provider = EmailProvider("prov.example", clock, RngTree(12))
        provider.provision("SpamTarget1", "S", "Website1")
        monetizer = Monetizer(provider, RngTree(13).rng())
        monetizer.SPAM_PROB = 1.0  # force the behavior
        monetizer.after_login("SpamTarget1", "Website1", successes=5)
        log = monetizer.log_for("SpamTarget1")
        assert log.spam_sent > 0
        assert provider.account("SpamTarget1").state.value == "deactivated"

    def test_warmup_respected(self):
        clock = SimClock(0)
        provider = EmailProvider("prov.example", clock, RngTree(14))
        provider.provision("QuietOne12", "Q", "Website1")
        monetizer = Monetizer(provider, RngTree(15).rng())
        monetizer.SPAM_PROB = 1.0
        monetizer.after_login("QuietOne12", "Website1", successes=1)
        assert monetizer.log_for("QuietOne12").spam_sent == 0

    def test_hijack_changes_password_and_forwarding(self):
        clock = SimClock(0)
        provider = EmailProvider("prov.example", clock, RngTree(16))
        provider.provision("Hijacked99", "H", "Website1",
                           forwarding_address="Hijacked99@cover.example")
        monetizer = Monetizer(provider, RngTree(17).rng())
        monetizer.HIJACK_PROB = 1.0
        new_password = monetizer.after_login("Hijacked99", "Website1", successes=5)
        assert new_password is not None
        account = provider.account("Hijacked99")
        assert account.password == new_password
        assert account.forwarding_address is None
        log = monetizer.log_for("Hijacked99")
        assert log.password_changed and log.forwarding_removed
