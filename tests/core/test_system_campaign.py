"""Tests for the wired system and registration campaigns."""

import pytest

from repro.core.campaign import RegistrationCampaign, RegistrationPolicy
from repro.core.system import TripwireSystem
from repro.identity.passwords import PasswordClass
from repro.identity.pool import IdentityState


@pytest.fixture
def system():
    return TripwireSystem(seed=13, population_size=80)


def provision(system, hard=60, easy=40):
    system.provision_identities(hard, PasswordClass.HARD)
    system.provision_identities(easy, PasswordClass.EASY)


class TestProvisioning:
    def test_identities_become_provider_accounts(self, system):
        added = system.provision_identities(10, PasswordClass.HARD)
        assert added == 10
        assert system.provider.account_count() == 10
        identity = system.pool.all_identities()[0]
        account = system.provider.account(identity.email_local)
        assert account is not None
        assert account.password == identity.password  # the reuse bait
        assert account.display_name == identity.full_name

    def test_forwarding_addresses_on_cover_domains(self, system):
        system.provision_identities(4, PasswordClass.HARD)
        for identity in system.pool.all_identities():
            account = system.provider.account(identity.email_local)
            assert system.forwarding_hop.accepts(account.forwarding_address)

    def test_control_accounts_separate(self, system):
        created = system.provision_control_accounts(3)
        assert len(created) == 3
        assert len(system.control_locals) == 3
        # Controls are never handed out for registrations.
        assert system.pool.checkout_any("x.test") is None

    def test_control_logins_always_succeed_and_are_recorded(self, system):
        system.provision_control_accounts(3)
        assert system.login_control_accounts() == 3
        events = system.provider.telemetry.all_events_ground_truth()
        assert len(events) == 3


class TestMailRouting:
    def test_site_mail_reaches_tripwire_server(self, system):
        from repro.mail.messages import EmailMessage

        system.provision_identities(1, PasswordClass.HARD)
        identity = system.pool.all_identities()[0]
        message = EmailMessage(sender="noreply@s.test",
                               recipient=identity.email_address,
                               subject="Welcome to s.test", body="hi", time=0)
        assert system.route_site_mail(message)
        assert system.mail_server.stored_count == 1

    def test_foreign_domain_mail_dropped(self, system):
        from repro.mail.messages import EmailMessage

        message = EmailMessage(sender="noreply@s.test", recipient="u@elsewhere.example",
                               subject="x", body="y", time=0)
        assert not system.route_site_mail(message)


class TestCampaign:
    def test_hard_attempt_first(self, system):
        provision(system)
        campaign = RegistrationCampaign(system)
        campaign.run_batch(system.population.alexa_top(20))
        first_by_site = {}
        for attempt in campaign.attempts:
            first_by_site.setdefault(attempt.site_host, attempt)
        assert all(a.password_class is PasswordClass.HARD
                   for a in first_by_site.values())

    def test_easy_only_after_believed_success(self, system):
        provision(system)
        campaign = RegistrationCampaign(system)
        campaign.run_batch(system.population.alexa_top(40))
        easy_sites = {a.site_host for a in campaign.attempts
                      if a.password_class is PasswordClass.EASY}
        believed_sites = {a.site_host for a in campaign.attempts
                          if a.password_class is PasswordClass.HARD and a.believed_success}
        assert easy_sites <= believed_sites

    def test_exposed_identities_burned_others_released(self, system):
        provision(system)
        campaign = RegistrationCampaign(system)
        campaign.run_batch(system.population.alexa_top(30))
        exposing_site = {}
        for attempt in campaign.attempts:
            if attempt.exposed:
                # An identity is exposed at most once, ever.
                assert attempt.identity.identity_id not in exposing_site
                exposing_site[attempt.identity.identity_id] = attempt.site_host
        for attempt in campaign.attempts:
            identity_id = attempt.identity.identity_id
            state = system.pool.state(identity_id)
            if identity_id in exposing_site:
                assert state is IdentityState.BURNED
                assert system.pool.site_for(identity_id) == exposing_site[identity_id]
            else:
                assert state is IdentityState.AVAILABLE

    def test_shared_backend_sites_filtered(self, system):
        provision(system, hard=20, easy=10)
        campaign = RegistrationCampaign(system)
        from repro.web.population import RankedSite

        entry = RankedSite(rank=1, host="amazon42.com", url="http://amazon42.com/")
        campaign.run_batch([entry])
        assert campaign.stats.sites_filtered == 1
        assert campaign.attempts == []

    def test_no_site_attempted_twice_across_batches(self, system):
        provision(system)
        campaign = RegistrationCampaign(system)
        top = system.population.alexa_top(20)
        campaign.run_batch(top)
        before = len(campaign.attempts)
        campaign.run_batch(top)  # same list again
        assert len(campaign.attempts) == before

    def test_ethics_page_load_budget_per_site(self, system):
        provision(system)
        campaign = RegistrationCampaign(system)
        campaign.run_batch(system.population.alexa_top(40))
        # Section 3: the overwhelming majority of sites got <= 2
        # registration attempts; none got more than a handful beyond
        # the crawler's page budget per attempt.
        for host in {a.site_host for a in campaign.attempts}:
            attempts = campaign.attempts_for_site(host)
            assert len(attempts) <= 3

    def test_easy_first_policy_flips_order(self, system):
        provision(system)
        campaign = RegistrationCampaign(system, policy=RegistrationPolicy.EASY_FIRST)
        campaign.run_batch(system.population.alexa_top(20))
        first_by_site = {}
        for attempt in campaign.attempts:
            first_by_site.setdefault(attempt.site_host, attempt)
        assert all(a.password_class is PasswordClass.EASY
                   for a in first_by_site.values())

    def test_simultaneous_policy_attempts_both(self, system):
        provision(system)
        campaign = RegistrationCampaign(system, policy=RegistrationPolicy.SIMULTANEOUS,
                                        second_hard_probability=0.0)
        campaign.run_batch(system.population.alexa_top(20))
        by_site = {}
        for attempt in campaign.attempts:
            by_site.setdefault(attempt.site_host, []).append(attempt)
        multi = [attempts for attempts in by_site.values() if len(attempts) >= 2]
        assert multi, "simultaneous policy should try both classes somewhere"


class TestManualRegistration:
    def test_manual_only_on_eligible_sites(self, system):
        provision(system, hard=10, easy=30)
        campaign = RegistrationCampaign(system)
        results = []
        for entry in system.population.alexa_top(40):
            record = campaign.manual_register(entry)
            if record is not None:
                results.append(record)
        assert results, "some top sites should be manually registrable"
        for record in results:
            assert record.manual
            assert record.password_class is PasswordClass.EASY
            rank = system.population.rank_of_host(record.site_host)
            assert system.population.spec_at_rank(rank).eligible_for_tripwire
            # The human really created a working account.
            site = system.population.site_by_host(record.site_host)
            identity = record.identity
            assert site.accounts.lookup(identity.email_address) is not None
