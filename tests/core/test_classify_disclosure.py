"""Unit tests for attempt classification and the disclosure pipeline."""

import pytest

from repro.core.classify import AccountStatus, classify_attempt
from repro.core.campaign import AttemptRecord
from repro.core.disclosure import DisclosureCoordinator, ResponseKind
from repro.crawler.outcomes import CrawlOutcome, TerminationCode
from repro.identity.generator import IdentityFactory
from repro.identity.passwords import PasswordClass
from repro.mail.messages import EmailMessage, MessageKind
from repro.mail.server import TripwireMailServer
from repro.net.dns import DnsResolver
from repro.net.ipaddr import IPv4Address
from repro.net.transport import HttpResponse
from repro.util.rngtree import RngTree


@pytest.fixture
def mail_server(transport):
    transport.register_host("s.test", lambda r: HttpResponse(200, "ok"))
    return TripwireMailServer(transport, RngTree(3).rng(),
                              verification_click_failure_rate=0.0)


def attempt(code, exposed=True, manual=False, identity=None, when=1000):
    identity = identity or IdentityFactory(RngTree(61)).create(PasswordClass.HARD)
    outcome = CrawlOutcome(
        site_host="s.test", url="http://s.test/", code=code,
        exposed_email=exposed, exposed_password=exposed,
        started_at=when, finished_at=when + 60,
    )
    return AttemptRecord(site_host="s.test", rank=1, url="http://s.test/",
                         identity=identity, password_class=identity.password_class,
                         outcome=outcome, manual=manual, registered_at=when)


class TestClassification:
    def test_unexposed_attempt_unclassified(self, mail_server):
        record = attempt(TerminationCode.NO_REGISTRATION_FOUND, exposed=False)
        assert classify_attempt(record, mail_server) is None

    def test_manual_category(self, mail_server):
        record = attempt(TerminationCode.OK_SUBMISSION, manual=True)
        assert classify_attempt(record, mail_server) is AccountStatus.MANUAL

    def test_ok_submission_without_email(self, mail_server):
        record = attempt(TerminationCode.OK_SUBMISSION)
        assert classify_attempt(record, mail_server) is AccountStatus.OK_SUBMISSION

    def test_bad_heuristics_without_email(self, mail_server):
        record = attempt(TerminationCode.SUBMISSION_HEURISTICS_FAILED)
        assert classify_attempt(record, mail_server) is AccountStatus.BAD_HEURISTICS
        record = attempt(TerminationCode.REQUIRED_FIELDS_MISSING)
        assert classify_attempt(record, mail_server) is AccountStatus.BAD_HEURISTICS

    def test_verification_email_upgrades_to_verified(self, mail_server):
        record = attempt(TerminationCode.SUBMISSION_HEURISTICS_FAILED)
        local = record.identity.email_local
        mail_server.expect_registration(local, "s.test", time=1000)
        mail_server.receive(EmailMessage(
            sender="noreply@s.test", recipient=f"{local}@cover.example",
            subject="Please verify your account",
            body="http://s.test/verify?token=1", time=1500,
            kind=MessageKind.VERIFICATION))
        assert classify_attempt(record, mail_server) is AccountStatus.EMAIL_VERIFIED

    def test_nonverification_email_is_email_received(self, mail_server):
        record = attempt(TerminationCode.OK_SUBMISSION)
        local = record.identity.email_local
        mail_server.receive(EmailMessage(
            sender="noreply@s.test", recipient=f"{local}@cover.example",
            subject="Welcome to s.test", body="hello", time=1500))
        assert classify_attempt(record, mail_server) is AccountStatus.EMAIL_RECEIVED

    def test_mail_before_registration_ignored(self, mail_server):
        record = attempt(TerminationCode.OK_SUBMISSION, when=5000)
        local = record.identity.email_local
        mail_server.receive(EmailMessage(
            sender="x@old.test", recipient=f"{local}@cover.example",
            subject="Welcome to old.test", body="old mail", time=100))
        assert classify_attempt(record, mail_server) is AccountStatus.OK_SUBMISSION


class TestDisclosure:
    def make_coordinator(self, with_mx=True):
        dns = DnsResolver()
        dns.register_host("victim.test", IPv4Address(5))
        if with_mx:
            dns.zone("victim.test").add_mx("mail.victim.test")
        return DisclosureCoordinator(dns, RngTree(7).rng())

    def test_contacts_include_security_aliases(self):
        coordinator = self.make_coordinator()
        contacts = coordinator.candidate_contacts("victim.test")
        assert "security@victim.test" in contacts
        assert "webmaster@victim.test" in contacts

    def test_no_mx_means_undeliverable(self):
        coordinator = self.make_coordinator(with_mx=False)
        record = coordinator.disclose("victim.test", now=1000)
        assert not record.deliverable
        assert record.response is ResponseKind.NO_RESPONSE
        assert any("no MX" in note for note in record.notes)

    def test_skip_for_public_breach(self):
        coordinator = self.make_coordinator()
        record = coordinator.disclose("victim.test", now=1000, skip=True)
        assert record.response is ResponseKind.NO_RESPONSE
        assert any("already public" in note for note in record.notes)

    def test_response_rate_roughly_one_third(self):
        dns = DnsResolver()
        rng = RngTree(8).rng()
        coordinator = DisclosureCoordinator(dns, rng)
        for index in range(120):
            host = f"site{index}.test"
            dns.register_host(host, IPv4Address(1000 + index))
            dns.zone(host).add_mx(f"mail.{host}")
            coordinator.disclose(host, now=1000)
        summary = coordinator.summary()
        rate = summary["responded"] / 120
        assert 0.18 <= rate <= 0.50  # paper: 6/18 = 33%

    def test_no_site_ever_notifies_users(self):
        coordinator = self.make_coordinator()
        for index in range(30):
            coordinator.disclose(f"v{index}.test", now=1000)
        assert coordinator.summary()["notified_users"] == 0

    def test_responders_reply_within_paper_bounds(self):
        dns = DnsResolver()
        coordinator = DisclosureCoordinator(dns, RngTree(9).rng())
        for index in range(80):
            host = f"r{index}.test"
            dns.register_host(host, IPv4Address(2000 + index))
            dns.zone(host).add_mx(f"mail.{host}")
            coordinator.disclose(host, now=0)
        for record in coordinator.records:
            if record.response is not ResponseKind.NO_RESPONSE:
                # 10 minutes (site A) up to ~6 days (site C).
                assert 600 <= record.response_delay <= 6 * 86400
