"""Integration tests over the full pilot scenario (session fixture)."""

from repro.core.classify import AccountStatus
from repro.crawler.outcomes import TerminationCode
from repro.identity.passwords import PasswordClass
from repro.util.timeutil import LOG_GAP_END, LOG_GAP_START


class TestPilotIntegrity:
    def test_no_integrity_alarms(self, pilot_result):
        """The paper's central claim: no false positives — unused and
        control accounts never trip the monitor."""
        assert pilot_result.monitor.alarms == []

    def test_control_logins_all_surfaced(self, pilot_result):
        assert len(pilot_result.monitor.control_logins) > 0

    def test_every_detection_is_a_real_breach(self, pilot_result):
        assert pilot_result.detected_hosts <= pilot_result.breached_hosts

    def test_most_breaches_detected(self, pilot_result):
        detected = len(pilot_result.detected_hosts)
        assert detected >= len(pilot_result.breaches) * 0.5

    def test_detections_only_from_burned_accounts(self, pilot_result):
        pool = pilot_result.system.pool
        for detection in pilot_result.monitor.detected_sites():
            for attributed in detection.logins:
                assert pool.site_for(attributed.identity_id) == detection.site_host


class TestPilotEstimates:
    def test_all_categories_present(self, pilot_result):
        statuses = {e.status for e in pilot_result.estimates}
        assert statuses == set(AccountStatus)

    def test_success_rate_ordering_matches_paper(self, pilot_result):
        """Email-verified beats OK-submission beats bad-heuristics."""
        by_status = {e.status: e for e in pilot_result.estimates}
        verified = by_status[AccountStatus.EMAIL_VERIFIED]
        ok = by_status[AccountStatus.OK_SUBMISSION]
        bad = by_status[AccountStatus.BAD_HEURISTICS]
        assert verified.success_rate > ok.success_rate > bad.success_rate

    def test_verified_accounts_nearly_all_valid(self, pilot_result):
        by_status = {e.status: e for e in pilot_result.estimates}
        assert by_status[AccountStatus.EMAIL_VERIFIED].success_rate >= 0.85

    def test_bad_heuristics_mostly_invalid(self, pilot_result):
        by_status = {e.status: e for e in pilot_result.estimates}
        assert by_status[AccountStatus.BAD_HEURISTICS].success_rate <= 0.25

    def test_estimates_bounded_by_attempts(self, pilot_result):
        for estimate in pilot_result.estimates:
            assert 0 <= estimate.estimated_total <= estimate.attempted_total
            assert 0 <= estimate.estimated_sites <= estimate.attempted_sites

    def test_hard_skew_in_bad_bucket(self, pilot_result):
        """Easy attempts only follow believed-success hard attempts, so
        the failure bucket is hard-dominated (paper: 4,395 vs 122)."""
        by_status = {e.status: e for e in pilot_result.estimates}
        bad = by_status[AccountStatus.BAD_HEURISTICS]
        if bad.attempted_total >= 10:
            assert bad.attempted_hard > bad.attempted_easy


class TestPilotTimeline:
    def test_telemetry_gap_reproduced(self, pilot_result):
        gaps = pilot_result.system.provider.telemetry.lost_windows()
        observation_gaps = [g for g in gaps if g[0] >= LOG_GAP_START]
        assert any(abs(g[1] - LOG_GAP_END) <= 3 * 86400 for g in observation_gaps)

    def test_attacker_logins_occurred(self, pilot_result):
        assert pilot_result.checker.total_login_attempts > 0

    def test_hard_password_sites_subset_of_detected(self, pilot_result):
        detections = pilot_result.monitor.detected_sites()
        hard_sites = [d for d in detections if d.hard_accessed]
        assert len(hard_sites) <= len(detections)

    def test_reregistration_happened_for_detected_sites(self, pilot_result):
        assert set(pilot_result.reregistration_hosts) <= pilot_result.detected_hosts


class TestPilotCrawl:
    def test_all_termination_codes_exercised(self, pilot_result):
        codes = {a.outcome.code for a in pilot_result.campaign.attempts if not a.manual}
        assert TerminationCode.OK_SUBMISSION in codes
        assert TerminationCode.NOT_ENGLISH in codes
        assert TerminationCode.NO_REGISTRATION_FOUND in codes

    def test_non_english_never_exposed(self, pilot_result):
        for attempt in pilot_result.campaign.attempts:
            if attempt.outcome.code is TerminationCode.NOT_ENGLISH:
                assert not attempt.exposed

    def test_easy_accounts_only_at_believed_success_sites(self, pilot_result):
        believed = {a.site_host for a in pilot_result.campaign.attempts
                    if a.password_class is PasswordClass.HARD and a.believed_success}
        easy_sites = {a.site_host for a in pilot_result.campaign.attempts
                      if a.password_class is PasswordClass.EASY and not a.manual}
        assert easy_sites <= believed

    def test_proxy_one_ip_per_site_held(self, pilot_result):
        pool = pilot_result.system.proxy_pool
        # uses_for_site counts distinct IPs handed out; every request
        # to the same site used a fresh one by construction, so uses
        # equals the number of crawls, bounded by attempts + manual.
        for host in {a.site_host for a in pilot_result.campaign.attempts}:
            assert pool.uses_for_site(host) <= 6


class TestDisclosure:
    def test_disclosures_cover_detected_sites(self, pilot_result):
        disclosed = {r.site_host for r in pilot_result.disclosure.records}
        assert pilot_result.detected_hosts <= disclosed

    def test_no_sites_notified_users(self, pilot_result):
        summary = pilot_result.disclosure.summary()
        assert summary["notified_users"] == 0

    def test_some_disclosures_undeliverable_or_unanswered(self, pilot_result):
        records = pilot_result.disclosure.records
        assert len(records) >= 1
        responded = [r for r in records if r.response.value != "no_response"]
        assert len(responded) <= len(records)
