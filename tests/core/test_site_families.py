"""Tests for shared-backend site families (the paper's sites E/F)."""

import pytest

from repro.core.scenario import PilotScenario, ScenarioConfig
from repro.util.timeutil import DAY


@pytest.fixture(scope="module")
def family_result():
    config = ScenarioConfig(
        seed=29,  # a seed where both family accounts register and trip
        population_size=250,
        seed_list_size=40,
        main_crawl_top=200,
        second_crawl_top=250,
        manual_top=10,
        breach_count=6,
        breach_hard_exposing=2,
        unused_account_count=60,
        control_account_count=3,
        site_family_count=1,
    )
    return PilotScenario(config).run()


def family_hosts(result):
    return {
        site.spec.host
        for site in result.system.population.instantiated_sites()
        if site.spec.backend_family
    }


class TestFamilies:
    def test_family_pair_exists_in_population(self, family_result):
        hosts = family_hosts(family_result)
        assert len(hosts) == 2

    def test_one_breach_exposes_the_whole_family(self, family_result):
        hosts = family_hosts(family_result)
        breached = {b.event.site_host for b in family_result.breaches}
        family_breached = hosts & breached
        # The wave scheduler picked one member; the backend pulled in
        # the sibling at the same instant.
        assert family_breached == hosts
        # The *initial* breach hits both members at the same instant
        # (a later §6.1.4 re-breach may add more events for one member).
        first_by_host = {}
        for breach in family_result.breaches:
            if breach.event.site_host in hosts:
                first_by_host.setdefault(breach.event.site_host, breach.event.time)
        assert len(set(first_by_host.values())) == 1

    def test_family_logins_temporally_aligned(self, family_result):
        hosts = family_hosts(family_result)
        detected = {h: d for h, d in family_result.monitor.detections.items()
                    if h in hosts}
        if len(detected) < 2:
            pytest.skip("family accounts not both registered this seed")
        first_logins = [d.first_login_time for d in detected.values()]
        # §6.4.1: "periodic, temporally aligned logins" — first accesses
        # land within days of each other, driven by one checker profile.
        assert abs(first_logins[0] - first_logins[1]) <= 7 * DAY

    def test_family_not_counted_as_false_positive(self, family_result):
        assert family_result.monitor.alarms == []
        assert family_result.detected_hosts <= family_result.breached_hosts
