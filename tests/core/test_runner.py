"""Sharded campaign execution: partitioning, merging, determinism."""

import pytest

from repro.core.runner import (
    CampaignRunner,
    merge_shard_results,
    pack_overrides,
    partition_sites,
    run_shard,
)
from repro.core.substrate import WorldShard
from repro.util.rngtree import RngTree

SEED = 523
POPULATION = 260
TOP = 36


@pytest.fixture(scope="module")
def sites():
    listing = WorldShard(RngTree(SEED)).build_population(POPULATION)
    return listing.alexa_top(TOP)


def fingerprint(result) -> list[tuple]:
    """Every field that must be reproduced bit-for-bit."""
    return [
        (
            a.site_host,
            a.rank,
            a.url,
            a.identity.email_local,
            a.identity.password,
            a.password_class.value,
            a.outcome.code.value,
            a.outcome.detail,
            a.outcome.exposed_email,
            a.outcome.exposed_password,
            a.outcome.pages_loaded,
            a.outcome.started_at,
            a.outcome.finished_at,
            a.outcome.filled_fields,
        )
        for a in result.attempts
    ]


class TestPartitioning:
    def test_round_robin_covers_everything_once(self, sites):
        slices = partition_sites(sites, 5)
        seen = [entry for bucket, _pos in slices for entry in bucket]
        assert sorted(e.host for e in seen) == sorted(e.host for e in sites)
        positions = sorted(p for _bucket, pos in slices for p in pos)
        assert positions == list(range(len(sites)))

    def test_single_shard_is_identity(self, sites):
        (bucket, positions), = partition_sites(sites, 1)
        assert list(bucket) == sites
        assert list(positions) == list(range(len(sites)))

    def test_more_shards_than_sites(self, sites):
        slices = partition_sites(sites[:3], 8)
        non_empty = [bucket for bucket, _pos in slices if bucket]
        assert len(non_empty) == 3

    def test_invalid_shard_count(self, sites):
        with pytest.raises(ValueError):
            partition_sites(sites, 0)

    def test_pack_overrides_round_trip(self):
        packed = pack_overrides({3: {"bucket": "rest", "language": "en"}})
        assert packed == ((3, (("bucket", "rest"), ("language", "en"))),)
        assert pack_overrides(None) == ()


class TestMergeSemantics:
    def test_merge_is_order_invariant(self, sites):
        runner = CampaignRunner(seed=SEED, population_size=POPULATION, shards=4)
        results = [run_shard(plan) for plan in runner.plan(sites)]
        forward = merge_shard_results(results)
        backward = merge_shard_results(list(reversed(results)))
        assert forward[0] == backward[0]
        assert forward[1] == backward[1]
        assert forward[2] == backward[2]

    def test_merged_attempts_follow_input_order(self, sites):
        result = CampaignRunner(
            seed=SEED, population_size=POPULATION, shards=4
        ).run(sites)
        order = {entry.host: index for index, entry in enumerate(sites)}
        positions = [order[a.site_host] for a in result.attempts]
        assert positions == sorted(positions)


class TestDeterminism:
    @pytest.mark.parametrize("shards", [1, 8])
    def test_workers_do_not_change_results(self, sites, shards):
        baseline = CampaignRunner(
            seed=SEED, population_size=POPULATION,
            shards=shards, workers=1, executor="serial",
        ).run(sites)
        for workers in (2, 4):
            parallel = CampaignRunner(
                seed=SEED, population_size=POPULATION,
                shards=shards, workers=workers, executor="thread",
            ).run(sites)
            assert fingerprint(parallel) == fingerprint(baseline)
            assert parallel.stats == baseline.stats
            assert parallel.telemetry == baseline.telemetry

    def test_process_pool_matches_serial(self, sites):
        baseline = CampaignRunner(
            seed=SEED, population_size=POPULATION,
            shards=4, workers=1, executor="serial",
        ).run(sites)
        pooled = CampaignRunner(
            seed=SEED, population_size=POPULATION,
            shards=4, workers=2, executor="process",
        ).run(sites)
        assert fingerprint(pooled) == fingerprint(baseline)
        assert pooled.stats == baseline.stats
        assert pooled.telemetry == baseline.telemetry

    def test_repeated_runs_identical(self, sites):
        first = CampaignRunner(
            seed=SEED, population_size=POPULATION, shards=8
        ).run(sites)
        second = CampaignRunner(
            seed=SEED, population_size=POPULATION, shards=8
        ).run(sites)
        assert fingerprint(first) == fingerprint(second)
        assert first.telemetry == second.telemetry

    def test_shards_mint_distinct_identities(self, sites):
        result = CampaignRunner(
            seed=SEED, population_size=POPULATION, shards=4
        ).run(sites)
        by_shard: dict[int, set[str]] = {}
        for shard in result.shard_results:
            emails = {
                a.identity.email_local
                for _pos, group in shard.site_attempts
                for a in group
            }
            by_shard[shard.shard_index] = emails
        shard_ids = list(by_shard)
        for i, left in enumerate(shard_ids):
            for right in shard_ids[i + 1:]:
                assert not (by_shard[left] & by_shard[right])


class TestRunnerValidation:
    def test_rejects_unknown_executor(self):
        with pytest.raises(ValueError):
            CampaignRunner(executor="greenlet")

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            CampaignRunner(shards=0)
        with pytest.raises(ValueError):
            CampaignRunner(workers=0)

    def test_exposed_attempts_view(self, sites):
        result = CampaignRunner(
            seed=SEED, population_size=POPULATION, shards=2
        ).run(sites)
        assert all(a.exposed for a in result.exposed_attempts())
        assert len(result.exposed_attempts()) == result.stats.exposed_attempts
