"""Sharded campaign execution: partitioning, merging, determinism."""

import pytest

from repro.core.runner import (
    CampaignRunner,
    ShardResultMerger,
    merge_shard_results,
    pack_overrides,
    partition_sites,
    run_shard,
)
from repro.core.substrate import WorldShard
from repro.util.rngtree import RngTree

SEED = 523
POPULATION = 260
TOP = 36


@pytest.fixture(scope="module")
def sites():
    listing = WorldShard(RngTree(SEED)).build_population(POPULATION)
    return listing.alexa_top(TOP)


def fingerprint(result) -> list[tuple]:
    """Every field that must be reproduced bit-for-bit."""
    return [
        (
            a.site_host,
            a.rank,
            a.url,
            a.identity.email_local,
            a.identity.password,
            a.password_class.value,
            a.outcome.code.value,
            a.outcome.detail,
            a.outcome.exposed_email,
            a.outcome.exposed_password,
            a.outcome.pages_loaded,
            a.outcome.started_at,
            a.outcome.finished_at,
            a.outcome.filled_fields,
        )
        for a in result.attempts
    ]


class TestPartitioning:
    def test_round_robin_covers_everything_once(self, sites):
        slices = partition_sites(sites, 5)
        seen = [entry for bucket, _pos in slices for entry in bucket]
        assert sorted(e.host for e in seen) == sorted(e.host for e in sites)
        positions = sorted(p for _bucket, pos in slices for p in pos)
        assert positions == list(range(len(sites)))

    def test_single_shard_is_identity(self, sites):
        (bucket, positions), = partition_sites(sites, 1)
        assert list(bucket) == sites
        assert list(positions) == list(range(len(sites)))

    def test_more_shards_than_sites(self, sites):
        slices = partition_sites(sites[:3], 8)
        non_empty = [bucket for bucket, _pos in slices if bucket]
        assert len(non_empty) == 3

    def test_invalid_shard_count(self, sites):
        with pytest.raises(ValueError):
            partition_sites(sites, 0)

    def test_pack_overrides_round_trip(self):
        packed = pack_overrides({3: {"bucket": "rest", "language": "en"}})
        assert packed == ((3, (("bucket", "rest"), ("language", "en"))),)
        assert pack_overrides(None) == ()


class TestMergeSemantics:
    def test_merge_is_order_invariant(self, sites):
        runner = CampaignRunner(seed=SEED, population_size=POPULATION, shards=4)
        results = [run_shard(plan) for plan in runner.plan(sites)]
        forward = merge_shard_results(results)
        backward = merge_shard_results(list(reversed(results)))
        assert forward[0] == backward[0]
        assert forward[1] == backward[1]
        assert forward[2] == backward[2]

    def test_merged_attempts_follow_input_order(self, sites):
        result = CampaignRunner(
            seed=SEED, population_size=POPULATION, shards=4
        ).run(sites)
        order = {entry.host: index for index, entry in enumerate(sites)}
        positions = [order[a.site_host] for a in result.attempts]
        assert positions == sorted(positions)


class TestDeterminism:
    @pytest.mark.parametrize("shards", [1, 8])
    def test_workers_do_not_change_results(self, sites, shards):
        baseline = CampaignRunner(
            seed=SEED, population_size=POPULATION,
            shards=shards, workers=1, executor="serial",
        ).run(sites)
        for workers in (2, 4):
            parallel = CampaignRunner(
                seed=SEED, population_size=POPULATION,
                shards=shards, workers=workers, executor="thread",
            ).run(sites)
            assert fingerprint(parallel) == fingerprint(baseline)
            assert parallel.stats == baseline.stats
            assert parallel.telemetry == baseline.telemetry

    def test_process_pool_matches_serial(self, sites):
        baseline = CampaignRunner(
            seed=SEED, population_size=POPULATION,
            shards=4, workers=1, executor="serial",
        ).run(sites)
        pooled = CampaignRunner(
            seed=SEED, population_size=POPULATION,
            shards=4, workers=2, executor="process",
        ).run(sites)
        assert fingerprint(pooled) == fingerprint(baseline)
        assert pooled.stats == baseline.stats
        assert pooled.telemetry == baseline.telemetry

    def test_repeated_runs_identical(self, sites):
        first = CampaignRunner(
            seed=SEED, population_size=POPULATION, shards=8
        ).run(sites)
        second = CampaignRunner(
            seed=SEED, population_size=POPULATION, shards=8
        ).run(sites)
        assert fingerprint(first) == fingerprint(second)
        assert first.telemetry == second.telemetry

    def test_shards_mint_distinct_identities(self, sites):
        result = CampaignRunner(
            seed=SEED, population_size=POPULATION, shards=4
        ).run(sites)
        by_shard: dict[int, set[str]] = {}
        for shard in result.shard_results:
            emails = {
                a.identity.email_local
                for _pos, group in shard.site_attempts
                for a in group
            }
            by_shard[shard.shard_index] = emails
        shard_ids = list(by_shard)
        for i, left in enumerate(shard_ids):
            for right in shard_ids[i + 1:]:
                assert not (by_shard[left] & by_shard[right])


class TestRunnerValidation:
    def test_rejects_unknown_executor(self):
        with pytest.raises(ValueError):
            CampaignRunner(executor="greenlet")

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            CampaignRunner(shards=0)
        with pytest.raises(ValueError):
            CampaignRunner(workers=0)

    def test_exposed_attempts_view(self, sites):
        result = CampaignRunner(
            seed=SEED, population_size=POPULATION, shards=2
        ).run(sites)
        assert all(a.exposed for a in result.exposed_attempts())
        assert len(result.exposed_attempts()) == result.stats.exposed_attempts


class TestIncrementalMerger:
    def test_merger_matches_batch_merge(self, sites):
        runner = CampaignRunner(seed=SEED, population_size=POPULATION, shards=4)
        results = [run_shard(plan) for plan in runner.plan(sites)]
        merger = ShardResultMerger()
        for result in reversed(results):  # worst-case arrival order
            merger.add(result)
        assert merger.finish() == merge_shard_results(results)

    def test_results_property_is_shard_ordered(self, sites):
        runner = CampaignRunner(seed=SEED, population_size=POPULATION, shards=3)
        results = [run_shard(plan) for plan in runner.plan(sites)]
        merger = ShardResultMerger()
        for result in reversed(results):
            merger.add(result)
        assert [r.shard_index for r in merger.results] == [0, 1, 2]

    def test_add_after_finish_rejected(self, sites):
        runner = CampaignRunner(seed=SEED, population_size=POPULATION, shards=2)
        results = [run_shard(plan) for plan in runner.plan(sites)]
        merger = ShardResultMerger()
        merger.add(results[0])
        merger.finish()
        with pytest.raises(RuntimeError):
            merger.add(results[1])


class TestScaleOutExecutor:
    def test_wire_bytes_recorded_on_codec_path(self, sites):
        result = CampaignRunner(
            seed=SEED, population_size=POPULATION, shards=4,
            workers=2, executor="process",
        ).run(sites)
        assert sorted(result.wire_bytes) == [0, 1, 2, 3]
        assert all(size > 0 for size in result.wire_bytes.values())

    def test_no_wire_bytes_without_codec(self, sites):
        serial = CampaignRunner(
            seed=SEED, population_size=POPULATION, shards=4
        ).run(sites)
        assert serial.wire_bytes == {}
        no_codec = CampaignRunner(
            seed=SEED, population_size=POPULATION, shards=4,
            workers=2, executor="process", wire_codec=False,
        ).run(sites)
        assert no_codec.wire_bytes == {}

    def test_codec_and_warm_do_not_change_results(self, sites):
        reference = CampaignRunner(
            seed=SEED, population_size=POPULATION, shards=4,
            warm_workers=False, wire_codec=False,
        ).run(sites)
        fast = CampaignRunner(
            seed=SEED, population_size=POPULATION, shards=4,
            workers=2, executor="process",
        ).run(sites)
        assert fingerprint(fast) == fingerprint(reference)
        assert fast.stats == reference.stats
        assert fast.telemetry == reference.telemetry

    def test_persistent_pool_reuse_and_close(self, sites):
        with CampaignRunner(
            seed=SEED, population_size=POPULATION, shards=4,
            workers=2, executor="process", persistent_pool=True,
        ) as runner:
            first = runner.run(sites)
            pool = runner._pool
            assert pool is not None
            second = runner.run(sites)
            assert runner._pool is pool  # same pool, workers kept warm
            assert fingerprint(first) == fingerprint(second)
        assert runner._pool is None  # context exit shut it down
        runner.close()  # idempotent

    def test_worker_error_propagates(self, sites):
        # A population far smaller than the crawled ranks makes every
        # shard raise; the streaming path must surface that instead of
        # hanging on a barrier or returning partial results.
        runner = CampaignRunner(
            seed=SEED, population_size=10, shards=4,
            workers=2, executor="process",
        )
        with pytest.raises(Exception, match="outside population"):
            runner.run(sites)
