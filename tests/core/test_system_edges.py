"""Edge-case tests for system wiring and provisioning."""


from repro.core.system import TripwireSystem
from repro.identity.passwords import PasswordClass
from repro.identity.pool import IdentityState


class TestProvisioningEdges:
    def test_collision_identities_discarded_not_pooled(self):
        system = TripwireSystem(seed=21, population_size=10)
        # Pre-claim a block of names by provisioning them out of band.
        added = system.provision_identities(20, PasswordClass.HARD)
        # A second system sharing the same seed would regenerate the
        # same locals; within one system the factory never collides, so
        # all requested identities are added.
        assert added == 20
        assert system.provider.account_count() == 20

    def test_pool_counts_track_states(self):
        system = TripwireSystem(seed=22, population_size=10)
        system.provision_identities(5, PasswordClass.HARD)
        system.provision_control_accounts(2)
        counts = system.pool.count_by_state()
        assert counts[IdentityState.AVAILABLE] == 5
        assert counts[IdentityState.CONTROL] == 2

    def test_forward_index_spreads_domains(self):
        system = TripwireSystem(seed=23, population_size=10)
        system.provision_identities(6, PasswordClass.HARD)
        domains = set()
        for identity in system.pool.all_identities():
            account = system.provider.account(identity.email_local)
            domains.add(account.forwarding_address.partition("@")[2])
        assert len(domains) == 2  # both cover domains in use

    def test_control_login_uses_institution_ip(self):
        system = TripwireSystem(seed=24, population_size=10)
        system.provision_control_accounts(1)
        system.login_control_accounts()
        events = system.provider.telemetry.all_events_ground_truth()
        assert len(events) == 1
        assert system.proxy_pool.owns(events[0].ip)

    def test_https_sites_get_https_verification_links(self):
        # Sites with certificates send https:// links; the mail server
        # must be able to fetch them (transport cert check).
        from repro.web.spec import EmailBehavior

        system = TripwireSystem(
            seed=25, population_size=2,
            site_overrides={1: {
                "bucket": "rest", "host": "sec.test", "language": "en",
                "load_fails": False, "supports_https": True,
                "registration_path": "/signup",
                "registration_style": __import__(
                    "repro.web.spec", fromlist=["RegistrationStyle"]
                ).RegistrationStyle.SIMPLE,
                "email_behavior": EmailBehavior.VERIFICATION_LINK,
                "wants_username": False, "wants_confirm_password": False,
                "wants_terms_checkbox": False, "wants_name": False,
                "wants_phone": False, "wants_birthdate": False,
                "wants_gender": False, "extra_unlabeled_field": False,
                "requires_special_char": False, "shadow_ban_rate": 0.0,
                "max_email_length": None, "max_username_length": None,
                "bot_check": __import__("repro.web.spec", fromlist=["BotCheck"]).BotCheck.NONE,
            }},
        )
        system.provision_identities(1, PasswordClass.HARD)
        site = system.population.site_at_rank(1)
        identity = system.pool.checkout_any("sec.test")
        system.mail_server.expect_registration(identity.email_local, "sec.test",
                                               system.clock.now())
        system.transport.post("https://sec.test/signup/submit", {
            "email": identity.email_address,
            "password": identity.password,
        }, client_ip=system.proxy_pool.acquire_for_site("sec.test"))
        account = site.accounts.lookup(identity.email_address)
        assert account is not None
        # The verification link was https and the click succeeded.
        assert account.activated
        assert system.mail_server.saved_pages
        assert system.mail_server.saved_pages[0][0].startswith("https://sec.test/")
