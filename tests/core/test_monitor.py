"""Tests for compromise inference (the no-false-positive core claim)."""

import pytest

from repro.core.monitor import CompromiseMonitor
from repro.email_provider.telemetry import LoginEvent, LoginMethod
from repro.identity.generator import IdentityFactory
from repro.identity.passwords import PasswordClass
from repro.identity.pool import IdentityPool
from repro.net.ipaddr import IPv4Address
from repro.util.rngtree import RngTree
from repro.util.timeutil import DAY


@pytest.fixture
def world():
    factory = IdentityFactory(RngTree(55), email_domain="prov.example")
    pool = IdentityPool()
    burned_hard = factory.create(PasswordClass.HARD)
    burned_easy = factory.create(PasswordClass.EASY)
    unused = factory.create(PasswordClass.HARD)
    control = factory.create(PasswordClass.HARD)
    pool.add(burned_hard)
    pool.add(burned_easy)
    pool.add(unused)
    pool.add_control(control)
    pool.checkout(burned_hard.identity_id, "sitea.test")
    pool.burn(burned_hard.identity_id)
    pool.checkout(burned_easy.identity_id, "sitea.test")
    pool.burn(burned_easy.identity_id)
    monitor = CompromiseMonitor(pool, {control.email_local.lower()}, "prov.example")
    return monitor, burned_hard, burned_easy, unused, control


def login(identity, day=10, ip=99):
    return LoginEvent(identity.email_local, day * DAY, IPv4Address(ip), LoginMethod.IMAP)


class TestAttribution:
    def test_burned_account_login_detects_site(self, world):
        monitor, hard, _easy, _unused, _control = world
        attributed = monitor.ingest_dump([login(hard)])
        assert len(attributed) == 1
        assert monitor.site_count() == 1
        detection = monitor.detected_sites()[0]
        assert detection.site_host == "sitea.test"
        assert detection.hard_accessed

    def test_easy_only_access_infers_hashed_storage(self, world):
        monitor, _hard, easy, _unused, _control = world
        monitor.ingest_dump([login(easy)])
        detection = monitor.detected_sites()[0]
        assert not detection.hard_accessed
        assert "hashed" in detection.storage_inference()

    def test_hard_access_infers_plaintext(self, world):
        monitor, hard, _easy, _unused, _control = world
        monitor.ingest_dump([login(hard)])
        assert "plaintext" in monitor.detected_sites()[0].storage_inference()

    def test_multiple_logins_aggregate(self, world):
        monitor, hard, easy, _unused, _control = world
        monitor.ingest_dump([login(hard, day=10), login(easy, day=12),
                             login(hard, day=20, ip=123)])
        detection = monitor.detected_sites()[0]
        assert detection.login_count == 3
        assert len(detection.accounts_accessed) == 2
        assert detection.first_login_time == 10 * DAY
        assert detection.last_login_time == 20 * DAY

    def test_logins_for_account(self, world):
        monitor, hard, easy, _unused, _control = world
        monitor.ingest_dump([login(hard), login(easy)])
        assert len(monitor.logins_for_account(hard.email_local)) == 1

    def test_account_index_matches_reference_scan(self, world):
        from repro.perf import caching as _perf

        monitor, hard, easy, _unused, _control = world
        monitor.ingest_dump([login(hard, day=10), login(easy, day=12),
                             login(hard, day=20, ip=123)])
        try:
            _perf.set_enabled(True)
            indexed = monitor.logins_for_account(hard.email_local)
            _perf.set_enabled(False)
            scanned = monitor.logins_for_account(hard.email_local)
        finally:
            _perf.set_enabled(True)
        assert indexed == scanned
        assert len(indexed) == 2


class TestIntegrity:
    def test_control_logins_not_detections(self, world):
        monitor, _hard, _easy, _unused, control = world
        monitor.ingest_dump([login(control)])
        assert monitor.site_count() == 0
        assert len(monitor.control_logins) == 1
        assert monitor.alarms == []

    def test_unused_account_login_raises_alarm(self, world):
        monitor, _hard, _easy, unused, _control = world
        monitor.ingest_dump([login(unused)])
        assert monitor.site_count() == 0
        assert len(monitor.alarms) == 1
        assert "unused" in monitor.alarms[0].reason

    def test_unknown_account_login_raises_alarm(self, world):
        monitor, _hard, _easy, _unused, _control = world
        ghost = LoginEvent("NeverCreated99", 5 * DAY, IPv4Address(1), LoginMethod.POP3)
        monitor.ingest_dump([ghost])
        assert monitor.site_count() == 0
        assert "never created" in monitor.alarms[0].reason

    def test_no_events_no_detections(self, world):
        monitor, *_ = world
        assert monitor.ingest_dump([]) == []
        assert monitor.site_count() == 0
        assert monitor.ingested_events == 0
