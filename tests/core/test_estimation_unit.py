"""Unit tests for the success estimator's mechanics."""

import pytest

from repro.core.campaign import RegistrationCampaign
from repro.core.classify import AccountStatus
from repro.core.estimation import SuccessEstimator
from repro.core.system import TripwireSystem
from repro.identity.passwords import PasswordClass


@pytest.fixture(scope="module")
def estimated_world():
    system = TripwireSystem(seed=402, population_size=120)
    system.provision_identities(140, PasswordClass.HARD)
    system.provision_identities(80, PasswordClass.EASY)
    campaign = RegistrationCampaign(system)
    campaign.run_batch(system.population.alexa_top(120))
    estimator = SuccessEstimator(system)
    estimates = estimator.estimate(campaign.exposed_attempts())
    return system, campaign, estimator, estimates


class TestEstimator:
    def test_sample_size_bounded(self, estimated_world):
        _system, _campaign, _estimator, estimates = estimated_world
        for estimate in estimates:
            assert estimate.sample_size <= SuccessEstimator.SAMPLE_SIZE
            assert estimate.sample_size <= estimate.attempted_total

    def test_estimates_scale_with_rate(self, estimated_world):
        _system, _campaign, _estimator, estimates = estimated_world
        for estimate in estimates:
            expected = round(estimate.attempted_hard * estimate.success_rate)
            assert estimate.estimated_hard == expected

    def test_rate_is_probability(self, estimated_world):
        _system, _campaign, _estimator, estimates = estimated_world
        for estimate in estimates:
            assert 0.0 <= estimate.success_rate <= 1.0

    def test_manual_login_matches_ground_truth(self, estimated_world):
        system, campaign, estimator, _estimates = estimated_world
        for attempt in campaign.exposed_attempts()[:40]:
            site = system.population.site_by_host(attempt.site_host)
            if site is None:
                continue
            works = estimator.manual_login_works(attempt)
            truth = site.check_credentials(
                attempt.identity.email_address, attempt.identity.password
            ) or site.check_credentials(
                attempt.identity.site_username, attempt.identity.password
            )
            assert works == truth

    def test_buckets_partition_exposed_attempts(self, estimated_world):
        _system, campaign, estimator, _estimates = estimated_world
        exposed = campaign.exposed_attempts()
        buckets = estimator.classify_all(exposed)
        total = sum(len(bucket) for bucket in buckets.values())
        assert total == len(exposed)

    def test_category_order_stable(self, estimated_world):
        _system, _campaign, _estimator, estimates = estimated_world
        assert [e.status for e in estimates] == [
            AccountStatus.EMAIL_VERIFIED,
            AccountStatus.EMAIL_RECEIVED,
            AccountStatus.OK_SUBMISSION,
            AccountStatus.BAD_HEURISTICS,
            AccountStatus.MANUAL,
        ]

    def test_unknown_site_login_fails(self, estimated_world):
        system, campaign, estimator, _estimates = estimated_world
        attempt = campaign.exposed_attempts()[0]
        ghost = type(attempt)(
            site_host="never-instantiated.test", rank=1, url="http://x/",
            identity=attempt.identity, password_class=attempt.password_class,
            outcome=attempt.outcome,
        )
        assert not estimator.manual_login_works(ghost)
