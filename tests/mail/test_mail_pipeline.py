"""Tests for the forwarding hop and the Tripwire mail server."""

import pytest

from repro.mail.forwarding import ForwardingHop
from repro.mail.messages import EmailMessage, MessageKind
from repro.mail.server import TripwireMailServer, VerificationOutcome
from repro.net.transport import HttpResponse
from repro.util.rngtree import RngTree
from repro.util.timeutil import DAY


def message(recipient, subject="", body="", time=0, kind=MessageKind.OTHER):
    return EmailMessage(sender="noreply@site.test", recipient=recipient,
                        subject=subject, body=body, time=time, kind=kind)


class TestForwardingHop:
    def test_relays_cover_domain_mail(self):
        received = []
        hop = ForwardingHop(["cover.example"], received.append)
        hop(message("user@cover.example"))
        assert len(received) == 1
        assert hop.relayed_count == 1

    def test_drops_foreign_domains(self):
        received = []
        hop = ForwardingHop(["cover.example"], received.append)
        hop(message("user@elsewhere.example"))
        assert received == []
        assert hop.rejected_count == 1

    def test_addresses_spread_across_domains(self):
        hop = ForwardingHop(["a.example", "b.example"], lambda m: None)
        addresses = {hop.address_for("user", index) for index in range(4)}
        assert addresses == {"user@a.example", "user@b.example"}

    def test_requires_domains(self):
        with pytest.raises(ValueError):
            ForwardingHop([], lambda m: None)


@pytest.fixture
def server(transport):
    fetched = []

    def verify_handler(request):
        fetched.append(request.url)
        return HttpResponse(200, "<p>confirmed</p>")

    transport.register_host("site.test", verify_handler)
    server = TripwireMailServer(transport, RngTree(2).rng(),
                               verification_click_failure_rate=0.0)
    return server


class TestMailServer:
    def test_verification_clicked_when_expected(self, server):
        server.expect_registration("user1", "site.test", time=0)
        stored = server.receive(message(
            "user1@cover.example", subject="Verify your account",
            body="http://site.test/verify?token=t1", time=100))
        assert stored.verification is VerificationOutcome.CLICKED
        assert server.verification_state("user1") is VerificationOutcome.CLICKED
        assert len(server.saved_pages) == 1

    def test_unexpected_verification_not_clicked(self, server):
        stored = server.receive(message(
            "strange@cover.example", subject="Verify now",
            body="http://site.test/verify?token=x", time=100))
        assert stored.verification is VerificationOutcome.NOT_EXPECTED
        assert server.saved_pages == []

    def test_expectation_window_expires(self, server):
        server.expect_registration("user2", "site.test", time=0)
        stored = server.receive(message(
            "user2@cover.example", subject="Verify",
            body="http://site.test/verify?token=y",
            time=TripwireMailServer.EXPECTATION_WINDOW + DAY))
        assert stored.verification is VerificationOutcome.NOT_EXPECTED

    def test_fetch_failure_reported(self, transport):
        server = TripwireMailServer(transport, RngTree(3).rng(),
                                    verification_click_failure_rate=0.0)
        server.expect_registration("user3", "down.test", time=0)
        stored = server.receive(message(
            "user3@cover.example", subject="Verify",
            body="http://down.test/verify?token=z", time=10))
        assert stored.verification is VerificationOutcome.FETCH_FAILED

    def test_click_failure_mode(self, transport):
        # §6.2.2: one breach was missed because verification was never
        # completed; with failure rate 1.0 every click is skipped.
        transport.register_host("site.test", lambda r: HttpResponse(200, "ok"))
        server = TripwireMailServer(transport, RngTree(4).rng(),
                                    verification_click_failure_rate=1.0)
        server.expect_registration("user4", "site.test", time=0)
        stored = server.receive(message(
            "user4@cover.example", subject="Verify",
            body="http://site.test/verify?token=q", time=10))
        assert stored.verification is VerificationOutcome.SKIPPED

    def test_welcome_classified_not_verification(self, server):
        server.expect_registration("user5", "site.test", time=0)
        stored = server.receive(message(
            "user5@cover.example", subject="Welcome to site.test!",
            body="enjoy http://site.test/", time=10))
        assert stored.classified_kind is MessageKind.WELCOME
        assert stored.verification is None

    def test_received_any_since(self, server):
        server.receive(message("user6@cover.example", subject="x", time=50))
        assert server.received_any("user6", since=0)
        assert not server.received_any("user6", since=100)

    def test_messages_for_case_insensitive(self, server):
        server.receive(message("User7@cover.example", subject="x", time=1))
        assert len(server.messages_for("user7")) == 1

    def test_failure_rate_validation(self, transport):
        with pytest.raises(ValueError):
            TripwireMailServer(transport, RngTree(1).rng(),
                               verification_click_failure_rate=1.5)

    def test_stored_count(self, server):
        server.receive(message("a@cover.example", time=1))
        server.receive(message("b@cover.example", time=2))
        assert server.stored_count == 2
