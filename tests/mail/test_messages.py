"""Tests for email message heuristics."""

from repro.mail.messages import (
    EmailMessage,
    MessageKind,
    looks_like_registration_related,
    looks_like_verification,
)


def message(subject="", body=""):
    return EmailMessage(sender="noreply@s.test", recipient="u@p.example",
                        subject=subject, body=body, time=0)


class TestUrlExtraction:
    def test_urls_found(self):
        m = message(body="click http://s.test/verify?token=abc now")
        assert m.urls() == ["http://s.test/verify?token=abc"]

    def test_https_and_multiple(self):
        m = message(body="a https://x.test/1 b http://y.test/2")
        assert len(m.urls()) == 2

    def test_no_urls(self):
        assert message(body="nothing here").urls() == []

    def test_url_stops_at_quote(self):
        m = message(body='<a href="http://s.test/v">go</a>')
        assert m.urls() == ["http://s.test/v"]


class TestVerificationHeuristic:
    def test_verification_cue_plus_link(self):
        m = message(subject="Please verify your email",
                    body="http://s.test/verify?token=1")
        assert looks_like_verification(m)

    def test_cue_without_link_not_verification(self):
        assert not looks_like_verification(message(subject="Please confirm", body="no link"))

    def test_link_without_cue_not_verification(self):
        assert not looks_like_verification(message(subject="Hi", body="http://x.test/"))

    def test_activation_wording(self):
        m = message(subject="Activate your account", body="http://s.test/a?t=2")
        assert looks_like_verification(m)


class TestRegistrationRelatedHeuristic:
    def test_welcome_message(self):
        assert looks_like_registration_related(message(subject="Welcome to s.test!"))

    def test_account_wording(self):
        assert looks_like_registration_related(message(body="Your account is ready"))

    def test_unrelated_not_matched(self):
        assert not looks_like_registration_related(message(subject="50% off shoes"))


class TestReaddressing:
    def test_with_recipient_copies(self):
        original = message(subject="s", body="b")
        forwarded = original.with_recipient("u@cover.example")
        assert forwarded.recipient == "u@cover.example"
        assert forwarded.subject == original.subject
        assert forwarded.kind is MessageKind.OTHER
        assert original.recipient == "u@p.example"  # original untouched
