"""Tests for the HTTP transport."""

import pytest

from repro.net.ipaddr import IPv4Address
from repro.net.transport import (
    HostUnreachable,
    HttpRequest,
    HttpResponse,
    TlsError,
    Transport,
    TransportError,
    absolutize,
    with_query,
)
from repro.sim.clock import SimClock


def echo_handler(request: HttpRequest) -> HttpResponse:
    return HttpResponse(200, f"{request.method} {request.path}")


class TestRouting:
    def test_basic_get(self, transport):
        transport.register_host("a.test", echo_handler)
        response = transport.get("http://a.test/page")
        assert response.ok
        assert response.body == "GET /page"

    def test_unknown_host_raises(self, transport):
        with pytest.raises(HostUnreachable):
            transport.get("http://nowhere.test/")

    def test_down_host_raises_and_recovers(self, transport):
        transport.register_host("b.test", echo_handler)
        transport.set_host_down("b.test")
        with pytest.raises(HostUnreachable):
            transport.get("http://b.test/")
        transport.set_host_down("b.test", down=False)
        assert transport.get("http://b.test/").ok

    def test_url_without_host_rejected(self, transport):
        with pytest.raises(TransportError):
            transport.get("not-a-url")

    def test_post_form_passed_through(self, transport):
        seen = {}

        def handler(request):
            seen.update(request.form)
            return HttpResponse(200, "ok")

        transport.register_host("c.test", handler)
        transport.post("http://c.test/submit", {"x": "1"})
        assert seen == {"x": "1"}


class TestHttps:
    def test_https_requires_cert(self, transport):
        transport.register_host("plain.test", echo_handler, https=False)
        with pytest.raises(TlsError):
            transport.get("https://plain.test/")

    def test_https_with_cert_ok(self, transport):
        transport.register_host("secure.test", echo_handler, https=True)
        assert transport.get("https://secure.test/").ok
        assert transport.supports_https("secure.test")


class TestRedirects:
    def test_redirect_followed(self, transport):
        def redirector(request):
            if request.path == "/start":
                return HttpResponse(302, "", headers={"Location": "/end"})
            return HttpResponse(200, "arrived")

        transport.register_host("r.test", redirector)
        response = transport.get("http://r.test/start")
        assert response.body == "arrived"
        assert response.final_url.endswith("/end")

    def test_redirect_loop_detected(self, transport):
        transport.register_host(
            "loop.test",
            lambda request: HttpResponse(302, "", headers={"Location": "/again"}),
        )
        with pytest.raises(TransportError):
            transport.get("http://loop.test/")

    def test_cross_host_redirect(self, transport):
        transport.register_host(
            "from.test",
            lambda request: HttpResponse(301, "", headers={"Location": "http://to.test/x"}),
        )
        transport.register_host("to.test", echo_handler)
        assert transport.get("http://from.test/").body == "GET /x"


class TestClockAndLog:
    def test_requests_advance_clock(self):
        clock = SimClock(0)
        transport = Transport(clock, network_latency=2)
        transport.register_host("t.test", echo_handler)
        transport.get("http://t.test/")
        assert clock.now() == 2

    def test_request_log_and_load(self, transport):
        transport.register_host("l.test", echo_handler)
        transport.get("http://l.test/a")
        transport.get("http://l.test/b", client_ip=IPv4Address(9))
        log = transport.request_log("l.test")
        assert [entry.path for entry in log] == ["/a", "/b"]
        assert log[1].client_ip == IPv4Address(9)
        assert transport.load_on_host("l.test") == 2
        assert transport.load_on_host("other.test") == 0


class TestUrlHelpers:
    def test_absolutize_absolute_passthrough(self):
        assert absolutize("http://x.test/a", base="http://y.test/") == "http://x.test/a"

    def test_absolutize_rooted(self):
        assert absolutize("/p", base="http://y.test/deep/page") == "http://y.test/p"

    def test_absolutize_relative(self):
        assert absolutize("next", base="http://y.test/dir/page") == "http://y.test/dir/next"

    def test_with_query_appends(self):
        assert with_query("http://x.test/p", a="1") == "http://x.test/p?a=1"

    def test_request_accessors(self):
        request = HttpRequest("GET", "https://Host.Test/path?a=1&b=2")
        assert request.scheme == "https"
        assert request.host == "host.test"
        assert request.path == "/path"
        assert request.query == {"a": "1", "b": "2"}
