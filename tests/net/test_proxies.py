"""Tests for the research proxy pool."""

import pytest

from repro.net.proxies import ProxyPoolExhausted, ResearchProxyPool
from repro.net.whois import HostKind
from repro.util.rngtree import RngTree


def make_pool(whois, size=8):
    return ResearchProxyPool(whois, RngTree(3).rng(), pool_size=size)


class TestResearchProxyPool:
    def test_whois_names_institution(self, whois):
        pool = make_pool(whois)
        assert pool.allocation.kind is HostKind.INSTITUTION
        assert "UCSD" in pool.allocation.organization

    def test_one_ip_per_site(self, whois):
        pool = make_pool(whois, size=8)
        used = {pool.acquire_for_site("site.test") for _ in range(8)}
        assert len(used) == 8  # never the same IP twice for one site

    def test_exhaustion_raises(self, whois):
        pool = make_pool(whois, size=2)
        pool.acquire_for_site("s.test")
        pool.acquire_for_site("s.test")
        with pytest.raises(ProxyPoolExhausted):
            pool.acquire_for_site("s.test")

    def test_sites_tracked_independently(self, whois):
        pool = make_pool(whois, size=2)
        for _ in range(2):
            pool.acquire_for_site("a.test")
        # A different site still has the full pool available.
        assert pool.acquire_for_site("b.test") is not None
        assert pool.uses_for_site("a.test") == 2
        assert pool.uses_for_site("b.test") == 1

    def test_addresses_inside_allocation(self, whois):
        pool = make_pool(whois)
        for ip in pool.addresses:
            assert pool.allocation.block.contains(ip)
            assert pool.owns(ip)

    def test_pool_size_validation(self, whois):
        with pytest.raises(ValueError):
            ResearchProxyPool(whois, RngTree(1).rng(), pool_size=0)

    def test_host_case_insensitive(self, whois):
        pool = make_pool(whois, size=3)
        pool.acquire_for_site("MiXeD.test")
        assert pool.uses_for_site("mixed.test") == 1
