"""Tests for IPv4 address and CIDR modeling."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.ipaddr import CidrBlock, IPv4Address


class TestIPv4Address:
    def test_parse_and_str_roundtrip(self):
        assert str(IPv4Address.parse("192.0.2.1")) == "192.0.2.1"

    def test_parse_rejects_short(self):
        with pytest.raises(ValueError):
            IPv4Address.parse("1.2.3")

    def test_parse_rejects_big_octet(self):
        with pytest.raises(ValueError):
            IPv4Address.parse("1.2.3.256")

    def test_parse_rejects_leading_zero(self):
        with pytest.raises(ValueError):
            IPv4Address.parse("01.2.3.4")

    def test_value_out_of_range(self):
        with pytest.raises(ValueError):
            IPv4Address(1 << 32)
        with pytest.raises(ValueError):
            IPv4Address(-1)

    def test_octets(self):
        assert IPv4Address.parse("10.20.30.40").octets() == (10, 20, 30, 40)

    def test_ordering_and_add(self):
        a = IPv4Address.parse("10.0.0.1")
        assert a + 1 == IPv4Address.parse("10.0.0.2")
        assert a < a + 1

    def test_slash24(self):
        block = IPv4Address.parse("10.1.2.77").slash24()
        assert str(block) == "10.1.2.0/24"

    def test_hashable(self):
        assert len({IPv4Address(1), IPv4Address(1), IPv4Address(2)}) == 2

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_parse_str_roundtrip_property(self, value):
        address = IPv4Address(value)
        assert IPv4Address.parse(str(address)) == address


class TestCidrBlock:
    def test_parse(self):
        block = CidrBlock.parse("10.0.0.0/8")
        assert block.prefix_len == 8
        assert block.size() == 1 << 24

    def test_parse_requires_prefix(self):
        with pytest.raises(ValueError):
            CidrBlock.parse("10.0.0.0")

    def test_host_bits_rejected(self):
        with pytest.raises(ValueError):
            CidrBlock.parse("10.0.0.1/24")

    def test_contains(self):
        block = CidrBlock.parse("10.1.0.0/16")
        assert IPv4Address.parse("10.1.200.3") in block
        assert IPv4Address.parse("10.2.0.1") not in block

    def test_address_at(self):
        block = CidrBlock.parse("10.0.0.0/30")
        assert str(block.address_at(3)) == "10.0.0.3"
        with pytest.raises(ValueError):
            block.address_at(4)

    def test_prefix_bounds(self):
        with pytest.raises(ValueError):
            CidrBlock(IPv4Address(0), 33)

    @given(st.integers(min_value=0, max_value=32))
    def test_size_times_count_covers_space(self, prefix):
        block = CidrBlock(IPv4Address(0), prefix)
        assert block.size() == 2 ** (32 - prefix)

    @given(st.integers(min_value=8, max_value=30), st.integers(min_value=0, max_value=255))
    def test_address_at_stays_inside(self, prefix, fuzz):
        block = CidrBlock(IPv4Address(0), prefix)
        offset = fuzz % block.size()
        assert block.contains(block.address_at(offset))
