"""Tests for the WHOIS registry."""

import pytest

from repro.net.ipaddr import IPv4Address
from repro.net.whois import AddressSpaceExhausted, HostKind, WhoisRegistry


class TestAllocation:
    def test_allocations_disjoint(self):
        registry = WhoisRegistry()
        first = registry.allocate_block(24, "Org A", "US", HostKind.DATACENTER)
        second = registry.allocate_block(24, "Org B", "DE", HostKind.RESIDENTIAL)
        assert not first.block.contains(second.block.network)
        assert not second.block.contains(first.block.network)

    def test_alignment(self):
        registry = WhoisRegistry()
        registry.allocate_block(30, "tiny", "US", HostKind.DATACENTER)
        big = registry.allocate_block(16, "big", "US", HostKind.DATACENTER)
        assert big.block.network.value % big.block.size() == 0

    def test_exhaustion(self):
        registry = WhoisRegistry(base="25.0.0.0/30")
        registry.allocate_block(31, "a", "US", HostKind.DATACENTER)
        registry.allocate_block(31, "b", "US", HostKind.DATACENTER)
        with pytest.raises(AddressSpaceExhausted):
            registry.allocate_block(31, "c", "US", HostKind.DATACENTER)

    def test_prefix_smaller_than_base_rejected(self):
        registry = WhoisRegistry(base="25.0.0.0/16")
        with pytest.raises(ValueError):
            registry.allocate_block(8, "x", "US", HostKind.DATACENTER)


class TestLookup:
    def test_lookup_inside_allocation(self):
        registry = WhoisRegistry()
        record = registry.allocate_block(24, "Acme ISP", "VN", HostKind.RESIDENTIAL)
        probe = record.block.address_at(7)
        found = registry.lookup(probe)
        assert found is record
        assert registry.country_of(probe) == "VN"
        assert registry.kind_of(probe) is HostKind.RESIDENTIAL

    def test_lookup_unallocated_is_none(self):
        registry = WhoisRegistry()
        assert registry.lookup(IPv4Address.parse("25.200.0.1")) is None
        assert registry.country_of(IPv4Address.parse("25.200.0.1")) is None

    def test_describe_mentions_org_and_country(self):
        registry = WhoisRegistry()
        record = registry.allocate_block(24, "UCSD", "US", HostKind.INSTITUTION)
        text = record.describe()
        assert "UCSD" in text and "US" in text and "institution" in text

    def test_records_iteration_order(self):
        registry = WhoisRegistry()
        names = ["a", "b", "c"]
        for name in names:
            registry.allocate_block(24, name, "US", HostKind.DATACENTER)
        assert [r.organization for r in registry.records()] == names
