"""Tests for DNS."""

import pytest

from repro.net.dns import NxDomain
from repro.net.ipaddr import IPv4Address


class TestDnsResolver:
    def test_register_and_resolve_a(self, dns):
        ip = IPv4Address.parse("25.0.0.1")
        dns.register_host("example.test", ip)
        assert dns.resolve_a("example.test") == [ip]

    def test_names_case_insensitive(self, dns):
        dns.register_host("Example.TEST", IPv4Address(1))
        assert dns.resolve_a("example.test") == [IPv4Address(1)]

    def test_unknown_name_raises(self, dns):
        with pytest.raises(NxDomain):
            dns.resolve_a("missing.test")

    def test_mx_absent_returns_empty_for_known_zone(self, dns):
        # Site J's failure mode: a live domain without an MX record.
        dns.register_host("sitej.test", IPv4Address(2))
        assert dns.resolve_mx("sitej.test") == []

    def test_mx_unknown_zone_raises(self, dns):
        with pytest.raises(NxDomain):
            dns.resolve_mx("ghost.test")

    def test_mx_preference_ordering(self, dns):
        zone = dns.zone("mail.test")
        zone.add_mx("backup.mail.test", preference=20)
        zone.add_mx("primary.mail.test", preference=5)
        assert dns.resolve_mx("mail.test") == ["primary.mail.test", "backup.mail.test"]

    def test_ptr_registered_with_host(self, dns):
        ip = IPv4Address.parse("25.0.9.9")
        dns.register_host("rev.test", ip)
        assert dns.resolve_ptr(ip) == "rev.test"

    def test_ptr_absent(self, dns):
        assert dns.resolve_ptr(IPv4Address(12345)) is None

    def test_set_ptr_overwrites(self, dns):
        ip = IPv4Address(77)
        dns.set_ptr(ip, "one.test")
        dns.set_ptr(ip, "TWO.test")
        assert dns.resolve_ptr(ip) == "two.test"

    def test_has_zone(self, dns):
        assert not dns.has_zone("z.test")
        dns.zone("z.test")
        assert dns.has_zone("z.test")
