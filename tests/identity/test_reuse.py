"""Cross-site reuse model: purity, prefix closure, columnar parity."""

import pytest

from repro.identity import reuse as reuse_mod
from repro.identity.reuse import CrossSiteReuseModel, ReuseClass
from repro.traffic.population import benign_password
from repro.util.rngtree import RngTree

try:
    from hypothesis import given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    HAVE_HYPOTHESIS = False

SEED = 2017


def make_model(**kwargs):
    return CrossSiteReuseModel.from_tree(RngTree(SEED), **kwargs)


class TestScalarLanes:
    def test_exact_reuser_leaks_the_mailbox_password(self):
        model = make_model(exact_rate=1.0, derive_rate=0.0)
        for user in range(20):
            for rank in (0, 3, 17):
                assert model.site_password(user, rank) == benign_password(user)

    def test_derived_variant_differs_per_site_but_shares_the_stem(self):
        model = make_model(exact_rate=0.0, derive_rate=1.0)
        for user in range(20):
            pw_a = model.site_password(user, 1)
            pw_b = model.site_password(user, 2)
            assert pw_a != benign_password(user)
            assert pw_a.startswith(benign_password(user))
            assert pw_a != pw_b

    def test_unique_users_leak_unrelated_material(self):
        model = make_model(exact_rate=0.0, derive_rate=0.0)
        for user in range(20):
            pw = model.site_password(user, 5)
            assert benign_password(user) not in pw
            assert pw != model.site_password(user, 6)

    def test_class_rates_are_respected_in_aggregate(self):
        model = make_model(exact_rate=0.3, derive_rate=0.3)
        codes = model.behaviors(range(20_000))
        exact = codes.count(ReuseClass.EXACT) / len(codes)
        derived = codes.count(ReuseClass.DERIVED) / len(codes)
        assert exact == pytest.approx(0.3, abs=0.02)
        assert derived == pytest.approx(0.3, abs=0.02)

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            CrossSiteReuseModel(1, exact_rate=0.8, derive_rate=0.3)
        with pytest.raises(ValueError):
            CrossSiteReuseModel(1, site_density=1.5)

    def test_from_tree_consumes_no_rng_stream(self):
        tree = RngTree(SEED)
        before = tree.child("other").rng().random()
        CrossSiteReuseModel.from_tree(tree)
        assert tree.child("other").rng().random() == before


class TestColumnarParity:
    def test_members_match_scalar_membership(self):
        model = make_model()
        members = model.members(9, 4000)
        assert list(members) == [
            u for u in range(4000) if model.has_account(u, 9)
        ]

    def test_members_prefix_closed(self):
        model = make_model()
        small = model.members(4, 1500)
        large = model.members(4, 6000)
        assert list(large[: len(small)]) == list(small)

    def test_site_passwords_match_scalar(self):
        model = make_model()
        members = model.members(2, 3000)
        assert model.site_passwords(members, 2) == [
            model.site_password(int(u), 2) for u in members
        ]

    def test_cracked_mask_matches_scalar(self):
        model = make_model()
        members = model.members(1, 3000)
        mask = model.cracked_mask(members, 1, 0.6)
        assert list(mask) == [
            model.crack_recovered(int(u), 1, 0.6) for u in members
        ]

    def test_fallback_without_numpy_is_identical(self, monkeypatch):
        model = make_model()
        members = model.members(3, 800)
        codes = model.behaviors(members)
        passwords = model.site_passwords(members, 3)
        cracked = list(model.cracked_mask(members, 3, 0.5))
        monkeypatch.setattr(reuse_mod, "np", None)
        assert list(model.members(3, 800)) == list(members)
        assert model.behaviors(members) == codes
        assert model.site_passwords(members, 3) == passwords
        assert list(model.cracked_mask(members, 3, 0.5)) == cracked


if HAVE_HYPOTHESIS:

    class TestPurity:
        @settings(max_examples=60, deadline=None)
        @given(
            seed=st.integers(min_value=0, max_value=2**32),
            users=st.lists(
                st.integers(min_value=0, max_value=1 << 30),
                min_size=1,
                max_size=40,
            ),
            rank=st.integers(min_value=0, max_value=500),
        )
        def test_pure_function_of_seed_and_index(self, seed, users, rank):
            """Any evaluation order/subset yields the same values."""
            model = CrossSiteReuseModel.from_tree(RngTree(seed))
            forward = [
                (
                    model.behavior(u),
                    model.has_account(u, rank),
                    model.site_password(u, rank),
                )
                for u in users
            ]
            fresh = CrossSiteReuseModel.from_tree(RngTree(seed))
            backward = [
                (
                    fresh.behavior(u),
                    fresh.has_account(u, rank),
                    fresh.site_password(u, rank),
                )
                for u in reversed(users)
            ]
            assert forward == list(reversed(backward))
            # Columnar evaluation agrees with both scalar sweeps.
            assert list(model.behaviors(users)) == [b for b, _, _ in forward]
            assert model.site_passwords(users, rank) == [
                p for _, _, p in forward
            ]

        @settings(max_examples=30, deadline=None)
        @given(
            seed=st.integers(min_value=0, max_value=2**32),
            small=st.integers(min_value=0, max_value=300),
            extra=st.integers(min_value=0, max_value=300),
            rank=st.integers(min_value=0, max_value=50),
        )
        def test_members_prefix_closed_for_any_population(
            self, seed, small, extra, rank
        ):
            model = CrossSiteReuseModel.from_tree(RngTree(seed))
            a = list(model.members(rank, small))
            b = list(model.members(rank, small + extra))
            assert b[: len(a)] == a
            assert all(u >= small for u in b[len(a):])
