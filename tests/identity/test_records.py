"""Tests for identity record semantics."""

from hypothesis import given
from hypothesis import strategies as st

from repro.identity.generator import IdentityFactory
from repro.identity.passwords import PasswordClass
from repro.identity.records import SITE_USERNAME_MAX
from repro.util.rngtree import RngTree
from repro.web.captcha import captcha_answer_for


class TestIdentityRecords:
    @given(st.integers(min_value=0, max_value=10**6))
    def test_site_username_is_prefix(self, seed):
        identity = IdentityFactory(RngTree(seed)).create(PasswordClass.HARD)
        assert identity.email_local.startswith(identity.site_username)
        assert len(identity.site_username) <= SITE_USERNAME_MAX

    def test_full_name_join(self):
        identity = IdentityFactory(RngTree(1)).create(PasswordClass.HARD)
        assert identity.full_name == f"{identity.first_name} {identity.last_name}"

    def test_email_and_site_password_identical(self):
        """The core of the technique: one password, two services."""
        identity = IdentityFactory(RngTree(2)).create(PasswordClass.EASY)
        assert identity.form_value_for("password") == identity.password
        # There is no separate site password anywhere in the record.
        assert "password" not in identity.address.one_line()


class TestCaptchaOracle:
    def test_answer_deterministic(self):
        assert captcha_answer_for("tok-1") == captcha_answer_for("tok-1")

    def test_answers_differ_by_token(self):
        assert captcha_answer_for("tok-1") != captcha_answer_for("tok-2")

    @given(st.text(max_size=40))
    def test_answer_shape(self, token):
        answer = captcha_answer_for(token)
        assert len(answer) == 6
        assert all(c in "0123456789abcdef" for c in answer)
