"""Tests for identity generation (Section 4.1.1)."""

import re

from repro.identity.generator import IdentityFactory
from repro.identity.passwords import PasswordClass
from repro.util.rngtree import RngTree

LOCAL_RE = re.compile(r"^[A-Z][a-z]+[A-Z][a-z]+\d{4}$")


def make_factory(seed=1) -> IdentityFactory:
    return IdentityFactory(RngTree(seed))


class TestUsernames:
    def test_adjective_noun_number_shape(self):
        factory = make_factory()
        for _ in range(30):
            identity = factory.create(PasswordClass.HARD)
            assert LOCAL_RE.match(identity.email_local), identity.email_local

    def test_email_locals_unique(self):
        factory = make_factory()
        locals_ = {factory.create(PasswordClass.EASY).email_local for _ in range(300)}
        assert len(locals_) == 300

    def test_site_username_is_14_char_prefix(self):
        factory = make_factory()
        identity = factory.create(PasswordClass.HARD)
        assert identity.site_username == identity.email_local[:14]
        assert len(identity.site_username) <= 14

    def test_email_address_format(self):
        factory = IdentityFactory(RngTree(2), email_domain="prov.example")
        identity = factory.create(PasswordClass.HARD)
        assert identity.email_address == f"{identity.email_local}@prov.example"


class TestPersonalData:
    def test_phone_numbers_unique_and_formatted(self):
        factory = make_factory()
        phones = [factory.create(PasswordClass.HARD).phone for _ in range(100)]
        assert len(set(phones)) == 100
        assert all(re.match(r"^\d{3}-\d{3}-\d{4}$", p) for p in phones)

    def test_address_syntactically_valid(self):
        factory = make_factory()
        identity = factory.create(PasswordClass.EASY)
        address = identity.address
        assert re.match(r"^\d+ \w+", address.street)
        assert len(address.state) == 2
        assert re.match(r"^\d{5}$", address.zip_code)
        assert address.city in address.one_line()

    def test_gender_matches_name_pool(self):
        from repro.data.identity_corpus import FEMALE_FIRST_NAMES, MALE_FIRST_NAMES

        factory = make_factory()
        for _ in range(40):
            identity = factory.create(PasswordClass.HARD)
            pool = MALE_FIRST_NAMES if identity.gender == "M" else FEMALE_FIRST_NAMES
            assert identity.first_name in pool

    def test_dob_plausible_adult(self):
        from repro.util.timeutil import instant_to_datetime

        factory = make_factory()
        for _ in range(30):
            year = instant_to_datetime(factory.create(PasswordClass.HARD).date_of_birth).year
            assert 1955 <= year <= 1997


class TestPasswordAssignment:
    def test_password_class_respected(self):
        factory = make_factory()
        hard = factory.create(PasswordClass.HARD)
        easy = factory.create(PasswordClass.EASY)
        assert len(hard.password) == 10
        assert len(easy.password) == 8
        assert hard.password_class is PasswordClass.HARD
        assert easy.password_class is PasswordClass.EASY

    def test_deterministic_given_seed(self):
        a = make_factory(7).create(PasswordClass.HARD)
        b = make_factory(7).create(PasswordClass.HARD)
        assert a.email_local == b.email_local
        assert a.password == b.password

    def test_ids_sequential(self):
        factory = make_factory()
        ids = [factory.create(PasswordClass.HARD).identity_id for _ in range(5)]
        assert ids == [1, 2, 3, 4, 5]


class TestFormValues:
    def test_form_value_mapping(self):
        factory = make_factory()
        identity = factory.create(PasswordClass.HARD)
        assert identity.form_value_for("email") == identity.email_address
        assert identity.form_value_for("password") == identity.password
        assert identity.form_value_for("password_confirm") == identity.password
        assert identity.form_value_for("username") == identity.site_username
        assert identity.form_value_for("first_name") == identity.first_name
        assert identity.form_value_for("zip") == identity.address.zip_code

    def test_unknown_meaning_is_none(self):
        identity = make_factory().create(PasswordClass.HARD)
        assert identity.form_value_for("card_number") is None
        assert identity.form_value_for("unknown") is None

    def test_birthdate_formats(self):
        identity = make_factory().create(PasswordClass.HARD)
        assert re.match(r"^\d{2}/\d{2}/\d{4}$", identity.form_value_for("birthdate"))
        assert identity.form_value_for("birth_year").isdigit()
