"""Tests for identity pool burn semantics (Section 4.3.1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.identity.generator import IdentityFactory
from repro.identity.passwords import PasswordClass
from repro.identity.pool import (
    BurnedIdentityError,
    IdentityPool,
    IdentityState,
    UnknownIdentityError,
)
from repro.util.rngtree import RngTree


@pytest.fixture
def pool_with_identities():
    factory = IdentityFactory(RngTree(9))
    pool = IdentityPool()
    identities = [factory.create(PasswordClass.HARD) for _ in range(3)]
    identities += [factory.create(PasswordClass.EASY) for _ in range(2)]
    for identity in identities:
        pool.add(identity)
    return pool, identities


class TestLifecycle:
    def test_checkout_then_burn(self, pool_with_identities):
        pool, identities = pool_with_identities
        identity = pool.checkout(identities[0].identity_id, "site.test")
        assert pool.state(identity.identity_id) is IdentityState.CHECKED_OUT
        pool.burn(identity.identity_id)
        assert pool.state(identity.identity_id) is IdentityState.BURNED
        assert pool.site_for(identity.identity_id) == "site.test"

    def test_release_returns_to_pool(self, pool_with_identities):
        pool, identities = pool_with_identities
        identity = pool.checkout(identities[0].identity_id, "site.test")
        pool.release(identity.identity_id)
        assert pool.state(identity.identity_id) is IdentityState.AVAILABLE
        assert pool.site_for(identity.identity_id) is None

    def test_burned_identity_never_reusable(self, pool_with_identities):
        pool, identities = pool_with_identities
        pool.checkout(identities[0].identity_id, "a.test")
        pool.burn(identities[0].identity_id)
        with pytest.raises(BurnedIdentityError):
            pool.checkout(identities[0].identity_id, "b.test")

    def test_burn_is_idempotent(self, pool_with_identities):
        pool, identities = pool_with_identities
        pool.checkout(identities[0].identity_id, "a.test")
        pool.burn(identities[0].identity_id)
        pool.burn(identities[0].identity_id)
        assert pool.site_for(identities[0].identity_id) == "a.test"

    def test_burn_without_checkout_rejected(self, pool_with_identities):
        pool, identities = pool_with_identities
        with pytest.raises(BurnedIdentityError):
            pool.burn(identities[0].identity_id)

    def test_release_without_checkout_rejected(self, pool_with_identities):
        pool, identities = pool_with_identities
        with pytest.raises(BurnedIdentityError):
            pool.release(identities[0].identity_id)

    def test_unknown_identity(self, pool_with_identities):
        pool, _ = pool_with_identities
        with pytest.raises(UnknownIdentityError):
            pool.state(9999)

    def test_duplicate_add_rejected(self, pool_with_identities):
        pool, identities = pool_with_identities
        with pytest.raises(ValueError):
            pool.add(identities[0])


class TestCheckoutAny:
    def test_checkout_any_lowest_id(self, pool_with_identities):
        pool, identities = pool_with_identities
        assert pool.checkout_any("s.test").identity_id == identities[0].identity_id

    def test_checkout_any_filters_by_class(self, pool_with_identities):
        pool, _ = pool_with_identities
        identity = pool.checkout_any("s.test", PasswordClass.EASY)
        assert identity.password_class is PasswordClass.EASY

    def test_checkout_any_exhausted_returns_none(self, pool_with_identities):
        pool, identities = pool_with_identities
        for _ in range(len(identities)):
            pool.checkout_any("s.test")
        assert pool.checkout_any("s.test") is None


class TestControlAndQueries:
    def test_control_accounts_not_checkoutable(self):
        factory = IdentityFactory(RngTree(1))
        pool = IdentityPool()
        control = factory.create(PasswordClass.HARD)
        pool.add_control(control)
        assert pool.state(control.identity_id) is IdentityState.CONTROL
        assert pool.checkout_any("s.test") is None

    def test_identity_for_email(self, pool_with_identities):
        pool, identities = pool_with_identities
        found = pool.identity_for_email(identities[1].email_address.upper())
        assert found is identities[1]
        assert pool.identity_for_email("nobody@nowhere.test") is None

    def test_one_to_one_site_mapping(self, pool_with_identities):
        pool, identities = pool_with_identities
        for index, identity in enumerate(identities):
            pool.checkout(identity.identity_id, f"site{index}.test")
            pool.burn(identity.identity_id)
        sites = [site for _identity, site in pool.burned_identities()]
        assert len(sites) == len(set(sites)) == len(identities)

    def test_identities_for_site(self, pool_with_identities):
        pool, identities = pool_with_identities
        for identity in identities[:2]:
            pool.checkout(identity.identity_id, "shared.test")
            pool.burn(identity.identity_id)
        assert len(pool.identities_for_site("SHARED.test")) == 2

    def test_count_by_state(self, pool_with_identities):
        pool, identities = pool_with_identities
        pool.checkout(identities[0].identity_id, "s.test")
        counts = pool.count_by_state()
        assert counts[IdentityState.CHECKED_OUT] == 1
        assert counts[IdentityState.AVAILABLE] == len(identities) - 1


@given(st.lists(st.sampled_from(["checkout", "burn", "release"]), max_size=30))
def test_state_machine_never_corrupts(operations):
    """Property: arbitrary operation sequences keep the pool consistent."""
    factory = IdentityFactory(RngTree(3))
    pool = IdentityPool()
    identity = factory.create(PasswordClass.HARD)
    pool.add(identity)
    for operation in operations:
        state = pool.state(identity.identity_id)
        try:
            if operation == "checkout":
                pool.checkout(identity.identity_id, "s.test")
            elif operation == "burn":
                pool.burn(identity.identity_id)
            else:
                pool.release(identity.identity_id)
        except BurnedIdentityError:
            # Invalid transitions must not change state.
            assert pool.state(identity.identity_id) is state
    final = pool.state(identity.identity_id)
    if final is IdentityState.BURNED:
        assert pool.site_for(identity.identity_id) == "s.test"
