"""Tests for password classes (Section 4.1.2)."""

import random

from hypothesis import given
from hypothesis import strategies as st

from repro.data.words import DICTIONARY_WORDS
from repro.identity import passwords as pw


class TestHardPasswords:
    def test_length_and_charset(self):
        rng = random.Random(1)
        for _ in range(50):
            candidate = pw.generate_hard_password(rng)
            assert len(candidate) == 10
            assert candidate.isalnum()

    def test_complexity_guarantee(self):
        rng = random.Random(2)
        for _ in range(50):
            candidate = pw.generate_hard_password(rng)
            assert any(c.islower() for c in candidate)
            assert any(c.isupper() for c in candidate)
            assert any(c.isdigit() for c in candidate)

    def test_validator_accepts_generated(self):
        rng = random.Random(3)
        assert all(pw.is_valid_hard_password(pw.generate_hard_password(rng))
                   for _ in range(50))

    def test_validator_rejects_easy_shape(self):
        assert not pw.is_valid_hard_password("Website1")

    def test_validator_rejects_special_chars(self):
        assert not pw.is_valid_hard_password("i5Nss87yf!")

    def test_paper_example_shape(self):
        # "i5Nss87yf" is 9 chars in the paper text; padded to 10 it fits.
        assert pw.is_valid_hard_password("i5Nss87yf3")


class TestEasyPasswords:
    def test_shape(self):
        rng = random.Random(4)
        for _ in range(50):
            candidate = pw.generate_easy_password(rng)
            assert len(candidate) == 8
            assert candidate[0].isupper()
            assert candidate[-1].isdigit()
            assert candidate[:7].lower() in DICTIONARY_WORDS

    def test_paper_example(self):
        assert pw.is_valid_easy_password("Website1")

    def test_rejects_uncapitalized(self):
        assert not pw.is_valid_easy_password("website1")

    def test_rejects_unknown_word(self):
        assert not pw.is_valid_easy_password("Zzzzzzz1")

    def test_rejects_wrong_length(self):
        assert not pw.is_valid_easy_password("Website12")


class TestClassify:
    def test_classify_easy(self):
        assert pw.classify_password("Website1") is pw.PasswordClass.EASY

    def test_classify_hard(self):
        rng = random.Random(5)
        assert pw.classify_password(pw.generate_hard_password(rng)) is pw.PasswordClass.HARD

    def test_classify_neither(self):
        assert pw.classify_password("short") is None
        assert pw.classify_password("") is None

    @given(st.integers())
    def test_generated_classes_never_collide(self, seed):
        rng = random.Random(seed)
        easy = pw.generate_easy_password(rng)
        hard = pw.generate_hard_password(rng)
        assert pw.classify_password(easy) is pw.PasswordClass.EASY
        assert pw.classify_password(hard) is pw.PasswordClass.HARD


class TestDictionary:
    def test_words_are_seven_ascii_letters(self):
        for word in DICTIONARY_WORDS:
            assert len(word) == 7
            assert word.isascii() and word.isalpha() and word.islower()

    def test_cracking_dictionary_covers_generator(self):
        assert set(pw.dictionary_for_cracking()) == set(DICTIONARY_WORDS)
