"""Tests for the recurring service streams (probes, churn, ingestion)."""

from repro.core.monitor import CompromiseMonitor
from repro.core.system import TripwireSystem
from repro.email_provider.accounts import AccountState
from repro.identity.passwords import PasswordClass
from repro.service.lifecycle import AccountLifecycle
from repro.service.scheduler import EpochScheduler, ServiceConfig
from repro.util.timeutil import DAY, STUDY_START


def make_world(**config_kwargs):
    defaults = dict(
        population_size=300, top=12, shards=2, epochs=3, epoch_length=10 * DAY,
        probe_interval=3 * DAY, dump_interval=7 * DAY, bind_interval=2 * DAY,
        freeze_interval=9 * DAY, reset_interval=13 * DAY,
        attack_interval=4 * DAY, recover_delay=2 * DAY,
        hard_accounts=8, easy_accounts=8, unused_accounts=4, control_accounts=2,
    )
    defaults.update(config_kwargs)
    config = ServiceConfig(**defaults)
    system = TripwireSystem(
        seed=config.seed, population_size=config.population_size,
        retention_days=config.retention_days, start=config.start,
        apparatus_namespace=("service",), obs_enabled=True,
    )
    system.provision_identities(config.hard_accounts, PasswordClass.HARD)
    system.provision_identities(config.easy_accounts, PasswordClass.EASY)
    system.provision_control_accounts(config.control_accounts)
    monitor = CompromiseMonitor(
        system.pool, system.control_locals, system.provider.domain
    )
    lifecycle = AccountLifecycle(
        system, monitor, config, EpochScheduler(config).horizon
    )
    return system, monitor, lifecycle, config


class TestInstallation:
    def test_installs_one_handle_per_stream(self):
        system, _monitor, lifecycle, _config = make_world()
        handles = lifecycle.install()
        assert len(handles) == 6
        assert all(h.active for h in handles)

    def test_cancel_all_revokes_pending_streams(self):
        system, _monitor, lifecycle, _config = make_world()
        lifecycle.install()
        assert lifecycle.cancel_all() == 6
        assert lifecycle.cancel_all() == 0  # idempotent
        assert len(system.queue) == 0

    def test_streams_respect_the_horizon(self):
        system, _monitor, lifecycle, _config = make_world()
        lifecycle.install()
        horizon = lifecycle.horizon
        system.queue.run_until(horizon + 365 * DAY)
        assert all(not h.active for h in lifecycle.handles)
        # Every firing happened at or before the horizon.
        assert system.clock.now() == horizon + 365 * DAY


class TestStreams:
    def test_probes_login_every_control_account(self):
        system, monitor, lifecycle, config = make_world()
        lifecycle.install()
        system.queue.run_until(STUDY_START + 10 * DAY)
        assert lifecycle.stats.probes == 3  # days 3, 6, 9
        assert lifecycle.stats.probe_logins == 3 * config.control_accounts

    def test_probe_logins_surface_as_control_liveness(self):
        system, monitor, lifecycle, _config = make_world()
        lifecycle.install()
        system.queue.run_until(lifecycle.horizon)
        assert lifecycle.stats.dumps > 0
        assert len(monitor.control_logins) > 0
        assert monitor.alarms == []

    def test_binds_burn_identities_to_ranked_hosts(self):
        system, _monitor, lifecycle, _config = make_world()
        lifecycle.install()
        system.queue.run_until(STUDY_START + 10 * DAY)
        burned = system.pool.burned_identities()
        assert len(burned) == lifecycle.stats.binds > 0
        hosts = {site for _identity, site in burned}
        assert all(host for host in hosts)

    def test_freeze_then_recovery_restores_the_account(self):
        system, _monitor, lifecycle, config = make_world()
        lifecycle.install()
        # Run long enough for freeze (day 9) + recovery (freeze + 2d).
        system.queue.run_until(STUDY_START + 15 * DAY)
        if lifecycle.stats.freezes == 0:  # freeze needs a bound account
            return
        assert lifecycle.stats.recoveries == lifecycle.stats.freezes
        frozen = [
            account
            for local in (i.email_local for i, _ in system.pool.burned_identities())
            for account in [system.provider.account(local)]
            if account is not None and account.state is AccountState.FROZEN
        ]
        assert frozen == []  # every freeze recovered by now

    def test_attacks_drive_detections_through_dumps(self):
        system, monitor, lifecycle, _config = make_world()
        lifecycle.install()
        system.queue.run_until(lifecycle.horizon)
        assert lifecycle.stats.attacks > 0
        if lifecycle.stats.attack_successes:
            assert monitor.site_count() > 0

    def test_streams_are_deterministic(self):
        _s1, m1, l1, _c1 = make_world()
        l1.install()
        _s1.queue.run_until(l1.horizon)
        _s2, m2, l2, _c2 = make_world()
        l2.install()
        _s2.queue.run_until(l2.horizon)
        assert l1.stats == l2.stats
        assert m1.detection_digest() == m2.detection_digest()


class TestLoginBatchEquivalence:
    """The batched/per-event choice must not move a single output."""

    def run_world(self, batched, batch_events=8192):
        system, monitor, lifecycle, _config = make_world(
            traffic_users=400,
            traffic_logins_per_day=3.0,
            login_batching=batched,
            traffic_batch_events=batch_events,
        )
        lifecycle.install()
        system.queue.run_until(lifecycle.horizon)
        return system, monitor, lifecycle

    def fingerprint(self, system, monitor, lifecycle):
        provider = system.provider
        return {
            "stats": lifecycle.stats,
            "detections": monitor.detection_digest(),
            "telemetry": provider.telemetry.columns(),
            "states": bytes(provider._table.states),
            "throttle": dict(provider._throttle),
            "windows": provider.login_window_snapshot(),
        }

    def test_batched_and_per_event_worlds_are_identical(self):
        per_event = self.fingerprint(*self.run_world(batched=False))
        batched = self.fingerprint(*self.run_world(batched=True))
        for key in per_event:
            assert per_event[key] == batched[key], f"{key} diverged"

    def test_batch_granularity_is_invisible(self):
        coarse = self.fingerprint(*self.run_world(batched=True))
        fine = self.fingerprint(*self.run_world(batched=True, batch_events=64))
        for key in coarse:
            assert coarse[key] == fine[key], f"{key} diverged"

    def test_traffic_flows_through_the_queue(self):
        _system, _monitor, lifecycle = self.run_world(batched=True)
        assert lifecycle.stats.traffic_windows > 0
        assert lifecycle.stats.traffic_logins > 0
        assert lifecycle.stats.traffic_successes > 0


class TestTelemetryPruning:
    # Retention must be shorter than the 30-day horizon for events to
    # age out at all; the config default (60d) outlives these worlds.
    def test_prune_bounds_retained_events(self):
        system, _monitor, lifecycle, _config = make_world(
            prune_telemetry=True, retention_days=5
        )
        lifecycle.install()
        system.queue.run_until(lifecycle.horizon)
        telemetry = system.provider.telemetry
        assert lifecycle.stats.dumps > 0
        assert telemetry.pruned_count > 0
        # Retained memory is bounded: pruning actually shed history.
        assert telemetry.retained_count < (
            telemetry.pruned_count + telemetry.retained_count
        )

    def test_pruning_never_changes_detection_state(self):
        def digest(prune):
            system, monitor, lifecycle, _config = make_world(
                prune_telemetry=prune, retention_days=5
            )
            lifecycle.install()
            system.queue.run_until(lifecycle.horizon)
            return monitor.detection_digest()

        assert digest(prune=True) == digest(prune=False)


class TestStreamTracking:
    """Per-stream firing tallies and the starvation telemetry surface."""

    def test_intervals_registered_at_install(self):
        _system, _monitor, lifecycle, config = make_world()
        lifecycle.install()
        assert lifecycle.stream_intervals == {
            "service.probe": config.probe_interval,
            "service.ingest": config.dump_interval,
            "service.bind": config.bind_interval,
            "service.freeze": config.freeze_interval,
            "service.reset": config.reset_interval,
            "service.attack": config.attack_interval,
        }
        # Installed streams start at zero, so starvation is visible
        # before the first fire.
        assert set(lifecycle.stats.stream_counts) == set(
            lifecycle.stream_intervals
        )
        assert all(c == 0 for c in lifecycle.stats.stream_counts.values())
        assert lifecycle.stats.stream_last_fired == {}

    def test_counts_and_last_fired_track_every_stream(self):
        system, _monitor, lifecycle, config = make_world()
        lifecycle.install()
        system.queue.run_until(config.start + 9 * DAY)
        stats = lifecycle.stats
        # 9 days at a 3-day cadence: fired on days 3, 6 and 9.
        assert stats.stream_counts["service.probe"] == 3
        assert stats.stream_last_fired["service.probe"] == (
            config.start + 9 * DAY
        )
        assert stats.stream_counts["service.probe"] == stats.probes
        assert stats.stream_counts["service.bind"] == stats.binds

    def test_gap_histograms_record_the_cadence(self):
        system, _monitor, lifecycle, config = make_world()
        lifecycle.install()
        system.queue.run_until(config.start + 9 * DAY)
        histograms = system.obs.metrics.histograms_dict()
        gaps = histograms["stream.service.probe.gap_seconds"]
        # Three fires leave two inter-fire gaps of exactly 3 days.
        assert gaps["count"] == 2
        assert gaps["sum"] == 2 * config.probe_interval

    def test_queue_stats_none_without_traffic(self):
        _system, _monitor, lifecycle, _config = make_world()
        assert lifecycle.queue_stats() is None

    def test_queue_stats_report_the_pump_accounting(self):
        system, _monitor, lifecycle, _config = make_world(
            traffic_users=30, traffic_window=DAY
        )
        lifecycle.install()
        system.queue.run_until(lifecycle.horizon)
        stats = lifecycle.queue_stats()
        assert stats["offered"] > 0
        assert stats["taken"] == stats["offered"]
        assert stats["depth"] == 0
        assert stats["peak_depth"] >= 1
