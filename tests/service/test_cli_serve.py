"""The `repro serve` CLI surface: epochs, checkpoints, resume, exit codes."""

import json

import pytest

from repro.cli import main
from repro.obs.journal import read_journal

SERVE_ARGS = [
    "serve", "--top", "12", "--population", "300", "--shards", "2",
    "--workers", "1", "--seed", "7", "--epochs", "3", "--epoch-days", "10",
]


class TestServe:
    def test_full_run_exits_zero_and_prints_epoch_table(self, capsys):
        assert main(SERVE_ARGS) == 0
        out = capsys.readouterr().out
        assert "Epoch" in out
        assert "crawled" in out
        assert "Service totals" in out

    def test_obs_out_journal_matches_rerun(self, tmp_path):
        first = tmp_path / "a.jsonl"
        second = tmp_path / "b.jsonl"
        assert main(SERVE_ARGS + ["--obs-out", str(first)]) == 0
        assert main(SERVE_ARGS + ["--obs-out", str(second)]) == 0
        assert first.read_bytes() == second.read_bytes()
        payload = read_journal(first)
        assert payload["meta"]["command"] == "serve"
        # 3 epochs x 2 shards of crawling, plus the service world.
        assert payload["shard_count"] == 7

    def test_json_summary(self, tmp_path):
        summary_path = tmp_path / "summary.json"
        assert main(SERVE_ARGS + ["--json", str(summary_path)]) == 0
        payload = json.loads(summary_path.read_text(encoding="utf-8"))
        assert payload["epochs_completed"] == 3
        assert payload["interrupted"] is False
        assert payload["lifecycle"]["probes"] > 0
        assert payload["stats"]["attempts"] > 0

    def test_json_summary_reports_per_stream_tallies(self, tmp_path):
        summary_path = tmp_path / "summary.json"
        assert main(SERVE_ARGS + ["--json", str(summary_path)]) == 0
        streams = json.loads(summary_path.read_text())["streams"]
        # Every installed stream appears, fired or not, with its
        # cumulative count and last-fired sim instant.
        assert set(streams) == {
            "service.probe", "service.ingest", "service.bind",
            "service.freeze", "service.reset", "service.attack",
        }
        assert streams["service.probe"]["count"] > 0
        assert streams["service.probe"]["last_fired"] is not None

    def test_flight_writes_dashboard_readable_file(self, tmp_path, capsys):
        flight = tmp_path / "flight.jsonl"
        assert main(SERVE_ARGS + ["--flight", str(flight)]) == 0
        assert flight.is_file()
        assert (tmp_path / "flight.jsonl.wall").is_file()
        assert "wrote flight file" in capsys.readouterr().err
        assert main(["obs", "top", str(flight), "--once"]) == 0
        assert "Lifecycle streams" in capsys.readouterr().out

    def test_flight_bytes_reproduce_across_runs(self, tmp_path):
        first = tmp_path / "a.jsonl"
        second = tmp_path / "b.jsonl"
        assert main(SERVE_ARGS + ["--flight", str(first)]) == 0
        assert main(SERVE_ARGS + ["--flight", str(second)]) == 0
        assert first.read_bytes() == second.read_bytes()

    def test_serve_report_includes_live_login_sections(self, tmp_path,
                                                       capsys):
        assert main(SERVE_ARGS + [
            "--traffic-users", "40",
            "--obs-out", str(tmp_path / "journal.jsonl"),
        ]) == 0
        out = capsys.readouterr().out
        assert "Service streams" in out
        assert "Batch login engine (live process, not journaled)" in out
        assert "Backpressure queue (live process, not journaled)" in out
        assert "Provider login state (live process, not journaled)" in out

    def test_checkpoint_then_resume_reproduces_the_journal(self, tmp_path):
        reference = tmp_path / "reference.jsonl"
        assert main(SERVE_ARGS + ["--obs-out", str(reference)]) == 0

        ckpt = tmp_path / "svc.ckpt"
        assert main(SERVE_ARGS + ["--checkpoint", str(ckpt)]) == 0
        assert ckpt.exists()

        resumed = tmp_path / "resumed.jsonl"
        assert main(
            SERVE_ARGS + ["--resume", str(ckpt), "--obs-out", str(resumed)]
        ) == 0
        assert resumed.read_bytes() == reference.read_bytes()

    def test_resume_prints_replayed_epochs(self, tmp_path, capsys):
        ckpt = tmp_path / "svc.ckpt"
        assert main(SERVE_ARGS + ["--checkpoint", str(ckpt)]) == 0
        capsys.readouterr()
        assert main(SERVE_ARGS + ["--resume", str(ckpt)]) == 0
        captured = capsys.readouterr()
        assert "resuming from" in captured.err
        assert "replayed" in captured.out

    def test_missing_resume_checkpoint_exits_one(self, tmp_path, capsys):
        assert main(
            SERVE_ARGS + ["--resume", str(tmp_path / "missing.ckpt")]
        ) == 1
        assert "checkpoint" in capsys.readouterr().err.lower()

    def test_corrupt_resume_checkpoint_exits_one(self, tmp_path, capsys):
        ckpt = tmp_path / "svc.ckpt"
        ckpt.write_text("not a checkpoint\n", encoding="ascii")
        assert main(SERVE_ARGS + ["--resume", str(ckpt)]) == 1
        assert capsys.readouterr().err

    def test_rejects_bad_epoch_count(self):
        with pytest.raises(ValueError, match="epochs"):
            main(["serve", "--epochs", "0"])
