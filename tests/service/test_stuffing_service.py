"""The stuffing stream in serve mode: determinism across engines,
worker counts and executors, plus the lifecycle bookkeeping."""

import pytest

from repro.service.daemon import CampaignDaemon
from repro.service.scheduler import ServiceConfig
from repro.util.timeutil import DAY

SEED = 37


def make_config(**overrides) -> ServiceConfig:
    base = dict(
        seed=SEED,
        population_size=150,
        top=6,
        shards=2,
        epochs=1,
        epoch_length=10 * DAY,
        traffic_users=250,
        traffic_window=2 * DAY,
        stuffing_interval=3 * DAY,
        stuffing_site_density=0.2,
    )
    base.update(overrides)
    return ServiceConfig(**base)


def run(**overrides):
    return CampaignDaemon(make_config(**overrides)).run()


@pytest.fixture(scope="module")
def baseline():
    return run()


class TestStreamBookkeeping:
    def test_waves_fire_on_the_configured_cadence(self, baseline):
        lifecycle = baseline.lifecycle
        # 10-day epoch, 3-day cadence -> fires at days 3, 6, 9.
        assert lifecycle.stuffing_waves == 3
        assert lifecycle.stream_counts["service.stuffing"] == 3
        assert len(baseline.stuffing_waves) == 3
        assert lifecycle.stuffing_logins == sum(
            w.attempts for w in baseline.stuffing_waves
        )
        assert lifecycle.stuffing_successes == sum(
            w.successes for w in baseline.stuffing_waves
        )
        assert baseline.stuffing_model is not None
        assert baseline.live_stats["stuffing_queue"] is not None

    def test_stuffing_off_leaves_no_trace(self):
        result = run(stuffing_interval=0)
        assert result.lifecycle.stuffing_waves == 0
        assert result.stuffing_waves == []
        assert result.stuffing_model is None
        assert result.live_stats["stuffing_queue"] is None
        assert "service.stuffing" not in result.lifecycle.stream_counts

    def test_waves_record_both_acquisition_channels_over_time(self):
        result = run(epoch_length=30 * DAY)
        channels = {w.acquisition for w in result.stuffing_waves}
        assert channels == {"online_capture", "offline_crack"}

    def test_correlation_attributes_the_campaign(self, baseline):
        from repro.analysis.stuffing import build_stuffing_correlation

        waves = [w for w in baseline.stuffing_waves if len(w.hit_users)]
        assert waves, "campaign produced no attributable waves"
        report = build_stuffing_correlation(
            waves, baseline.stuffing_model, 250
        )
        assert report.accuracy == 1.0


class TestEngineEquivalence:
    def test_per_event_engine_matches_batched_byte_for_byte(self, baseline):
        scalar = run(login_batching=False)
        assert scalar.journal.to_jsonl() == baseline.journal.to_jsonl()
        assert scalar.detection_digest == baseline.detection_digest
        assert scalar.stuffing_waves == baseline.stuffing_waves

    def test_batch_size_never_moves_journal_bytes(self, baseline):
        tiny = run(stuffing_batch_events=7, traffic_batch_events=33)
        assert tiny.journal.to_jsonl() == baseline.journal.to_jsonl()
        assert tiny.stuffing_waves == baseline.stuffing_waves


class TestExecutorInvariance:
    @pytest.mark.parametrize("workers,executor", [(2, "thread"), (4, "thread")])
    def test_thread_pools_match_serial(self, baseline, workers, executor):
        pooled = run(workers=workers, executor=executor)
        assert pooled.journal.to_jsonl() == baseline.journal.to_jsonl()
        assert pooled.stuffing_waves == baseline.stuffing_waves

    def test_process_pool_per_event_matches_serial_batched(self, baseline):
        pooled = run(workers=2, executor="process", login_batching=False)
        assert pooled.journal.to_jsonl() == baseline.journal.to_jsonl()
        assert pooled.stuffing_waves == baseline.stuffing_waves
