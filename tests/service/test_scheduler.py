"""Tests for service-mode config and the epoch scheduler."""

import pytest

from repro.service.checkpoint import config_digest
from repro.service.scheduler import EpochScheduler, ServiceConfig
from repro.util.timeutil import DAY, STUDY_START


def make_config(**kwargs):
    defaults = dict(population_size=300, top=20, shards=2, epochs=4,
                    epoch_length=10 * DAY)
    defaults.update(kwargs)
    return ServiceConfig(**defaults)


class TestServiceConfig:
    def test_rejects_nonpositive_epochs(self):
        with pytest.raises(ValueError, match="epochs"):
            make_config(epochs=0)

    def test_rejects_nonpositive_epoch_length(self):
        with pytest.raises(ValueError, match="epoch_length"):
            make_config(epoch_length=0)

    def test_rejects_nonpositive_checkpoint_cadence(self):
        with pytest.raises(ValueError, match="checkpoint_every"):
            make_config(checkpoint_every=0)

    def test_sim_meta_excludes_execution_shaping(self):
        meta = make_config(workers=4, executor="process",
                           warm_workers=False, checkpoint_every=2).sim_meta()
        for forbidden in ("workers", "executor", "warm", "checkpoint",
                          "wire", "wall"):
            assert not any(forbidden in key for key in meta), meta.keys()

    def test_sim_meta_invariant_to_execution_knobs(self):
        serial = make_config(workers=1, executor="serial")
        pooled = make_config(workers=4, executor="process",
                             warm_workers=False, checkpoint_every=3)
        assert serial.sim_meta() == pooled.sim_meta()
        assert config_digest(serial) == config_digest(pooled)

    def test_digest_moves_with_sim_shaping(self):
        assert config_digest(make_config()) != config_digest(make_config(seed=8))
        assert config_digest(make_config()) != config_digest(make_config(epochs=5))


class TestEpochScheduler:
    def test_windows_tile_the_run(self):
        scheduler = EpochScheduler(make_config())
        windows = [scheduler.window(e) for e in range(4)]
        assert windows[0][0] == STUDY_START
        for (start, end), (next_start, _next_end) in zip(windows, windows[1:]):
            assert end == next_start
            assert end - start == 10 * DAY
        assert windows[-1][1] == scheduler.horizon

    def test_window_range_checked(self):
        scheduler = EpochScheduler(make_config())
        with pytest.raises(ValueError):
            scheduler.window(4)
        with pytest.raises(ValueError):
            scheduler.window(-1)

    def test_waves_partition_the_site_list(self):
        config = make_config()
        scheduler = EpochScheduler(config)
        sites = list(range(17))  # any sequence works; slicing is generic
        waves = [scheduler.wave_sites(sites, e) for e in range(config.epochs)]
        assert [len(w) for w in waves] == [5, 5, 5, 2]
        assert [item for wave in waves for item in wave] == sites

    def test_wave_positions_are_global_offsets(self):
        config = make_config()
        scheduler = EpochScheduler(config)
        sites = list(range(17))
        assert [scheduler.wave_positions(sites, e) for e in range(4)] == [0, 5, 10, 15]
