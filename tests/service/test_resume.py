"""Checkpoint/resume determinism: the kill-at-epoch-k matrix.

The service-mode contract under test: a daemon killed after epoch *k*
and restarted from its checkpoint must replay to a journal
**byte-identical** to an uninterrupted run's — and to identical
analysis state (the monitor's detection digest) — for any worker
count on either side of the kill and under fault injection.

The fast tier covers the serial kill points and a mild fault profile;
the heavier worker-count × fault combinations ride in ``-m slow``.
"""

import pytest

from repro.faults.plan import FaultPlan
from repro.service.checkpoint import load_checkpoint
from repro.service.daemon import CampaignDaemon
from repro.service.scheduler import ServiceConfig
from repro.util.timeutil import DAY


def make_config(fault_profile=None, **kwargs):
    defaults = dict(
        population_size=300, top=16, shards=2, epochs=3, epoch_length=10 * DAY,
        probe_interval=3 * DAY, dump_interval=7 * DAY, bind_interval=2 * DAY,
        freeze_interval=9 * DAY, reset_interval=13 * DAY,
        attack_interval=4 * DAY, recover_delay=2 * DAY,
        hard_accounts=8, easy_accounts=8, unused_accounts=4, control_accounts=2,
    )
    if fault_profile is not None:
        defaults["fault_plan"] = FaultPlan.from_profile(fault_profile, seed=3)
    defaults.update(kwargs)
    return ServiceConfig(**defaults)


def run_killed_at(config, checkpoint_path, kill_after_epoch):
    """Run a daemon that requests a stop once epoch k has dispatched.

    The deterministic stand-in for SIGTERM mid-run: the in-flight
    epoch finishes, gets checkpointed, and the loop exits — exactly
    the graceful-stop path the CLI signal handler takes.
    """
    daemon = CampaignDaemon(config, checkpoint_path=checkpoint_path)
    original = daemon._build_runner

    def hooked():
        runner = original()
        real_execute = runner.execute

        def execute(plans, **kwargs):
            result = real_execute(plans, **kwargs)
            if plans and plans[0].epoch >= kill_after_epoch:
                daemon.request_stop()
            return result

        runner.execute = execute
        return runner

    daemon._build_runner = hooked
    return daemon.run()


def assert_resume_matches(tmp_path, kill_after_epoch, *,
                          fault_profile=None, resume_workers=1,
                          resume_executor="serial"):
    reference = CampaignDaemon(make_config(fault_profile)).run()
    assert not reference.interrupted

    checkpoint_path = tmp_path / "svc.ckpt"
    interrupted = run_killed_at(
        make_config(fault_profile), checkpoint_path, kill_after_epoch
    )
    assert interrupted.interrupted
    assert interrupted.epochs_completed == kill_after_epoch + 1
    assert checkpoint_path.exists()

    resume_config = make_config(
        fault_profile, workers=resume_workers, executor=resume_executor
    )
    checkpoint = load_checkpoint(checkpoint_path, resume_config)
    assert checkpoint.epochs_completed == kill_after_epoch + 1

    resumed = CampaignDaemon(
        resume_config, checkpoint_path=checkpoint_path
    ).run(resume=checkpoint)
    assert not resumed.interrupted
    assert [r.replayed for r in resumed.reports[: kill_after_epoch + 1]] == (
        [True] * (kill_after_epoch + 1)
    )
    assert resumed.journal.to_jsonl() == reference.journal.to_jsonl()
    assert resumed.detection_digest == reference.detection_digest
    assert len(resumed.attempts) == len(reference.attempts)


class TestKillMatrixFast:
    @pytest.mark.parametrize("kill_after_epoch", [0, 1])
    def test_serial_no_faults(self, tmp_path, kill_after_epoch):
        assert_resume_matches(tmp_path, kill_after_epoch)

    def test_serial_mild_faults(self, tmp_path):
        assert_resume_matches(tmp_path, 0, fault_profile="mild")

    def test_resume_under_different_worker_count(self, tmp_path):
        assert_resume_matches(tmp_path, 0, resume_workers=2,
                              resume_executor="thread")

    def test_kill_resume_with_world_store(self, tmp_path):
        """Killed and resumed with ``--world-store``: the daemon reopens
        the store on both sides and still byte-matches a no-store,
        uninterrupted reference run (store and resume are each
        execution-shaped; together they must still move nothing)."""
        from repro.store import build_world_store
        from repro.store.world import close_open_stores

        reference = CampaignDaemon(make_config()).run()
        assert not reference.interrupted

        store_path = tmp_path / "world"
        build_world_store(store_path, seed=7, population=300).close()
        checkpoint_path = tmp_path / "svc.ckpt"
        try:
            interrupted = run_killed_at(
                make_config(world_store=str(store_path)), checkpoint_path, 0
            )
            assert interrupted.interrupted

            resume_config = make_config(world_store=str(store_path))
            checkpoint = load_checkpoint(checkpoint_path, resume_config)
            resumed = CampaignDaemon(
                resume_config, checkpoint_path=checkpoint_path
            ).run(resume=checkpoint)
            assert not resumed.interrupted
            assert resumed.journal.to_jsonl() == reference.journal.to_jsonl()
            assert resumed.detection_digest == reference.detection_digest
        finally:
            close_open_stores()

    def test_checkpoint_cadence_skips_epochs(self, tmp_path):
        config = make_config(checkpoint_every=2)
        path = tmp_path / "svc.ckpt"
        result = CampaignDaemon(config, checkpoint_path=path).run()
        assert not result.interrupted
        # Cadence 2 over 3 epochs: checkpoint after epoch 1 (2 done)
        # and after the final epoch.
        assert [r.checkpointed for r in result.reports] == [False, True, True]
        assert load_checkpoint(path, config).epochs_completed == 3


@pytest.mark.slow
class TestKillMatrixSlow:
    @pytest.mark.parametrize("kill_after_epoch", [0, 1])
    @pytest.mark.parametrize("fault_profile", ["mild", "moderate"])
    @pytest.mark.parametrize("resume_workers,resume_executor",
                             [(2, "thread"), (4, "process")])
    def test_kill_matrix(self, tmp_path, kill_after_epoch, fault_profile,
                         resume_workers, resume_executor):
        assert_resume_matches(
            tmp_path, kill_after_epoch, fault_profile=fault_profile,
            resume_workers=resume_workers, resume_executor=resume_executor,
        )
