"""Tests for the campaign daemon: epochs, journal identity, stop."""

import pytest

from repro.service.daemon import CampaignDaemon
from repro.service.scheduler import ServiceConfig
from repro.util.timeutil import DAY


def make_config(**kwargs):
    defaults = dict(
        population_size=300, top=16, shards=2, epochs=3, epoch_length=10 * DAY,
        probe_interval=3 * DAY, dump_interval=7 * DAY, bind_interval=2 * DAY,
        freeze_interval=9 * DAY, reset_interval=13 * DAY,
        attack_interval=4 * DAY, recover_delay=2 * DAY,
        hard_accounts=8, easy_accounts=8, unused_accounts=4, control_accounts=2,
    )
    defaults.update(kwargs)
    return ServiceConfig(**defaults)


class TestEpochLoop:
    def test_runs_every_epoch_and_staggers_the_waves(self):
        result = CampaignDaemon(make_config()).run()
        assert result.epochs_completed == 3
        assert not result.interrupted
        assert [r.sites for r in result.reports] == [6, 6, 4]
        assert [r.epoch for r in result.reports] == [0, 1, 2]
        # Waves partition the full list: attempts cover all 16 sites.
        assert result.stats.sites_considered == 16

    def test_epoch_windows_tile_the_horizon(self):
        config = make_config()
        result = CampaignDaemon(config).run()
        windows = [r.window for r in result.reports]
        assert windows[0][0] == config.start
        for (_s0, e0), (s1, _e1) in zip(windows, windows[1:]):
            assert e0 == s1

    def test_service_events_fire_between_epochs(self):
        result = CampaignDaemon(make_config()).run()
        # Epoch 0 opens at the start (nothing due yet); later epochs
        # see the probes/churn that accumulated during the previous
        # window.
        assert result.reports[0].service_events == 0
        assert all(r.service_events > 0 for r in result.reports[1:])
        assert result.lifecycle.probes > 0
        assert result.lifecycle.binds > 0
        assert result.lifecycle.dumps > 0

    def test_journal_covers_crawl_shards_and_service_world(self):
        config = make_config()
        result = CampaignDaemon(config).run()
        indices = [shard.shard_index for shard in result.journal.shards]
        # Epochs contribute globally unique shard slots; the service
        # world takes the slot after all of them.
        assert indices == [0, 1, 2, 3, 4, 5, 6]
        assert indices[-1] == config.epochs * config.shards

    def test_journal_meta_is_sim_shaped_only(self):
        result = CampaignDaemon(make_config(workers=2, executor="thread")).run()
        meta = result.journal.meta
        assert meta["command"] == "serve"
        assert "workers" not in meta and "executor" not in meta

    def test_deterministic_across_runs(self):
        first = CampaignDaemon(make_config()).run()
        second = CampaignDaemon(make_config()).run()
        assert first.journal.to_jsonl() == second.journal.to_jsonl()
        assert first.detection_digest == second.detection_digest

    def test_journal_bytes_invariant_to_worker_count_thread(self):
        serial = CampaignDaemon(make_config()).run()
        threaded = CampaignDaemon(
            make_config(workers=2, executor="thread")
        ).run()
        assert threaded.journal.to_jsonl() == serial.journal.to_jsonl()
        assert threaded.detection_digest == serial.detection_digest

    @pytest.mark.slow
    def test_journal_bytes_invariant_to_worker_count_process(self):
        serial = CampaignDaemon(make_config()).run()
        pooled = CampaignDaemon(
            make_config(workers=2, executor="process")
        ).run()
        assert pooled.journal.to_jsonl() == serial.journal.to_jsonl()
        assert pooled.detection_digest == serial.detection_digest


class TestGracefulStop:
    def test_stop_before_run_completes_nothing(self):
        daemon = CampaignDaemon(make_config())
        daemon.request_stop()
        result = daemon.run()
        assert result.interrupted
        assert result.epochs_completed == 0
        assert result.journal is None

    def test_stop_flag_is_visible(self):
        daemon = CampaignDaemon(make_config())
        assert not daemon.stop_requested
        daemon.request_stop()
        assert daemon.stop_requested


class TestCampaignCompatibility:
    def test_epoch_zero_plans_match_the_batch_campaign(self):
        """`repro campaign` == one epoch: same plans, same namespace."""
        from repro.core.runner import CampaignRunner
        from repro.core.substrate import WorldShard
        from repro.util.rngtree import RngTree

        config = make_config()
        sites = WorldShard(RngTree(config.seed)).build_population(
            config.population_size
        ).alexa_top(config.top)
        runner = CampaignRunner(
            seed=config.seed, population_size=config.population_size,
            shards=config.shards, obs_enabled=True,
        )
        batch = runner.run(sites)
        epoch_style = runner.execute(runner.plan(sites, epoch=0),
                                     sites_count=len(sites))
        assert batch.journal.to_jsonl() == epoch_style.journal.to_jsonl()
        assert [p.shard_index for p in runner.plan(sites, epoch=0)] == [0, 1]
