"""Tests for checkpoint save/load: atomicity, validation, fidelity."""

import json

import pytest

from repro.core.runner import CampaignRunner
from repro.perf.wire import encode_shard_bytes
from repro.service.checkpoint import (
    Checkpoint,
    CheckpointError,
    config_digest,
    load_checkpoint,
    save_checkpoint,
)
from repro.service.scheduler import ServiceConfig
from repro.util.timeutil import DAY


def make_config(**kwargs):
    defaults = dict(population_size=300, top=8, shards=2, epochs=2,
                    epoch_length=10 * DAY)
    defaults.update(kwargs)
    return ServiceConfig(**defaults)


def shard_results_for(config, epoch=0):
    runner = CampaignRunner(
        seed=config.seed, population_size=config.population_size,
        shards=config.shards, obs_enabled=True,
    )
    from repro.core.substrate import WorldShard
    from repro.util.rngtree import RngTree

    sites = WorldShard(RngTree(config.seed)).build_population(
        config.population_size
    ).alexa_top(config.top)
    plans = runner.plan(sites, epoch=epoch,
                        start=config.start + epoch * config.epoch_length)
    return runner.execute(plans, build_journal=False).shard_results


class TestRoundTrip:
    def test_save_load_preserves_shard_results_bitwise(self, tmp_path):
        config = make_config()
        results = shard_results_for(config)
        checkpoint = Checkpoint(config_digest(config))
        checkpoint.record_epoch(results)
        path = tmp_path / "svc.ckpt"
        save_checkpoint(checkpoint, path)

        loaded = load_checkpoint(path, config)
        assert loaded.epochs_completed == 1
        restored = loaded.epoch_results[0]
        assert len(restored) == len(results)
        for original, round_tripped in zip(results, restored):
            assert encode_shard_bytes(round_tripped) == encode_shard_bytes(original)

    def test_save_is_atomic_no_tmp_left_behind(self, tmp_path):
        config = make_config()
        checkpoint = Checkpoint(config_digest(config))
        checkpoint.record_epoch(shard_results_for(config))
        path = tmp_path / "svc.ckpt"
        save_checkpoint(checkpoint, path)
        assert path.exists()
        assert not (tmp_path / "svc.ckpt.tmp").exists()

    def test_empty_checkpoint_round_trips(self, tmp_path):
        config = make_config()
        path = tmp_path / "svc.ckpt"
        save_checkpoint(Checkpoint(config_digest(config)), path)
        assert load_checkpoint(path, config).epochs_completed == 0


class TestValidation:
    def test_rejects_mismatched_config(self, tmp_path):
        config = make_config()
        checkpoint = Checkpoint(config_digest(config))
        path = tmp_path / "svc.ckpt"
        save_checkpoint(checkpoint, path)
        with pytest.raises(CheckpointError, match="different sim config"):
            load_checkpoint(path, make_config(seed=99))

    def test_accepts_different_execution_knobs(self, tmp_path):
        config = make_config(workers=1, executor="serial")
        path = tmp_path / "svc.ckpt"
        save_checkpoint(Checkpoint(config_digest(config)), path)
        resumer = make_config(workers=4, executor="process", checkpoint_every=2)
        assert load_checkpoint(path, resumer).epochs_completed == 0

    def test_rejects_truncated_file(self, tmp_path):
        config = make_config()
        checkpoint = Checkpoint(config_digest(config))
        checkpoint.record_epoch(shard_results_for(config))
        path = tmp_path / "svc.ckpt"
        save_checkpoint(checkpoint, path)
        lines = path.read_text(encoding="ascii").splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n", encoding="ascii")
        with pytest.raises(CheckpointError, match="end marker"):
            load_checkpoint(path, config)

    def test_rejects_wrong_blob_count(self, tmp_path):
        config = make_config()
        checkpoint = Checkpoint(config_digest(config))
        checkpoint.record_epoch(shard_results_for(config))
        path = tmp_path / "svc.ckpt"
        save_checkpoint(checkpoint, path)
        lines = path.read_text(encoding="ascii").splitlines()
        footer = json.loads(lines[-1])
        footer["blobs"] += 1
        lines[-1] = json.dumps(footer, sort_keys=True)
        path.write_text("\n".join(lines) + "\n", encoding="ascii")
        with pytest.raises(CheckpointError, match="blobs"):
            load_checkpoint(path, config)

    def test_rejects_unknown_schema(self, tmp_path):
        config = make_config()
        path = tmp_path / "svc.ckpt"
        save_checkpoint(Checkpoint(config_digest(config)), path)
        lines = path.read_text(encoding="ascii").splitlines()
        header = json.loads(lines[0])
        header["schema"] = 99
        lines[0] = json.dumps(header, sort_keys=True)
        path.write_text("\n".join(lines) + "\n", encoding="ascii")
        with pytest.raises(CheckpointError, match="schema"):
            load_checkpoint(path, config)

    def test_rejects_empty_file(self, tmp_path):
        config = make_config()
        path = tmp_path / "svc.ckpt"
        path.write_text("", encoding="ascii")
        with pytest.raises(CheckpointError, match="empty"):
            load_checkpoint(path, config)
