"""Determinism and cross-seed variation of the full pipeline."""

import pytest

from repro.core.scenario import PilotScenario, ScenarioConfig


def tiny_config(seed: int) -> ScenarioConfig:
    return ScenarioConfig(
        seed=seed,
        population_size=150,
        seed_list_size=30,
        main_crawl_top=120,
        second_crawl_top=150,
        manual_top=8,
        breach_count=5,
        breach_hard_exposing=2,
        unused_account_count=40,
        control_account_count=3,
    )


def fingerprint(result) -> tuple:
    return (
        len(result.campaign.attempts),
        tuple(sorted(result.detected_hosts)),
        tuple(sorted(b.event.site_host for b in result.breaches)),
        result.checker.total_login_attempts,
        tuple(
            (e.status.value, e.attempted_total, e.estimated_total)
            for e in result.estimates
        ),
    )


class TestDeterminism:
    def test_same_seed_same_world(self):
        first = PilotScenario(tiny_config(seed=77)).run()
        second = PilotScenario(tiny_config(seed=77)).run()
        assert fingerprint(first) == fingerprint(second)

    def test_same_seed_same_login_events(self):
        first = PilotScenario(tiny_config(seed=78)).run()
        second = PilotScenario(tiny_config(seed=78)).run()
        events_a = first.system.provider.telemetry.all_events_ground_truth()
        events_b = second.system.provider.telemetry.all_events_ground_truth()
        assert [(e.local_part, e.time, str(e.ip)) for e in events_a] == \
            [(e.local_part, e.time, str(e.ip)) for e in events_b]

    def test_different_seeds_differ(self):
        first = PilotScenario(tiny_config(seed=79)).run()
        second = PilotScenario(tiny_config(seed=80)).run()
        assert fingerprint(first) != fingerprint(second)

    @pytest.mark.parametrize("seed", [101, 102, 103])
    def test_invariants_hold_across_seeds(self, seed):
        result = PilotScenario(tiny_config(seed=seed)).run()
        # The properties that must hold for *every* world:
        assert result.monitor.alarms == []
        assert result.detected_hosts <= result.breached_hosts
        for estimate in result.estimates:
            assert estimate.estimated_total <= estimate.attempted_total
