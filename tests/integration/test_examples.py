"""Smoke tests: the example scripts run end to end."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, argv: list[str], capsys) -> str:
    script = EXAMPLES / name
    old_argv = sys.argv
    sys.argv = [name] + argv
    try:
        runpy.run_path(str(script), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", [], capsys)
        assert "integrity alarms: 0" in out
        assert "registration attempts:" in out

    def test_eligibility_survey_small(self, capsys):
        out = run_example("eligibility_survey.py", ["300"], capsys)
        assert "Table 4" in out
        assert "Crawler outcomes" in out

    def test_password_audit(self, capsys):
        out = run_example("password_audit.py", [], capsys)
        assert "storage inference" in out
        assert "plaintext.example" in out

    @pytest.mark.slow
    def test_crawler_extensions_small(self, capsys):
        out = run_example("crawler_extensions.py", ["80"], capsys)
        assert "Crawler-extension coverage" in out
        assert "baseline (paper pilot)" in out
