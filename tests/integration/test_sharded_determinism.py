"""Cross-layer determinism: facade, shards and Table 1 reproduction."""

import pytest

from repro.analysis.table1 import build_table1
from repro.core.campaign import RegistrationCampaign
from repro.core.estimation import SuccessEstimator
from repro.core.runner import CampaignRunner
from repro.core.system import TripwireSystem
from repro.core.substrate import WorldShard
from repro.faults.plan import FaultPlan
from repro.identity.passwords import PasswordClass
from repro.util.rngtree import RngTree


def build_system(seed: int) -> TripwireSystem:
    system = TripwireSystem(seed=seed, population_size=200)
    system.provision_identities(120, PasswordClass.HARD)
    system.provision_identities(80, PasswordClass.EASY)
    return system


def table1_rows(system: TripwireSystem) -> list[tuple]:
    campaign = RegistrationCampaign(system)
    campaign.run_batch(system.population.alexa_top(60))
    estimates = SuccessEstimator(system).estimate(campaign.exposed_attempts())
    return [
        (
            row.label,
            row.attempted_hard,
            row.attempted_easy,
            row.attempted_total,
            row.attempted_sites,
            row.estimated_hard,
            row.estimated_easy,
            row.estimated_total,
            row.estimated_sites,
        )
        for row in build_table1(estimates)
    ]


class TestFacadeDeterminism:
    def test_two_fresh_systems_same_table1(self):
        assert table1_rows(build_system(91)) == table1_rows(build_system(91))

    def test_layer_aliases_are_the_layer_objects(self):
        system = TripwireSystem(seed=5, population_size=50)
        assert system.clock is system.world.clock
        assert system.transport is system.world.transport
        assert system.queue is system.world.queue
        assert system.population is system.world.population
        assert system.provider is system.apparatus.provider
        assert system.crawler is system.apparatus.crawler
        assert system.pool is system.apparatus.pool
        assert system.mail_server is system.apparatus.mail_server

    def test_unsharded_apparatus_tree_is_root(self):
        system = TripwireSystem(seed=5, population_size=50)
        assert system.apparatus_tree is system.tree

    def test_shard_namespace_changes_apparatus_not_substrate(self):
        plain = TripwireSystem(seed=5, population_size=50)
        shard = TripwireSystem(
            seed=5, population_size=50, apparatus_namespace=("shard", 0)
        )
        # Substrate agrees: identical site specs at every rank.
        for rank in (1, 7, 23, 50):
            assert plain.population.spec_at_rank(rank) == \
                shard.population.spec_at_rank(rank)
        # Apparatus differs: distinct identity streams.
        plain.provision_identities(3, PasswordClass.HARD)
        shard.provision_identities(3, PasswordClass.HARD)
        plain_locals = [i.email_local for i in plain.pool.all_identities()]
        shard_locals = [i.email_local for i in shard.pool.all_identities()]
        assert plain_locals != shard_locals


class TestShardedDeterminismUnderFaults:
    """Chaos must not break the worker-count invariance contract."""

    SEED = 47
    POPULATION = 150

    @pytest.fixture(scope="class")
    def sites(self):
        listing = WorldShard(RngTree(self.SEED)).build_population(self.POPULATION)
        return listing.alexa_top(40)

    @staticmethod
    def attempt_fingerprint(result):
        return [
            (a.site_host, a.rank, a.password_class.value, a.outcome.code.value,
             a.outcome.pages_loaded, a.outcome.exposed_credentials,
             a.outcome.started_at, a.outcome.finished_at,
             a.identity.email_local)
            for a in result.attempts
        ]

    @staticmethod
    def table1_counts(result):
        system = TripwireSystem(seed=47, population_size=150)
        estimates = SuccessEstimator(system).estimate(result.exposed_attempts())
        return [
            (row.label, row.attempted_total, row.attempted_sites,
             row.estimated_total)
            for row in build_table1(estimates)
        ]

    def run_with(self, sites, workers, executor):
        return CampaignRunner(
            seed=self.SEED, population_size=self.POPULATION,
            shards=4, workers=workers, executor=executor,
            fault_plan=FaultPlan.from_profile("moderate", seed=6),
        ).run(sites)

    def test_workers_do_not_change_faulted_results(self, sites):
        baseline = self.run_with(sites, workers=1, executor="serial")
        assert baseline.fault_report.total_injected > 0  # chaos actually on
        for workers, executor in ((2, "thread"), (4, "thread"), (2, "process")):
            parallel = self.run_with(sites, workers=workers, executor=executor)
            assert self.attempt_fingerprint(parallel) == \
                self.attempt_fingerprint(baseline), (workers, executor)
            assert parallel.fault_report == baseline.fault_report, \
                (workers, executor)
            assert parallel.stats == baseline.stats
            assert self.table1_counts(parallel) == self.table1_counts(baseline)


class TestWarmExecutorDeterminism:
    """The PR-5 scale-out layer must not move a bit of merged output.

    The serial cold run (no warm cache, no codec) is the reference;
    warm process pools must match its attempts, counters *and* journal
    bytes for every worker count and fault profile.
    """

    SEED = 47
    POPULATION = 150

    @pytest.fixture(scope="class")
    def sites(self):
        listing = WorldShard(RngTree(self.SEED)).build_population(self.POPULATION)
        return listing.alexa_top(40)

    def run_with(self, sites, workers, executor, warm, profile):
        fault_plan = (
            FaultPlan.from_profile(profile, seed=6) if profile != "off" else None
        )
        runner = CampaignRunner(
            seed=self.SEED, population_size=self.POPULATION,
            shards=4, workers=workers, executor=executor,
            fault_plan=fault_plan, obs_enabled=True,
            warm_workers=warm,
        )
        return runner.run(sites)

    def test_warm_process_pool_matches_serial_cold(self, sites):
        baseline = self.run_with(sites, 1, "serial", warm=False, profile="moderate")
        warmed = self.run_with(sites, 2, "process", warm=True, profile="moderate")
        assert TestShardedDeterminismUnderFaults.attempt_fingerprint(warmed) == \
            TestShardedDeterminismUnderFaults.attempt_fingerprint(baseline)
        assert warmed.fault_report == baseline.fault_report
        assert warmed.stats == baseline.stats
        assert warmed.journal.to_jsonl() == baseline.journal.to_jsonl()
        assert warmed.wire_bytes  # codec actually engaged on the pool path

    @pytest.mark.slow
    @pytest.mark.parametrize("profile", ["off", "mild", "moderate"])
    def test_warm_matrix_journal_bytes(self, sites, profile):
        baseline = self.run_with(sites, 1, "serial", warm=False, profile=profile)
        reference = baseline.journal.to_jsonl()
        for workers in (1, 2, 4):
            warmed = self.run_with(sites, workers, "process", warm=True,
                                   profile=profile)
            assert warmed.journal.to_jsonl() == reference, (profile, workers)
            assert TestShardedDeterminismUnderFaults.attempt_fingerprint(warmed) \
                == TestShardedDeterminismUnderFaults.attempt_fingerprint(baseline), \
                (profile, workers)
            assert warmed.fault_report == baseline.fault_report
            assert warmed.telemetry == baseline.telemetry


class TestShardedAgainstSubstrate:
    def test_shard_attempts_use_canonical_hosts(self):
        probe = TripwireSystem(seed=29, population_size=120)
        sites = probe.population.alexa_top(30)
        result = CampaignRunner(
            seed=29, population_size=120, shards=3
        ).run(sites)
        known_hosts = {entry.host for entry in sites}
        assert {a.site_host for a in result.attempts} <= known_hosts
        ranks = {entry.host: entry.rank for entry in sites}
        assert all(a.rank == ranks[a.site_host] for a in result.attempts)
