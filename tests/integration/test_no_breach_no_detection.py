"""The falsification test: a world with no breaches yields no detections.

Tripwire's headline property is the absence of false positives
("admits no false positives — presuming the email provider itself is
not compromised").  A full pilot with every attacker mechanism disabled
must end with zero detections, zero alarms, and analysis artifacts that
render cleanly in their empty states.
"""

import pytest

from repro.analysis.fig2 import build_fig2, render_fig2
from repro.analysis.table2 import build_table2, render_table2
from repro.analysis.table3 import build_table3, render_table3
from repro.core.scenario import PilotScenario, ScenarioConfig


@pytest.fixture(scope="module")
def quiet_world():
    config = ScenarioConfig(
        seed=404,
        population_size=200,
        seed_list_size=30,
        main_crawl_top=160,
        second_crawl_top=200,
        manual_top=8,
        breach_count=0,  # nobody attacks anything
        rebreach_one_site=False,
        unused_account_count=60,
        control_account_count=4,
    )
    return PilotScenario(config).run()


class TestQuietWorld:
    def test_no_detections_without_breaches(self, quiet_world):
        assert quiet_world.breaches == []
        assert quiet_world.monitor.site_count() == 0
        assert quiet_world.monitor.alarms == []

    def test_control_logins_still_flow(self, quiet_world):
        # The pipeline is alive even though nothing tripped.
        assert len(quiet_world.monitor.control_logins) > 0

    def test_registrations_still_happened(self, quiet_world):
        assert len(quiet_world.campaign.exposed_attempts()) > 0

    def test_only_control_logins_in_telemetry(self, quiet_world):
        control = quiet_world.system.control_locals
        for event in quiet_world.system.provider.telemetry.all_events_ground_truth():
            assert event.local_part.lower() in control

    def test_empty_analyses_render(self, quiet_world):
        assert build_table2(quiet_world) == []
        assert build_table3(quiet_world) == []
        assert "no detected compromises" in render_fig2(build_fig2(quiet_world))
        # Renderers tolerate empty row sets.
        assert render_table2([])
        assert render_table3([])

    def test_estimates_still_produced(self, quiet_world):
        assert len(quiet_world.estimates) == 5
        assert sum(e.attempted_total for e in quiet_world.estimates) > 0
