"""Tests for the static data catalogs."""

import re

from repro.data import (
    ADJECTIVES,
    ATTACKER_COUNTRY_WEIGHTS,
    CITIES,
    COUNTRIES,
    DICTIONARY_WORDS,
    EMPLOYERS,
    FEMALE_FIRST_NAMES,
    LAST_NAMES,
    MALE_FIRST_NAMES,
    NOUNS,
    SITE_CATEGORIES,
    SITE_NAME_STEMS,
    TLDS,
)
from repro.data.geo import COUNTRY_NAMES
from repro.data.identity_corpus import AREA_CODES, STREET_SUFFIXES


class TestUsernameVocabulary:
    def test_adjectives_capitalized_alpha(self):
        for word in ADJECTIVES:
            assert word[0].isupper() and word.isalpha()

    def test_nouns_capitalized_alpha(self):
        for word in NOUNS:
            assert word[0].isupper() and word.isalpha()

    def test_vocabulary_large_enough_for_uniqueness(self):
        # adjective x noun x 9000 numbers must dwarf pilot identity needs.
        assert len(ADJECTIVES) * len(NOUNS) * 9000 > 10_000_000

    def test_no_duplicates(self):
        assert len(set(ADJECTIVES)) == len(ADJECTIVES)
        assert len(set(NOUNS)) == len(NOUNS)
        assert len(set(DICTIONARY_WORDS)) == len(DICTIONARY_WORDS)


class TestIdentityCorpus:
    def test_names_nonempty_and_distinct_pools(self):
        assert len(MALE_FIRST_NAMES) >= 40
        assert len(FEMALE_FIRST_NAMES) >= 40
        assert len(LAST_NAMES) >= 40

    def test_cities_have_state_and_zip_prefix(self):
        for city, state, zip_prefix in CITIES:
            assert len(state) == 2 and state.isupper()
            assert re.match(r"^\d{3}$", zip_prefix)

    def test_area_codes_valid(self):
        for code in AREA_CODES:
            assert re.match(r"^[2-9]\d{2}$", code)

    def test_street_suffixes(self):
        assert "St" in STREET_SUFFIXES and "Ave" in STREET_SUFFIXES

    def test_employers_plausible(self):
        assert len(EMPLOYERS) >= 20
        assert all(" " in employer for employer in EMPLOYERS)


class TestSiteCatalogs:
    def test_paper_categories_present(self):
        # Table 2's categories must exist in the generator's vocabulary.
        for category in ("Deals", "Gaming", "BitTorrent", "Wallpapers",
                         "RSS Feeds", "Marketing", "Horoscopes", "Classifieds",
                         "Adult", "Vacations", "Outdoors", "Tourism Guide",
                         "Press Releases", "BTC Forum"):
            assert category in SITE_CATEGORIES, category

    def test_tld_weights_positive(self):
        assert all(weight > 0 for _tld, weight in TLDS)
        assert any(tld == ".com" for tld, _w in TLDS)

    def test_stems_lowercase(self):
        assert all(stem == stem.lower() for stem in SITE_NAME_STEMS)


class TestGeo:
    def test_paper_top_countries_weighted_correctly(self):
        weights = dict(ATTACKER_COUNTRY_WEIGHTS)
        # §6.4.3: RU 194 > CN 144 > US 135 > VN 89.
        assert weights["RU"] > weights["CN"] > weights["US"] > weights["VN"]

    def test_country_diversity_matches_paper_scale(self):
        assert len(COUNTRIES) >= 90  # paper: 92 countries observed

    def test_all_weighted_countries_named(self):
        for code, _weight in ATTACKER_COUNTRY_WEIGHTS:
            assert code in COUNTRY_NAMES
