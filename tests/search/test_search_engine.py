"""Tests for the search-engine extension (§6.2.2's suggestion)."""

import pytest

from repro.net.dns import DnsResolver
from repro.net.transport import Transport
from repro.net.whois import WhoisRegistry
from repro.search import SearchEngine
from repro.sim.clock import SimClock
from repro.util.rngtree import RngTree
from repro.web.population import InternetPopulation
from repro.web.spec import LinkPlacement, RegistrationStyle


def build_world(overrides):
    clock = SimClock()
    transport = Transport(clock)
    population = InternetPopulation(
        RngTree(91), clock, transport, WhoisRegistry(), DnsResolver(), size=3,
        overrides={1: overrides},
    )
    population.site_at_rank(1)
    return transport, population


HIDDEN_SITE = {
    "bucket": "rest",
    "host": "hidden.test",
    "language": "en",
    "load_fails": False,
    "registration_style": RegistrationStyle.SIMPLE,
    "link_placement": LinkPlacement.UNLINKED,  # homepage never links it
    "registration_path": "/members",
    "anchor_text": "Become a member",
}


class TestSpidering:
    def test_sitemap_served_and_indexed(self):
        transport, _population = build_world(dict(HIDDEN_SITE))
        engine = SearchEngine(transport)
        indexed = engine.index_site("hidden.test")
        assert indexed >= 4  # home, about, contact, login, registration
        assert engine.pages_indexed == indexed

    def test_indexing_idempotent(self):
        transport, _population = build_world(dict(HIDDEN_SITE))
        engine = SearchEngine(transport)
        first = engine.index_site("hidden.test")
        assert engine.index_site("hidden.test") == first
        assert engine.pages_indexed == first

    def test_unreachable_host_indexes_nothing(self, transport):
        engine = SearchEngine(transport)
        assert engine.index_site("ghost.test") == 0

    def test_max_pages_validated(self, transport):
        with pytest.raises(ValueError):
            SearchEngine(transport, max_pages_per_site=0)


class TestRegistrationDiscovery:
    def test_finds_page_the_homepage_hides(self):
        transport, _population = build_world(dict(HIDDEN_SITE))
        engine = SearchEngine(transport)
        url = engine.find_registration_page("hidden.test")
        assert url is not None
        assert url.endswith("/members")

    def test_no_registration_site_yields_nothing(self):
        overrides = dict(HIDDEN_SITE)
        overrides["registration_style"] = RegistrationStyle.NONE
        overrides["bucket"] = "no_registration"
        transport, _population = build_world(overrides)
        engine = SearchEngine(transport)
        assert engine.find_registration_page("hidden.test") is None

    def test_query_scoped_to_site(self):
        transport, _population = build_world(dict(HIDDEN_SITE))
        engine = SearchEngine(transport)
        engine.index_site("hidden.test")
        hits = engine.query(("register",), site="hidden.test")
        assert all("hidden.test" in h.url for h in hits)


class TestCrawlerFallback:
    def test_crawler_with_search_engine_recovers_hidden_registration(self):
        from repro.crawler.captcha import CaptchaSolverService
        from repro.crawler.engine import CrawlerConfig, RegistrationCrawler
        from repro.crawler.outcomes import TerminationCode
        from repro.identity.generator import IdentityFactory
        from repro.identity.passwords import PasswordClass

        transport, population = build_world(dict(HIDDEN_SITE))
        identity_factory = IdentityFactory(RngTree(92))
        solver = CaptchaSolverService(RngTree(93).rng(), image_accuracy=1.0)
        config = CrawlerConfig(system_error_rate=0.0)

        plain = RegistrationCrawler(transport, solver, RngTree(94).rng(), config=config)
        outcome = plain.register_at("http://hidden.test/",
                                    identity_factory.create(PasswordClass.HARD))
        assert outcome.code is TerminationCode.NO_REGISTRATION_FOUND

        assisted = RegistrationCrawler(
            transport, solver, RngTree(95).rng(), config=config,
            search_engine=SearchEngine(transport),
        )
        outcome = assisted.register_at("http://hidden.test/",
                                       identity_factory.create(PasswordClass.HARD))
        assert outcome.code is TerminationCode.OK_SUBMISSION
        site = population.site_by_host("hidden.test")
        assert len(site.accounts) == 1
