"""Tests for site-side password storage."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.web.passwords import PasswordStorage, StoredCredential

ALL_POLICIES = list(PasswordStorage)


class TestVerification:
    @pytest.mark.parametrize("storage", ALL_POLICIES)
    def test_verify_accepts_original(self, storage):
        credential = StoredCredential.store(storage, "Website1", salt_source="user")
        assert credential.verify("Website1")

    @pytest.mark.parametrize("storage", ALL_POLICIES)
    def test_verify_rejects_other(self, storage):
        credential = StoredCredential.store(storage, "Website1", salt_source="user")
        assert not credential.verify("Website2")

    @given(st.text(min_size=1, max_size=30), st.sampled_from(ALL_POLICIES))
    def test_verify_roundtrip_property(self, password, storage):
        credential = StoredCredential.store(storage, password, salt_source="u")
        assert credential.verify(password)


class TestExposure:
    def test_plaintext_recoverable(self):
        credential = StoredCredential.store(PasswordStorage.PLAINTEXT, "pw123456")
        assert credential.recover_directly() == "pw123456"

    def test_reversible_recoverable(self):
        credential = StoredCredential.store(PasswordStorage.REVERSIBLE, "pw123456")
        assert credential.recover_directly() == "pw123456"

    @pytest.mark.parametrize("storage", [
        PasswordStorage.UNSALTED_MD5, PasswordStorage.SALTED_HASH,
        PasswordStorage.STRONG_HASH,
    ])
    def test_hashed_not_directly_recoverable(self, storage):
        credential = StoredCredential.store(storage, "pw123456", salt_source="u")
        assert credential.recover_directly() is None
        assert credential.secret != "pw123456"

    def test_salted_schemes_differ_per_user(self):
        a = StoredCredential.store(PasswordStorage.SALTED_HASH, "same", salt_source="alice")
        b = StoredCredential.store(PasswordStorage.SALTED_HASH, "same", salt_source="bob")
        assert a.secret != b.secret

    def test_unsalted_identical_for_same_password(self):
        a = StoredCredential.store(PasswordStorage.UNSALTED_MD5, "same")
        b = StoredCredential.store(PasswordStorage.UNSALTED_MD5, "same")
        assert a.secret == b.secret  # rainbow tables work on these

    def test_guess_checking_matches_verify(self):
        credential = StoredCredential.store(PasswordStorage.SALTED_HASH, "Target99",
                                            salt_source="u")
        assert credential.matches_guess("Target99")
        assert not credential.matches_guess("Other000")


class TestPolicyMetadata:
    def test_exposes_all_flags(self):
        assert PasswordStorage.PLAINTEXT.exposes_all_passwords
        assert PasswordStorage.REVERSIBLE.exposes_all_passwords
        assert not PasswordStorage.SALTED_HASH.exposes_all_passwords

    def test_crack_delays_monotonic_in_strength(self):
        assert (
            PasswordStorage.PLAINTEXT.crack_delay_days
            <= PasswordStorage.UNSALTED_MD5.crack_delay_days
            <= PasswordStorage.SALTED_HASH.crack_delay_days
            <= PasswordStorage.STRONG_HASH.crack_delay_days
        )
