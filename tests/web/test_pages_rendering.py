"""Tests for page rendering across languages, styles and flows."""

import pytest

from repro.html.forms import extract_form_model
from repro.html.parser import parse_html
from repro.web.i18n import LEXICONS, lexicon_for
from repro.web.pages import (
    render_homepage,
    render_registration_page,
    render_response_page,
    render_verification_landing,
    registration_fields,
)
from repro.web.spec import (
    BotCheck,
    LinkPlacement,
    RegistrationStyle,
    ResponseStyle,
    SiteSpec,
)


def spec_for(lang="en", **overrides):
    lexicon = lexicon_for(lang)
    spec = SiteSpec(host="page.test", rank=10, category="News", language=lang,
                    anchor_text=lexicon.sign_up)
    for name, value in overrides.items():
        setattr(spec, name, value)
    return spec, lexicon


class TestHomepage:
    @pytest.mark.parametrize("lang", sorted(LEXICONS))
    def test_all_languages_render_and_parse(self, lang):
        spec, lexicon = spec_for(lang)
        dom = parse_html(render_homepage(spec, lexicon))
        assert dom.get("lang") == lang
        assert dom.find_first("title") is not None

    def test_prominent_link_in_nav(self):
        spec, lexicon = spec_for(link_placement=LinkPlacement.PROMINENT)
        dom = parse_html(render_homepage(spec, lexicon))
        hrefs = [a.get("href") for a in dom.find_all("a")]
        assert spec.registration_path in hrefs

    def test_unlinked_placement_hides_registration(self):
        spec, lexicon = spec_for(link_placement=LinkPlacement.UNLINKED)
        dom = parse_html(render_homepage(spec, lexicon))
        hrefs = [a.get("href") for a in dom.find_all("a")]
        assert spec.registration_path not in hrefs

    def test_image_only_link_has_no_text(self):
        spec, lexicon = spec_for(link_placement=LinkPlacement.IMAGE_ONLY)
        dom = parse_html(render_homepage(spec, lexicon))
        for anchor in dom.find_all("a"):
            if anchor.get("href") == spec.registration_path:
                assert anchor.text_content() == ""
                assert anchor.find_first("img") is not None
                break
        else:
            pytest.fail("image link missing")


class TestRegistrationPage:
    @pytest.mark.parametrize("label_style", ["for", "wrap", "placeholder", "adjacent"])
    def test_label_styles_expose_descriptors(self, label_style):
        spec, lexicon = spec_for(label_style=label_style, wants_username=True)
        dom = parse_html(render_registration_page(spec, lexicon))
        model = extract_form_model(dom, dom.find_first("form"))
        email_name = lexicon.field_names["email"]
        field = model.field_by_name(email_name)
        assert field is not None
        assert field.descriptor_texts(), label_style

    def test_field_order_credentials_before_profile(self):
        spec, lexicon = spec_for(wants_name=True, wants_phone=True)
        fields = registration_fields(spec, lexicon)
        assert fields.index("email") < fields.index("first_name")
        assert fields.index("password") < fields.index("phone")

    def test_captcha_row_carries_token(self):
        spec, lexicon = spec_for(bot_check=BotCheck.CAPTCHA_IMAGE)
        html = render_registration_page(spec, lexicon, captcha_token="tok-1")
        dom = parse_html(html)
        tokens = [n.get("data-challenge") for n in dom.iter() if n.get("data-challenge")]
        assert tokens == ["tok-1"]
        hidden = [n for n in dom.find_all("input") if n.get("name") == "_challenge_token"]
        assert hidden and hidden[0].get("value") == "tok-1"

    def test_interactive_widget_has_no_fillable_captcha(self):
        spec, lexicon = spec_for(bot_check=BotCheck.INTERACTIVE)
        dom = parse_html(render_registration_page(spec, lexicon, captcha_token="t"))
        model = extract_form_model(dom, dom.find_first("form"))
        names = [f.name for f in model.visible_fields()]
        assert lexicon.field_names["captcha"] not in names

    def test_external_only_has_no_form(self):
        spec, lexicon = spec_for(registration_style=RegistrationStyle.EXTERNAL_ONLY)
        dom = parse_html(render_registration_page(spec, lexicon))
        assert dom.find_all("form") == []
        assert "oauth" in dom.to_html()

    def test_multistage_step1_action_points_to_step2(self):
        spec, lexicon = spec_for(registration_style=RegistrationStyle.MULTISTAGE,
                                 multistage_credentials_first=True)
        dom = parse_html(render_registration_page(spec, lexicon, step=1))
        form = dom.find_first("form")
        assert form.get("action").endswith("/step2")

    def test_error_banner_rendered(self):
        spec, lexicon = spec_for()
        html = render_registration_page(spec, lexicon, error="Something broke")
        assert "Something broke" in html


class TestResponsePages:
    def test_clear_success_and_failure_differ(self):
        spec, lexicon = spec_for(response_style=ResponseStyle.CLEAR)
        ok = render_response_page(spec, lexicon, ok=True)
        fail = render_response_page(spec, lexicon, ok=False)
        assert "successful" in ok
        assert "Error" in fail
        assert ok != fail

    def test_ambiguous_identical_either_way(self):
        spec, lexicon = spec_for(response_style=ResponseStyle.AMBIGUOUS)
        ok = render_response_page(spec, lexicon, ok=True)
        fail = render_response_page(spec, lexicon, ok=False)
        assert ok == fail

    def test_noisy_success_contains_error_words(self):
        spec, lexicon = spec_for(response_style=ResponseStyle.NOISY)
        ok = render_response_page(spec, lexicon, ok=True)
        assert "invalid" in ok  # the misleading boilerplate

    def test_verification_landing(self):
        spec, lexicon = spec_for()
        assert "confirmed" in render_verification_landing(spec, lexicon, ok=True)
        assert "Invalid" in render_verification_landing(spec, lexicon, ok=False)
