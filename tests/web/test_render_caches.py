"""The render caches must be invisible: byte-identical output always.

``render_homepage`` / ``render_registration_page`` /
``render_response_page`` memoize on their deterministic inputs and
substitute the per-request captcha/stage tokens into the cached text;
every test here compares cached output against a direct call to the
underlying ``_render_*`` builder.
"""

import pytest

from repro.perf import caching as _perf
from repro.web.i18n import LEXICONS
from repro.web.pages import (
    _render_homepage,
    _render_registration_page,
    _render_response_page,
    render_homepage,
    render_registration_page,
    render_response_page,
)
from repro.web.spec import BotCheck, SiteSpec


@pytest.fixture(autouse=True)
def fresh_caches():
    _perf.clear_all_caches()
    yield
    _perf.set_enabled(True)
    _perf.clear_all_caches()


def spec_for(host: str = "cache.test", **overrides) -> SiteSpec:
    defaults = dict(
        host=host,
        rank=9,
        category="Forums",
        language="en",
        wants_confirm_password=True,
        wants_terms_checkbox=True,
        bot_check=BotCheck.CAPTCHA_IMAGE,
    )
    defaults.update(overrides)
    return SiteSpec(**defaults)


LEX = LEXICONS["en"]


class TestBitIdentity:
    def test_homepage_hit_equals_direct_render(self):
        spec = spec_for()
        direct = _render_homepage(spec, LEX)
        assert render_homepage(spec, LEX) == direct  # miss
        assert render_homepage(spec, LEX) == direct  # hit

    def test_registration_hit_equals_direct_render(self):
        spec = spec_for()
        direct = _render_registration_page(spec, LEX, 1, "ch-cache.test-1", None, None)
        first = render_registration_page(spec, LEX, captcha_token="ch-cache.test-1")
        again = render_registration_page(spec, LEX, captcha_token="ch-cache.test-1")
        assert first == direct
        assert again == direct

    def test_response_hit_equals_direct_render(self):
        spec = spec_for()
        direct = _render_response_page(spec, LEX, False, "taken")
        assert render_response_page(spec, LEX, False, "taken") == direct
        assert render_response_page(spec, LEX, False, "taken") == direct

    def test_disable_switch_matches_cached_output(self):
        spec = spec_for()
        cached = render_registration_page(spec, LEX, captcha_token="ch-x-5")
        _perf.set_enabled(False)
        assert render_registration_page(spec, LEX, captcha_token="ch-x-5") == cached


class TestTokenSubstitution:
    def test_cache_hit_carries_the_fresh_captcha_token(self):
        spec = spec_for()
        render_registration_page(spec, LEX, captcha_token="ch-cache.test-1")
        second = render_registration_page(spec, LEX, captcha_token="ch-cache.test-2")
        assert "ch-cache.test-2" in second
        assert "ch-cache.test-1" not in second
        assert "sentinel" not in second
        assert second == _render_registration_page(
            spec, LEX, 1, "ch-cache.test-2", None, None
        )

    def test_stage_token_substituted_per_request(self):
        from repro.web.spec import RegistrationStyle

        spec = spec_for(
            host="staged.test",
            bot_check=BotCheck.NONE,
            registration_style=RegistrationStyle.MULTISTAGE,
        )
        render_registration_page(spec, LEX, step=2, stage_token="st-1")
        second = render_registration_page(spec, LEX, step=2, stage_token="st-2")
        assert second == _render_registration_page(spec, LEX, 2, None, "st-2", None)

    def test_token_with_html_metacharacters_is_escaped_like_direct(self):
        spec = spec_for()
        hostile = 'ch-"<&>'
        cached = render_registration_page(spec, LEX, captcha_token="ch-warm-1")
        assert cached  # warm the entry the hostile token will hit
        via_cache = render_registration_page(spec, LEX, captcha_token=hostile)
        assert via_cache == _render_registration_page(
            spec, LEX, 1, hostile, None, None
        )


class TestKeying:
    def test_mutated_spec_misses_instead_of_serving_stale(self):
        spec = spec_for()
        before = render_homepage(spec, LEX)
        spec.category = "Gaming"
        after = render_homepage(spec, LEX)
        assert after != before
        assert after == _render_homepage(spec, LEX)

    def test_distinct_languages_do_not_collide(self):
        spec_en = spec_for(host="multi.test", language="en")
        spec_de = spec_for(host="multi.test", language="de")
        assert render_homepage(spec_en, LEXICONS["en"]) != \
            render_homepage(spec_de, LEXICONS["de"])

    def test_error_text_is_part_of_the_key(self):
        spec = spec_for()
        taken = render_response_page(spec, LEX, False, "taken")
        weak = render_response_page(spec, LEX, False, "weak_password")
        assert taken != weak


class TestStats:
    def test_hits_are_recorded(self):
        spec = spec_for()
        render_homepage(spec, LEX)
        render_homepage(spec, LEX)
        stats = _perf.cache_stats()["render-homepage"]
        assert stats["hits"] >= 1
        assert stats["misses"] >= 1
