"""Tests for the Website handler: routing, validation, email, login."""


from repro.mail.messages import MessageKind
from repro.net.transport import HttpRequest
from repro.sim.clock import SimClock
from repro.util.rngtree import RngTree
from repro.web.captcha import captcha_answer_for
from repro.web.site import Website
from repro.web.spec import (
    BotCheck,
    EmailBehavior,
    RegistrationStyle,
    ResponseStyle,
    SiteSpec,
)


def make_site(mailbox=None, **spec_overrides):
    spec = SiteSpec(
        host="shop.test",
        rank=50,
        category="Shopping",
        language="en",
        wants_username=True,
        wants_confirm_password=False,
        wants_terms_checkbox=False,
        wants_name=False,
        wants_phone=False,
        extra_unlabeled_field=False,
        bot_check=BotCheck.NONE,
        email_behavior=EmailBehavior.WELCOME_ONLY,
        response_style=ResponseStyle.CLEAR,
        shadow_ban_rate=0.0,
    )
    for name, value in spec_overrides.items():
        setattr(spec, name, value)
    clock = SimClock(1000)
    router = mailbox.append if mailbox is not None else None
    return Website(spec, clock, RngTree(8).rng(), mail_router=router), spec


def get(site, path):
    return site(HttpRequest("GET", f"http://{site.spec.host}{path}"))


def post(site, path, form):
    return site(HttpRequest("POST", f"http://{site.spec.host}{path}", form=form))


def valid_form(email="user@p.example", password="Website1", username="user14chars"):
    return {"email": email, "password": password, "username": username}


class TestRouting:
    def test_homepage_served(self):
        site, spec = make_site()
        response = get(site, "/")
        assert response.ok
        assert spec.anchor_text in response.body

    def test_registration_page_served(self):
        site, spec = make_site()
        response = get(site, spec.registration_path)
        assert response.ok
        assert "<form" in response.body

    def test_unknown_path_404(self):
        site, _ = make_site()
        assert get(site, "/no/such/page").status == 404

    def test_no_registration_page_when_offline_only(self):
        site, spec = make_site(registration_style=RegistrationStyle.OFFLINE_ONLY)
        assert get(site, spec.registration_path).status == 404


class TestRegistrationValidation:
    def test_valid_submission_creates_account(self):
        site, spec = make_site()
        response = post(site, f"{spec.registration_path}/submit", valid_form())
        assert response.ok
        assert site.accounts.lookup("user@p.example") is not None
        assert site.registration_log[-1].accepted

    def test_missing_email_rejected(self):
        site, spec = make_site()
        form = valid_form(email="")
        post(site, f"{spec.registration_path}/submit", form)
        assert not site.registration_log[-1].accepted
        assert site.registration_log[-1].error == "missing_email"

    def test_short_password_rejected(self):
        site, spec = make_site()
        post(site, f"{spec.registration_path}/submit", valid_form(password="short"))
        assert site.registration_log[-1].error == "password_too_short"

    def test_special_char_policy(self):
        site, spec = make_site(requires_special_char=True)
        post(site, f"{spec.registration_path}/submit", valid_form())
        assert site.registration_log[-1].error == "password_needs_special_char"

    def test_email_length_limit(self):
        site, spec = make_site(max_email_length=16)
        post(site, f"{spec.registration_path}/submit",
             valid_form(email="eighteen-chars@x.y"))
        assert site.registration_log[-1].error == "email_too_long"

    def test_confirm_password_mismatch(self):
        site, spec = make_site(wants_confirm_password=True)
        form = valid_form()
        form["password2"] = "Different9"
        post(site, f"{spec.registration_path}/submit", form)
        assert site.registration_log[-1].error == "password_mismatch"

    def test_terms_checkbox_required(self):
        site, spec = make_site(wants_terms_checkbox=True)
        post(site, f"{spec.registration_path}/submit", valid_form())
        assert site.registration_log[-1].error == "terms_not_accepted"

    def test_extra_field_required_server_side(self):
        site, spec = make_site(extra_unlabeled_field=True)
        post(site, f"{spec.registration_path}/submit", valid_form())
        assert site.registration_log[-1].error == "missing_field"
        form = valid_form()
        form["x_fld_71"] = "anything"
        post(site, f"{spec.registration_path}/submit", form)
        assert site.registration_log[-1].accepted

    def test_duplicate_account_rejected(self):
        site, spec = make_site()
        post(site, f"{spec.registration_path}/submit", valid_form())
        post(site, f"{spec.registration_path}/submit", valid_form())
        assert site.registration_log[-1].error == "duplicate_account"

    def test_shadow_ban_drops_silently_with_success_page(self):
        site, spec = make_site(shadow_ban_rate=1.0)
        response = post(site, f"{spec.registration_path}/submit", valid_form())
        assert site.registration_log[-1].error == "shadow_ban"
        assert site.accounts.lookup("user@p.example") is None
        # The page still reads like success.
        assert "successful" in response.body or "Welcome" in response.body


class TestBotChecks:
    def test_captcha_required_and_checked(self):
        site, spec = make_site(bot_check=BotCheck.CAPTCHA_IMAGE)
        page = get(site, spec.registration_path)
        assert "data-challenge" in page.body
        form = valid_form()
        form["captcha"] = "wrong!"
        form["_challenge_token"] = "ch-shop.test-1"
        post(site, f"{spec.registration_path}/submit", form)
        assert site.registration_log[-1].error == "bot_check_failed"

    def test_captcha_correct_answer_accepted(self):
        site, spec = make_site(bot_check=BotCheck.CAPTCHA_IMAGE)
        get(site, spec.registration_path)
        token = "ch-shop.test-1"
        form = valid_form()
        form["captcha"] = captcha_answer_for(token)
        form["_challenge_token"] = token
        post(site, f"{spec.registration_path}/submit", form)
        assert site.registration_log[-1].accepted

    def test_interactive_widget_rejects_without_token(self):
        site, spec = make_site(bot_check=BotCheck.INTERACTIVE)
        post(site, f"{spec.registration_path}/submit", valid_form())
        assert site.registration_log[-1].error == "bot_check_failed"


class TestEmailBehavior:
    def test_verification_email_sent_with_working_link(self):
        mailbox = []
        site, spec = make_site(mailbox, email_behavior=EmailBehavior.VERIFICATION_LINK)
        post(site, f"{spec.registration_path}/submit", valid_form())
        assert len(mailbox) == 1
        assert mailbox[0].kind is MessageKind.VERIFICATION
        account = site.accounts.lookup("user@p.example")
        assert not account.activated
        token = mailbox[0].urls()[0].split("token=")[1]
        get(site, f"/verify?token={token}")
        assert account.activated

    def test_welcome_email_sent(self):
        mailbox = []
        site, spec = make_site(mailbox, email_behavior=EmailBehavior.WELCOME_ONLY)
        post(site, f"{spec.registration_path}/submit", valid_form())
        assert mailbox[0].kind is MessageKind.WELCOME

    def test_nothing_sends_nothing(self):
        mailbox = []
        site, spec = make_site(mailbox, email_behavior=EmailBehavior.NOTHING)
        post(site, f"{spec.registration_path}/submit", valid_form())
        assert mailbox == []

    def test_verification_optional_account_active(self):
        mailbox = []
        site, spec = make_site(mailbox, email_behavior=EmailBehavior.VERIFICATION_OPTIONAL)
        post(site, f"{spec.registration_path}/submit", valid_form())
        assert site.accounts.lookup("user@p.example").activated


class TestMultistage:
    def test_stage2_returns_form_with_token(self):
        site, spec = make_site(registration_style=RegistrationStyle.MULTISTAGE,
                               multistage_credentials_first=True)
        response = post(site, f"{spec.registration_path}/step2", valid_form())
        assert "stage_token" in response.body

    def test_stage1_values_merged_at_submit(self):
        site, spec = make_site(registration_style=RegistrationStyle.MULTISTAGE,
                               multistage_credentials_first=True, wants_name=True)
        post(site, f"{spec.registration_path}/step2", valid_form())
        post(site, f"{spec.registration_path}/submit",
             {"stage_token": "st-1", "first_name": "A", "last_name": "B"})
        assert site.registration_log[-1].accepted
        account = site.accounts.lookup("user@p.example")
        assert account.profile.get("first_name") == "A"

    def test_creates_at_step1(self):
        site, spec = make_site(registration_style=RegistrationStyle.MULTISTAGE,
                               multistage_credentials_first=True,
                               multistage_creates_at_step1=True)
        post(site, f"{spec.registration_path}/step2", valid_form())
        assert site.accounts.lookup("user@p.example") is not None


class TestSiteLogin:
    def test_login_success_and_failure(self):
        site, spec = make_site()
        post(site, f"{spec.registration_path}/submit", valid_form())
        ok = post(site, "/login", {"login": "user@p.example", "password": "Website1"})
        assert ok.status == 200
        bad = post(site, "/login", {"login": "user@p.example", "password": "nope1234"})
        assert bad.status == 401

    def test_brute_force_lockout(self):
        site, spec = make_site()
        post(site, f"{spec.registration_path}/submit", valid_form())
        for _ in range(Website.SITE_LOGIN_FAILURE_LIMIT):
            post(site, "/login", {"login": "user@p.example", "password": "wrong000"})
        locked = post(site, "/login", {"login": "user@p.example", "password": "Website1"})
        assert locked.status == 429

    def test_no_protection_when_disabled(self):
        site, spec = make_site(site_brute_force_protection=False)
        post(site, f"{spec.registration_path}/submit", valid_form())
        for _ in range(Website.SITE_LOGIN_FAILURE_LIMIT + 5):
            post(site, "/login", {"login": "user@p.example", "password": "wrong000"})
        ok = post(site, "/login", {"login": "user@p.example", "password": "Website1"})
        assert ok.status == 200

    def test_admin_approval_blocks_login(self):
        site, spec = make_site(requires_admin_approval=True)
        post(site, f"{spec.registration_path}/submit", valid_form())
        assert not site.check_credentials("user@p.example", "Website1")


class TestGroundTruth:
    def test_observed_plaintext(self):
        site, spec = make_site()
        post(site, f"{spec.registration_path}/submit", valid_form())
        assert site.observed_plaintext("user14chars") == "Website1"
        assert site.observed_plaintext("ghost") is None

    def test_organic_seeding(self):
        site, _ = make_site()
        created = site.seed_organic_accounts(50)
        assert created == 50
        assert len(site.accounts) == 50
        for account in site.accounts.all_accounts():
            assert not account.email.endswith("@bigmail.example")

    def test_sales_call_on_free_trial(self):
        site, spec = make_site(is_free_trial=True, wants_phone=True)
        called = 0
        for i in range(30):
            form = valid_form(email=f"u{i}@p.example", username=f"user{i:04d}")
            form["phone"] = f"619-555-{i:04d}"
            post(site, f"{spec.registration_path}/submit", form)
        assert len(site.sales_call_numbers) > 0
