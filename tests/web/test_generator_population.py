"""Tests for the site generator and the ranked population."""

import pytest

from repro.net.dns import DnsResolver
from repro.net.transport import HostUnreachable, Transport
from repro.net.whois import WhoisRegistry
from repro.sim.clock import SimClock
from repro.util.rngtree import RngTree
from repro.web.generator import SiteGenerator, bot_check_prob, eligibility_probs
from repro.web.population import InternetPopulation
from repro.web.spec import RegistrationStyle


@pytest.fixture
def population():
    clock = SimClock()
    return InternetPopulation(
        RngTree(21), clock, Transport(clock), WhoisRegistry(), DnsResolver(), size=200
    )


class TestGeneratorDistributions:
    def test_specs_deterministic(self):
        a = SiteGenerator(RngTree(5)).spec_for_rank(10)
        b = SiteGenerator(RngTree(5)).spec_for_rank(10)
        assert a.host == b.host
        assert a.password_storage == b.password_storage

    def test_hosts_unique_across_ranks(self):
        generator = SiteGenerator(RngTree(6))
        hosts = {generator.spec_for_rank(rank).host for rank in range(1, 301)}
        assert len(hosts) == 300

    def test_eligibility_probs_interpolation(self):
        top = eligibility_probs(50)
        deep = eligibility_probs(100000)
        assert top == eligibility_probs(1)  # clamped below first anchor
        assert deep[2] > top[2]  # no-registration grows with rank

    def test_bot_check_prob_declines_with_rank(self):
        assert bot_check_prob(50) == pytest.approx(0.37)
        assert bot_check_prob(10000) == pytest.approx(0.15)
        assert bot_check_prob(100) > bot_check_prob(5000) > bot_check_prob(50000) - 0.01

    def test_overrides_applied(self):
        generator = SiteGenerator(
            RngTree(7),
            overrides={3: {"category": "Deals", "password_storage": "plaintext",
                           "bucket": "rest"}},
        )
        spec = generator.spec_for_rank(3)
        assert spec.category == "Deals"
        assert spec.password_storage == "plaintext"
        assert spec.eligibility_bucket == "rest"

    def test_unknown_override_rejected(self):
        generator = SiteGenerator(RngTree(8), overrides={1: {"no_such_field": 1}})
        with pytest.raises(ValueError):
            generator.spec_for_rank(1)

    def test_non_english_sites_use_non_english_lexicon(self):
        generator = SiteGenerator(RngTree(9))
        non_english = [generator.spec_for_rank(r) for r in range(1, 400)]
        samples = [s for s in non_english if not s.is_english]
        assert samples, "expected some non-English sites"
        assert all(s.language != "en" for s in samples)

    def test_population_level_bucket_rates(self):
        generator = SiteGenerator(RngTree(10))
        specs = [generator.spec_for_rank(r) for r in range(1, 1001)]
        non_english = sum(1 for s in specs if s.eligibility_bucket == "non_english")
        # Table 4: 37-53% around these ranks.
        assert 0.30 <= non_english / len(specs) <= 0.55


class TestPopulation:
    def test_rank_bounds_validated(self, population):
        with pytest.raises(ValueError):
            population.spec_at_rank(0)
        with pytest.raises(ValueError):
            population.spec_at_rank(201)

    def test_specs_cached(self, population):
        assert population.spec_at_rank(5) is population.spec_at_rank(5)

    def test_site_wired_into_transport_and_dns(self, population):
        site = population.site_at_rank(1)
        host = site.spec.host
        assert population.rank_of_host(host) == 1
        assert population.site_by_host(host) is site

    def test_load_failure_sites_marked_down(self):
        clock = SimClock()
        transport = Transport(clock)
        population = InternetPopulation(
            RngTree(22), clock, transport, WhoisRegistry(), DnsResolver(), size=400
        )
        down_ranks = [
            r for r in range(1, 401)
            if population.spec_at_rank(r).load_fails
        ]
        assert down_ranks, "expected some load-failing sites"
        rank = down_ranks[0]
        site = population.site_at_rank(rank)
        with pytest.raises(HostUnreachable):
            transport.get(f"http://{site.spec.host}/")

    def test_alexa_list_ordered(self, population):
        top = population.alexa_top(10)
        assert [entry.rank for entry in top] == list(range(1, 11))
        assert all(entry.url.startswith("http://") for entry in top)

    def test_quantcast_overlaps_but_differs(self, population):
        alexa_hosts = {e.host for e in population.alexa_top(50)}
        quantcast_hosts = {e.host for e in population.quantcast_top(50)}
        overlap = alexa_hosts & quantcast_hosts
        assert overlap  # substantial shared head
        assert quantcast_hosts - alexa_hosts  # plus some unique entries

    def test_quantcast_no_duplicate_hosts(self, population):
        hosts = [e.host for e in population.quantcast_top(80)]
        assert len(hosts) == len(set(hosts))

    def test_eligibility_ground_truth_sums(self, population):
        counts = population.eligibility_ground_truth(list(range(1, 101)))
        assert sum(counts.values()) == 100

    def test_mx_absent_for_some_sites(self):
        clock = SimClock()
        dns = DnsResolver()
        population = InternetPopulation(
            RngTree(23), clock, Transport(clock), WhoisRegistry(), dns, size=300
        )
        missing = 0
        for rank in range(1, 301):
            site = population.site_at_rank(rank)
            if dns.resolve_mx(site.spec.host) == []:
                missing += 1
        assert missing > 0  # site J's disclosure failure mode exists


class TestSpecInvariants:
    def test_eligible_requires_english_and_local_registration(self):
        generator = SiteGenerator(RngTree(11))
        for rank in range(1, 301):
            spec = generator.spec_for_rank(rank)
            if spec.eligible_for_tripwire:
                assert spec.is_english
                assert spec.registration_style in (
                    RegistrationStyle.SIMPLE, RegistrationStyle.MULTISTAGE
                )
                assert not spec.load_fails

    def test_bucket_consistency(self):
        generator = SiteGenerator(RngTree(12))
        for rank in range(1, 301):
            spec = generator.spec_for_rank(rank)
            bucket = spec.eligibility_bucket
            if bucket == "non_english":
                assert not spec.is_english
            if bucket == "rest":
                assert spec.eligible_for_tripwire
