"""Tests for the localization tables."""

import pytest

from repro.web.i18n import LEXICONS, NON_ENGLISH_WEIGHTS, lexicon_for


class TestLexiconCompleteness:
    REQUIRED_FIELD_KEYS = {
        "email", "password", "password_confirm", "username",
        "first_name", "last_name", "phone", "captcha", "terms",
    }

    @pytest.mark.parametrize("lang", sorted(LEXICONS))
    def test_field_names_complete(self, lang):
        lexicon = lexicon_for(lang)
        assert self.REQUIRED_FIELD_KEYS <= set(lexicon.field_names)

    @pytest.mark.parametrize("lang", sorted(LEXICONS))
    def test_strings_nonempty(self, lang):
        lexicon = lexicon_for(lang)
        for attr in ("sign_up", "log_in", "email", "password", "submit",
                     "success", "error_missing", "captcha_prompt", "terms"):
            assert getattr(lexicon, attr), f"{lang}.{attr}"

    @pytest.mark.parametrize("lang", sorted(LEXICONS))
    def test_filler_words_present(self, lang):
        assert len(lexicon_for(lang).filler) >= 5

    def test_field_name_attributes_ascii(self):
        # Form "name" attributes must be URL/HTML-safe in every language.
        for lang, lexicon in LEXICONS.items():
            for key, name in lexicon.field_names.items():
                assert name.isascii(), (lang, key)
                assert " " not in name

    def test_unknown_language_rejected(self):
        with pytest.raises(KeyError):
            lexicon_for("xx")


class TestLanguageWeights:
    def test_weights_cover_known_lexicons(self):
        for code, weight in NON_ENGLISH_WEIGHTS:
            assert code in LEXICONS
            assert weight > 0

    def test_chinese_most_prevalent(self):
        # §6.2.1: six of seven missed non-English breaches were Chinese.
        weights = dict(NON_ENGLISH_WEIGHTS)
        assert weights["zh"] == max(weights.values())

    def test_field_names_distinct_from_english(self):
        english = set(LEXICONS["en"].field_names.values())
        for lang, lexicon in LEXICONS.items():
            if lang == "en":
                continue
            overlap = english & set(lexicon.field_names.values())
            # Localized name attributes defeat English heuristics.
            assert not overlap, (lang, overlap)
