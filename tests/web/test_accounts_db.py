"""Tests for the site account database and sharding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.web.accounts import DuplicateAccountError, SiteAccountDatabase
from repro.web.passwords import PasswordStorage


def make_db(storage=PasswordStorage.SALTED_HASH, shards=1):
    return SiteAccountDatabase(storage, shard_count=shards)


class TestRegistration:
    def test_register_and_lookup(self):
        db = make_db()
        db.register("alice", "alice@mail.test", "pw1234567", created_at=0)
        assert db.lookup("alice") is not None
        assert db.lookup("ALICE@mail.test") is not None
        assert len(db) == 1

    def test_duplicate_username_rejected(self):
        db = make_db()
        db.register("alice", "a@x.test", "pw1234567", created_at=0)
        with pytest.raises(DuplicateAccountError):
            db.register("ALICE", "b@x.test", "pw1234567", created_at=0)

    def test_duplicate_email_rejected(self):
        db = make_db()
        db.register("alice", "a@x.test", "pw1234567", created_at=0)
        with pytest.raises(DuplicateAccountError):
            db.register("bob", "A@X.TEST", "pw1234567", created_at=0)

    def test_shard_count_validation(self):
        with pytest.raises(ValueError):
            make_db(shards=0)


class TestLogin:
    def test_login_by_username_or_email(self):
        db = make_db()
        db.register("carol", "c@x.test", "pw1234567", created_at=0)
        assert db.check_login("carol", "pw1234567")
        assert db.check_login("c@x.test", "pw1234567")
        assert not db.check_login("carol", "wrong")

    def test_inactive_account_rejected(self):
        db = make_db()
        db.register("dave", "d@x.test", "pw1234567", created_at=0,
                    activated=False, verification_token="tok")
        assert not db.check_login("dave", "pw1234567")

    def test_activation_by_token(self):
        db = make_db()
        db.register("erin", "e@x.test", "pw1234567", created_at=0,
                    activated=False, verification_token="tok9")
        account = db.activate_by_token("tok9")
        assert account is not None and account.activated
        assert account.verification_token is None
        assert db.check_login("erin", "pw1234567")

    def test_activation_bad_token(self):
        db = make_db()
        assert db.activate_by_token("nope") is None


class TestSharding:
    def test_shard_assignment_stable(self):
        db = make_db(shards=4)
        account = db.register("frank", "f@x.test", "pw1234567", created_at=0)
        assert db.shard_of(account) == db.shard_of(account)
        assert 0 <= db.shard_of(account) < 4

    def test_full_dump_includes_everyone(self):
        db = make_db(shards=4)
        for i in range(20):
            db.register(f"user{i}", f"u{i}@x.test", "pw1234567", created_at=0)
        assert len(db.dump_shards(None)) == 20

    def test_partial_dump_is_subset(self):
        db = make_db(shards=4)
        for i in range(40):
            db.register(f"user{i}", f"u{i}@x.test", "pw1234567", created_at=0)
        exposed = db.dump_shards({0, 1})
        assert 0 < len(exposed) < 40
        for account in exposed:
            assert db.shard_of(account) in {0, 1}

    def test_shards_partition_accounts(self):
        db = make_db(shards=3)
        for i in range(30):
            db.register(f"user{i}", f"u{i}@x.test", "pw1234567", created_at=0)
        total = sum(len(db.dump_shards({s})) for s in range(3))
        assert total == 30

    @given(st.sets(st.integers(min_value=0, max_value=7), max_size=8))
    def test_dump_shards_property(self, shards):
        db = make_db(shards=8)
        for i in range(16):
            db.register(f"user{i}", f"u{i}@x.test", "pw1234567", created_at=0)
        dumped = db.dump_shards(shards)
        assert all(db.shard_of(a) in shards for a in dumped)
