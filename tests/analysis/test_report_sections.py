"""The full report carries every in-text analysis section."""

from repro.analysis.report import full_report


class TestReportSections:
    def test_in_text_sections_present(self, pilot_result):
        text = full_report(pilot_result)
        for marker in (
            "Section 6.4.2: bursty login behavior",
            "Section 3 ethics audit",
            "Section 5.2.2: sales calls",
            "Section 6.1.4: post-detection re-registrations",
        ):
            assert marker in text, marker

    def test_paper_reference_numbers_inline(self, pilot_result):
        text = full_report(pilot_result)
        # Every section carries its paper anchor for side-by-side reading.
        assert "paper: 19 over ~2,300 monitored sites" in text
        assert "paper: 6 of 18" in text
        assert "paper: 1,316" in text

    def test_report_is_single_document(self, pilot_result):
        text = full_report(pilot_result)
        # Sections are separated by the rule; the document is nonempty
        # and ends with the disclosure summary.
        assert text.count("=" * 78) >= 10
        assert text.rstrip().endswith("(paper: 0)")
