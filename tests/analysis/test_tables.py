"""Tests for the table builders (Tables 1-4)."""

from repro.analysis.table1 import build_table1, render_table1
from repro.analysis.table2 import assign_site_letters, build_table2, render_table2
from repro.analysis.table3 import build_table3, render_table3
from repro.analysis.table4 import (
    PAPER_TABLE4,
    average_row,
    build_table4,
    render_table4,
)


class TestTable1:
    def test_rows_in_paper_order_with_total(self, pilot_result):
        rows = build_table1(pilot_result.estimates)
        labels = [row.label for row in rows]
        assert labels == [
            "Email verified", "Email received", "OK submission",
            "Bad heuristics/Fields missing", "Manual", "Total",
        ]

    def test_total_row_sums(self, pilot_result):
        rows = build_table1(pilot_result.estimates)
        total = rows[-1]
        assert total.attempted_total == sum(r.attempted_total for r in rows[:-1])
        assert total.estimated_total == sum(r.estimated_total for r in rows[:-1])

    def test_render_contains_paper_rates(self, pilot_result):
        text = render_table1(build_table1(pilot_result.estimates))
        assert "Paper" in text
        assert "98%" in text  # the paper's email-verified rate
        assert "Total" in text


class TestTable2:
    def test_letters_assigned_in_detection_order(self, pilot_result):
        letters = assign_site_letters(pilot_result.monitor)
        detections = pilot_result.monitor.detected_sites()
        assert [letters[d.site_host] for d in detections] == [
            chr(ord("A") + i) for i in range(len(detections))
        ]

    def test_rows_match_detections(self, pilot_result):
        rows = build_table2(pilot_result)
        assert len(rows) == pilot_result.monitor.site_count()
        for row in rows:
            assert row.accounts_accessed <= row.accounts_registered
            assert row.hard_accessed in ("Y", "N", "-")
            assert row.alexa_rank_rounded % 500 == 0

    def test_hard_flag_consistent_with_monitor(self, pilot_result):
        rows = {row.host: row for row in build_table2(pilot_result)}
        for detection in pilot_result.monitor.detected_sites():
            row = rows[detection.site_host]
            if row.hard_accessed == "Y":
                assert detection.hard_accessed
            if row.hard_accessed == "N":
                assert not detection.hard_accessed

    def test_render_anonymizes_hosts(self, pilot_result):
        rows = build_table2(pilot_result)
        text = render_table2(rows)
        for row in rows:
            assert row.host not in text  # Section 3: identities obscured


class TestTable3:
    def test_aliases_follow_site_letters(self, pilot_result):
        rows = build_table3(pilot_result)
        letters = {v.lower() for v in assign_site_letters(pilot_result.monitor).values()}
        for row in rows:
            assert row.alias[0] in letters
            assert row.alias[1:].isdigit()

    def test_one_row_per_accessed_account(self, pilot_result):
        rows = build_table3(pilot_result)
        total_accounts = sum(
            len(d.accounts_accessed) for d in pilot_result.monitor.detected_sites()
        )
        assert len(rows) == total_accounts

    def test_counts_and_day_ranges_consistent(self, pilot_result):
        for row in build_table3(pilot_result):
            assert row.login_count >= 1
            assert row.days_until_first >= 0
            assert row.days_since_last >= 0
            assert row.days_accessed >= 0
            assert row.password_type in ("hard", "easy")
            assert row.frozen in ("Y", "N")

    def test_render_has_paper_columns(self, pilot_result):
        text = render_table3(build_table3(pilot_result))
        for column in ("# Logins", "Until", "Since", "Frozen", "Days Accessed"):
            assert column in text


class TestTable4:
    def test_fractions_sum_to_one(self, pilot_result):
        rows = build_table4(pilot_result.system.population, (1, 101), 100)
        for row in rows:
            total = (row.load_failure + row.non_english + row.no_registration
                     + row.ineligible + row.rest)
            assert abs(total - 1.0) < 1e-9

    def test_windows_beyond_population_skipped(self, pilot_result):
        rows = build_table4(pilot_result.system.population, (1, 10**7), 100)
        assert len(rows) == 1

    def test_average_row(self, pilot_result):
        rows = build_table4(pilot_result.system.population, (1, 101, 201), 100)
        avg = average_row(rows)
        assert abs(avg.non_english
                   - sum(r.non_english for r in rows) / len(rows)) < 1e-9

    def test_non_english_rate_in_paper_ballpark(self, pilot_result):
        rows = build_table4(pilot_result.system.population, (1, 101, 201), 100)
        avg = average_row(rows)
        assert 0.25 <= avg.non_english <= 0.60  # paper average: 44.3%

    def test_render_includes_paper_rows(self, pilot_result):
        rows = build_table4(pilot_result.system.population, (1,), 100)
        text = render_table4(rows, include_paper=True)
        assert "(paper 1)" in text
        assert "Average" in text

    def test_paper_reference_values_recorded(self):
        assert PAPER_TABLE4[1][1] == 0.43  # 43% non-English in the top-100
