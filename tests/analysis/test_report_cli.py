"""Tests for the full report and the CLI."""

import pytest

from repro.analysis.report import full_report, survey_ranks_for
from repro.cli import main


class TestFullReport:
    def test_contains_every_section(self, pilot_result):
        text = full_report(pilot_result)
        for marker in (
            "Table 1:", "Table 2:", "Table 3:", "Table 4:",
            "Figure 1:", "Figure 2:", "Figure 3:",
            "Attacker login-IP analysis", "Ground truth vs detection",
            "Disclosure (Section 6.3)",
        ):
            assert marker in text, marker

    def test_integrity_line_reports_zero(self, pilot_result):
        text = full_report(pilot_result)
        assert "integrity alarms:              0" in text

    def test_anonymization_carries_through(self, pilot_result):
        text = full_report(pilot_result)
        table2_part = text.split("Table 2:")[1].split("Table 3:")[0]
        for host in pilot_result.detected_hosts:
            assert host not in table2_part

    def test_survey_ranks_respect_population(self):
        assert survey_ranks_for(150) == (1,)
        assert survey_ranks_for(1200) == (1, 1000)
        assert survey_ranks_for(50000) == (1, 1000, 10000)
        assert survey_ranks_for(50) == (1,)


class TestCli:
    def test_survey_command(self, capsys):
        assert main(["survey", "--population", "400", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Table 4" in out
        assert "Not English" in out

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_pilot_command_small(self, capsys):
        assert main(["pilot", "--scale", "0.01", "--seed", "8",
                     "--breaches", "5"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Ground truth vs detection" in out
