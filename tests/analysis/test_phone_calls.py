"""Tests for the §5.2.2 phone-call attribution."""

from repro.analysis.phone_calls import collect_phone_calls, render_phone_call_report


class TestPhoneCalls:
    def test_all_attributed_calls_trace_to_burned_identities(self, pilot_result):
        calls, _stray = collect_phone_calls(pilot_result.system, pilot_result.campaign)
        pool = pilot_result.system.pool
        for call in calls:
            assert pool.site_for(call.identity_id) == call.site_host

    def test_calls_only_from_free_trial_sites(self, pilot_result):
        calls, _stray = collect_phone_calls(pilot_result.system, pilot_result.campaign)
        population = pilot_result.system.population
        for call in calls:
            rank = population.rank_of_host(call.site_host)
            assert population.spec_at_rank(rank).is_free_trial

    def test_render_redacts_numbers(self, pilot_result):
        calls, stray = collect_phone_calls(pilot_result.system, pilot_result.campaign)
        text = render_phone_call_report(calls, stray)
        assert "xxx-xxxx" in text or not calls
        for call in calls:
            assert call.phone not in text  # full numbers never printed
