"""Tests for the §6.1.4 recovery analysis."""

from repro.analysis.recovery import build_recovery_report, render_recovery_report
from repro.util.timeutil import MANUAL_CRAWL_START


class TestRecovery:
    def test_fates_cover_only_reregistered_sites(self, pilot_result):
        fates = build_recovery_report(pilot_result)
        for fate in fates:
            assert fate.site_host in pilot_result.reregistration_hosts
            assert fate.registered_at >= MANUAL_CRAWL_START

    def test_accessed_accounts_have_first_access(self, pilot_result):
        for fate in build_recovery_report(pilot_result):
            if fate.accessed:
                assert fate.first_access is not None
                assert fate.first_access >= fate.registered_at
            else:
                assert fate.first_access is None

    def test_minority_of_reregistrations_accessed(self, pilot_result):
        """§6.1.4: most sites recover; at most the one re-breached site
        (the site-H analogue) shows post-detection access."""
        fates = build_recovery_report(pilot_result)
        accessed_sites = {f.site_host for f in fates if f.accessed}
        assert len(accessed_sites) <= 1

    def test_render(self, pilot_result):
        fates = build_recovery_report(pilot_result)
        text = render_recovery_report(fates)
        assert "6.1.4" in text
        assert "site H" in text
