"""Tests for the figure builders (Figures 1-3) and the IP report."""

from repro.analysis.attacker_ips import (
    build_attacker_ip_report,
    render_attacker_ip_report,
)
from repro.analysis.fig1 import build_fig1, crawler_flow_graph, render_fig1
from repro.analysis.fig2 import build_fig2, render_fig2
from repro.analysis.fig3 import build_fig3, render_fig3
from repro.crawler.outcomes import TerminationCode


class TestFig1:
    def test_counts_cover_all_automated_attempts(self, pilot_result):
        data = build_fig1(pilot_result.campaign.attempts)
        automated = [a for a in pilot_result.campaign.attempts if not a.manual]
        assert data.total == len(automated)
        assert sum(data.counts.values()) == data.total

    def test_exposure_only_on_exposing_codes(self, pilot_result):
        data = build_fig1(pilot_result.campaign.attempts)
        for code, exposed in data.exposed_by_code.items():
            assert exposed <= data.counts[code]
        assert data.exposed_by_code.get(TerminationCode.NOT_ENGLISH, 0) == 0
        assert data.exposed_by_code.get(TerminationCode.NO_REGISTRATION_FOUND, 0) == 0

    def test_render(self, pilot_result):
        text = render_fig1(build_fig1(pilot_result.campaign.attempts))
        assert "ok_submission" in text
        assert "ID used" in text

    def test_flow_graph_structure(self):
        graph = crawler_flow_graph()
        terminals = [n for n, d in graph.nodes(data=True) if d["terminal"]]
        assert len(terminals) == 5  # the five exit boxes of Figure 1
        # Terminal nodes have no outgoing edges.
        for node in terminals:
            assert graph.out_degree(node) == 0
        # The fill loop self-edge exists.
        assert graph.has_edge("Identify and fill field", "Identify and fill field")


class TestFig2:
    def test_rows_sorted_by_first_login(self, pilot_result):
        data = build_fig2(pilot_result)
        first_logins = [t.first_login for t in data.timelines]
        assert first_logins == sorted(first_logins)

    def test_every_detection_has_a_row(self, pilot_result):
        data = build_fig2(pilot_result)
        assert len(data.timelines) == pilot_result.monitor.site_count()

    def test_totals_match_monitor(self, pilot_result):
        data = build_fig2(pilot_result)
        by_host = {d.site_host: d for d in pilot_result.monitor.detected_sites()}
        for timeline in data.timelines:
            assert timeline.total_logins == by_host[timeline.host].login_count

    def test_registrations_precede_first_login(self, pilot_result):
        data = build_fig2(pilot_result)
        for timeline in data.timelines:
            assert min(timeline.registrations) <= timeline.first_login

    def test_render_contains_markers_and_counts(self, pilot_result):
        data = build_fig2(pilot_result)
        text = render_fig2(data, width=60)
        assert "|" in text  # registration ticks
        for timeline in data.timelines:
            assert f"({timeline.total_logins})" in text

    def test_gap_shading_present(self, pilot_result):
        data = build_fig2(pilot_result)
        assert data.gap_windows, "the Spring-2015 log gap should be plotted"
        assert "." in render_fig2(data, width=60)


class TestFig3:
    def test_fractions_are_probabilities(self, pilot_result):
        data = build_fig3(pilot_result)
        for value in (data.ineligible_fraction, data.no_form_fraction,
                      data.system_error_fraction, data.fields_missing_fraction,
                      data.heuristics_failed_fraction, data.crawler_ok_fraction,
                      data.estimated_success_on_eligible):
            assert 0.0 <= value <= 1.0

    def test_panel2_shares_sum_to_one(self, pilot_result):
        data = build_fig3(pilot_result)
        total = (data.no_form_fraction + data.system_error_fraction
                 + data.fields_missing_fraction + data.heuristics_failed_fraction
                 + data.crawler_ok_fraction)
        assert abs(total - 1.0) < 1e-9

    def test_majority_ineligible_like_paper(self, pilot_result):
        data = build_fig3(pilot_result)
        assert data.ineligible_fraction > 0.45  # paper: 63.8%

    def test_success_smaller_than_failure_modes(self, pilot_result):
        data = build_fig3(pilot_result)
        assert data.crawler_ok_fraction < (
            data.no_form_fraction + data.system_error_fraction
            + data.fields_missing_fraction + data.heuristics_failed_fraction
        )

    def test_render_mentions_paper_numbers(self, pilot_result):
        text = render_fig3(build_fig3(pilot_result))
        assert "63.8%" in text and "12.2%" in text


class TestAttackerIpReport:
    def test_counts_consistent(self, pilot_result):
        report = build_attacker_ip_report(pilot_result)
        assert report.distinct_ips <= report.total_logins
        assert report.repeated_ips <= report.distinct_ips
        assert report.max_uses_single_ip >= 1

    def test_country_counts_cover_distinct_ips(self, pilot_result):
        report = build_attacker_ip_report(pilot_result)
        assert sum(n for _c, n in report.country_counts) == report.distinct_ips

    def test_mostly_residential(self, pilot_result):
        report = build_attacker_ip_report(pilot_result)
        assert report.residential_ips > report.datacenter_ips

    def test_imap_dominates(self, pilot_result):
        report = build_attacker_ip_report(pilot_result)
        methods = dict(report.method_counts)
        assert methods.get("IMAP", 0) == max(methods.values())

    def test_render(self, pilot_result):
        text = render_attacker_ip_report(build_attacker_ip_report(pilot_result))
        assert "1,316" in text  # paper headline for comparison
        assert "Top countries" in text
