"""Attack-class separation table and cross-site breach correlation."""

from array import array

import pytest

from repro.analysis.stuffing import (
    build_stuffing_classes,
    build_stuffing_correlation,
    render_stuffing_classes,
    render_stuffing_correlation,
)
from repro.attacker.stuffing import SiteTargetReport, StuffingWaveResult
from repro.identity.reuse import CrossSiteReuseModel, ReuseClass
from repro.util.rngtree import RngTree

UNIVERSE = 800


@pytest.fixture(scope="module")
def model():
    return CrossSiteReuseModel.from_tree(
        RngTree(31), exact_rate=0.35, derive_rate=0.3, site_density=0.15
    )


def wave_for(model, wave, rank, method):
    """A wave result whose hits are exactly the site's EXACT reusers."""
    members = model.members(rank, UNIVERSE)
    hits = array(
        "q", (u for u in members if model.behavior(u) is ReuseClass.EXACT)
    )
    acquisition = (
        "online_capture" if method == "online_capture" else "offline_crack"
    )
    return StuffingWaveResult(
        wave=wave,
        site_rank=rank,
        site_host=f"site{rank}.example",
        method=method,
        acquisition=acquisition,
        candidates=len(members),
        attempts=len(members),
        successes=len(hits),
        bad_passwords=len(members) - len(hits),
        throttled=0,
        hit_users=hits,
        site_targets=[SiteTargetReport(target_rank=99, candidates=4, hits=1)],
    )


class TestAttackClasses:
    def test_channels_are_separable_and_sum_to_the_replay_row(self, model):
        waves = [
            wave_for(model, 0, 5, "online_capture"),
            wave_for(model, 1, 11, "db_dump"),
            wave_for(model, 2, 23, "db_dump"),
        ]
        rows = {r.attack_class: r for r in build_stuffing_classes(waves)}
        assert set(rows) == {"online_capture", "offline_crack", "stuffed_reuse"}
        assert rows["online_capture"].waves == 1
        assert rows["offline_crack"].waves == 2
        assert (
            rows["stuffed_reuse"].attempts
            == rows["online_capture"].attempts + rows["offline_crack"].attempts
        )
        assert (
            rows["stuffed_reuse"].successes
            == rows["online_capture"].successes
            + rows["offline_crack"].successes
        )

    def test_render_includes_every_channel(self, model):
        rows = build_stuffing_classes([wave_for(model, 0, 5, "db_dump")])
        text = render_stuffing_classes(rows)
        for channel in ("online_capture", "offline_crack", "stuffed_reuse"):
            assert channel in text


class TestCorrelation:
    def test_every_wave_attributed_to_its_breach(self, model):
        waves = [
            wave_for(model, i, rank, "online_capture")
            for i, rank in enumerate((5, 11, 23, 42))
        ]
        report = build_stuffing_correlation(waves, model, UNIVERSE)
        assert report.accuracy == 1.0
        for attribution in report.attributions:
            assert attribution.inferred_site_rank == attribution.true_site_rank
            assert attribution.coverage == 1.0

    def test_hitless_wave_stays_unattributed(self, model):
        wave = wave_for(model, 0, 5, "online_capture")
        empty = StuffingWaveResult(
            wave=1, site_rank=11, site_host="site11.example",
            method="db_dump", acquisition="offline_crack",
            candidates=0, attempts=0, successes=0, bad_passwords=0,
            throttled=0, hit_users=array("q"), site_targets=[],
        )
        report = build_stuffing_correlation([wave, empty], model, UNIVERSE)
        by_wave = {a.wave: a for a in report.attributions}
        assert by_wave[1].inferred_site_rank is None
        assert not by_wave[1].correct
        assert report.correct == 1

    def test_explicit_candidate_list_constrains_inference(self, model):
        wave = wave_for(model, 0, 5, "online_capture")
        report = build_stuffing_correlation(
            [wave], model, UNIVERSE, candidate_ranks=[11, 23]
        )
        assert report.attributions[0].inferred_site_rank in (11, 23)
        assert not report.attributions[0].correct

    def test_render_reports_accuracy(self, model):
        waves = [wave_for(model, 0, 5, "online_capture")]
        text = render_stuffing_correlation(
            build_stuffing_correlation(waves, model, UNIVERSE)
        )
        assert "accuracy" in text
        assert "1/1" in text
