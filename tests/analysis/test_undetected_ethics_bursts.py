"""Unit tests for the §6.2 miss taxonomy, §3 ethics audit and §6.4.2 bursts."""

from repro.analysis.bursts import (
    analyze_account,
    build_burst_report,
    render_burst_report,
)
from repro.analysis.ethics import audit_load, render_ethics_audit
from repro.analysis.undetected import (
    MissReason,
    explain_miss,
    miss_report,
    render_miss_report,
)
from repro.core.monitor import AttributedLogin
from repro.email_provider.telemetry import LoginEvent, LoginMethod
from repro.identity.passwords import PasswordClass
from repro.net.ipaddr import IPv4Address
from repro.util.timeutil import MINUTE


class TestMissTaxonomy:
    def test_detected_host_classified_detected(self, pilot_result):
        detected = pilot_result.detected_hosts
        if not detected:
            return
        host = sorted(detected)[0]
        reason = explain_miss(pilot_result.system, pilot_result.campaign,
                              detected, host)
        assert reason is MissReason.DETECTED

    def test_unattempted_host_is_out_of_corpus(self, pilot_result):
        population = pilot_result.system.population
        attempted = {a.site_host for a in pilot_result.campaign.attempts}
        for rank in range(population.size, 0, -1):
            spec = population.spec_at_rank(rank)
            if spec.host not in attempted:
                reason = explain_miss(pilot_result.system, pilot_result.campaign,
                                      set(), spec.host)
                assert reason is MissReason.RANK_OUTSIDE_CORPUS
                return

    def test_non_english_attempts_classified(self, pilot_result):
        from repro.crawler.outcomes import TerminationCode

        for attempt in pilot_result.campaign.attempts:
            if attempt.outcome.code is TerminationCode.NOT_ENGLISH:
                reason = explain_miss(pilot_result.system, pilot_result.campaign,
                                      set(), attempt.site_host)
                assert reason is MissReason.NON_ENGLISH
                return

    def test_miss_report_totals(self, pilot_result):
        hosts = sorted({a.site_host for a in pilot_result.campaign.attempts})[:20]
        tally = miss_report(pilot_result.system, pilot_result.campaign,
                            pilot_result.detected_hosts, hosts)
        assert sum(tally.values()) == len(hosts)
        text = render_miss_report(tally)
        assert "Section 6.2" in text and "subtotals:" in text

    def test_every_reason_has_category(self):
        for reason in MissReason:
            assert reason.category in ("detected", "scale/scope", "technical",
                                       "inherent", "coverage")


class TestEthicsAudit:
    def test_audit_over_pilot(self, pilot_result):
        audit = audit_load(pilot_result.campaign, pilot_result.system.transport)
        assert audit.sites_contacted > 0
        assert audit.majority_two_or_fewer
        assert audit.min_inter_request_gap >= 3  # the §3 rate limit
        text = render_ethics_audit(audit)
        assert "ethics audit" in text

    def test_attempt_counts_bounded(self, pilot_result):
        audit = audit_load(pilot_result.campaign, pilot_result.system.transport)
        assert audit.max_attempts_per_site <= 4
        assert audit.sites_with_more_than_eight_attempts == 0


def login_at(time, ip_value):
    return AttributedLogin(
        event=LoginEvent("acct", time, IPv4Address(ip_value), LoginMethod.IMAP),
        identity_id=1, site_host="s.test", password_class=PasswordClass.EASY,
    )


class TestBurstAnalysis:
    def test_multi_ip_burst_detected(self):
        logins = [login_at(i * MINUTE, 100 + i) for i in range(8)]
        stats = analyze_account("acct", "s.test", logins)
        assert stats.peak_ips_in_window == 8
        assert stats.has_multi_ip_burst
        assert not stats.has_hammering

    def test_hammering_detected(self):
        logins = [login_at(i, 42) for i in range(30)]  # one IP, 30 logins/30s
        stats = analyze_account("acct", "s.test", logins)
        assert stats.max_hammer_run == 30
        assert stats.has_hammering
        assert stats.hammer_share == 1.0
        assert not stats.has_multi_ip_burst

    def test_slow_scraper_not_bursty(self):
        logins = [login_at(i * 86400, 100 + i) for i in range(10)]
        stats = analyze_account("acct", "s.test", logins)
        assert not stats.has_multi_ip_burst
        assert not stats.has_hammering

    def test_report_over_pilot(self, pilot_result):
        rows = build_burst_report(pilot_result.monitor)
        total_accounts = sum(
            len(d.accounts_accessed) for d in pilot_result.monitor.detected_sites()
        )
        assert len(rows) == total_accounts
        text = render_burst_report(rows)
        assert "6.4.2" in text
