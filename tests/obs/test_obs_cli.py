"""The CLI surface: --obs-out journals and the obs report subcommand."""

import json

import pytest

from repro.cli import main
from repro.obs.journal import SCHEMA_VERSION, read_journal


@pytest.fixture()
def campaign_journal(tmp_path):
    path = tmp_path / "journal.jsonl"
    code = main([
        "campaign", "--top", "12", "--population", "60",
        "--shards", "2", "--workers", "1", "--seed", "13",
        "--obs-out", str(path),
    ])
    assert code == 0
    return path


class TestCampaignObsOut:
    def test_writes_a_parseable_journal(self, campaign_journal):
        payload = read_journal(campaign_journal)
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["meta"]["command"] == "campaign"
        assert payload["shard_count"] == 2
        assert payload["span_count"] > 0

    def test_prints_the_live_ops_report(self, tmp_path, capsys):
        assert main([
            "campaign", "--top", "12", "--population", "60",
            "--shards", "2", "--workers", "1", "--seed", "13",
            "--obs-out", str(tmp_path / "journal.jsonl"),
        ]) == 0
        out = capsys.readouterr().out
        assert "Run journal (schema v1)" in out
        assert "Stage latency: shard.execute" in out
        # Live runs also get the process-local cache section.
        assert "Cache stats (live process, not journaled)" in out

    def test_rerun_overwrites_with_identical_bytes(self, campaign_journal, tmp_path):
        again = tmp_path / "again.jsonl"
        assert main([
            "campaign", "--top", "12", "--population", "60",
            "--shards", "2", "--workers", "1", "--seed", "13",
            "--obs-out", str(again),
        ]) == 0
        assert again.read_bytes() == campaign_journal.read_bytes()


class TestObsReportSubcommand:
    def test_renders_a_saved_journal(self, campaign_journal, capsys):
        capsys.readouterr()  # drop the campaign's own output
        assert main(["obs", "report", str(campaign_journal)]) == 0
        out = capsys.readouterr().out
        assert "Run journal (schema v1)" in out
        # Saved journals never carry process-local cache stats.
        assert "Cache stats" not in out

    def test_missing_journal_fails_cleanly(self, tmp_path, capsys):
        assert main(["obs", "report", str(tmp_path / "nope.jsonl")]) == 1
        assert "no such journal" in capsys.readouterr().err


class TestCampaignWithoutObs:
    def test_default_run_writes_no_journal(self, tmp_path, capsys):
        assert main([
            "campaign", "--top", "8", "--population", "60",
            "--shards", "2", "--workers", "1", "--seed", "13",
        ]) == 0
        out = capsys.readouterr().out
        assert "Run journal" not in out

    def test_json_summary_still_works_alongside_obs(self, tmp_path):
        summary = tmp_path / "summary.json"
        journal = tmp_path / "journal.jsonl"
        assert main([
            "campaign", "--top", "8", "--population", "60",
            "--shards", "2", "--workers", "1", "--seed", "13",
            "--json", str(summary), "--obs-out", str(journal),
        ]) == 0
        assert json.loads(summary.read_text())["stats"]["attempts"] >= 0
        assert journal.is_file()
