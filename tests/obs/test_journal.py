"""Journal serialization, parsing and shard-order invariance."""

import json

import pytest

from repro.obs import Observation
from repro.obs.journal import (
    SCHEMA_VERSION,
    RunJournal,
    ShardObservation,
    parse_journal,
    read_journal,
)
from repro.sim.clock import ClockMovedBackward, SimClock


def observed_shard(shard_index: int, spans: int = 2) -> ShardObservation:
    clock = SimClock(start=0)
    obs = Observation(clock)
    for _ in range(spans):
        with obs.span("stage", shard=shard_index):
            clock.advance(10)
    obs.count("things", shard_index + 1)
    obs.get_logger("test").info("done", shard=shard_index)
    return ShardObservation.capture(obs, shard_index)


class TestRunJournal:
    def test_jsonl_roundtrips_to_the_payload(self):
        journal = RunJournal({"seed": 7}, [observed_shard(0), observed_shard(1)])
        parsed = parse_journal(journal.to_jsonl())
        assert parsed == journal.payload()
        assert parsed["schema_version"] == SCHEMA_VERSION
        assert parsed["meta"] == {"seed": 7}
        assert parsed["shard_count"] == 2
        assert parsed["span_count"] == 4
        assert parsed["event_count"] == 2
        assert parsed["counters"]["things"] == 3

    def test_shard_arrival_order_does_not_change_bytes(self):
        shards = [observed_shard(k) for k in range(4)]
        forward = RunJournal({"seed": 1}, shards)
        backward = RunJournal({"seed": 1}, list(reversed(shards)))
        assert forward.to_jsonl() == backward.to_jsonl()

    def test_every_line_is_canonical_json(self):
        journal = RunJournal({"seed": 1}, [observed_shard(0)])
        for line in journal.to_jsonl().splitlines():
            payload = json.loads(line)
            assert json.dumps(payload, sort_keys=True,
                              separators=(",", ":")) == line

    def test_write_and_read_roundtrip(self, tmp_path):
        journal = RunJournal({"seed": 9}, [observed_shard(0)])
        path = journal.write(tmp_path / "journal.jsonl")
        assert read_journal(path) == journal.payload()

    def test_from_observation_is_a_single_shard_journal(self):
        clock = SimClock()
        obs = Observation(clock)
        with obs.span("stage"):
            clock.advance(1)
        journal = RunJournal.from_observation(obs, {"command": "pilot"})
        assert [s.shard_index for s in journal.shards] == [0]
        assert journal.payload()["span_count"] == 1


class TestParseErrors:
    def test_missing_header_raises(self):
        with pytest.raises(ValueError, match="no header"):
            parse_journal('{"record":"totals","counters":{}}\n')

    def test_unsupported_schema_raises(self):
        bad = json.dumps({"record": "header", "schema_version": 99, "meta": {}})
        with pytest.raises(ValueError, match="unsupported journal schema"):
            parse_journal(bad + "\n")

    def test_truncated_journal_raises(self):
        header = json.dumps(
            {"record": "header", "schema_version": SCHEMA_VERSION, "meta": {}}
        )
        with pytest.raises(ValueError, match="no totals"):
            parse_journal(header + "\n")


class TestClockViolationEvents:
    def test_backward_advance_is_journaled_before_raising(self):
        clock = SimClock(start=400)
        obs = Observation(clock)
        with pytest.raises(ClockMovedBackward):
            clock.advance(-5)
        (event,) = obs.events
        assert event.component == "sim.clock"
        assert event.message == "clock moved backward"
        assert event.time == 400
        assert event.attrs_dict() == {"seconds": -5}
        assert obs.metrics.counter("clock.moved_backward") == 1

    def test_system_level_observation_hooks_the_clock(self):
        from repro.core.system import TripwireSystem

        system = TripwireSystem(seed=3, population_size=50, obs_enabled=True)
        with pytest.raises(ClockMovedBackward):
            system.clock.advance(-1)
        assert system.obs.metrics.counter("clock.moved_backward") == 1

    def test_unobserved_clock_still_raises(self):
        clock = SimClock()
        with pytest.raises(ClockMovedBackward):
            clock.advance(-1)
