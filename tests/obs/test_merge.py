"""The shared shard-merge helpers behind journals and fault reports."""

from dataclasses import dataclass

from repro.obs.merge import (
    fold_shard_ordered,
    merge_count_dicts,
    sum_counter_dataclasses,
)


@dataclass(frozen=True)
class Counters:
    hits: int = 0
    misses: int = 0


class TestSumCounterDataclasses:
    def test_sums_field_wise(self):
        merged = sum_counter_dataclasses(
            Counters, [Counters(1, 2), Counters(10, 20), Counters(100, 200)]
        )
        assert merged == Counters(111, 222)

    def test_empty_iterable_yields_defaults(self):
        assert sum_counter_dataclasses(Counters, []) == Counters()

    def test_single_item_copies(self):
        original = Counters(3, 4)
        merged = sum_counter_dataclasses(Counters, [original])
        assert merged == original
        assert merged is not original


class TestFoldShardOrdered:
    def test_folds_by_shard_index_not_arrival_order(self):
        arrivals = [(2, "c"), (0, "a"), (1, "b")]
        folded = fold_shard_ordered(
            arrivals,
            index_of=lambda pair: pair[0],
            fold=lambda acc, pair: acc + pair[1],
            initial="",
        )
        assert folded == "abc"

    def test_any_permutation_gives_the_same_result(self):
        import itertools

        items = [(k, str(k)) for k in range(4)]
        outputs = {
            fold_shard_ordered(
                list(perm),
                index_of=lambda pair: pair[0],
                fold=lambda acc, pair: acc + [pair[1]],
                initial=[],
            )
            == ["0", "1", "2", "3"]
            for perm in itertools.permutations(items)
        }
        assert outputs == {True}


class TestCollectShardOrdered:
    def test_collects_in_index_order(self):
        from repro.obs.merge import collect_shard_ordered

        arrivals = [(2, "c"), (0, "a"), (1, "b")]
        assert collect_shard_ordered(arrivals, index_of=lambda p: p[0]) == \
            [(0, "a"), (1, "b"), (2, "c")]

    def test_returns_a_new_list(self):
        from repro.obs.merge import collect_shard_ordered

        items = [(0, "a")]
        collected = collect_shard_ordered(items, index_of=lambda p: p[0])
        assert collected == items and collected is not items


class TestMergeCountDicts:
    def test_sums_key_wise(self):
        merged = merge_count_dicts([{"a": 1, "b": 2}, {"b": 3, "c": 4}])
        assert merged == {"a": 1, "b": 5, "c": 4}

    def test_output_is_key_sorted(self):
        merged = merge_count_dicts([{"z": 1}, {"a": 1}])
        assert list(merged) == ["a", "z"]

    def test_empty_input(self):
        assert merge_count_dicts([]) == {}
