"""Health probes: rule semantics on synthetic snapshots, journaling.

Each rule is exercised against hand-built snapshot slices (the fast,
exhaustive way to pin warn/fail boundaries), then the daemon
integration asserts that ``health.*`` events actually land in the
journal — the deterministic alerting surface the live-smoke CI job
greps for.
"""

from repro.obs.health import FAIL, OK, WARN, HealthCheck, HealthThresholds
from repro.service.daemon import CampaignDaemon
from repro.util.timeutil import DAY

from tests.obs.test_live import make_config


def snapshot(**overrides) -> dict:
    """A healthy baseline snapshot; tests override one slice at a time."""
    base = {
        "sim_time": 100 * DAY,
        "sim_start": 0,
        "epoch_length": 10 * DAY,
        "streams": {
            "service.probe": {
                "interval": 3 * DAY, "count": 33, "last_fired": 99 * DAY,
            },
        },
        "queue": {
            "depth": 0, "max_depth": 8, "offered": 100, "refused": 0,
            "taken": 100, "peak_depth": 2,
        },
        "provider": {"throttle_rows": 10, "locked_rows": 0},
        "checkpoint": {"covered_epochs": 10, "covered_sim_time": 100 * DAY,
                       "age": 0},
    }
    base.update(overrides)
    return base


def verdict(check: HealthCheck, snap: dict, rule: str) -> str:
    statuses = {s.rule: s for s in check.evaluate(snap)}
    return statuses[rule].status


class TestQueueSaturation:
    def test_ok_warn_fail_by_refusal_share(self):
        check = HealthCheck()
        queue = {"depth": 0, "max_depth": 8, "offered": 75, "refused": 25,
                 "taken": 75, "peak_depth": 8}
        assert verdict(check, snapshot(queue=queue), "queue_saturation") == WARN
        queue = dict(queue, offered=25, refused=75)
        assert verdict(check, snapshot(queue=queue), "queue_saturation") == FAIL
        queue = dict(queue, offered=99, refused=1)
        assert verdict(check, snapshot(queue=queue), "queue_saturation") == OK

    def test_disabled_queue_is_ok(self):
        status = {
            s.rule: s for s in HealthCheck().evaluate(snapshot(queue=None))
        }["queue_saturation"]
        assert status.status == OK
        assert status.detail_dict() == {"enabled": False}

    def test_zero_offered_is_ok(self):
        queue = {"depth": 0, "max_depth": 8, "offered": 0, "refused": 0,
                 "taken": 0, "peak_depth": 0}
        assert verdict(HealthCheck(), snapshot(queue=queue),
                       "queue_saturation") == OK


class TestThrottleGrowth:
    def test_bounds(self):
        check = HealthCheck()
        ok = snapshot(provider={"throttle_rows": 9_999, "locked_rows": 0})
        warn = snapshot(provider={"throttle_rows": 10_000, "locked_rows": 0})
        fail = snapshot(provider={"throttle_rows": 50_000, "locked_rows": 0})
        assert verdict(check, ok, "throttle_growth") == OK
        assert verdict(check, warn, "throttle_growth") == WARN
        assert verdict(check, fail, "throttle_growth") == FAIL


class TestCheckpointStaleness:
    def test_for_config_scales_with_epoch_length(self):
        check = HealthCheck.for_config(epoch_length=10 * DAY)
        assert check.thresholds.checkpoint_age_warn == 20 * DAY
        assert check.thresholds.checkpoint_age_fail == 40 * DAY
        ok = snapshot(checkpoint={"age": 19 * DAY})
        warn = snapshot(checkpoint={"age": 20 * DAY})
        fail = snapshot(checkpoint={"age": 40 * DAY})
        assert verdict(check, ok, "checkpoint_staleness") == OK
        assert verdict(check, warn, "checkpoint_staleness") == WARN
        assert verdict(check, fail, "checkpoint_staleness") == FAIL

    def test_for_config_keeps_other_thresholds(self):
        base = HealthThresholds(queue_refusal_warn=0.1)
        check = HealthCheck.for_config(10 * DAY, thresholds=base)
        assert check.thresholds.queue_refusal_warn == 0.1


class TestStreamStarvation:
    def test_overdue_stream_warns_then_fails(self):
        check = HealthCheck()
        warn = snapshot(streams={
            "service.probe": {"interval": 3 * DAY, "count": 5,
                              "last_fired": 94 * DAY},
        })
        assert verdict(check, warn, "stream_starvation") == WARN
        fail = snapshot(streams={
            "service.probe": {"interval": 3 * DAY, "count": 5,
                              "last_fired": 88 * DAY},
        })
        assert verdict(check, fail, "stream_starvation") == FAIL

    def test_never_fired_stream_measured_from_start(self):
        check = HealthCheck()
        snap = snapshot(
            sim_time=7 * DAY,
            streams={"service.probe": {"interval": 3 * DAY, "count": 0,
                                       "last_fired": None}},
        )
        assert verdict(check, snap, "stream_starvation") == WARN

    def test_at_start_nothing_is_starved(self):
        snap = snapshot(
            sim_time=0,
            streams={"service.probe": {"interval": 3 * DAY, "count": 0,
                                       "last_fired": None}},
        )
        assert verdict(HealthCheck(), snap, "stream_starvation") == OK

    def test_detail_lists_the_starved_streams(self):
        snap = snapshot(streams={
            "service.probe": {"interval": 3 * DAY, "count": 1,
                              "last_fired": 80 * DAY},
            "service.bind": {"interval": 2 * DAY, "count": 1,
                             "last_fired": 95 * DAY},
        })
        status = {
            s.rule: s for s in HealthCheck().evaluate(snap)
        }["stream_starvation"]
        assert status.status == FAIL
        assert "service.probe" in status.detail_dict()["starved"]
        assert "service.bind" in status.detail_dict()["starved"]


class TestHealthStatus:
    def test_healthy_property(self):
        from repro.obs.health import HealthStatus

        assert HealthStatus("r", OK).healthy
        assert not HealthStatus("r", WARN).healthy

    def test_rule_order_is_stable(self):
        statuses = HealthCheck().evaluate(snapshot())
        assert [s.rule for s in statuses] == list(HealthCheck.RULES)


class TestHealthJournaling:
    def test_daemon_journals_health_events(self, tmp_path):
        result = CampaignDaemon(
            make_config(), flight_path=tmp_path / "flight.jsonl"
        ).run()
        text = result.journal.to_jsonl()
        for rule in HealthCheck.RULES:
            assert f"health.{rule}" in text

    def test_no_flight_no_health_events(self):
        result = CampaignDaemon(make_config()).run()
        assert "health." not in result.journal.to_jsonl()
