"""The flight recorder: snapshot byte-identity, ring, side channel.

The tentpole contract under test: the flight file a serving daemon
flushes every epoch is a pure function of the sim-shaping config —
byte-identical for any worker count and executor, under fault
injection, and across kill/resume (a resumed daemon re-flushes the
replayed epochs to the same bytes).  Wall-clock profiling lands only
in the ``.wall`` side channel, which is explicitly *not* compared.
"""

import json

import pytest

from repro.faults.plan import FaultPlan
from repro.obs.health import HealthStatus
from repro.obs.live import (
    DEFAULT_RING_CAPACITY,
    FLIGHT_SCHEMA_VERSION,
    FlightRecorder,
    parse_flight,
    read_flight,
)
from repro.service.checkpoint import load_checkpoint
from repro.service.daemon import CampaignDaemon
from repro.service.scheduler import ServiceConfig
from repro.util.timeutil import DAY


def make_config(fault_profile=None, **kwargs):
    defaults = dict(
        population_size=300, top=16, shards=2, epochs=3, epoch_length=10 * DAY,
        probe_interval=3 * DAY, dump_interval=7 * DAY, bind_interval=2 * DAY,
        freeze_interval=9 * DAY, reset_interval=13 * DAY,
        attack_interval=4 * DAY, recover_delay=2 * DAY,
        hard_accounts=8, easy_accounts=8, unused_accounts=4, control_accounts=2,
        traffic_users=40,
    )
    if fault_profile is not None:
        defaults["fault_plan"] = FaultPlan.from_profile(fault_profile, seed=3)
    defaults.update(kwargs)
    return ServiceConfig(**defaults)


def run_with_flight(tmp_path, name, fault_profile=None, **kwargs):
    flight_path = tmp_path / f"{name}.jsonl"
    result = CampaignDaemon(
        make_config(fault_profile, **kwargs), flight_path=flight_path
    ).run()
    assert not result.interrupted
    return flight_path


class TestFlightRecorderUnit:
    META = {"seed": 1, "command": "test"}

    def test_header_then_snapshots_in_sequence(self, tmp_path):
        recorder = FlightRecorder(tmp_path / "f.jsonl", self.META)
        recorder.flush({"epoch": 0, "sim_time": 10})
        recorder.flush({"epoch": 1, "sim_time": 20})
        flight = read_flight(tmp_path / "f.jsonl")
        assert flight["header"]["schema_version"] == FLIGHT_SCHEMA_VERSION
        assert flight["header"]["meta"] == self.META
        assert [s["seq"] for s in flight["snapshots"]] == [0, 1]
        assert [s["epoch"] for s in flight["snapshots"]] == [0, 1]

    def test_health_records_attach_to_their_snapshot(self, tmp_path):
        recorder = FlightRecorder(tmp_path / "f.jsonl", self.META)
        recorder.flush(
            {"epoch": 0},
            [HealthStatus("queue_saturation", "warn", (("refused", 9),))],
        )
        flight = read_flight(tmp_path / "f.jsonl")
        (record,) = flight["health"][0]
        assert record["rule"] == "queue_saturation"
        assert record["status"] == "warn"
        assert record["detail"] == {"refused": 9}

    def test_ring_is_bounded_and_rides_in_snapshots(self, tmp_path):
        recorder = FlightRecorder(tmp_path / "f.jsonl", self.META,
                                  ring_capacity=3)
        for i in range(5):
            recorder.note(i, "detection", sites=1)
        recorder.flush({"epoch": 0})
        (snapshot,) = read_flight(tmp_path / "f.jsonl")["snapshots"]
        assert [event["sim_time"] for event in snapshot["notable"]] == [2, 3, 4]
        assert DEFAULT_RING_CAPACITY == 64

    def test_flush_replaces_atomically_leaving_no_temp(self, tmp_path):
        recorder = FlightRecorder(tmp_path / "f.jsonl", self.META)
        recorder.flush({"epoch": 0})
        before = (tmp_path / "f.jsonl").read_bytes()
        recorder.flush({"epoch": 1})
        after = (tmp_path / "f.jsonl").read_bytes()
        # Each flush rewrites the whole file: the earlier bytes are a
        # strict prefix and no .tmp residue survives.
        assert after.startswith(before)
        assert not (tmp_path / "f.jsonl.tmp").exists()

    def test_profile_appends_to_the_side_channel_only(self, tmp_path):
        recorder = FlightRecorder(tmp_path / "f.jsonl", self.META)
        recorder.flush({"epoch": 0})
        recorder.profile({"epoch": 0, "dispatch_seconds": 1.25})
        recorder.profile({"epoch": 1, "dispatch_seconds": 0.5})
        lines = (tmp_path / "f.jsonl.wall").read_text().splitlines()
        assert [json.loads(line)["epoch"] for line in lines] == [0, 1]
        # Nothing wall-clock leaks into the deterministic file.
        assert "dispatch_seconds" not in (tmp_path / "f.jsonl").read_text()


class TestParseFlight:
    def test_missing_header_raises(self):
        with pytest.raises(ValueError, match="no header"):
            parse_flight('{"record":"snapshot","seq":0}\n')

    def test_unsupported_schema_raises(self):
        bad = json.dumps({"record": "flight_header", "schema_version": 99})
        with pytest.raises(ValueError, match="unsupported flight schema"):
            parse_flight(bad + "\n")

    def test_tolerates_a_torn_tail_line(self):
        header = json.dumps(
            {"record": "flight_header",
             "schema_version": FLIGHT_SCHEMA_VERSION, "meta": {}}
        )
        snapshot = json.dumps({"record": "snapshot", "seq": 0})
        flight = parse_flight(header + "\n" + snapshot + '\n{"record":"snap')
        assert len(flight["snapshots"]) == 1


class TestFlightByteIdentity:
    """Snapshot bytes are invariant to every execution-shaping knob."""

    def test_workers_and_executors_fast(self, tmp_path):
        serial = run_with_flight(tmp_path, "serial")
        threaded = run_with_flight(
            tmp_path, "threaded", workers=2, executor="thread"
        )
        assert serial.read_bytes() == threaded.read_bytes()

    def test_mild_faults_fast(self, tmp_path):
        serial = run_with_flight(tmp_path, "serial", fault_profile="mild")
        threaded = run_with_flight(
            tmp_path, "threaded", fault_profile="mild",
            workers=2, executor="thread",
        )
        assert serial.read_bytes() == threaded.read_bytes()

    def test_login_engine_choice_moves_no_snapshot_decision_bytes(
        self, tmp_path
    ):
        """Batched vs per-event flights agree on everything except the
        engine's own path-mix section (which reports exactly that
        choice)."""
        batched = run_with_flight(tmp_path, "batched", login_batching=True)
        scalar = run_with_flight(tmp_path, "scalar", login_batching=False)
        a = read_flight(batched)
        b = read_flight(scalar)
        engines_a, engines_b = [], []
        for snap_a, snap_b in zip(a["snapshots"], b["snapshots"]):
            engines_a.append(snap_a.pop("engine"))
            engines_b.append(snap_b.pop("engine"))
            assert snap_a == snap_b
        assert engines_a != engines_b  # the mix itself does differ
        assert a["health"] == b["health"]

    @pytest.mark.slow
    @pytest.mark.parametrize("fault_profile", [None, "mild"])
    @pytest.mark.parametrize("workers,executor",
                             [(2, "thread"), (2, "process"), (4, "process")])
    def test_matrix(self, tmp_path, fault_profile, workers, executor):
        reference = run_with_flight(tmp_path, "ref", fault_profile)
        other = run_with_flight(
            tmp_path, f"w{workers}-{executor}", fault_profile,
            workers=workers, executor=executor,
        )
        assert reference.read_bytes() == other.read_bytes()


class TestFlightAcrossResume:
    def run_killed_at(self, config, checkpoint_path, flight_path,
                      kill_after_epoch):
        daemon = CampaignDaemon(
            config, checkpoint_path=checkpoint_path, flight_path=flight_path
        )
        original = daemon._build_runner

        def hooked():
            runner = original()
            real_execute = runner.execute

            def execute(plans, **kwargs):
                result = real_execute(plans, **kwargs)
                if plans and plans[0].epoch >= kill_after_epoch:
                    daemon.request_stop()
                return result

            runner.execute = execute
            return runner

        daemon._build_runner = hooked
        return daemon.run()

    @pytest.mark.parametrize("kill_after_epoch", [0, 1])
    def test_resumed_flight_matches_uninterrupted(self, tmp_path,
                                                  kill_after_epoch):
        """The satellite-6 fix: checkpoint age is computed from epoch
        coverage, not from local progress, so a resumed daemon's
        snapshots — staleness rule included — byte-match the
        uninterrupted run's."""
        reference = run_with_flight(tmp_path, "reference")

        checkpoint_path = tmp_path / "svc.ckpt"
        interrupted = self.run_killed_at(
            make_config(), checkpoint_path, tmp_path / "killed.jsonl",
            kill_after_epoch,
        )
        assert interrupted.interrupted
        killed_flight = read_flight(tmp_path / "killed.jsonl")
        assert len(killed_flight["snapshots"]) == kill_after_epoch + 1

        resume_config = make_config()
        checkpoint = load_checkpoint(checkpoint_path, resume_config)
        resumed = CampaignDaemon(
            resume_config,
            checkpoint_path=checkpoint_path,
            flight_path=tmp_path / "resumed.jsonl",
        ).run(resume=checkpoint)
        assert not resumed.interrupted
        assert (tmp_path / "resumed.jsonl").read_bytes() == (
            reference.read_bytes()
        )
        # The interrupted run's file is a strict prefix of the full one.
        assert reference.read_bytes().startswith(
            (tmp_path / "killed.jsonl").read_bytes()
        )

    def test_journal_bytes_hold_with_recorder_on(self, tmp_path):
        """Health events are journaled, so the resume byte-identity
        contract must hold for the journal too when --flight is on."""
        reference = CampaignDaemon(
            make_config(), flight_path=tmp_path / "ref-flight.jsonl"
        ).run()

        checkpoint_path = tmp_path / "svc.ckpt"
        self.run_killed_at(
            make_config(), checkpoint_path, tmp_path / "killed.jsonl", 0
        )
        resume_config = make_config()
        resumed = CampaignDaemon(
            resume_config,
            checkpoint_path=checkpoint_path,
            flight_path=tmp_path / "resumed-flight.jsonl",
        ).run(resume=load_checkpoint(checkpoint_path, resume_config))
        assert resumed.journal.to_jsonl() == reference.journal.to_jsonl()


class TestSnapshotContents:
    def test_snapshot_sections_present_and_sane(self, tmp_path):
        flight = read_flight(run_with_flight(tmp_path, "run"))
        last = flight["snapshots"][-1]
        assert last["epoch"] == 2
        assert last["checkpoint"]["covered_epochs"] == 3
        assert last["checkpoint"]["age"] == 0
        streams = last["streams"]
        assert set(streams) >= {
            "service.probe", "service.ingest", "service.bind",
            "service.traffic",
        }
        assert streams["service.traffic"]["count"] > 0
        assert streams["service.traffic"]["last_fired"] is not None
        assert last["queue"]["offered"] > 0
        assert last["queue"]["taken"] == last["queue"]["offered"]
        assert last["provider"]["accounts"] > 0
        assert last["engine"]["windows"] > 0
        # The per-stream gap histograms land via the obs registry.
        assert any(name.startswith("stream.service.")
                   for name in last["histograms"])

    def test_queue_section_none_without_traffic(self, tmp_path):
        flight = read_flight(
            run_with_flight(tmp_path, "no-traffic", traffic_users=0)
        )
        assert flight["snapshots"][-1]["queue"] is None
