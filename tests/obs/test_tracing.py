"""Span tracing on the sim clock, and the zero-overhead null path."""

import pytest

from repro.obs import NO_OP, Observation
from repro.obs.metrics import MetricsRegistry, NULL_METRICS
from repro.obs.tracing import NO_PARENT, NULL_SPAN, NullTracer, Tracer
from repro.sim.clock import SimClock


class TestTracer:
    def test_span_records_sim_clock_interval(self):
        clock = SimClock(start=1000)
        tracer = Tracer(clock)
        with tracer.span("stage"):
            clock.advance(30)
        (span,) = tracer.spans
        assert (span.name, span.start, span.end) == ("stage", 1000, 1030)
        assert span.duration == 30

    def test_nested_spans_carry_parent_indices(self):
        tracer = Tracer(SimClock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("sibling"):
                pass
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["outer"].parent == NO_PARENT
        assert by_name["inner"].parent == by_name["outer"].index
        assert by_name["sibling"].parent == by_name["outer"].index
        # Records append at close time: inner finishes before outer.
        assert [s.name for s in tracer.spans] == ["inner", "sibling", "outer"]

    def test_attrs_are_sorted_tuples(self):
        tracer = Tracer(SimClock())
        with tracer.span("s", zulu=1, alpha=2):
            pass
        assert tracer.spans[0].attrs == (("alpha", 2), ("zulu", 1))
        assert tracer.spans[0].attrs_dict() == {"alpha": 2, "zulu": 1}

    def test_early_exit_still_closes_span_at_the_right_instant(self):
        # Instrumented stages return from inside ``with`` blocks; the
        # span must close at the sim instant the stage actually ended.
        clock = SimClock(start=0)
        tracer = Tracer(clock)

        def stage():
            with tracer.span("stage"):
                clock.advance(5)
                return "early"

        assert stage() == "early"
        assert tracer.spans[0].end == 5

    def test_exception_still_closes_span(self):
        tracer = Tracer(SimClock())
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert [s.name for s in tracer.spans] == ["doomed"]

    def test_durations_feed_a_histogram_per_span_name(self):
        clock = SimClock()
        metrics = MetricsRegistry()
        tracer = Tracer(clock, metrics)
        for seconds in (2, 40):
            with tracer.span("crawl.attempt"):
                clock.advance(seconds)
        data = metrics.histograms_dict()["span.crawl.attempt.sim_seconds"]
        assert data["count"] == 2
        assert data["sum"] == 42


class TestNullPath:
    def test_null_tracer_returns_the_shared_null_span(self):
        tracer = NullTracer()
        assert tracer.span("anything", attr=1) is NULL_SPAN
        assert tracer.spans == ()

    def test_no_op_observation_short_circuits_everything(self):
        assert NO_OP.span("s") is NULL_SPAN
        assert NO_OP.metrics is NULL_METRICS
        NO_OP.count("c", 5)
        assert NO_OP.events == ()

    def test_no_op_logger_is_shared_and_silent(self):
        logger = NO_OP.get_logger("component")
        assert logger is NO_OP.get_logger("other")
        logger.info("dropped", attr=1)
        assert NO_OP.events == ()

    def test_null_span_usable_as_context_manager(self):
        with NO_OP.span("s", host="x") as span:
            assert span is NULL_SPAN


class TestObservationLogger:
    def test_events_are_sim_time_stamped_and_attr_sorted(self):
        clock = SimClock(start=500)
        obs = Observation(clock)
        log = obs.get_logger("mail.hop")
        clock.advance(25)
        log.info("relayed", zulu=1, alpha=2)
        (event,) = obs.events
        assert event.time == 525
        assert event.component == "mail.hop"
        assert event.message == "relayed"
        assert event.attrs == (("alpha", 2), ("zulu", 1))
