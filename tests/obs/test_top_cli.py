"""The `repro obs top` / `obs tail` CLI surface over flight files."""

import json

import pytest

from repro.cli import main
from repro.obs.live import FLIGHT_SCHEMA_VERSION
from repro.obs.top import render_top, run_tail, run_top


@pytest.fixture(scope="module")
def flight_file(tmp_path_factory):
    """One dead flight file produced by a real serve run."""
    path = tmp_path_factory.mktemp("flight") / "flight.jsonl"
    code = main([
        "serve", "--top", "12", "--population", "300", "--shards", "2",
        "--workers", "1", "--seed", "7", "--epochs", "2", "--epoch-days", "10",
        "--traffic-users", "40", "--flight", str(path),
    ])
    assert code == 0
    return path


class TestObsTop:
    def test_once_renders_the_latest_snapshot(self, flight_file, capsys):
        capsys.readouterr()
        assert main(["obs", "top", str(flight_file), "--once"]) == 0
        out = capsys.readouterr().out
        assert "flight: epoch 1" in out
        assert "health:" in out
        assert "Lifecycle streams" in out
        assert "service.traffic" in out
        assert "Gauges" in out
        assert "checkpoint age" in out

    def test_follow_with_deadline_exits_zero_after_rendering(
        self, flight_file, capsys
    ):
        capsys.readouterr()
        assert main([
            "obs", "top", str(flight_file),
            "--interval", "0.05", "--max-seconds", "0.2",
        ]) == 0
        assert "Lifecycle streams" in capsys.readouterr().out

    def test_missing_file_once_exits_one(self, tmp_path, capsys):
        assert main(["obs", "top", str(tmp_path / "nope.jsonl"),
                     "--once"]) == 1
        assert "no flight file" in capsys.readouterr().out

    def test_missing_file_follow_times_out_to_one(self, tmp_path):
        assert run_top(tmp_path / "nope.jsonl", follow=True,
                       interval=0.05, max_seconds=0.15) == 1

    def test_header_only_file_renders_placeholder(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text(json.dumps({
            "record": "flight_header",
            "schema_version": FLIGHT_SCHEMA_VERSION, "meta": {},
        }) + "\n")
        assert main(["obs", "top", str(path), "--once"]) == 0
        assert "no snapshots yet" in capsys.readouterr().out

    def test_render_top_shows_unhealthy_detail(self):
        flight = {
            "header": {"meta": {"seed": 1}},
            "snapshots": [{
                "seq": 0, "epoch": 0, "sim_time": 0,
                "streams": {}, "queue": None, "engine": {}, "provider": {},
                "monitor": {}, "checkpoint": {}, "notable": [],
            }],
            "health": {0: [{"rule": "queue_saturation", "status": "fail",
                            "detail": {"refused": 12}}]},
        }
        rendered = render_top(flight)
        assert "[X] queue_saturation" in rendered
        assert "refused=12" in rendered


class TestObsTail:
    def test_dump_prints_every_record(self, flight_file, capsys):
        capsys.readouterr()
        assert main(["obs", "tail", str(flight_file)]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        kinds = [json.loads(line)["record"] for line in lines]
        assert kinds[0] == "flight_header"
        assert "snapshot" in kinds
        assert "health" in kinds

    def test_lines_limits_the_dump(self, flight_file, capsys):
        capsys.readouterr()
        assert main(["obs", "tail", str(flight_file), "--lines", "2"]) == 0
        assert len(capsys.readouterr().out.strip().splitlines()) == 2

    def test_follow_with_deadline_prints_then_exits(self, flight_file,
                                                    capsys):
        capsys.readouterr()
        assert main([
            "obs", "tail", str(flight_file), "--follow",
            "--max-seconds", "0.2",
        ]) == 0
        assert capsys.readouterr().out.strip()

    def test_missing_file_exits_one(self, tmp_path, capsys):
        assert main(["obs", "tail", str(tmp_path / "nope.jsonl")]) == 1
        assert "no flight file" in capsys.readouterr().out

    def test_follow_only_prints_new_records(self, tmp_path):
        path = tmp_path / "f.jsonl"
        header = json.dumps({"record": "flight_header",
                             "schema_version": FLIGHT_SCHEMA_VERSION,
                             "meta": {}})
        path.write_text(header + "\n")
        emitted = []

        class Sink:
            def write(self, text):
                emitted.append(text)

        assert run_tail(path, follow=False, out=Sink()) == 0
        first = len(emitted)
        path.write_text(header + "\n"
                        + json.dumps({"record": "snapshot", "seq": 0}) + "\n")
        assert run_tail(path, follow=False, out=Sink()) == 0
        assert len(emitted) == first + 2  # whole file again (fresh call)
