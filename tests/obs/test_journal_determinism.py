"""The journal's headline guarantee: byte-identical for any worker count."""

import json

import pytest

from repro.core.runner import CampaignRunner
from repro.core.substrate import WorldShard
from repro.faults.plan import FaultPlan
from repro.util.rngtree import RngTree

SEED = 47
POPULATION = 100
TOP = 24


@pytest.fixture(scope="module")
def sites():
    listing = WorldShard(RngTree(SEED)).build_population(POPULATION)
    return listing.alexa_top(TOP)


def journal_bytes(sites, shards, workers, executor, profile):
    plan = (FaultPlan.from_profile(profile, seed=6)
            if profile != "off" else None)
    runner = CampaignRunner(
        seed=SEED, population_size=POPULATION, shards=shards,
        workers=workers, executor=executor, fault_plan=plan,
        obs_enabled=True, obs_meta={"command": "campaign"},
    )
    return runner.run(sites).journal.to_jsonl()


class TestWorkerCountInvariance:
    @pytest.mark.parametrize("profile", ["off", "moderate"])
    @pytest.mark.parametrize("shards", [1, 8])
    def test_journal_bytes_identical_across_worker_counts(
        self, sites, shards, profile
    ):
        baseline = journal_bytes(sites, shards, 1, "serial", profile)
        for workers in (2, 4):
            parallel = journal_bytes(sites, shards, workers, "thread", profile)
            assert parallel == baseline, (shards, profile, workers)

    def test_process_pool_matches_serial(self, sites):
        baseline = journal_bytes(sites, 4, 1, "serial", "moderate")
        pooled = journal_bytes(sites, 4, 2, "process", "moderate")
        assert pooled == baseline

    def test_observed_journal_actually_has_content(self, sites):
        parsed = [json.loads(line) for line in
                  journal_bytes(sites, 4, 1, "serial", "moderate").splitlines()]
        totals = parsed[-1]
        assert totals["record"] == "totals"
        assert totals["span_count"] > 0
        # Chaos was really on: fault counters made it into the journal.
        assert any(name.startswith("fault.") for name in totals["counters"])

    def test_meta_excludes_worker_dependent_fields(self, sites):
        header = json.loads(
            journal_bytes(sites, 2, 4, "thread", "off").splitlines()[0]
        )
        assert header["record"] == "header"
        # Anything naming the executor or worker count would break the
        # byte-identity contract the tests above pin down.
        assert "workers" not in header["meta"]
        assert "executor" not in header["meta"]
        assert "wall_seconds" not in header["meta"]


class TestObservationOffByDefault:
    def test_unobserved_run_has_no_journal(self, sites):
        runner = CampaignRunner(
            seed=SEED, population_size=POPULATION, shards=2
        )
        result = runner.run(sites)
        assert result.journal is None
        assert all(r.observation is None for r in result.shard_results)
