"""Metrics registry: counters, gauges, fixed-bucket histograms."""

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BOUNDS,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    merge_histogram_dicts,
)


class TestHistogram:
    def test_boundary_value_lands_in_its_bucket(self):
        # Bounds are inclusive upper edges: observe(3) belongs to the
        # "<= 3" bucket, not the next one.
        h = Histogram("t", bounds=(1, 3, 10))
        h.observe(3)
        assert h.buckets == [0, 1, 0]
        assert h.overflow == 0

    def test_value_past_last_bound_overflows(self):
        h = Histogram("t", bounds=(1, 3, 10))
        h.observe(11)
        assert h.buckets == [0, 0, 0]
        assert h.overflow == 1

    def test_zero_and_negative_land_in_first_bucket(self):
        h = Histogram("t", bounds=(1, 3))
        h.observe(0)
        h.observe(-2)
        assert h.buckets == [2, 0]

    def test_count_and_sum_track_observations(self):
        h = Histogram("t", bounds=(10,))
        for value in (2, 5, 40):
            h.observe(value)
        assert h.count == 3
        assert h.total == 47
        assert h.as_dict() == {
            "bounds": [10], "buckets": [2], "overflow": 1,
            "count": 3, "sum": 47,
        }

    def test_bounds_must_be_ascending_and_non_empty(self):
        with pytest.raises(ValueError):
            Histogram("t", bounds=())
        with pytest.raises(ValueError):
            Histogram("t", bounds=(3, 1))


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        m = MetricsRegistry()
        m.inc("a")
        m.inc("a", 4)
        assert m.counter("a") == 5
        assert m.counter("never") == 0

    def test_gauges_keep_latest_value(self):
        m = MetricsRegistry()
        m.gauge("depth", 3)
        m.gauge("depth", 7)
        assert m.gauges_dict() == {"depth": 7}

    def test_dicts_are_key_sorted(self):
        m = MetricsRegistry()
        for name in ("zeta", "alpha", "mid"):
            m.inc(name)
        assert list(m.counters_dict()) == ["alpha", "mid", "zeta"]

    def test_observe_uses_default_latency_bounds(self):
        m = MetricsRegistry()
        m.observe("lat", 2)
        assert m.histograms_dict()["lat"]["bounds"] == list(DEFAULT_LATENCY_BOUNDS)

    def test_histogram_handle_feeds_the_registry(self):
        # The tracer caches this handle per span name; observations on
        # it must land in the registry's snapshot.
        m = MetricsRegistry()
        handle = m.histogram("lat")
        assert m.histogram("lat") is handle
        handle.observe(5)
        assert m.histograms_dict()["lat"]["count"] == 1


class TestNullMetrics:
    def test_every_write_short_circuits(self):
        NULL_METRICS.inc("a")
        NULL_METRICS.gauge("g", 1)
        NULL_METRICS.observe("h", 2)
        NULL_METRICS.histogram("h").observe(2)
        assert NULL_METRICS.counters_dict() == {}
        assert NULL_METRICS.gauges_dict() == {}
        assert NULL_METRICS.histograms_dict() == {}

    def test_null_histogram_is_shared(self):
        assert NULL_METRICS.histogram("a") is NULL_METRICS.histogram("b")

    def test_short_circuit_identity_against_live_registry(self):
        # The disabled path must be *indistinguishable from absence*:
        # writing the same stream through NULL_METRICS and a live
        # registry must leave the null sink identical to a fresh one
        # and the live registry identical to a solo write.
        live = MetricsRegistry()
        for sink in (NULL_METRICS, live):
            sink.inc("logins", 3)
            sink.observe("lat", 7, bounds=(1, 10))
        assert NULL_METRICS.counter("logins") == 0
        assert NULL_METRICS.counters_dict() == {}
        assert NULL_METRICS.histograms_dict() == {}
        assert live.counter("logins") == 3
        assert live.histograms_dict()["lat"]["count"] == 1
        # Null snapshots merge as a no-op next to live ones.
        merged = merge_histogram_dicts([
            NULL_METRICS.histograms_dict(), live.histograms_dict(),
        ])
        assert merged == live.histograms_dict()

    def test_enabled_flag_distinguishes_the_sinks(self):
        assert MetricsRegistry.enabled is True
        assert NULL_METRICS.enabled is False


class TestMergeHistogramDicts:
    def test_merges_bucket_wise(self):
        a = Histogram("lat", bounds=(1, 3))
        a.observe(1)
        b = Histogram("lat", bounds=(1, 3))
        b.observe(2)
        b.observe(99)
        merged = merge_histogram_dicts([
            {"lat": a.as_dict()}, {"lat": b.as_dict()},
        ])
        assert merged["lat"] == {
            "bounds": [1, 3], "buckets": [1, 1], "overflow": 1,
            "count": 3, "sum": 102,
        }

    def test_disjoint_names_union(self):
        a = Histogram("x", bounds=(1,))
        b = Histogram("y", bounds=(1,))
        merged = merge_histogram_dicts([{"x": a.as_dict()}, {"y": b.as_dict()}])
        assert list(merged) == ["x", "y"]

    def test_mismatched_bounds_raise(self):
        a = Histogram("lat", bounds=(1, 3))
        b = Histogram("lat", bounds=(1, 5))
        with pytest.raises(ValueError, match="mismatched bounds"):
            merge_histogram_dicts([{"lat": a.as_dict()}, {"lat": b.as_dict()}])

    def test_empty_inputs(self):
        assert merge_histogram_dicts([]) == {}
        assert merge_histogram_dicts([{}, {}]) == {}

    def test_empty_snapshots_interleave_as_no_ops(self):
        a = Histogram("lat", bounds=(1,))
        a.observe(1)
        merged = merge_histogram_dicts([{}, {"lat": a.as_dict()}, {}])
        assert merged == {"lat": a.as_dict()}

    def test_fully_disjoint_shards_union_sorted(self):
        snapshots = []
        for name in ("zeta", "alpha", "mid"):
            h = Histogram(name, bounds=(5,))
            h.observe(1)
            snapshots.append({name: h.as_dict()})
        merged = merge_histogram_dicts(snapshots)
        assert list(merged) == ["alpha", "mid", "zeta"]

    def test_merge_is_invariant_to_shard_order(self):
        # The journal's determinism hinges on this: shards arrive in
        # plan order, but the merged snapshot must not depend on it.
        import json

        snapshots = []
        for shard in range(4):
            h = Histogram("lat", bounds=(1, 3, 10))
            for value in range(shard + 1):
                h.observe(value)
            g = Histogram(f"shard{shard}.only", bounds=(2,))
            g.observe(shard)
            snapshots.append({"lat": h.as_dict(),
                              f"shard{shard}.only": g.as_dict()})
        forward = merge_histogram_dicts(snapshots)
        backward = merge_histogram_dicts(list(reversed(snapshots)))
        assert forward == backward
        # Byte-level too: key order and values serialize identically.
        assert json.dumps(forward, sort_keys=True) == json.dumps(
            backward, sort_keys=True
        )
        assert list(forward) == list(backward)
        assert forward["lat"]["count"] == 1 + 2 + 3 + 4
