"""Tests for the deterministic RNG tree."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.rngtree import RngTree, sample_distinct, weighted_choice


class TestRngTree:
    def test_same_path_same_stream(self):
        a = RngTree(42).child("x", 1).rng()
        b = RngTree(42).child("x", 1).rng()
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_labels_different_streams(self):
        a = RngTree(42).child("x").rng()
        b = RngTree(42).child("y").rng()
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_seeds_different_streams(self):
        a = RngTree(1).child("x").rng()
        b = RngTree(2).child("x").rng()
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_child_requires_labels(self):
        with pytest.raises(ValueError):
            RngTree(1).child()

    def test_seed_must_be_int(self):
        with pytest.raises(TypeError):
            RngTree("nope")  # type: ignore[arg-type]

    def test_nested_children_equal_flat_path(self):
        nested = RngTree(7).child("a").child("b", 3)
        flat = RngTree(7).child("a", "b", 3)
        assert nested == flat
        assert nested.derived_seed() == flat.derived_seed()

    def test_equality_and_hash(self):
        a = RngTree(7).child("a")
        b = RngTree(7).child("a")
        assert a == b
        assert hash(a) == hash(b)
        assert a != RngTree(7).child("b")

    def test_rng_calls_are_independent_objects(self):
        node = RngTree(9).child("z")
        first = node.rng()
        first.random()
        second = node.rng()
        # A fresh generator starts from the seed again.
        assert second.random() == node.rng().random()

    @given(st.integers(min_value=0, max_value=2**63), st.text(max_size=20))
    def test_derived_seed_stable_property(self, seed, label):
        assert (
            RngTree(seed).child(label).derived_seed()
            == RngTree(seed).child(label).derived_seed()
        )


class TestWeightedChoice:
    def test_empty_options_rejected(self):
        with pytest.raises(ValueError):
            weighted_choice(RngTree(1).rng(), [])

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            weighted_choice(RngTree(1).rng(), [("a", 0.0)])

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            weighted_choice(RngTree(1).rng(), [("a", -1.0)])

    def test_single_option_always_chosen(self):
        rng = RngTree(1).rng()
        assert weighted_choice(rng, [("only", 0.5)]) == "only"

    def test_zero_weight_option_never_chosen(self):
        rng = RngTree(2).rng()
        picks = {weighted_choice(rng, [("a", 1.0), ("b", 0.0)]) for _ in range(200)}
        assert picks == {"a"}

    def test_distribution_roughly_matches_weights(self):
        rng = RngTree(3).rng()
        counts = {"a": 0, "b": 0}
        for _ in range(4000):
            counts[weighted_choice(rng, [("a", 3.0), ("b", 1.0)])] += 1
        ratio = counts["a"] / counts["b"]
        assert 2.3 < ratio < 3.9

    @given(st.lists(st.tuples(st.integers(), st.floats(min_value=0.01, max_value=10)),
                    min_size=1, max_size=8), st.integers())
    def test_choice_always_from_options(self, options, seed):
        rng = RngTree(seed).rng()
        value = weighted_choice(rng, options)
        assert value in [v for v, _w in options]


class TestSampleDistinct:
    def test_sample_smaller_than_population(self):
        rng = RngTree(4).rng()
        sample = sample_distinct(rng, range(100), 10)
        assert len(sample) == 10
        assert len(set(sample)) == 10

    def test_sample_larger_than_population_returns_all(self):
        rng = RngTree(5).rng()
        sample = sample_distinct(rng, [1, 2, 3], 10)
        assert sorted(sample) == [1, 2, 3]
