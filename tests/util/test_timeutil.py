"""Tests for simulated time helpers."""

from hypothesis import given
from hypothesis import strategies as st

from repro.util import timeutil as tu


class TestInstantConversions:
    def test_epoch_is_zero(self):
        assert tu.instant_from_date(1970, 1, 1) == 0

    def test_one_day_later(self):
        assert tu.instant_from_date(1970, 1, 2) == tu.DAY

    def test_format_date_only(self):
        instant = tu.instant_from_date(2015, 3, 20)
        assert tu.format_instant(instant) == "2015-03-20"

    def test_format_with_time(self):
        instant = tu.instant_from_date(2015, 3, 20, 14, 30, 5)
        assert tu.format_instant(instant, with_time=True) == "2015-03-20 14:30:05"

    def test_roundtrip_through_datetime(self):
        instant = tu.instant_from_date(2016, 7, 4, 12)
        assert int(tu.instant_to_datetime(instant).timestamp()) == instant


class TestDayArithmetic:
    def test_day_of_truncates(self):
        noon = tu.instant_from_date(2015, 5, 1, 12, 30)
        assert tu.day_of(noon) == tu.instant_from_date(2015, 5, 1)

    def test_days_between_same_day_is_zero(self):
        a = tu.instant_from_date(2015, 5, 1, 1)
        b = tu.instant_from_date(2015, 5, 1, 23)
        assert tu.days_between(a, b) == 0

    def test_days_between_spanning_midnight(self):
        a = tu.instant_from_date(2015, 5, 1, 23)
        b = tu.instant_from_date(2015, 5, 2, 1)
        assert tu.days_between(a, b) == 1

    def test_days_between_negative(self):
        a = tu.instant_from_date(2015, 5, 2)
        b = tu.instant_from_date(2015, 5, 1)
        assert tu.days_between(a, b) == -1

    @given(st.integers(min_value=0, max_value=2_000_000_000),
           st.integers(min_value=0, max_value=10_000))
    def test_days_between_additive_in_whole_days(self, start, days):
        end = start + days * tu.DAY
        assert tu.days_between(start, end) == days


class TestStudyLandmarks:
    def test_landmark_ordering(self):
        assert (
            tu.STUDY_START
            < tu.SEED_CRAWL_START
            < tu.MAIN_CRAWL_START
            < tu.LOG_GAP_START
            < tu.LOG_GAP_END
            < tu.TOP30K_CRAWL_START
            < tu.MANUAL_CRAWL_START
            < tu.STUDY_END
        )

    def test_month_label(self):
        assert tu.month_label(tu.instant_from_date(2015, 2, 10)) == "2/15"
        assert tu.month_label(tu.instant_from_date(2016, 11, 1)) == "11/16"

    def test_gap_matches_paper_dates(self):
        assert tu.format_instant(tu.LOG_GAP_START) == "2015-03-20"
        assert tu.format_instant(tu.LOG_GAP_END) == "2015-06-01"
