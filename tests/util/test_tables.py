"""Tests for the ASCII table renderer."""

import pytest

from repro.util.tables import percent, render_table


class TestRenderTable:
    def test_basic_alignment(self):
        text = render_table(["name", "n"], [["alpha", 1], ["b", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert "alpha" in lines[2]

    def test_title_prepended(self):
        text = render_table(["a"], [["x"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_right_alignment(self):
        text = render_table(["name", "count"], [["a", 5], ["b", 123]], align_right=(1,))
        lines = text.splitlines()
        assert lines[-1].endswith("123")
        assert lines[-2].endswith("  5")

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_none_renders_empty(self):
        text = render_table(["a", "b"], [["x", None]])
        assert text.splitlines()[-1].rstrip() == "x"

    def test_float_formatting(self):
        text = render_table(["v"], [[3.14159]])
        assert "3.1" in text
        assert "3.14159" not in text

    def test_empty_rows_ok(self):
        text = render_table(["a"], [])
        assert len(text.splitlines()) == 2  # header + rule


class TestPercent:
    def test_normal(self):
        assert percent(1, 4) == "25.0%"

    def test_zero_whole(self):
        assert percent(1, 0) == "-"

    def test_digits(self):
        assert percent(1, 3, digits=2) == "33.33%"
