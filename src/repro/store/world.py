"""The world store: a directory of segments plus a meta manifest.

Layout of a store at ``PATH``::

    PATH/
      worldstore.json   # schema, seed, population, world digest, tables
      specs.seg         # row i = SiteSpec for rank i + 1 (prefix-closed)
      accounts.seg      # campaign account database (written post-run)
      telemetry.seg     # campaign attempt records (written post-run)

**Building** streams a :class:`~repro.web.generator.SiteGenerator` in
rank order straight into segment pages — the prefix-closed generation
the warm cache relies on, but writing pages instead of dicts, so peak
memory is one page's rows no matter the population.  **Reading** goes
through one budgeted :class:`~repro.store.pagecache.PageCache` shared
by all of a store's segments.

A store is identified by its **world digest** — a hash of
``(seed, generator config, site overrides)``, deliberately excluding
population size: specs are pure per-rank functions, so a 10^6-row
store serves any run with ``population <= rows`` bit-identically.
:meth:`WorldStore.require_world` enforces the match; a shard handed a
store built for a different world fails with :class:`StoreError`
instead of silently diverging.

:func:`open_world_store` keeps a process-lifetime registry so a warm
worker (persistent pool, many shards and epochs) opens the store and
fills its page cache once, mirroring :mod:`repro.perf.warm`'s
treatment of in-memory worlds.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import threading
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from repro.store.pagecache import DEFAULT_BUDGET_BYTES, CacheStats, PageCache
from repro.store.rows import table_codec
from repro.store.segment import (
    DEFAULT_ROWS_PER_PAGE,
    SegmentReader,
    SegmentWriter,
    StoreError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.campaign import AttemptRecord
    from repro.identity.records import Identity
    from repro.web.generator import GeneratorConfig
    from repro.web.population import RankedSite
    from repro.web.spec import SiteSpec

__all__ = [
    "STORE_SCHEMA",
    "StoreSpecCache",
    "WorldStore",
    "build_world_store",
    "open_world_store",
    "world_digest",
]

#: Bump on incompatible manifest layout changes.
STORE_SCHEMA = 1

META_NAME = "worldstore.json"
_SEGMENT_FILES = {
    "specs": "specs.seg",
    "accounts": "accounts.seg",
    "telemetry": "telemetry.seg",
}


def _config_fields(config: "GeneratorConfig | None") -> tuple:
    if config is None:
        return ()
    return tuple(
        (f.name, getattr(config, f.name)) for f in dataclasses.fields(config)
    )


def world_digest(
    seed: int,
    generator_config: "GeneratorConfig | None" = None,
    packed_overrides: tuple = (),
) -> str:
    """Digest of everything that determines spec content per rank.

    Population size is excluded on purpose — see the module docstring.
    ``repr`` of the canonical field tuples is stable for the value
    types a :class:`~repro.web.generator.GeneratorConfig` holds
    (numbers, strings, enum weight tables).
    """
    canonical = repr((seed, _config_fields(generator_config), packed_overrides))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class _SpecMapping:
    """Read-only rank -> spec view satisfying the generator's cache use.

    :meth:`~repro.web.generator.SiteGenerator.spec_for_rank` probes
    ``cache.specs.get(rank)`` and falls back to prefix-closed fill on a
    miss; a fully built store always hits for ranks within the
    population, and anything outside is a loud :class:`StoreError`
    (filling would silently regenerate what the store exists to hold).
    """

    __slots__ = ("_store",)

    def __init__(self, store: "WorldStore"):
        self._store = store

    def get(self, rank: int, default=None):
        return self._store.spec_at_rank(rank)

    def __getitem__(self, rank: int):
        return self._store.spec_at_rank(rank)

    def __setitem__(self, rank: int, spec) -> None:
        raise StoreError(
            f"{self._store.path}: store is read-only (attempted to write "
            f"rank {rank}); rebuild the store to change the world"
        )

    def __len__(self) -> int:
        return self._store.population

    def __contains__(self, rank: int) -> bool:
        return 1 <= rank <= self._store.population


class StoreSpecCache:
    """A :class:`repro.web.generator.SpecCacheLike` view over a store.

    Drop-in for the warm layer's in-memory ``SpecCache``: the
    generator reads specs through ``specs`` and never generates, so
    ``hosts_taken`` stays empty (collision handling happened at build
    time, prefix-closed).
    """

    __slots__ = ("specs", "hosts_taken", "store")

    def __init__(self, store: "WorldStore"):
        self.store = store
        self.specs = _SpecMapping(store)
        self.hosts_taken: set[str] = set()


class WorldStore:
    """Open handle on a built store directory."""

    def __init__(
        self,
        path: str | Path,
        *,
        budget_bytes: int = DEFAULT_BUDGET_BYTES,
    ):
        self.path = Path(path)
        meta_path = self.path / META_NAME
        try:
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise StoreError(
                f"{self.path}: not a world store (missing {META_NAME})"
            ) from None
        except (OSError, json.JSONDecodeError) as exc:
            raise StoreError(f"{meta_path}: unreadable manifest ({exc})") from exc
        if not isinstance(meta, dict) or meta.get("schema") != STORE_SCHEMA:
            raise StoreError(
                f"{meta_path}: manifest schema "
                f"{meta.get('schema') if isinstance(meta, dict) else None!r} "
                f"unsupported (reader supports {STORE_SCHEMA})"
            )
        self.meta = meta
        self.seed = int(meta["seed"])
        self.population = int(meta["population"])
        self.digest = str(meta["world_digest"])
        self.page_cache = PageCache(budget_bytes)
        self._lock = threading.Lock()
        self._readers: dict[str, SegmentReader] = {}
        self._spec_cache: StoreSpecCache | None = None

    # -- validation ---------------------------------------------------------

    def require_world(
        self,
        seed: int,
        population_size: int,
        generator_config: "GeneratorConfig | None" = None,
        packed_overrides: tuple = (),
    ) -> None:
        """Refuse to serve a run whose world this store did not build."""
        expected = world_digest(seed, generator_config, packed_overrides)
        if expected != self.digest:
            raise StoreError(
                f"{self.path}: store holds a different world "
                f"(digest {self.digest[:12]}… != expected {expected[:12]}…); "
                f"rebuild with the run's seed/config/overrides"
            )
        if population_size > self.population:
            raise StoreError(
                f"{self.path}: store built for population {self.population}, "
                f"run wants {population_size}"
            )

    # -- table access -------------------------------------------------------

    def _reader(self, table: str) -> SegmentReader:
        with self._lock:
            reader = self._readers.get(table)
            if reader is None:
                if table not in self.meta.get("tables", {}):
                    raise StoreError(
                        f"{self.path}: store has no {table!r} table"
                    )
                _, decode = table_codec(table)
                reader = SegmentReader(
                    self.path / _SEGMENT_FILES[table],
                    decode,
                    page_cache=self.page_cache,
                    expect_table=table,
                )
                self._readers[table] = reader
            return reader

    def has_table(self, table: str) -> bool:
        return table in self.meta.get("tables", {})

    def row_count(self, table: str) -> int:
        return self._reader(table).row_count

    # -- specs --------------------------------------------------------------

    def spec_at_rank(self, rank: int) -> "SiteSpec":
        """The stored spec for a rank in [1, population]."""
        if not 1 <= rank <= self.population:
            raise StoreError(
                f"{self.path}: rank {rank} outside stored population "
                f"[1, {self.population}]"
            )
        return self._reader("specs").get(rank - 1)

    def iter_specs(
        self, start_rank: int = 1, stop_rank: int | None = None
    ) -> Iterator["SiteSpec"]:
        """Stream specs for ranks ``[start_rank, stop_rank]`` in order."""
        stop = self.population if stop_rank is None else min(stop_rank, self.population)
        return self._reader("specs").iter_rows(start_rank - 1, stop)

    def ranked_top(self, n: int) -> "list[RankedSite]":
        """The canonical ranking's top ``n``, read from disk pages.

        Byte-identical to
        :meth:`repro.web.population.InternetPopulation.alexa_top` over
        the same world — the store≡memory contract's listing half.
        """
        from repro.web.population import RankedSite

        return [
            RankedSite(rank=spec.rank, host=spec.host, url=f"http://{spec.host}/")
            for spec in self.iter_specs(1, min(n, self.population))
        ]

    def eligibility_ground_truth(self, ranks: list[int]) -> dict[str, int]:
        """Table-4 bucket counts for a rank set (streamed, not retained).

        Same contract as
        :meth:`~repro.web.population.InternetPopulation.eligibility_ground_truth`,
        so the Table 4 builder accepts either source.
        """
        counts = {"load_failure": 0, "non_english": 0, "no_registration": 0,
                  "ineligible": 0, "rest": 0}
        for rank in ranks:
            counts[self.spec_at_rank(rank).eligibility_bucket] += 1
        return counts

    @property
    def size(self) -> int:
        """Population size (the spec-source protocol's field)."""
        return self.population

    def spec_cache(self) -> StoreSpecCache:
        """The shared read-only spec-cache adapter for this store."""
        with self._lock:
            if self._spec_cache is None:
                self._spec_cache = StoreSpecCache(self)
            return self._spec_cache

    # -- results tables -----------------------------------------------------

    def append_results(self, attempts: "list[AttemptRecord]") -> tuple[int, int]:
        """Persist a run's attempts and account database.

        Writes the ``telemetry`` table (attempt rows in merged order)
        and the ``accounts`` table (each distinct identity once, in
        first-reference order — the wire codec's interning rule applied
        at store scope).  Replaces any previous results atomically;
        returns ``(accounts, telemetry)`` row counts.
        """
        # Keyed on the full identity value, not identity_id — ids are
        # per-shard counters, so distinct shards reuse the same numbers.
        seen: set = set()
        accounts: list[Identity] = []
        for attempt in attempts:
            identity = attempt.identity
            if identity not in seen:
                seen.add(identity)
                accounts.append(identity)

        rows_per_page = int(self.meta.get("rows_per_page", DEFAULT_ROWS_PER_PAGE))
        written = {}
        for table, rows in (("accounts", accounts), ("telemetry", attempts)):
            encode, _ = table_codec(table)
            with SegmentWriter(
                self.path / _SEGMENT_FILES[table], table, encode,
                rows_per_page=rows_per_page,
            ) as writer:
                writer.extend(rows)
            written[table] = len(rows)
        with self._lock:
            for table in written:
                self.meta.setdefault("tables", {})[table] = _SEGMENT_FILES[table]
                stale = self._readers.pop(table, None)
                if stale is not None:
                    stale.close()
        _write_meta(self.path, self.meta)
        return written["accounts"], written["telemetry"]

    def iter_accounts(self) -> "Iterator[Identity]":
        return self._reader("accounts").iter_rows()

    def iter_attempts(self) -> "Iterator[AttemptRecord]":
        return self._reader("telemetry").iter_rows()

    # -- operations ---------------------------------------------------------

    def cache_stats(self) -> CacheStats:
        """Residency and hit-rate counters for the shared page cache."""
        return self.page_cache.stats()

    def close(self) -> None:
        with self._lock:
            for reader in self._readers.values():
                reader.close()
            self._readers.clear()
            self.page_cache.clear()

    def __enter__(self) -> "WorldStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _write_meta(path: Path, meta: dict) -> None:
    """Write the manifest atomically (temp + rename)."""
    payload = json.dumps(meta, sort_keys=True, indent=2) + "\n"
    tmp = path / (META_NAME + ".tmp")
    tmp.write_text(payload, encoding="utf-8")
    os.replace(tmp, path / META_NAME)


def build_world_store(
    path: str | Path,
    seed: int,
    population: int,
    *,
    generator_config: "GeneratorConfig | None" = None,
    overrides: dict[int, dict[str, object]] | None = None,
    rows_per_page: int = DEFAULT_ROWS_PER_PAGE,
    budget_bytes: int = DEFAULT_BUDGET_BYTES,
    progress=None,
) -> WorldStore:
    """Build (or reopen) the store for a world at ``path``.

    An existing store is validated against ``(seed, config, overrides)``
    and reopened if it matches and is big enough — building a 10^6-row
    store is the expensive step, so reuse is the default.  ``progress``
    (``callable(ranks_done)``) is invoked once per flushed page.
    """
    path = Path(path)
    if population < 1:
        raise ValueError("population must be positive")
    from repro.core.runner import pack_overrides

    packed = pack_overrides(overrides)
    digest = world_digest(seed, generator_config, packed)
    if (path / META_NAME).exists():
        store = WorldStore(path, budget_bytes=budget_bytes)
        store.require_world(seed, population, generator_config, packed)
        return store

    from repro.util.rngtree import RngTree
    from repro.web.generator import SiteGenerator

    path.mkdir(parents=True, exist_ok=True)
    generator = SiteGenerator(RngTree(seed), config=generator_config,
                              overrides=dict(overrides or {}))
    encode, _ = table_codec("specs")
    done = 0
    with SegmentWriter(
        path / _SEGMENT_FILES["specs"], "specs", encode,
        rows_per_page=rows_per_page,
    ) as writer:
        for spec in generator.iter_specs(population):
            writer.append(spec)
            done += 1
            if progress is not None and done % rows_per_page == 0:
                progress(done)
    _write_meta(
        path,
        {
            "schema": STORE_SCHEMA,
            "seed": seed,
            "population": population,
            "rows_per_page": rows_per_page,
            "world_digest": digest,
            "tables": {"specs": _SEGMENT_FILES["specs"]},
        },
    )
    return WorldStore(path, budget_bytes=budget_bytes)


#: Process-lifetime registry: warm pool workers open each store once
#: and keep its page cache across shards and epochs.
_OPEN_STORES: dict[str, WorldStore] = {}
_OPEN_LOCK = threading.Lock()


def open_world_store(
    path: str | Path, *, budget_bytes: int = DEFAULT_BUDGET_BYTES
) -> WorldStore:
    """The (process-cached) open store at ``path``.

    The first open fixes the page-cache budget for this process; the
    registry is keyed on the resolved path so relative and absolute
    spellings share one handle.
    """
    key = str(Path(path).resolve())
    with _OPEN_LOCK:
        store = _OPEN_STORES.get(key)
        if store is None:
            store = WorldStore(key, budget_bytes=budget_bytes)
            _OPEN_STORES[key] = store
        return store


def close_open_stores() -> None:
    """Close and forget every registry entry (tests and shutdown)."""
    with _OPEN_LOCK:
        for store in _OPEN_STORES.values():
            store.close()
        _OPEN_STORES.clear()
