"""Lossless row codecs for the world tables.

The store's pages hold the same shape the PR-5 wire codec ships over
the process-pool boundary — flat typed tuples over a string intern
table — so the identity and outcome rows reuse the codec's own
helpers (:func:`repro.perf.wire.encode_identity_row` et al.) and the
spec row follows the same explicit field-for-field style.  Three
tables exist:

- ``specs`` — one :class:`~repro.web.spec.SiteSpec` per row, row *i*
  holding rank *i + 1* (the prefix-closed build order);
- ``accounts`` — :class:`~repro.identity.records.Identity` rows, the
  campaign's account database in first-reference order;
- ``telemetry`` — :class:`~repro.core.campaign.AttemptRecord` rows
  with the identity nested inline, so every page stays
  self-contained (per-page interning keeps the duplication cheap).

Every codec is lossless: ``decode(encode(x)) == x`` field for field,
enums round-tripping through ``.value`` — pinned by the hypothesis
property tests in ``tests/store/test_rows_property.py``.  Schema
changes (new fields, reordering) must bump
:data:`~repro.store.segment.SEGMENT_SCHEMA`.

The 17 spec booleans pack into one varint bitmask (columnar in
spirit: a fixed bit plan rather than 17 tagged values per row).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.perf.wire import (
    Interner,
    decode_identity_row,
    decode_outcome_row,
    encode_identity_row,
    encode_outcome_row,
)
from repro.web.spec import (
    BotCheck,
    EmailBehavior,
    LinkPlacement,
    RegistrationStyle,
    ResponseStyle,
    SiteSpec,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.campaign import AttemptRecord

__all__ = [
    "Interner",
    "TABLE_NAMES",
    "decode_attempt_row",
    "decode_spec_row",
    "encode_attempt_row",
    "encode_spec_row",
    "table_codec",
]

#: Bit plan for the spec bool mask, least-significant bit first.
#: Append only — reordering is a schema break.
_SPEC_FLAGS = (
    "load_fails",
    "supports_https",
    "multistage_credentials_first",
    "multistage_creates_at_step1",
    "wants_username",
    "wants_name",
    "wants_phone",
    "wants_birthdate",
    "wants_gender",
    "wants_confirm_password",
    "wants_terms_checkbox",
    "extra_unlabeled_field",
    "extra_field_required",
    "requires_special_char",
    "requires_admin_approval",
    "lists_usernames_publicly",
    "site_brute_force_protection",
    "is_free_trial",
)


def encode_spec_row(spec: SiteSpec, strings: Interner) -> tuple:
    """One site spec as a flat tuple over the page's intern table."""
    s = strings.add
    flags = 0
    for bit, name in enumerate(_SPEC_FLAGS):
        if getattr(spec, name):
            flags |= 1 << bit
    return (
        s(spec.host),
        spec.rank,
        s(spec.category),
        s(spec.language),
        flags,
        None if spec.shared_backend is None else s(spec.shared_backend),
        None if spec.backend_family is None else s(spec.backend_family),
        s(spec.registration_style.value),
        s(spec.link_placement.value),
        s(spec.registration_path),
        s(spec.anchor_text),
        s(spec.label_style),
        s(spec.bot_check.value),
        s(spec.response_style.value),
        s(spec.email_behavior.value),
        spec.shadow_ban_rate,
        spec.max_email_length,
        spec.max_username_length,
        s(spec.password_storage),
        spec.shard_count,
        tuple((s(key), s(value)) for key, value in spec.notes.items()),
    )


def decode_spec_row(row: tuple, strings: list) -> SiteSpec:
    """Inverse of :func:`encode_spec_row`."""
    flags = row[4]
    bools = {
        name: bool(flags & (1 << bit)) for bit, name in enumerate(_SPEC_FLAGS)
    }
    return SiteSpec(
        host=strings[row[0]],
        rank=row[1],
        category=strings[row[2]],
        language=strings[row[3]],
        shared_backend=None if row[5] is None else strings[row[5]],
        backend_family=None if row[6] is None else strings[row[6]],
        registration_style=RegistrationStyle(strings[row[7]]),
        link_placement=LinkPlacement(strings[row[8]]),
        registration_path=strings[row[9]],
        anchor_text=strings[row[10]],
        label_style=strings[row[11]],
        bot_check=BotCheck(strings[row[12]]),
        response_style=ResponseStyle(strings[row[13]]),
        email_behavior=EmailBehavior(strings[row[14]]),
        shadow_ban_rate=row[15],
        max_email_length=row[16],
        max_username_length=row[17],
        password_storage=strings[row[18]],
        shard_count=row[19],
        notes={strings[key]: strings[value] for key, value in row[20]},
        **bools,
    )


def encode_attempt_row(attempt: "AttemptRecord", strings: Interner) -> tuple:
    """One attempt with its identity nested inline (page-local)."""
    s = strings.add
    return (
        s(attempt.site_host),
        attempt.rank,
        s(attempt.url),
        encode_identity_row(attempt.identity, strings),
        s(attempt.password_class.value),
        encode_outcome_row(attempt.outcome, strings),
        attempt.manual,
        attempt.registered_at,
    )


def decode_attempt_row(row: tuple, strings: list) -> "AttemptRecord":
    """Inverse of :func:`encode_attempt_row`."""
    from repro.core.campaign import AttemptRecord
    from repro.identity.passwords import PasswordClass

    return AttemptRecord(
        site_host=strings[row[0]],
        rank=row[1],
        url=strings[row[2]],
        identity=decode_identity_row(row[3], strings),
        password_class=PasswordClass(strings[row[4]]),
        outcome=decode_outcome_row(row[5], strings),
        manual=row[6],
        registered_at=row[7],
    )


#: Table name -> (encode, decode) pairs the segment layer dispatches on.
_TABLE_CODECS = {
    "specs": (encode_spec_row, decode_spec_row),
    "accounts": (encode_identity_row, decode_identity_row),
    "telemetry": (encode_attempt_row, decode_attempt_row),
}

TABLE_NAMES = tuple(_TABLE_CODECS)


def table_codec(table: str) -> tuple:
    """The (encode, decode) pair for a world table name."""
    try:
        return _TABLE_CODECS[table]
    except KeyError:
        raise ValueError(
            f"unknown world table {table!r} (one of {TABLE_NAMES})"
        ) from None
