"""Disk-backed columnar world store (PR 7).

A world — site specs, account databases, campaign telemetry — has so
far lived entirely in process memory, capping populations around
10^3–10^4 sites.  This package extends the PR-5 wire codec (interned
row tuples) from shard-result *transport* into a persistent *backend*:

- :mod:`repro.store.packing` — a deterministic, self-describing binary
  value codec (the byte layer under every page and footer);
- :mod:`repro.store.segment` — append-only segment files: fixed-size
  row-group pages, each self-contained with its own string intern
  table, indexed by a checksummed footer;
- :mod:`repro.store.pagecache` — an LRU of decoded pages under a
  configurable byte budget, with residency accounting;
- :mod:`repro.store.rows` — lossless row codecs for the three world
  tables (``specs``, ``accounts``, ``telemetry``), built on the PR-5
  wire codec's interning helpers;
- :mod:`repro.store.world` — the :class:`WorldStore` directory format
  (meta + segments), prefix-closed build from a
  :class:`~repro.web.generator.SiteGenerator`, and the read-only
  spec-cache adapter the generator and warm workers consume;
- :mod:`repro.store.strata` — multi-strata rank sampling
  (1k/10k/100k/1M) in the style of Common Crawl's Tranco top-K
  sampling, preserving per-stratum Table-4 incidence.

The store is strictly opt-in (``--world-store PATH`` on
``campaign``/``serve``); the in-memory path remains the default and
the two produce bit-identical journals.
"""

from repro.store.pagecache import CacheStats, PageCache
from repro.store.segment import (
    SEGMENT_SCHEMA,
    SegmentReader,
    SegmentWriter,
    StoreError,
)
from repro.store.strata import DEFAULT_STRATA, Stratum, StrataSampler
from repro.store.world import (
    STORE_SCHEMA,
    StoreSpecCache,
    WorldStore,
    build_world_store,
    open_world_store,
    world_digest,
)

__all__ = [
    "CacheStats",
    "DEFAULT_STRATA",
    "PageCache",
    "SEGMENT_SCHEMA",
    "STORE_SCHEMA",
    "SegmentReader",
    "SegmentWriter",
    "StoreError",
    "StoreSpecCache",
    "Stratum",
    "StrataSampler",
    "WorldStore",
    "build_world_store",
    "open_world_store",
    "world_digest",
]
