"""Rank-stratified sampling over million-site worlds.

Large-scale web measurements (the Common Crawl robots.txt studies,
Tranco-based scans) don't survey a top-1M list exhaustively — they
sample fixed-size windows *within rank strata* (top 1k, top 10k, top
100k, top 1M) so popularity-correlated properties stay visible.  The
paper's Table 4 is the 100-site-window version of the same idea; this
module scales it to store-backed worlds: a :class:`StrataSampler`
draws a deterministic without-replacement rank sample per stratum, and
the per-stratum eligibility incidence is computed by streaming only
the sampled ranks' specs through the store's page cache.

Sampling is seeded from the world's own :class:`~repro.util.rngtree`
discipline — ``RngTree(seed).child("strata", bound)`` — so the sample
for one stratum never shifts when another stratum is added or the
sample size of a different stratum changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.util.rngtree import RngTree

__all__ = ["DEFAULT_STRATA", "Stratum", "StrataSampler"]

#: The canonical stratum bounds (top-N rank windows).
DEFAULT_STRATA = (1_000, 10_000, 100_000, 1_000_000)


class SpecSource(Protocol):
    """Anything that can answer Table-4 bucket counts for a rank set.

    Satisfied by :class:`repro.web.population.InternetPopulation` and
    :class:`repro.store.world.WorldStore` alike.
    """

    size: int

    def eligibility_ground_truth(self, ranks: list[int]) -> dict[str, int]: ...


@dataclass(frozen=True)
class Stratum:
    """One rank stratum with its drawn sample."""

    bound: int
    #: Effective upper rank after clipping to the population.
    clipped_bound: int
    ranks: tuple[int, ...]

    @property
    def sample_size(self) -> int:
        return len(self.ranks)


@dataclass(frozen=True)
class StratumIncidence:
    """Eligibility fractions observed in one stratum's sample."""

    stratum: Stratum
    load_failure: float
    non_english: float
    no_registration: float
    ineligible: float
    rest: float

    def as_percent_cells(self) -> list[str]:
        return [
            f"{100 * self.load_failure:.0f}%",
            f"{100 * self.non_english:.0f}%",
            f"{100 * self.no_registration:.0f}%",
            f"{100 * self.ineligible:.0f}%",
            f"{100 * self.rest:.0f}%",
        ]


class StrataSampler:
    """Deterministic per-stratum rank sampling, clipped to a population.

    Each stratum's sample is drawn without replacement from
    ``[1, min(bound, population)]`` using an RNG derived purely from
    ``(seed, "strata", bound)``; ranks are returned sorted so a
    store-backed incidence pass walks pages monotonically.  A stratum
    whose bound exceeds the population is clipped rather than dropped —
    the top-1M stratum of a 10^5 world degrades to the whole
    population — except when clipping would duplicate the previous
    stratum exactly, in which case it is skipped.
    """

    def __init__(
        self,
        seed: int,
        population: int,
        *,
        strata: tuple[int, ...] = DEFAULT_STRATA,
        sample_size: int = 100,
    ):
        if population < 1:
            raise ValueError("population must be positive")
        if sample_size < 1:
            raise ValueError("sample_size must be positive")
        if any(bound < 1 for bound in strata):
            raise ValueError("stratum bounds must be positive")
        self.seed = seed
        self.population = population
        self.strata = tuple(sorted(set(strata)))
        self.sample_size = sample_size
        self._tree = RngTree(seed).child("strata")

    def sample(self, bound: int) -> tuple[int, ...]:
        """The sorted without-replacement rank sample for one stratum.

        Depends only on ``(seed, bound, sample_size)`` and the clip —
        never on sibling strata.
        """
        clipped = min(bound, self.population)
        size = min(self.sample_size, clipped)
        rng = self._tree.child(bound).rng()
        return tuple(sorted(rng.sample(range(1, clipped + 1), size)))

    def strata_samples(self) -> list[Stratum]:
        """All strata with their samples, deduplicating clipped repeats."""
        out: list[Stratum] = []
        seen_clips: set[int] = set()
        for bound in self.strata:
            clipped = min(bound, self.population)
            if clipped in seen_clips:
                continue
            seen_clips.add(clipped)
            out.append(
                Stratum(bound=bound, clipped_bound=clipped, ranks=self.sample(bound))
            )
        return out

    def incidence(self, source: SpecSource) -> list[StratumIncidence]:
        """Per-stratum Table-4 bucket fractions from a spec source.

        The source only ever sees the sampled ranks, so a store-backed
        pass touches ``O(samples)`` pages regardless of world size.
        """
        results = []
        for stratum in self.strata_samples():
            ranks = list(stratum.ranks)
            counts = source.eligibility_ground_truth(ranks)
            n = len(ranks)
            results.append(
                StratumIncidence(
                    stratum=stratum,
                    load_failure=counts["load_failure"] / n,
                    non_english=counts["non_english"] / n,
                    no_registration=counts["no_registration"] / n,
                    ineligible=counts["ineligible"] / n,
                    rest=counts["rest"] / n,
                )
            )
        return results
