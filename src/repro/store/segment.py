"""Append-only segment files: row-group pages behind a footer index.

One segment holds one table's rows in write order.  Rows are buffered
into fixed-count **pages** (``rows_per_page``, default 256); each page
is encoded independently with its *own* string intern table, so a
reader can decode any page from its bytes alone — the property the
LRU page cache is built on.  Layout::

    +----------------------------+
    | magic  "TWSTOR01"  (8 B)   |
    +----------------------------+
    | page 0: u32 len | u32 crc  |
    |         payload            |   payload = pack((strings, rows))
    | page 1: ...                |
    +----------------------------+
    | footer: pack((schema,      |
    |   table, row_count,        |
    |   rows_per_page,           |
    |   ((offset, length,        |
    |     first_row, n_rows),    |
    |    ...)))                  |
    +----------------------------+
    | u32 footer len | u32 crc   |
    | end magic "TWSTEND1" (8 B) |
    +----------------------------+

Pages append forward; the footer and tail are written once on
:meth:`SegmentWriter.close`.  A torn write therefore leaves a file
without the end magic, which :class:`SegmentReader` rejects with
:class:`StoreError` instead of yielding garbage rows.  Every page and
the footer carry a CRC32, so a flipped byte is also a clean
:class:`StoreError`.

Readers use :func:`os.pread` — positioned reads off a single file
descriptor — so concurrent readers (thread-executor shards sharing a
process-wide store) need no seek lock.
"""

from __future__ import annotations

import io
import os
import struct
import zlib
from bisect import bisect_right
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator, Sequence

from repro.store.packing import PackError, pack, unpack

__all__ = ["SEGMENT_SCHEMA", "SegmentReader", "SegmentWriter", "StoreError"]

#: Bump on any incompatible change to the page or footer layout.
SEGMENT_SCHEMA = 1

MAGIC = b"TWSTOR01"
END_MAGIC = b"TWSTEND1"
_U32 = struct.Struct(">I")
#: Default rows per page.  Fixed *count* (not byte target) keeps page
#: boundaries a pure function of the row stream, which the golden-bytes
#: format test relies on.
DEFAULT_ROWS_PER_PAGE = 256


class StoreError(ValueError):
    """A store file is unreadable, corrupt, truncated or mismatched."""


@dataclass(frozen=True)
class PageEntry:
    """Footer index entry for one page."""

    offset: int
    length: int
    first_row: int
    n_rows: int


class SegmentWriter:
    """Streams encoded rows into pages; finalizes index on close.

    ``encode`` maps one row object to its flat tuple given the page's
    interner (see :mod:`repro.store.rows`); at most ``rows_per_page``
    row objects are held in memory at a time, so writing a million-row
    segment is O(page) in memory.
    """

    def __init__(
        self,
        path: str | Path,
        table: str,
        encode: Callable,
        *,
        rows_per_page: int = DEFAULT_ROWS_PER_PAGE,
    ):
        if rows_per_page < 1:
            raise ValueError("rows_per_page must be positive")
        self.path = Path(path)
        self.table = table
        self.rows_per_page = rows_per_page
        self._encode = encode
        self._pending: list[object] = []
        self._entries: list[PageEntry] = []
        self._row_count = 0
        self._closed = False
        # Write through a temp file; a crash mid-build leaves no
        # half-segment at the target path.
        self._tmp = self.path.with_name(self.path.name + ".tmp")
        self._file: io.BufferedWriter = open(self._tmp, "wb")
        self._file.write(MAGIC)
        self._offset = len(MAGIC)

    def append(self, row: object) -> None:
        """Buffer one row; flushes a page when the group fills."""
        if self._closed:
            raise StoreError("segment writer already closed")
        self._pending.append(row)
        if len(self._pending) >= self.rows_per_page:
            self._flush_page()

    def extend(self, rows: Sequence[object]) -> None:
        for row in rows:
            self.append(row)

    def _flush_page(self) -> None:
        if not self._pending:
            return
        from repro.store.rows import Interner

        interner = Interner()
        encoded = tuple(self._encode(row, interner) for row in self._pending)
        payload = pack((tuple(interner.table), encoded))
        header = _U32.pack(len(payload)) + _U32.pack(zlib.crc32(payload))
        self._file.write(header)
        self._file.write(payload)
        self._entries.append(
            PageEntry(
                offset=self._offset,
                length=len(header) + len(payload),
                first_row=self._row_count,
                n_rows=len(self._pending),
            )
        )
        self._offset += len(header) + len(payload)
        self._row_count += len(self._pending)
        self._pending = []

    def close(self) -> int:
        """Flush, write footer + tail, atomically publish; returns rows."""
        if self._closed:
            return self._row_count
        self._flush_page()
        footer = pack(
            (
                SEGMENT_SCHEMA,
                self.table,
                self._row_count,
                self.rows_per_page,
                tuple(
                    (e.offset, e.length, e.first_row, e.n_rows)
                    for e in self._entries
                ),
            )
        )
        self._file.write(footer)
        self._file.write(_U32.pack(len(footer)))
        self._file.write(_U32.pack(zlib.crc32(footer)))
        self._file.write(END_MAGIC)
        self._file.close()
        os.replace(self._tmp, self.path)
        self._closed = True
        return self._row_count

    def abort(self) -> None:
        """Discard the temp file without publishing."""
        if not self._closed:
            self._file.close()
            self._tmp.unlink(missing_ok=True)
            self._closed = True

    def __enter__(self) -> "SegmentWriter":
        return self

    def __exit__(self, exc_type, *exc_info) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


class SegmentReader:
    """Random and sequential row access over a finished segment.

    ``decode`` maps a flat row tuple plus the page's string table back
    to the row object.  Page loads go through the shared
    :class:`~repro.store.pagecache.PageCache` when one is supplied;
    the cache charge is the page's on-disk byte length.
    """

    def __init__(
        self,
        path: str | Path,
        decode: Callable,
        *,
        page_cache=None,
        expect_table: str | None = None,
    ):
        self.path = Path(path)
        self._decode = decode
        self._cache = page_cache
        try:
            self._fd = os.open(self.path, os.O_RDONLY)
        except OSError as exc:
            raise StoreError(f"{self.path}: cannot open segment ({exc})") from exc
        try:
            self._load_footer()
        except StoreError:
            os.close(self._fd)
            raise
        if expect_table is not None and self.table != expect_table:
            table = self.table
            self.close()
            raise StoreError(
                f"{self.path}: segment holds table {table!r}, "
                f"expected {expect_table!r}"
            )

    def _pread(self, offset: int, length: int) -> bytes:
        data = os.pread(self._fd, length, offset)
        if len(data) != length:
            raise StoreError(
                f"{self.path}: truncated read at offset {offset} "
                f"({len(data)} of {length} bytes)"
            )
        return data

    def _load_footer(self) -> None:
        size = os.fstat(self._fd).st_size
        tail_len = len(END_MAGIC) + 8
        if size < len(MAGIC) + tail_len:
            raise StoreError(f"{self.path}: too short to be a segment")
        if self._pread(0, len(MAGIC)) != MAGIC:
            raise StoreError(f"{self.path}: bad magic (not a segment file)")
        tail = self._pread(size - tail_len, tail_len)
        if tail[8:] != END_MAGIC:
            raise StoreError(
                f"{self.path}: no end marker — truncated or torn write"
            )
        footer_len = _U32.unpack(tail[0:4])[0]
        footer_crc = _U32.unpack(tail[4:8])[0]
        footer_off = size - tail_len - footer_len
        if footer_off < len(MAGIC):
            raise StoreError(f"{self.path}: footer length exceeds file")
        footer = self._pread(footer_off, footer_len)
        if zlib.crc32(footer) != footer_crc:
            raise StoreError(f"{self.path}: footer checksum mismatch")
        try:
            schema, table, row_count, rows_per_page, entries = unpack(footer)
        except (PackError, ValueError) as exc:
            raise StoreError(f"{self.path}: undecodable footer ({exc})") from exc
        if schema != SEGMENT_SCHEMA:
            raise StoreError(
                f"{self.path}: segment schema {schema!r} unsupported "
                f"(reader supports {SEGMENT_SCHEMA})"
            )
        self.table = table
        self.row_count = row_count
        self.rows_per_page = rows_per_page
        self._entries = [PageEntry(*entry) for entry in entries]
        self._first_rows = [e.first_row for e in self._entries]
        indexed = sum(e.n_rows for e in self._entries)
        if indexed != row_count:
            raise StoreError(
                f"{self.path}: footer indexes {indexed} rows, "
                f"header promises {row_count}"
            )

    # -- page access --------------------------------------------------------

    def _load_page(self, entry: PageEntry) -> list:
        raw = self._pread(entry.offset, entry.length)
        length = _U32.unpack(raw[0:4])[0]
        crc = _U32.unpack(raw[4:8])[0]
        payload = raw[8:]
        if len(payload) != length:
            raise StoreError(
                f"{self.path}: page at offset {entry.offset} has "
                f"{len(payload)} payload bytes, index says {length}"
            )
        if zlib.crc32(payload) != crc:
            raise StoreError(
                f"{self.path}: page checksum mismatch at offset {entry.offset}"
            )
        try:
            strings, rows = unpack(payload)
        except (PackError, ValueError) as exc:
            raise StoreError(
                f"{self.path}: undecodable page at offset {entry.offset} ({exc})"
            ) from exc
        if len(rows) != entry.n_rows:
            raise StoreError(
                f"{self.path}: page at offset {entry.offset} decodes to "
                f"{len(rows)} rows, index says {entry.n_rows}"
            )
        return [self._decode(row, strings) for row in rows]

    def _page_rows(self, entry: PageEntry) -> list:
        if self._cache is None:
            return self._load_page(entry)
        key = (str(self.path), entry.first_row)
        rows = self._cache.get(key)
        if rows is None:
            rows = self._load_page(entry)
            self._cache.put(key, rows, entry.length)
        return rows

    # -- row access ---------------------------------------------------------

    def get(self, index: int) -> object:
        """The row at ``index`` (0-based)."""
        if not 0 <= index < self.row_count:
            raise StoreError(
                f"{self.path}: row {index} outside [0, {self.row_count})"
            )
        at = bisect_right(self._first_rows, index) - 1
        entry = self._entries[at]
        return self._page_rows(entry)[index - entry.first_row]

    def iter_rows(self, start: int = 0, stop: int | None = None) -> Iterator[object]:
        """Stream rows ``[start, stop)`` page by page.

        Sequential scans touch one page at a time; with a budgeted
        cache the working set stays bounded no matter the segment size.
        """
        stop = self.row_count if stop is None else min(stop, self.row_count)
        if start < 0:
            raise StoreError(f"{self.path}: negative start row {start}")
        index = start
        while index < stop:
            at = bisect_right(self._first_rows, index) - 1
            entry = self._entries[at]
            rows = self._page_rows(entry)
            for offset in range(index - entry.first_row, entry.n_rows):
                if index >= stop:
                    return
                yield rows[offset]
                index += 1

    def page_entries(self) -> list[PageEntry]:
        """The footer index (for format tests and diagnostics)."""
        return list(self._entries)

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None  # type: ignore[assignment]

    def __enter__(self) -> "SegmentReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
