"""Budgeted LRU cache of decoded segment pages.

The byte budget is the store's whole memory story: however large the
world on disk, at most ``budget_bytes`` of decoded pages are resident
(charged at on-disk page size, a stable proxy for the decoded
footprint).  The bounded-memory regression test asserts
``stats().peak_bytes <= budget`` over a full streaming pass, so
admission is strict — a page is either cached within budget or
*bypassed* (returned to the caller uncached) when it alone exceeds the
budget; residency never overshoots.

Thread-safe: thread-executor shards share one process-wide store, so
gets and puts take a lock.  Keys are ``(segment path, first_row)``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

__all__ = ["CacheStats", "PageCache"]

#: Default budget: 16 MiB of decoded pages.
DEFAULT_BUDGET_BYTES = 16 * 2**20


@dataclass(frozen=True)
class CacheStats:
    """A consistent snapshot of cache counters."""

    hits: int
    misses: int
    evictions: int
    bypasses: int
    current_bytes: int
    peak_bytes: int
    budget_bytes: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class PageCache:
    """LRU over decoded pages with a hard byte budget."""

    def __init__(self, budget_bytes: int = DEFAULT_BUDGET_BYTES):
        if budget_bytes < 1:
            raise ValueError("budget_bytes must be positive")
        self.budget_bytes = budget_bytes
        self._lock = threading.Lock()
        self._pages: OrderedDict[object, tuple[object, int]] = OrderedDict()
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._bypasses = 0
        self._peak = 0

    def get(self, key: object):
        """The cached page, freshened to most-recently-used, or None."""
        with self._lock:
            entry = self._pages.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._pages.move_to_end(key)
            self._hits += 1
            return entry[0]

    def put(self, key: object, page: object, size: int) -> bool:
        """Admit a page, evicting LRU entries until it fits.

        Returns False (and caches nothing) when the page alone exceeds
        the budget — the caller keeps its transient reference and the
        resident total never crosses the budget line.
        """
        with self._lock:
            if size > self.budget_bytes:
                self._bypasses += 1
                return False
            old = self._pages.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            while self._bytes + size > self.budget_bytes and self._pages:
                _, (_, evicted_size) = self._pages.popitem(last=False)
                self._bytes -= evicted_size
                self._evictions += 1
            self._pages[key] = (page, size)
            self._bytes += size
            self._peak = max(self._peak, self._bytes)
            return True

    def clear(self) -> None:
        """Drop every page (counters, including peak, survive)."""
        with self._lock:
            self._pages.clear()
            self._bytes = 0

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                bypasses=self._bypasses,
                current_bytes=self._bytes,
                peak_bytes=self._peak,
                budget_bytes=self.budget_bytes,
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._pages)
