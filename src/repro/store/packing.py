"""Deterministic binary value codec: the byte layer of the store.

Pickle would round-trip the same values, but its output embeds
protocol framing chosen by the interpreter and its memo table depends
on object identity, which makes "the bytes on disk" an accident of the
writing process.  The golden-bytes test pinning the segment format
needs the opposite: a codec where equal values always produce equal
bytes, on any supported interpreter.  This module is that codec — a
tiny tagged binary encoding for exactly the value shapes the row
codecs emit:

``None``, ``bool``, ``int`` (zigzag varint, unbounded), ``float``
(IEEE-754 big-endian), ``str`` (UTF-8, length-prefixed), ``bytes``,
``tuple``/``list`` (decoded as ``tuple``), and ``dict`` with string
keys (insertion order preserved — Python dicts are ordered, so equal
construction order means equal bytes).

Varints make the format size-proportional: small intern indices cost
one byte, and nothing anywhere imposes a 64k table limit — an intern
table with 100k entries encodes indices in at most three bytes.
"""

from __future__ import annotations

import struct

__all__ = ["PackError", "pack", "unpack"]

_TAG_NONE = 0x00
_TAG_FALSE = 0x01
_TAG_TRUE = 0x02
_TAG_INT = 0x03
_TAG_FLOAT = 0x04
_TAG_STR = 0x05
_TAG_BYTES = 0x06
_TAG_TUPLE = 0x07
_TAG_DICT = 0x08

_FLOAT = struct.Struct(">d")


class PackError(ValueError):
    """A value cannot be packed, or a buffer cannot be unpacked."""


def _write_uvarint(out: bytearray, value: int) -> None:
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _read_uvarint(buf: bytes, offset: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if offset >= len(buf):
            raise PackError("truncated varint")
        byte = buf[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7


def _zigzag(value: int) -> int:
    # Arbitrary-precision zigzag: no 64-bit clamp anywhere in the format.
    return value << 1 if value >= 0 else ((-value) << 1) - 1


def _unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


def _pack_into(out: bytearray, value: object) -> None:
    if value is None:
        out.append(_TAG_NONE)
    elif value is True:
        out.append(_TAG_TRUE)
    elif value is False:
        out.append(_TAG_FALSE)
    elif type(value) is int:
        out.append(_TAG_INT)
        _write_uvarint(out, _zigzag(value))
    elif type(value) is float:
        out.append(_TAG_FLOAT)
        out.extend(_FLOAT.pack(value))
    elif type(value) is str:
        encoded = value.encode("utf-8")
        out.append(_TAG_STR)
        _write_uvarint(out, len(encoded))
        out.extend(encoded)
    elif type(value) is bytes:
        out.append(_TAG_BYTES)
        _write_uvarint(out, len(value))
        out.extend(value)
    elif type(value) in (tuple, list):
        out.append(_TAG_TUPLE)
        _write_uvarint(out, len(value))
        for item in value:
            _pack_into(out, item)
    elif type(value) is dict:
        out.append(_TAG_DICT)
        _write_uvarint(out, len(value))
        for key, item in value.items():
            if type(key) is not str:
                raise PackError(f"dict keys must be str, got {type(key).__name__}")
            _pack_into(out, key)
            _pack_into(out, item)
    else:
        raise PackError(f"cannot pack {type(value).__name__}")


def _unpack_from(buf: bytes, offset: int) -> tuple[object, int]:
    if offset >= len(buf):
        raise PackError("truncated value")
    tag = buf[offset]
    offset += 1
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag == _TAG_INT:
        raw, offset = _read_uvarint(buf, offset)
        return _unzigzag(raw), offset
    if tag == _TAG_FLOAT:
        end = offset + 8
        if end > len(buf):
            raise PackError("truncated float")
        return _FLOAT.unpack(buf[offset:end])[0], end
    if tag in (_TAG_STR, _TAG_BYTES):
        length, offset = _read_uvarint(buf, offset)
        end = offset + length
        if end > len(buf):
            raise PackError("truncated string")
        raw = buf[offset:end]
        return (raw.decode("utf-8") if tag == _TAG_STR else bytes(raw)), end
    if tag == _TAG_TUPLE:
        count, offset = _read_uvarint(buf, offset)
        items = []
        for _ in range(count):
            item, offset = _unpack_from(buf, offset)
            items.append(item)
        return tuple(items), offset
    if tag == _TAG_DICT:
        count, offset = _read_uvarint(buf, offset)
        result: dict = {}
        for _ in range(count):
            key, offset = _unpack_from(buf, offset)
            value, offset = _unpack_from(buf, offset)
            result[key] = value
        return result, offset
    raise PackError(f"unknown tag 0x{tag:02x}")


def pack(value: object) -> bytes:
    """Encode a value; equal values always yield equal bytes."""
    out = bytearray()
    _pack_into(out, value)
    return bytes(out)


def unpack(buf: bytes) -> object:
    """Decode :func:`pack` output; rejects trailing or missing bytes."""
    value, offset = _unpack_from(buf, 0)
    if offset != len(buf):
        raise PackError(f"{len(buf) - offset} trailing bytes after value")
    return value
