"""Proxy pools.

The Tripwire crawler routes registrations through a small network of
research web proxies so that *websites receive at most one account
registration from a given IP* (Section 4.3.2).  The pool enforces that
invariant: asking for a proxy for the same (site, attempt) pair is
stable, and no IP is ever handed to the same site twice.

Attacker botnet proxies live in :mod:`repro.attacker.botnet`; this module
only covers infrastructure the measurement side controls.
"""

from __future__ import annotations

import random

from repro.net.ipaddr import IPv4Address
from repro.net.whois import HostKind, WhoisRecord, WhoisRegistry


class ProxyPoolExhausted(RuntimeError):
    """Every proxy IP has already been used against the site."""


class ResearchProxyPool:
    """Institution-owned proxies with one-IP-per-site semantics."""

    def __init__(
        self,
        registry: WhoisRegistry,
        rng: random.Random,
        institution: str = "UCSD Systems and Networking",
        country: str = "US",
        pool_size: int = 64,
    ):
        if pool_size < 1:
            raise ValueError("pool_size must be positive")
        prefix_len = 32 - max(2, (pool_size - 1).bit_length())
        self._allocation: WhoisRecord = registry.allocate_block(
            prefix_len, institution, country, HostKind.INSTITUTION
        )
        block = self._allocation.block
        offsets = rng.sample(range(block.size()), pool_size)
        self._addresses: list[IPv4Address] = [block.address_at(o) for o in offsets]
        self._used_by_site: dict[str, set[IPv4Address]] = {}
        self._rng = rng

    @property
    def allocation(self) -> WhoisRecord:
        """The WHOIS record covering the pool (names the institution)."""
        return self._allocation

    @property
    def addresses(self) -> list[IPv4Address]:
        """All proxy addresses in the pool."""
        return list(self._addresses)

    def acquire_for_site(self, site_host: str) -> IPv4Address:
        """Return a proxy IP never before used against ``site_host``.

        Raises :class:`ProxyPoolExhausted` when every pool IP has
        already contacted the site.
        """
        used = self._used_by_site.setdefault(site_host.lower(), set())
        candidates = [ip for ip in self._addresses if ip not in used]
        if not candidates:
            raise ProxyPoolExhausted(site_host)
        choice = self._rng.choice(candidates)
        used.add(choice)
        return choice

    def uses_for_site(self, site_host: str) -> int:
        """How many distinct pool IPs have contacted the site."""
        return len(self._used_by_site.get(site_host.lower(), set()))

    def owns(self, address: IPv4Address) -> bool:
        """Whether the address belongs to this pool."""
        return address in set(self._addresses)
