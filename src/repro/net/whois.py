"""A simulated WHOIS registry.

The registry hands out CIDR blocks to organizations and answers reverse
lookups.  Section 6.4.3 of the paper geolocates attacker IPs via WHOIS
and classifies them as residential vs datacenter; :class:`HostKind`
captures that distinction.  The research proxy pool is registered under
the institution's name, matching the paper's transparency stance
("WHOIS records clearly state our institution name", Section 4.3.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from repro.net.ipaddr import CidrBlock, IPv4Address


class HostKind(enum.Enum):
    """Coarse classification of an address block's typical hosts."""

    RESIDENTIAL = "residential"
    DATACENTER = "datacenter"
    INSTITUTION = "institution"
    MOBILE = "mobile"


@dataclass(frozen=True)
class WhoisRecord:
    """Ownership record for one allocated block."""

    block: CidrBlock
    organization: str
    country: str
    kind: HostKind

    def describe(self) -> str:
        """One-line WHOIS summary."""
        return f"{self.block}  {self.organization} ({self.country}, {self.kind.value})"


class AddressSpaceExhausted(RuntimeError):
    """No room left in the simulated address space."""


class WhoisRegistry:
    """Allocates address blocks and answers WHOIS lookups.

    Allocation is strictly sequential inside a private super-block per
    registry, so two registries never hand out overlapping space unless
    constructed with the same base.
    """

    #: Default super-block carved up by :meth:`allocate_block`.  We use
    #: the reserved 10.0.0.0/8 analogue shifted into "public" space so
    #: simulated addresses look like real internet addresses.
    DEFAULT_BASE = "25.0.0.0/8"

    def __init__(self, base: str | CidrBlock = DEFAULT_BASE):
        self._base = CidrBlock.parse(base) if isinstance(base, str) else base
        self._next_offset = 0
        self._records: list[WhoisRecord] = []

    @property
    def base(self) -> CidrBlock:
        """The super-block this registry allocates from."""
        return self._base

    def allocate_block(
        self, prefix_len: int, organization: str, country: str, kind: HostKind
    ) -> WhoisRecord:
        """Allocate the next free block of the given size.

        Blocks are aligned to their own size, as real allocations are.
        """
        if prefix_len < self._base.prefix_len or prefix_len > 32:
            raise ValueError(f"prefix length /{prefix_len} not allocatable from {self._base}")
        size = 1 << (32 - prefix_len)
        # Align the offset up to a multiple of the block size.
        offset = (self._next_offset + size - 1) // size * size
        if offset + size > self._base.size():
            raise AddressSpaceExhausted(f"cannot fit /{prefix_len} in {self._base}")
        network = IPv4Address(self._base.network.value + offset)
        record = WhoisRecord(CidrBlock(network, prefix_len), organization, country, kind)
        self._records.append(record)
        self._next_offset = offset + size
        return record

    def lookup(self, address: IPv4Address) -> WhoisRecord | None:
        """Find the allocation covering ``address``, if any."""
        # Allocations are disjoint, so the first hit is the only hit.
        for record in self._records:
            if record.block.contains(address):
                return record
        return None

    def records(self) -> Iterator[WhoisRecord]:
        """Iterate over all allocations in allocation order."""
        return iter(self._records)

    def country_of(self, address: IPv4Address) -> str | None:
        """Country code for an address, or None if unallocated."""
        record = self.lookup(address)
        return record.country if record else None

    def kind_of(self, address: IPv4Address) -> HostKind | None:
        """Host kind for an address, or None if unallocated."""
        record = self.lookup(address)
        return record.kind if record else None
