"""Simulated internet substrate.

Tripwire's measurement runs against the real internet; this package
provides the synthetic equivalent: IPv4 addressing and allocation
(:mod:`repro.net.ipaddr`), a WHOIS registry with per-block ownership and
country data (:mod:`repro.net.whois`), DNS with A/MX/PTR records
(:mod:`repro.net.dns`), a synchronous HTTP transport connecting clients
to site handlers (:mod:`repro.net.transport`) and the proxy pools used
by both the crawler and the attacker botnet (:mod:`repro.net.proxies`).
"""

from repro.net.ipaddr import IPv4Address, CidrBlock
from repro.net.whois import WhoisRecord, WhoisRegistry, HostKind
from repro.net.dns import DnsResolver, DnsZone
from repro.net.transport import (
    HttpRequest,
    HttpResponse,
    Transport,
    TransportError,
    HostUnreachable,
)
from repro.net.proxies import ResearchProxyPool

__all__ = [
    "IPv4Address",
    "CidrBlock",
    "WhoisRecord",
    "WhoisRegistry",
    "HostKind",
    "DnsResolver",
    "DnsZone",
    "HttpRequest",
    "HttpResponse",
    "Transport",
    "TransportError",
    "HostUnreachable",
    "ResearchProxyPool",
]
