"""Synchronous HTTP-over-simulated-internet transport.

The transport maps host names to request handlers (websites, the mail
verification endpoints, ...), stamps each request with the client IP and the
simulation time, and keeps a per-host request log so the ethics
accounting of Section 3 (page-load rate limits, per-site registration
attempt counts) can be audited after a run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable
from urllib.parse import parse_qsl, urlencode, urlsplit, urlunsplit

from repro.net.ipaddr import IPv4Address
from repro.obs import NO_OP
from repro.sim.protocols import ClockLike
from repro.util.timeutil import SimInstant

#: Back-compat alias: the clock seam now lives in :mod:`repro.sim.protocols`.
Clock = ClockLike


class TransportError(Exception):
    """Base class for transport-level failures."""


class HostUnreachable(TransportError):
    """No handler is registered for the requested host (or it is down)."""


class TlsError(TransportError):
    """HTTPS requested but the host cannot present a valid certificate."""


@dataclass(frozen=True)
class HttpRequest:
    """An HTTP request as seen by a site handler."""

    method: str
    url: str
    form: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    client_ip: IPv4Address | None = None
    time: SimInstant = 0

    @property
    def scheme(self) -> str:
        """URL scheme (``http`` or ``https``)."""
        return urlsplit(self.url).scheme or "http"

    @property
    def host(self) -> str:
        """Host component of the URL, lowercased."""
        return (urlsplit(self.url).hostname or "").lower()

    @property
    def path(self) -> str:
        """Path component, defaulting to ``/``."""
        return urlsplit(self.url).path or "/"

    @property
    def query(self) -> dict[str, str]:
        """Query string parameters (last value wins)."""
        return dict(parse_qsl(urlsplit(self.url).query))


@dataclass
class HttpResponse:
    """An HTTP response returned by a site handler."""

    status: int
    body: str = ""
    headers: dict[str, str] = field(default_factory=dict)
    final_url: str | None = None

    @property
    def ok(self) -> bool:
        """True for 2xx statuses."""
        return 200 <= self.status < 300

    @property
    def is_redirect(self) -> bool:
        """True for 3xx statuses carrying a Location header."""
        return 300 <= self.status < 400 and "Location" in self.headers


Handler = Callable[[HttpRequest], HttpResponse]


@dataclass(frozen=True)
class RequestLogEntry:
    """One transport-level request, for post-hoc auditing."""

    time: SimInstant
    method: str
    host: str
    path: str
    client_ip: IPv4Address | None
    status: int


#: Counter names per status family, interned once (per-request f-strings
#: would show up in the obs-overhead bench).
_STATUS_COUNTERS = {family: f"transport.status_{family}xx" for family in range(1, 6)}


class Transport:
    """Routes requests to registered hosts and records a request log."""

    #: Safety valve on redirect chains, matching browser behavior.
    MAX_REDIRECTS = 10

    def __init__(self, clock: Clock, network_latency: int = 1, obs=NO_OP):
        self._clock = clock
        self._latency = network_latency
        self._obs = obs
        self._handlers: dict[str, Handler] = {}
        self._https_hosts: set[str] = set()
        self._down_hosts: set[str] = set()
        self._log: list[RequestLogEntry] = []

    @property
    def clock(self) -> Clock:
        """The simulation clock requests are stamped with."""
        return self._clock

    def register_host(self, host: str, handler: Handler, https: bool = False) -> None:
        """Attach a handler for ``host``; ``https`` marks a valid cert."""
        key = host.lower()
        self._handlers[key] = handler
        if https:
            self._https_hosts.add(key)
        else:
            self._https_hosts.discard(key)

    def unregister_host(self, host: str) -> None:
        """Remove a host entirely."""
        key = host.lower()
        self._handlers.pop(key, None)
        self._https_hosts.discard(key)

    def set_host_down(self, host: str, down: bool = True) -> None:
        """Mark a registered host as (un)reachable without removing it."""
        key = host.lower()
        if down:
            self._down_hosts.add(key)
        else:
            self._down_hosts.discard(key)

    def supports_https(self, host: str) -> bool:
        """Whether the host presents a validatable certificate."""
        return host.lower() in self._https_hosts

    def is_registered(self, host: str) -> bool:
        """Whether any handler exists for the host."""
        return host.lower() in self._handlers

    def request(
        self,
        method: str,
        url: str,
        form: dict[str, str] | None = None,
        client_ip: IPv4Address | None = None,
        headers: dict[str, str] | None = None,
        follow_redirects: bool = True,
    ) -> HttpResponse:
        """Perform a request, following redirects, and log it.

        Raises :class:`HostUnreachable` for unknown/down hosts and
        :class:`TlsError` when an ``https://`` URL hits a host without
        a valid certificate (the crawler validates certificates against
        a standard root list, Section 4.4).
        """
        response = self._single_request(method, url, form or {}, client_ip, headers or {})
        redirects = 0
        current_url = url
        while follow_redirects and response.is_redirect:
            redirects += 1
            if redirects > self.MAX_REDIRECTS:
                raise TransportError(f"redirect loop fetching {url!r}")
            current_url = absolutize(response.headers["Location"], base=current_url)
            response = self._single_request("GET", current_url, {}, client_ip, headers or {})
        if response.final_url is None:
            response.final_url = current_url
        return response

    def get(self, url: str, **kwargs: object) -> HttpResponse:
        """Shorthand for a GET request."""
        return self.request("GET", url, **kwargs)  # type: ignore[arg-type]

    def post(self, url: str, form: dict[str, str], **kwargs: object) -> HttpResponse:
        """Shorthand for a POST request with form data."""
        return self.request("POST", url, form=form, **kwargs)  # type: ignore[arg-type]

    def _single_request(
        self,
        method: str,
        url: str,
        form: dict[str, str],
        client_ip: IPv4Address | None,
        headers: dict[str, str],
    ) -> HttpResponse:
        self._clock.advance(self._latency)
        obs = self._obs
        obs.count("transport.requests")
        parts = urlsplit(url)
        host = (parts.hostname or "").lower()
        if not host:
            raise TransportError(f"URL without host: {url!r}")
        handler = self._handlers.get(host)
        if handler is None or host in self._down_hosts:
            obs.count("transport.unreachable")
            raise HostUnreachable(host)
        if parts.scheme == "https" and host not in self._https_hosts:
            obs.count("transport.tls_errors")
            raise TlsError(f"no valid certificate for {host}")
        request = HttpRequest(
            method=method.upper(),
            url=url,
            form=dict(form),
            headers=dict(headers),
            client_ip=client_ip,
            time=self._clock.now(),
        )
        response = handler(request)
        response.final_url = url
        family = response.status // 100
        obs.count(_STATUS_COUNTERS.get(family) or f"transport.status_{family}xx")
        self._log.append(
            RequestLogEntry(
                time=request.time,
                method=request.method,
                host=host,
                path=request.path,
                client_ip=client_ip,
                status=response.status,
            )
        )
        return response

    def request_log(self, host: str | None = None) -> list[RequestLogEntry]:
        """The request log, optionally filtered to one host."""
        if host is None:
            return list(self._log)
        key = host.lower()
        return [entry for entry in self._log if entry.host == key]

    def load_on_host(self, host: str) -> int:
        """Total requests a host has received (ethics accounting)."""
        return len(self.request_log(host))

    @property
    def request_count(self) -> int:
        """Total requests routed, without copying the log."""
        return len(self._log)


def absolutize(location: str, base: str) -> str:
    """Resolve a possibly-relative redirect Location against a base URL."""
    if "://" in location:
        return location
    base_parts = urlsplit(base)
    if location.startswith("/"):
        return urlunsplit((base_parts.scheme, base_parts.netloc, location, "", ""))
    # Relative to the base path's directory.
    directory = base_parts.path.rsplit("/", 1)[0]
    return urlunsplit((base_parts.scheme, base_parts.netloc, f"{directory}/{location}", "", ""))


def with_query(url: str, **params: str) -> str:
    """Append query parameters to a URL."""
    parts = urlsplit(url)
    query = dict(parse_qsl(parts.query))
    query.update(params)
    return urlunsplit((parts.scheme, parts.netloc, parts.path, urlencode(query), parts.fragment))
