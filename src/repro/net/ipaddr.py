"""Minimal IPv4 address and CIDR block modeling.

Addresses are immutable value objects wrapping a 32-bit integer.  The
paper's released dataset anonymizes attacker IPs to their /24, and the
analysis code relies on :meth:`IPv4Address.slash24` for the same
reduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering

_MAX_IPV4 = (1 << 32) - 1


@total_ordering
class IPv4Address:
    """An IPv4 address as an immutable 32-bit value."""

    __slots__ = ("_value",)

    def __init__(self, value: int):
        if not 0 <= value <= _MAX_IPV4:
            raise ValueError(f"IPv4 value out of range: {value!r}")
        self._value = value

    @classmethod
    def parse(cls, text: str) -> "IPv4Address":
        """Parse dotted-quad notation, e.g. ``"192.0.2.1"``."""
        parts = text.split(".")
        if len(parts) != 4:
            raise ValueError(f"not a dotted quad: {text!r}")
        value = 0
        for part in parts:
            if not part.isdigit() or (len(part) > 1 and part[0] == "0"):
                raise ValueError(f"bad octet {part!r} in {text!r}")
            octet = int(part)
            if octet > 255:
                raise ValueError(f"octet out of range in {text!r}")
            value = (value << 8) | octet
        return cls(value)

    @property
    def value(self) -> int:
        """The 32-bit integer value."""
        return self._value

    def octets(self) -> tuple[int, int, int, int]:
        """The four octets, most significant first."""
        v = self._value
        return ((v >> 24) & 0xFF, (v >> 16) & 0xFF, (v >> 8) & 0xFF, v & 0xFF)

    def slash24(self) -> "CidrBlock":
        """The /24 containing this address (used for anonymized export)."""
        return CidrBlock(IPv4Address(self._value & 0xFFFFFF00), 24)

    def __str__(self) -> str:
        return ".".join(str(o) for o in self.octets())

    def __repr__(self) -> str:
        return f"IPv4Address({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IPv4Address):
            return NotImplemented
        return self._value == other._value

    def __lt__(self, other: "IPv4Address") -> bool:
        if not isinstance(other, IPv4Address):
            return NotImplemented
        return self._value < other._value

    def __hash__(self) -> int:
        return hash(self._value)

    def __add__(self, offset: int) -> "IPv4Address":
        return IPv4Address(self._value + offset)


@dataclass(frozen=True)
class CidrBlock:
    """A CIDR block ``network/prefix_len``."""

    network: IPv4Address
    prefix_len: int

    def __post_init__(self) -> None:
        if not 0 <= self.prefix_len <= 32:
            raise ValueError(f"bad prefix length {self.prefix_len}")
        if self.network.value & (self.host_mask()) != 0:
            raise ValueError(f"network {self.network} has host bits set for /{self.prefix_len}")

    @classmethod
    def parse(cls, text: str) -> "CidrBlock":
        """Parse ``"a.b.c.d/len"`` notation."""
        addr_text, _, len_text = text.partition("/")
        if not len_text:
            raise ValueError(f"missing prefix length in {text!r}")
        return cls(IPv4Address.parse(addr_text), int(len_text))

    def net_mask(self) -> int:
        """The network mask as a 32-bit integer."""
        if self.prefix_len == 0:
            return 0
        return (_MAX_IPV4 << (32 - self.prefix_len)) & _MAX_IPV4

    def host_mask(self) -> int:
        """The host mask (complement of the network mask)."""
        return _MAX_IPV4 ^ self.net_mask()

    def size(self) -> int:
        """Number of addresses in the block."""
        return 1 << (32 - self.prefix_len)

    def contains(self, address: IPv4Address) -> bool:
        """Whether ``address`` falls inside this block."""
        return (address.value & self.net_mask()) == self.network.value

    def address_at(self, offset: int) -> IPv4Address:
        """The address at ``offset`` within the block."""
        if not 0 <= offset < self.size():
            raise ValueError(f"offset {offset} outside /{self.prefix_len} block")
        return IPv4Address(self.network.value + offset)

    def __str__(self) -> str:
        return f"{self.network}/{self.prefix_len}"

    def __contains__(self, address: object) -> bool:
        return isinstance(address, IPv4Address) and self.contains(address)
