"""A small DNS implementation: zones with A/MX/PTR records.

Two paper behaviors depend on DNS being real rather than assumed:

- disclosure to site J failed because the domain *had no MX record*
  (Section 6.3.2) — the notifier must consult MX records before sending;
- the attacker-IP analysis cross-checks WHOIS against reverse DNS
  (Section 6.4.3, footnote 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.ipaddr import IPv4Address


class DnsError(Exception):
    """Base class for resolution failures."""


class NxDomain(DnsError):
    """The name does not exist."""


@dataclass
class DnsZone:
    """Records for one domain name."""

    name: str
    a_records: list[IPv4Address] = field(default_factory=list)
    mx_records: list[tuple[int, str]] = field(default_factory=list)  # (preference, host)
    txt_records: list[str] = field(default_factory=list)

    def add_a(self, address: IPv4Address) -> None:
        """Attach an A record."""
        self.a_records.append(address)

    def add_mx(self, host: str, preference: int = 10) -> None:
        """Attach an MX record."""
        self.mx_records.append((preference, host))
        self.mx_records.sort()


class DnsResolver:
    """Resolves names to addresses and addresses back to names."""

    def __init__(self) -> None:
        self._zones: dict[str, DnsZone] = {}
        self._ptr: dict[IPv4Address, str] = {}

    def zone(self, name: str) -> DnsZone:
        """Get or create the zone for ``name`` (lowercased)."""
        key = name.lower()
        if key not in self._zones:
            self._zones[key] = DnsZone(key)
        return self._zones[key]

    def has_zone(self, name: str) -> bool:
        """Whether any records exist for ``name``."""
        return name.lower() in self._zones

    def register_host(self, name: str, address: IPv4Address, ptr: bool = True) -> DnsZone:
        """Convenience: create a zone with one A record (and PTR)."""
        zone = self.zone(name)
        zone.add_a(address)
        if ptr:
            self._ptr[address] = name.lower()
        return zone

    def resolve_a(self, name: str) -> list[IPv4Address]:
        """All A records for a name; raises :class:`NxDomain` if absent."""
        zone = self._zones.get(name.lower())
        if zone is None:
            raise NxDomain(name)
        return list(zone.a_records)

    def resolve_mx(self, name: str) -> list[str]:
        """MX target hosts in preference order; empty if none.

        Raises :class:`NxDomain` only when the name itself is unknown —
        a known name with no MX returns ``[]``, which is the condition
        that made site J unreachable for disclosure.
        """
        zone = self._zones.get(name.lower())
        if zone is None:
            raise NxDomain(name)
        return [host for _pref, host in zone.mx_records]

    def resolve_ptr(self, address: IPv4Address) -> str | None:
        """Reverse lookup; None when no PTR exists."""
        return self._ptr.get(address)

    def set_ptr(self, address: IPv4Address, name: str) -> None:
        """Install or overwrite a PTR record."""
        self._ptr[address] = name.lower()
