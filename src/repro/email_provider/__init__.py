"""The partner email provider (Section 4.2).

The provider's involvement is deliberately narrow, mirroring the paper:
it creates the requested accounts (unless they collide or violate
naming policy), forwards all incoming mail, and periodically exports
dumps of *successful* logins (timestamp, remote IP, method) without
knowing which accounts Tripwire actually used.  It also runs the abuse
machinery a major provider would: brute-force throttling, spam-driven
deactivation, suspicious-login freezes and forced password resets.
"""

from repro.email_provider.accounts import (
    AccountState,
    AccountTable,
    NamingPolicy,
    ProviderAccount,
    ProvisioningResult,
)
from repro.email_provider.telemetry import LoginEvent, LoginMethod, LoginTelemetry
from repro.email_provider.provider import EmailProvider, LoginResult
from repro.email_provider.batch import BatchLoginEngine, BatchReceipt, LoginBatch

__all__ = [
    "AccountState",
    "AccountTable",
    "NamingPolicy",
    "ProviderAccount",
    "ProvisioningResult",
    "LoginEvent",
    "LoginMethod",
    "LoginTelemetry",
    "EmailProvider",
    "LoginResult",
    "BatchLoginEngine",
    "BatchReceipt",
    "LoginBatch",
]
