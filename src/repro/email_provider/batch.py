"""Vectorized batch authentication over the columnar account table.

The heavy-traffic login front-end: one :class:`LoginBatch` carries a
whole window of login attempts as parallel columns (lowercased keys,
passwords, integer IPs, method codes) and
:meth:`BatchLoginEngine.attempt_logins` authenticates them against the
provider's :class:`~repro.email_provider.accounts.AccountTable`
columns, ending in a single bulk telemetry append.

The engine is *decision-for-decision identical* to
:meth:`EmailProvider.attempt_login <repro.email_provider.provider.
EmailProvider.attempt_login>` run once per event at the batch's window
instant: the same results in the same order, the same throttle and
IP-window state transitions, the same RNG draws in the same order, the
same telemetry columns, the same aggregated obs counters — so a run's
journal bytes cannot reveal which engine authenticated its logins.

How it holds that contract at speed: a batch is split into **clean**
events and **rare** events.  Clean means boring — the account exists
and is active, the row has no throttle entry and appears exactly once
in the batch, and then either the password matches and the row is not
hot in the suspicion machinery and nowhere near the suspicion
threshold (a **clean success**), or the password mismatches (a **clean
failure** — failures never touch the IP machinery, so the hot/near
conditions don't apply).  Clean events cannot draw from the RNG and
touch disjoint rows from every rare event, so they commit as
whole-column operations: numpy gathers classify them; clean successes
land one bulk evidence-log append, one whole-column compare against
the first-seen-IP column and one scatter bump of the cached distinct
counters; clean failures land one bulk insert of fresh
first-failure throttle entries.  Everything else — throttled or
locked rows, non-active accounts, hot or near-threshold successes,
rows hit more than once in the window — is routed, in event order,
through :meth:`EmailProvider._attempt_row`: the *same* per-row
decision core the scalar path runs, so the subtle cases have exactly
one implementation.

The membership probes (throttled rows, hot rows) reuse sorted key
arrays cached against the provider's key-set revision counters
(``_throttle_rev``/``_hot_rev``): windows that change no key set —
the common case — probe without rebuilding, and the engine's own
bulk throttle insert merges into the cached array instead of
invalidating it.  Duplicate detection runs in reusable scratch
buffers (copy → in-place sort → adjacent compare) rather than
allocating an ``np.unique`` workspace per window.

Without numpy (the import is gated) or below
:data:`VECTOR_MIN_EVENTS`, every event takes the `_attempt_row` path;
the result is identical either way.

Batch windows carry **one** timestamp (the window close) on purpose:
telemetry requires time-ordered appends, and a window's events must
not be stamped earlier than scalar events already recorded by streams
that fired inside the window.
"""

from __future__ import annotations

from array import array
from itertools import compress
from operator import eq

from repro.email_provider.provider import NO_IP
from repro.email_provider.telemetry import METHOD_CODES, METHOD_ORDER, LoginMethod
from repro.net.ipaddr import IPv4Address
from repro.util.timeutil import SimInstant

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised via the fallback tests
    np = None

#: Batches smaller than this skip the vectorized path: numpy's fixed
#: per-operation overhead loses to the plain loop on tiny batches (the
#: service's single-event attacker/probe bridges in particular).
VECTOR_MIN_EVENTS = 32

#: Shared empty sorted-key array (the membership caches' rest state).
_EMPTY_KEYS = None if np is None else np.empty(0, np.int64)


def _in_sorted(sorted_keys, values):
    """Boolean membership of ``values`` in a sorted int64 key array.

    ``searchsorted`` beats ``np.isin`` here: the key sets (throttled
    rows, hot rows) are tiny next to the batch, and ``np.isin``'s
    sort-based path both concatenate-sorts the full batch and touches
    ``np.ma`` lazily, dragging a module import into the hot loop's
    first call.
    """
    idx = np.searchsorted(sorted_keys, values)
    idx[idx == len(sorted_keys)] = 0  # out-of-range probes can't match
    return sorted_keys[idx] == values


class LoginBatch:
    """One window of login attempts, as parallel columns.

    ``keys`` are *lowercased* local parts (the producer lowercases
    once; the scalar path lowercases per attempt), ``ips`` packs
    :attr:`IPv4Address.value` integers and ``methods`` packs
    :data:`~repro.email_provider.telemetry.METHOD_CODES` bytes.

    ``rows`` is the optional producer-resolved account-row column
    (``array('q')``): a producer that already knows its accounts'
    table rows (the traffic generator mints the benign population and
    gets the rows back at registration) supplies them so the engine
    skips the per-key index probe — at 10^6 accounts that probe is a
    cold hash lookup per event, and it is pure redundancy when the
    producer had the row all along.  When given, ``rows`` must resolve
    ``keys`` exactly; the engine trusts it.
    """

    __slots__ = ("keys", "passwords", "ips", "methods", "rows")

    def __init__(
        self,
        keys: list[str],
        passwords: list[str],
        ips: array,
        methods: bytearray,
        rows: array | None = None,
    ):
        n = len(keys)
        if len(passwords) != n or len(ips) != n or len(methods) != n:
            raise ValueError("batch columns must be parallel")
        if rows is not None and len(rows) != n:
            raise ValueError("batch columns must be parallel")
        self.keys = keys
        self.passwords = passwords
        self.ips = ips
        self.methods = methods
        self.rows = rows

    def __len__(self) -> int:
        return len(self.keys)

    @classmethod
    def from_attempts(
        cls, attempts: list[tuple[str, str, IPv4Address, LoginMethod]]
    ) -> "LoginBatch":
        """Build a batch from (local_part, password, ip, method) tuples."""
        keys = [a[0].lower() for a in attempts]
        passwords = [a[1] for a in attempts]
        ips = array("Q", [a[2].value for a in attempts])
        methods = bytearray(METHOD_CODES[a[3]] for a in attempts)
        return cls(keys, passwords, ips, methods)

    @classmethod
    def single(
        cls, local_part: str, password: str, ip: IPv4Address, method: LoginMethod
    ) -> "LoginBatch":
        """A one-event batch (the service streams' scalar bridge)."""
        return cls(
            [local_part.lower()],
            [password],
            array("Q", [ip.value]),
            bytearray((METHOD_CODES[method],)),
        )


class BatchReceipt:
    """Per-attempt outcomes of one batch window.

    ``results`` holds one :data:`~repro.email_provider.provider.
    RESULT_ORDER` code per attempt, in batch order; SUCCESS is 0 so
    ``results.count(0)`` is the success count without decoding.
    """

    __slots__ = ("results",)

    def __init__(self, results: bytearray):
        self.results = results

    def __len__(self) -> int:
        return len(self.results)

    def result(self, i: int):
        """The :class:`LoginResult` of attempt ``i``."""
        from repro.email_provider.provider import RESULT_ORDER

        return RESULT_ORDER[self.results[i]]

    @property
    def successes(self) -> int:
        return self.results.count(0)

    def tally(self) -> dict:
        """Result -> count over the whole batch (skips zero rows)."""
        from repro.email_provider.provider import RESULT_ORDER

        counts = {}
        for code, result in enumerate(RESULT_ORDER):
            n = self.results.count(code)
            if n:
                counts[result] = n
        return counts


class BatchLoginEngine:
    """Authenticates :class:`LoginBatch` windows against one provider.

    Holds no state of its own beyond the provider reference — the
    throttle map, evidence log, cached counters and RNG stream are the
    provider's, so scalar and batched logins interleave freely against
    the same account table.

    The path tallies (``windows``, ``vector_committed``,
    ``scalar_replayed``, ``fallback_events``) are plain attributes, not
    obs counters, on purpose: which path an event takes is an
    execution detail that must never reach journal bytes (the
    login-smoke cmp would catch it), so the tallies surface only
    through flight snapshots and live report sections.
    """

    __slots__ = (
        "_provider",
        "windows",
        "vector_committed",
        "vector_failed",
        "scalar_replayed",
        "fallback_events",
        "_throttle_keys",
        "_throttle_rev",
        "_hot_keys",
        "_hot_rev",
        "_sort_buf",
        "_eq_buf",
    )

    def __init__(self, provider):
        self._provider = provider
        #: Batch windows authenticated through this engine.
        self.windows = 0
        #: Events committed by the whole-column clean path (successes
        #: plus clean failures).
        self.vector_committed = 0
        #: The clean-failure subset of ``vector_committed``.
        self.vector_failed = 0
        #: Events replayed through ``_attempt_row`` inside a
        #: vectorized window (the rare mask routed them there).
        self.scalar_replayed = 0
        #: Events that took the serial path because the window never
        #: vectorized (no numpy, too small, or unresolved keys).
        self.fallback_events = 0
        # Sorted-key caches for the membership probes, valid while the
        # provider's matching revision counter is unchanged.
        self._throttle_keys = None
        self._throttle_rev = -1
        self._hot_keys = None
        self._hot_rev = -1
        # Reusable scratch for duplicate detection (grown, never shrunk).
        self._sort_buf = None
        self._eq_buf = None

    def stats(self) -> dict:
        """The path tallies as a plain dict (flight snapshots)."""
        return {
            "windows": self.windows,
            "vector_committed": self.vector_committed,
            "vector_failed": self.vector_failed,
            "scalar_replayed": self.scalar_replayed,
            "fallback_events": self.fallback_events,
        }

    def attempt_logins(
        self, batch: LoginBatch, now: SimInstant | None = None
    ) -> BatchReceipt:
        """Authenticate one window; all events occur at instant ``now``.

        ``now`` defaults to the provider clock's current instant (the
        window close).
        """
        provider = self._provider
        if now is None:
            now = provider._clock.now()
        table = provider._table
        rows = batch.rows
        if rows is None:
            rows = list(map(table._index.get, batch.keys))
            unresolved = None in rows
        else:
            unresolved = False  # producer rows are always real rows

        self.windows += 1
        if np is None or len(rows) < VECTOR_MIN_EVENTS or unresolved:
            self.fallback_events += len(rows)
            results = self._attempt_serial(rows, batch, now)
        else:
            results = self._attempt_vectorized(rows, batch, now)

        self._record_window(rows, batch, results, now)
        return BatchReceipt(results)

    def _attempt_serial(self, rows, batch: LoginBatch, now) -> bytearray:
        """Reference loop: every event through the shared decision core."""
        attempt_row = self._provider._attempt_row
        results = bytearray()
        results_append = results.append
        for row, password, ip_int in zip(rows, batch.passwords, batch.ips):
            if row is None:
                results_append(2)  # NO_SUCH_ACCOUNT
            else:
                results_append(attempt_row(row, password, ip_int, now))
        return results

    def _throttle_sorted_keys(self):
        """The throttle key set as a sorted array, cached per revision."""
        provider = self._provider
        rev = provider._throttle_rev
        if self._throttle_rev != rev:
            throttles = provider._throttle
            if throttles:
                self._throttle_keys = np.sort(
                    np.fromiter(throttles.keys(), np.int64, len(throttles))
                )
            else:
                self._throttle_keys = _EMPTY_KEYS
            self._throttle_rev = rev
        return self._throttle_keys

    def _hot_sorted_keys(self):
        """The hot-row key set as a sorted array, cached per revision."""
        provider = self._provider
        rev = provider._hot_rev
        if self._hot_rev != rev:
            hot = provider._ip_hot
            if hot:
                self._hot_keys = np.sort(
                    np.fromiter(hot.keys(), np.int64, len(hot))
                )
            else:
                self._hot_keys = _EMPTY_KEYS
            self._hot_rev = rev
        return self._hot_keys

    def _duplicate_mask(self, rows_np, n):
        """Mask of events whose row appears more than once in the batch.

        Runs in reusable scratch (copy, in-place sort, adjacent
        compare) so the steady state allocates nothing proportional
        to the window; returns None when every row is unique.
        """
        sort_buf = self._sort_buf
        if sort_buf is None or sort_buf.size < n:
            size = max(n, 1024 if sort_buf is None else 2 * sort_buf.size)
            sort_buf = self._sort_buf = np.empty(size, np.int64)
            self._eq_buf = np.empty(size, np.bool_)
        sorted_rows = sort_buf[:n]
        np.copyto(sorted_rows, rows_np)
        sorted_rows.sort()
        adjacent = np.equal(
            sorted_rows[1:], sorted_rows[:-1], out=self._eq_buf[: n - 1]
        )
        if not adjacent.any():
            return None
        # Every duplicated value appears in the boundary slice (maybe
        # more than once — harmless to the searchsorted probe).
        return _in_sorted(sorted_rows[1:][adjacent], rows_np)

    def _attempt_vectorized(self, rows, batch: LoginBatch, now) -> bytearray:
        """Columnar fast path: bulk-commit clean events, loop the rest.

        Correctness hinges on two facts the masks establish up front:
        clean events each own their row exclusively within the batch
        (the duplicate mask routes shared rows to the serial path), so
        no rare event can observe or disturb a clean row's state; and
        clean successes sit strictly below the suspicion threshold even
        after their one new IP, so no clean event can draw from the
        RNG (clean failures never touch the IP machinery at all).
        Rare events run through ``_attempt_row`` in event order,
        which preserves the draw sequence and every throttle/lockout
        interleaving exactly as the scalar path would produce them.
        """
        provider = self._provider
        table = provider._table
        n = len(rows)

        rows_np = np.asarray(rows, dtype=np.int64)
        ips_np = np.frombuffer(batch.ips, dtype=np.uint64)
        # Transient views over the provider's row-indexed columns.
        # They must all be dropped before anything can resize the
        # underlying buffers (provisioning between batches).
        states_np = np.frombuffer(table.states, dtype=np.uint8)
        distinct_np = np.frombuffer(provider._ip_distinct, dtype=np.uint32)
        head_np = np.frombuffer(provider._ip_head, dtype=np.int64)

        # Classification, all against batch-start state: gathers over
        # the columns plus membership probes of the sparse dicts.
        pw_ok = np.fromiter(
            map(eq, batch.passwords, map(table.passwords.__getitem__, rows)),
            np.bool_,
            count=n,
        )
        # Conditions that disqualify *any* event from the clean paths.
        blocked = states_np[rows_np] != 0
        rev_at_probe = provider._throttle_rev
        if provider._throttle:
            blocked |= _in_sorted(self._throttle_sorted_keys(), rows_np)
        else:
            self._throttle_keys = _EMPTY_KEYS
            self._throttle_rev = rev_at_probe
        dup_mask = self._duplicate_mask(rows_np, n)
        if dup_mask is not None:
            blocked |= dup_mask
        # Successes additionally must stay out of the RNG-drawing
        # review: not hot, and (since a clean event adds at most one
        # distinct IP) not one step below the suspicion threshold.
        succ_blocked = blocked
        if provider._ip_hot:
            succ_blocked = succ_blocked | _in_sorted(
                self._hot_sorted_keys(), rows_np
            )
        near = distinct_np[rows_np] >= provider.SUSPICION_DISTINCT_IPS - 1
        succ_blocked = succ_blocked | near

        clean_succ = pw_ok & ~succ_blocked
        if provider.BRUTE_FORCE_LIMIT > 1:
            clean_fail = ~pw_ok & ~blocked
            rare = ~(clean_succ | clean_fail)
        else:  # a single failure locks: route every failure rare
            clean_fail = None
            rare = ~clean_succ

        results_np = np.zeros(n, dtype=np.uint8)
        rare_idx = np.nonzero(rare)[0]
        self.scalar_replayed += int(rare_idx.size)
        if rare_idx.size:
            attempt_row = provider._attempt_row
            passwords = batch.passwords
            ips_col = batch.ips
            for i in rare_idx.tolist():
                results_np[i] = attempt_row(rows[i], passwords[i], ips_col[i], now)

        if clean_fail is not None and clean_fail.any():
            self._commit_clean_failures(
                rows_np, clean_fail, results_np, now, rev_at_probe
            )

        clean_idx = np.nonzero(clean_succ)[0]
        m = clean_idx.size
        self.vector_committed += int(m)
        if m:
            c_rows = rows_np[clean_idx]
            c_ips = ips_np[clean_idx]
            # Evidence-log bulk append: one window, one extend per
            # column, chain threading as a gather + scatter (safe
            # because clean rows are unique within the batch).
            base = len(provider._log_times)
            provider._log_prev.frombytes(head_np[c_rows].tobytes())
            head_np[c_rows] = np.arange(base, base + m, dtype=np.int64)
            provider._log_times.frombytes(np.full(m, now, dtype=np.int64).tobytes())
            provider._log_ips.frombytes(c_ips.tobytes())
            provider._log_rows.frombytes(c_rows.tobytes())
            # Distinct bound: compare each event's source against the
            # row's first-seen IP — whole-column compares and scatters
            # (safe: clean rows are unique within the batch).
            first_np = np.frombuffer(provider._ip_first, dtype=np.uint64)
            firsts = first_np[c_rows]
            unset = firsts == NO_IP
            if unset.any():
                first_np[c_rows[unset]] = c_ips[unset]
            bump_rows = c_rows[unset | (c_ips != firsts)]
            if bump_rows.size:
                distinct_np[bump_rows] += 1

        return bytearray(results_np.tobytes())

    def _commit_clean_failures(
        self, rows_np, clean_fail, results_np, now, rev_at_probe
    ) -> None:
        """Bulk-commit the window's clean failures.

        Each clean-fail row is active, un-throttled and unique in the
        batch, so the scalar path would have produced exactly one
        fresh first-failure throttle entry per row (``[1, window
        start, 0]`` — below ``BRUTE_FORCE_LIMIT``, so no lockout) and
        returned BAD_PASSWORD.  One dict bulk-insert per window lands
        all of them; the key-set revision advances once, and when no
        rare event inserted a throttle entry this window the sorted
        key cache absorbs the new rows by merge instead of a rebuild.
        """
        provider = self._provider
        fail_idx = np.nonzero(clean_fail)[0]
        count = int(fail_idx.size)
        self.vector_committed += count
        self.vector_failed += count
        results_np[fail_idx] = 1  # BAD_PASSWORD
        f_rows = rows_np[fail_idx]
        # _note_failure resets the window start only when the stale
        # window test passes — replicate its exact arithmetic.
        window_start = now if now - 0 > provider.BRUTE_FORCE_WINDOW else 0
        provider._throttle.update(
            (row, [1, window_start, 0]) for row in f_rows.tolist()
        )
        prev_rev = provider._throttle_rev
        provider._throttle_rev = prev_rev + 1
        if prev_rev == rev_at_probe and self._throttle_keys is not None:
            new_keys = np.sort(f_rows)
            keys = self._throttle_keys
            self._throttle_keys = np.insert(
                keys, np.searchsorted(keys, new_keys), new_keys
            )
            self._throttle_rev = prev_rev + 1

    def _record_window(self, rows, batch: LoginBatch, results: bytearray, now) -> None:
        """One bulk telemetry append for the window's successes.

        Success columns are rebuilt at C speed from the results mask;
        column order is batch order, which is exactly the order the
        scalar path would have recorded the same events in.
        """
        provider = self._provider
        table = provider._table
        successes = results.count(0)
        if successes:
            if (
                np is not None
                and successes >= VECTOR_MIN_EVENTS
                and None not in rows
            ):
                results_np = np.frombuffer(results, dtype=np.uint8)
                ok_idx = np.nonzero(results_np == 0)[0]
                ok_rows = np.asarray(rows, dtype=np.int64)[ok_idx]
                ok_locals = list(map(table.locals.__getitem__, ok_rows.tolist()))
                monitored_np = np.frombuffer(table.monitored, dtype=np.uint8)
                ok_monitored = bytearray(monitored_np[ok_rows].tobytes())
                ok_ips = array("Q")
                ok_ips.frombytes(
                    np.frombuffer(batch.ips, dtype=np.uint64)[ok_idx].tobytes()
                )
                methods_np = np.frombuffer(batch.methods, dtype=np.uint8)
                ok_methods = bytearray(methods_np[ok_idx].tobytes())
            else:
                ok_mask = [not code for code in results]
                ok_rows_list = list(compress(rows, ok_mask))
                ok_locals = list(map(table.locals.__getitem__, ok_rows_list))
                ok_monitored = bytearray(
                    map(table.monitored.__getitem__, ok_rows_list)
                )
                ok_ips = array("Q", compress(batch.ips, ok_mask))
                ok_methods = bytearray(compress(batch.methods, ok_mask))
        else:
            ok_locals, ok_monitored = [], bytearray()
            ok_ips, ok_methods = array("Q"), bytearray()
        provider.telemetry.record_batch(ok_locals, now, ok_ips, ok_methods, ok_monitored)


def _pin_literal_codes() -> None:
    """The hot paths write literal codes; fail import if they drift."""
    from repro.email_provider.provider import RESULT_CODES, LoginResult

    assert RESULT_CODES[LoginResult.SUCCESS] == 0
    assert RESULT_CODES[LoginResult.BAD_PASSWORD] == 1
    assert RESULT_CODES[LoginResult.NO_SUCH_ACCOUNT] == 2
    assert RESULT_CODES[LoginResult.THROTTLED] == 3
    assert len(METHOD_ORDER) == len(LoginMethod)


_pin_literal_codes()
