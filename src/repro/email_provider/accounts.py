"""Provider-side account storage, records and naming policy.

Accounts live in an :class:`AccountTable` — a struct-of-arrays layout
(the PR-7 ``store/rows.py`` idiom applied to live state instead of
pages): one Python list/array per column rather than one dataclass
per account.  At the honey-account scale the difference is invisible;
at the heavy-traffic scale (10^6 benign accounts behind the batch
login engine, :mod:`repro.email_provider.batch`) it is the difference
between ~100 MB of flat columns and gigabytes of per-account objects,
and it lets the hot login paths touch exactly the columns they need.

:class:`ProviderAccount` survives as the row *view*: a two-word proxy
whose properties read and write the columns, preserving the original
dataclass attribute API (``account.state``, ``account.password``,
``account.received_message_count``, ...) for the analysis layer and
the tests.
"""

from __future__ import annotations

import enum
import re
from array import array
from dataclasses import dataclass

from repro.util.timeutil import SimInstant


class AccountState(enum.Enum):
    """Lifecycle of a provider account."""

    ACTIVE = "active"
    FROZEN = "frozen"  # suspicious activity; logins rejected
    DEACTIVATED = "deactivated"  # abuse (spam); permanently closed
    RESET_FORCED = "reset_forced"  # provider forced a password reset


#: Column encoding of :class:`AccountState`: the byte stored in
#: ``AccountTable.states``.  ACTIVE must stay 0 — the hot login paths
#: test ``states[row]`` for truthiness to skip three enum compares.
STATE_CODES: dict[AccountState, int] = {
    AccountState.ACTIVE: 0,
    AccountState.FROZEN: 1,
    AccountState.DEACTIVATED: 2,
    AccountState.RESET_FORCED: 3,
}
STATE_FROM_CODE: tuple[AccountState, ...] = (
    AccountState.ACTIVE,
    AccountState.FROZEN,
    AccountState.DEACTIVATED,
    AccountState.RESET_FORCED,
)

#: ``state_changed_at`` column sentinel for "never changed" (None).
NEVER_CHANGED = -1


class AccountTable:
    """Struct-of-arrays storage for every mailbox at the provider.

    Rows are append-only; a row index is a stable account identity for
    the provider's whole lifetime.  The ``monitored`` column marks the
    disclosure scope of Section 4.2 — the accounts Tripwire asked the
    provider to report telemetry for — as opposed to the organic
    benign population registered through :meth:`extend`.
    """

    __slots__ = (
        "_index",
        "locals",
        "display_names",
        "passwords",
        "created_at",
        "states",
        "state_changed_at",
        "forwarding",
        "received_counts",
        "spam_counts",
        "monitored",
        "password_changes",
        "monitored_count",
    )

    def __init__(self) -> None:
        #: Lowercased local part -> row index.
        self._index: dict[str, int] = {}
        self.locals: list[str] = []
        self.display_names: list[str] = []
        self.passwords: list[str] = []
        self.created_at = array("q")
        self.states = bytearray()
        self.state_changed_at = array("q")
        self.forwarding: list[str | None] = []
        self.received_counts = array("Q")
        self.spam_counts = array("Q")
        self.monitored = bytearray()
        #: Sparse: password rotations are rare; most rows never rotate.
        self.password_changes: dict[int, list[SimInstant]] = {}
        self.monitored_count = 0

    def __len__(self) -> int:
        return len(self.locals)

    def row_of(self, local_part: str) -> int | None:
        """Row index for a (case-insensitive) local part, or None."""
        return self._index.get(local_part.lower())

    def add(
        self,
        local_part: str,
        display_name: str,
        password: str,
        created_at: SimInstant,
        forwarding_address: str | None = None,
        monitored: bool = True,
    ) -> int:
        """Append one account row; returns its row index."""
        row = len(self.locals)
        self._index[local_part.lower()] = row
        self.locals.append(local_part)
        self.display_names.append(display_name)
        self.passwords.append(password)
        self.created_at.append(created_at)
        self.states.append(0)
        self.state_changed_at.append(NEVER_CHANGED)
        self.forwarding.append(forwarding_address)
        self.received_counts.append(0)
        self.spam_counts.append(0)
        self.monitored.append(1 if monitored else 0)
        if monitored:
            self.monitored_count += 1
        return row

    def extend(
        self,
        locals_lower: list[str],
        passwords: list[str],
        created_at: SimInstant,
    ) -> int:
        """Bulk-append unmonitored (benign-population) rows.

        The fast path for registering millions of organic accounts:
        callers guarantee the locals are lowercase, policy-clean and
        collision-free (the benign population mints its own namespace),
        so the per-row checks of :meth:`add` are hoisted out entirely.
        Returns the row index of the first appended account.
        """
        first = len(self.locals)
        n = len(locals_lower)
        if n != len(passwords):
            raise ValueError("locals and passwords must be the same length")
        self._index.update(zip(locals_lower, range(first, first + n)))
        self.locals.extend(locals_lower)
        self.display_names.extend([""] * n)
        self.passwords.extend(passwords)
        zeros = bytes(8 * n)
        self.created_at.extend(array("q", [created_at]) * n)
        self.states.extend(bytes(n))
        self.state_changed_at.extend(array("q", [NEVER_CHANGED]) * n)
        self.forwarding.extend([None] * n)
        self.received_counts.frombytes(zeros)
        self.spam_counts.frombytes(zeros)
        self.monitored.extend(bytes(n))
        return first

    def view(self, row: int) -> "ProviderAccount":
        """A live row proxy (reads and writes go to the columns)."""
        return ProviderAccount(self, row)


class ProviderAccount:
    """One mailbox at the provider — a live view over one table row."""

    __slots__ = ("_table", "_row")

    def __init__(self, table: AccountTable, row: int):
        self._table = table
        self._row = row

    @property
    def local_part(self) -> str:
        return self._table.locals[self._row]

    @property
    def display_name(self) -> str:
        return self._table.display_names[self._row]

    @property
    def password(self) -> str:
        return self._table.passwords[self._row]

    @password.setter
    def password(self, value: str) -> None:
        self._table.passwords[self._row] = value

    @property
    def created_at(self) -> SimInstant:
        return self._table.created_at[self._row]

    @property
    def state(self) -> AccountState:
        return STATE_FROM_CODE[self._table.states[self._row]]

    @state.setter
    def state(self, value: AccountState) -> None:
        self._table.states[self._row] = STATE_CODES[value]

    @property
    def state_changed_at(self) -> SimInstant | None:
        stamp = self._table.state_changed_at[self._row]
        return None if stamp == NEVER_CHANGED else stamp

    @state_changed_at.setter
    def state_changed_at(self, value: SimInstant | None) -> None:
        self._table.state_changed_at[self._row] = (
            NEVER_CHANGED if value is None else value
        )

    @property
    def forwarding_address(self) -> str | None:
        return self._table.forwarding[self._row]

    @forwarding_address.setter
    def forwarding_address(self, value: str | None) -> None:
        self._table.forwarding[self._row] = value

    @property
    def received_message_count(self) -> int:
        return self._table.received_counts[self._row]

    @received_message_count.setter
    def received_message_count(self, value: int) -> None:
        self._table.received_counts[self._row] = value

    @property
    def sent_spam_count(self) -> int:
        return self._table.spam_counts[self._row]

    @sent_spam_count.setter
    def sent_spam_count(self, value: int) -> None:
        self._table.spam_counts[self._row] = value

    @property
    def monitored(self) -> bool:
        """Whether this account is in the telemetry disclosure scope."""
        return bool(self._table.monitored[self._row])

    @property
    def password_changes(self) -> list[SimInstant]:
        """Rotation timestamps (live list; appends persist)."""
        return self._table.password_changes.setdefault(self._row, [])

    @property
    def can_login(self) -> bool:
        """Whether logins are currently accepted."""
        return self._table.states[self._row] == 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ProviderAccount({self.local_part!r}, state={self.state.value!r})"
        )


class NamingPolicy:
    """The provider's username rules.

    Real providers bound length and the character repertoire; Tripwire
    exploits the provider's collision check as a cheap probe for
    username availability everywhere else (Section 4.1.1).
    """

    def __init__(self, min_length: int = 6, max_length: int = 30):
        self.min_length = min_length
        self.max_length = max_length
        self._pattern = re.compile(r"^[A-Za-z][A-Za-z0-9._]*$")

    def violation(self, local_part: str) -> str | None:
        """Reason the name is rejected, or None when acceptable."""
        if len(local_part) < self.min_length:
            return f"shorter than {self.min_length} characters"
        if len(local_part) > self.max_length:
            return f"longer than {self.max_length} characters"
        if not self._pattern.match(local_part):
            return "contains characters outside [A-Za-z0-9._]"
        return None


@dataclass(frozen=True)
class ProvisioningResult:
    """Outcome of asking the provider to create one account."""

    local_part: str
    created: bool
    reason: str | None = None  # populated when not created
