"""Provider-side account records and naming policy."""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field

from repro.util.timeutil import SimInstant


class AccountState(enum.Enum):
    """Lifecycle of a provider account."""

    ACTIVE = "active"
    FROZEN = "frozen"  # suspicious activity; logins rejected
    DEACTIVATED = "deactivated"  # abuse (spam); permanently closed
    RESET_FORCED = "reset_forced"  # provider forced a password reset


@dataclass
class ProviderAccount:
    """One mailbox at the provider."""

    local_part: str
    display_name: str
    password: str
    created_at: SimInstant
    state: AccountState = AccountState.ACTIVE
    state_changed_at: SimInstant | None = None  # freeze/deactivation time
    forwarding_address: str | None = None
    received_message_count: int = 0
    sent_spam_count: int = 0
    password_changes: list[SimInstant] = field(default_factory=list)

    @property
    def can_login(self) -> bool:
        """Whether logins are currently accepted."""
        return self.state is AccountState.ACTIVE


class NamingPolicy:
    """The provider's username rules.

    Real providers bound length and the character repertoire; Tripwire
    exploits the provider's collision check as a cheap probe for
    username availability everywhere else (Section 4.1.1).
    """

    def __init__(self, min_length: int = 6, max_length: int = 30):
        self.min_length = min_length
        self.max_length = max_length
        self._pattern = re.compile(r"^[A-Za-z][A-Za-z0-9._]*$")

    def violation(self, local_part: str) -> str | None:
        """Reason the name is rejected, or None when acceptable."""
        if len(local_part) < self.min_length:
            return f"shorter than {self.min_length} characters"
        if len(local_part) > self.max_length:
            return f"longer than {self.max_length} characters"
        if not self._pattern.match(local_part):
            return "contains characters outside [A-Za-z0-9._]"
        return None


@dataclass(frozen=True)
class ProvisioningResult:
    """Outcome of asking the provider to create one account."""

    local_part: str
    created: bool
    reason: str | None = None  # populated when not created
