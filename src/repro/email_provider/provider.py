"""The email provider service.

Implements the provider-facing half of Section 4.2: account
provisioning with collision and naming-policy checks, mail delivery
with forwarding, a login endpoint with brute-force throttling, abuse
handling (spam → deactivation, suspicious access → freeze or forced
reset) and the sporadic login-telemetry dumps Tripwire consumes.

The provider never learns which of its accounts were registered at
websites; nothing in this class refers to sites.

Scale notes (the heavy-traffic front-end)
-----------------------------------------

Accounts live in a columnar :class:`~repro.email_provider.accounts.
AccountTable` so the provider can hold the benign population Tripwire's
accounts hide among — millions of mailboxes, not 27.  Per-login state
is sparse and incremental:

- brute-force throttling keeps one ``[failures, window_start,
  locked_until]`` triple per row *that has ever failed*, nothing for
  the quiet majority;
- the suspicious-IP review splits rows into **cold** and **hot**.
  Cold rows (virtually everyone) append ``(time, ip, row)`` to one
  shared columnar evidence log threaded by a per-row chain index, and
  bump a cached distinct-IP counter whenever the source differs from
  the row's first-seen IP — O(1) per login with no map probes at all,
  no per-row containers, no per-login pruning (the old design rebuilt
  the whole window per login).  The cached counter is an upper bound
  on the windowed distinct count (a typical account logs in from its
  one usual address, so the bound stays at 1), so while it sits below
  ``SUSPICION_DISTINCT_IPS`` no review can fire and the bound is all
  the review needs;
- the moment a row's bound reaches the threshold it is **promoted**:
  its chain is materialized into an exact ``(ring, counts)`` window
  (pruned of expired entries), removed from the shared log, and
  maintained incrementally from then on — amortized O(1) per login.
  Promotion cannot change a decision: the bound only ever
  overestimates, and the review consults the exact count;
- :meth:`evict_expired` prunes hot windows, demotes fully-expired
  hot rows and compacts expired entries out of the shared log, so a
  multi-year ``repro serve`` run holds state proportional to
  *recently active* accounts only.

:meth:`attempt_login` is the scalar path; the vectorized batch path
over the same columns lives in :mod:`repro.email_provider.batch` and
is decision-for-decision identical to it.
"""

from __future__ import annotations

import enum
from array import array
from collections import deque
from itertools import repeat

from repro.email_provider.accounts import (
    AccountState,
    AccountTable,
    NamingPolicy,
    ProviderAccount,
    ProvisioningResult,
    STATE_CODES,
)
from repro.email_provider.telemetry import (
    LoginEvent,
    LoginMethod,
    LoginTelemetry,
)
from repro.mail.messages import EmailMessage
from repro.net.ipaddr import IPv4Address
from repro.obs import NO_OP
from repro.sim.clock import SimClock
from repro.util.rngtree import RngTree
from repro.util.timeutil import DAY, HOUR, SimInstant


class LoginResult(enum.Enum):
    """Outcome of a login attempt."""

    SUCCESS = "success"
    BAD_PASSWORD = "bad_password"
    NO_SUCH_ACCOUNT = "no_such_account"
    THROTTLED = "throttled"  # brute-force protection kicked in
    ACCOUNT_FROZEN = "account_frozen"
    ACCOUNT_DEACTIVATED = "account_deactivated"
    RESET_REQUIRED = "reset_required"


#: Wire encoding of :class:`LoginResult` (definition order) — the batch
#: engine's receipts carry these codes; SUCCESS must stay 0.
RESULT_ORDER: tuple[LoginResult, ...] = tuple(LoginResult)
RESULT_CODES: dict[LoginResult, int] = {r: i for i, r in enumerate(RESULT_ORDER)}

#: Account-state byte -> login-result code for non-ACTIVE states
#: (FROZEN -> ACCOUNT_FROZEN, DEACTIVATED -> ..., RESET_FORCED -> ...).
STATE_RESULT_CODES: tuple[int, ...] = (
    0,  # ACTIVE: unused (the hot paths branch on state != 0 first)
    RESULT_CODES[LoginResult.ACCOUNT_FROZEN],
    RESULT_CODES[LoginResult.ACCOUNT_DEACTIVATED],
    RESULT_CODES[LoginResult.RESET_REQUIRED],
)

#: "No first-seen IP yet" sentinel — outside the 32-bit IPv4 space, so
#: it can never compare equal to a real source address.
NO_IP = 1 << 40


class EmailProvider:
    """A major email provider with hundreds of millions of accounts.

    Tripwire accounts are treated "equivalently to their hundreds of
    millions of other accounts" (Section 4.4); all protective machinery
    here applies uniformly — including to the benign population
    registered through :meth:`register_benign_accounts`.
    """

    #: Failed attempts inside the window before throttling engages.
    BRUTE_FORCE_LIMIT = 10
    BRUTE_FORCE_WINDOW = 1 * HOUR
    BRUTE_FORCE_LOCKOUT = 6 * HOUR

    #: Spam messages sent before the abuse team deactivates an account.
    SPAM_DEACTIVATION_THRESHOLD = 40

    #: Distinct source IPs within the suspicion window that may trigger
    #: a freeze review.  Calibrated so roughly a quarter to a third of
    #: actively-abused accounts end up frozen (Table 3: 8 of 27).
    SUSPICION_DISTINCT_IPS = 70
    SUSPICION_WINDOW = 30 * DAY
    FREEZE_PROBABILITY = 0.05
    FORCED_RESET_PROBABILITY = 0.005

    def __init__(
        self,
        domain: str,
        clock: SimClock,
        rng_tree: RngTree,
        naming_policy: NamingPolicy | None = None,
        retention_days: int = 60,
        preexisting_locals: frozenset[str] = frozenset(),
        obs=NO_OP,
    ):
        self.domain = domain.lower()
        self._clock = clock
        self._rng = rng_tree.child("email-provider").rng()
        self._policy = naming_policy or NamingPolicy()
        self._table = AccountTable()
        self._preexisting = {name.lower() for name in preexisting_locals}
        self.telemetry = LoginTelemetry(retention_days=retention_days, obs=obs)
        #: Sparse throttle state: row -> [failures, window_start,
        #: locked_until].  Only rows with failure history appear here.
        self._throttle: dict[int, list[int]] = {}
        #: Key-set revision counters: bumped whenever rows are added
        #: to or removed from ``_throttle`` / ``_ip_hot`` (value
        #: mutation doesn't count).  The batch engine keys its sorted
        #: membership-probe arrays on these so unchanged key sets are
        #: probed without a rebuild.
        self._throttle_rev = 0
        self._hot_rev = 0
        #: Shared columnar login-evidence log for **cold** rows: one
        #: append per successful login, parallel columns, chained per
        #: row through ``_log_prev``/``_ip_head`` so a single row's
        #: history can be walked without scanning the log.  Entries
        #: whose row column is -1 are tombstones left by promotion and
        #: reclaimed by :meth:`evict_expired`.
        self._log_times = array("q")
        self._log_ips = array("Q")
        self._log_rows = array("q")
        self._log_prev = array("q")
        #: Per-row head of the log chain (-1 = no cold history).
        self._ip_head = array("q")
        #: Per-row cached distinct-IP counter: an upper bound on the
        #: windowed distinct count for cold rows (never pruned down
        #: until eviction), the *exact* pruned count for hot rows.
        self._ip_distinct = array("I")
        #: Per-row first-seen IP (:data:`NO_IP` until the first
        #: successful login).  A cold login bumps the row's bound iff
        #: its source differs from this — the typical single-address
        #: account never bumps past 1, and diverse-source abuse bumps
        #: on nearly every event, which is all the bound must capture.
        self._ip_first = array("Q")
        #: Hot rows only: row -> [ring, counts] where ``ring`` is a
        #: deque of packed ``(time << 32) | ip`` ints and ``counts``
        #: the exact ip -> multiplicity map of the live window.
        self._ip_hot: dict[int, list] = {}
        #: Lifetime counters for the incremental window machinery
        #: (plain attributes, deliberately not obs metrics: the batch
        #: and scalar engines may split the work differently without
        #: moving a journal byte).
        self.ip_window_pruned = 0
        self.ip_window_promotions = 0
        self.throttle_evictions = 0
        self.ip_window_evictions = 0
        self._forwarding_hop = None  # type: ignore[assignment]
        self._batch_engine = None

    # -- provisioning --------------------------------------------------------

    def account_exists(self, local_part: str) -> bool:
        """Collision probe: is the name taken (by us or organically)?"""
        key = local_part.lower()
        return key in self._table._index or key in self._preexisting

    def provision(
        self,
        local_part: str,
        display_name: str,
        password: str,
        forwarding_address: str | None = None,
    ) -> ProvisioningResult:
        """Create one account, enforcing collisions and naming policy."""
        violation = self._policy.violation(local_part)
        if violation is not None:
            return ProvisioningResult(local_part, created=False, reason=violation)
        if self.account_exists(local_part):
            return ProvisioningResult(local_part, created=False, reason="name already taken")
        self._table.add(
            local_part,
            display_name,
            password,
            created_at=self._clock.now(),
            forwarding_address=forwarding_address,
            monitored=True,
        )
        self._grow_login_state(1)
        return ProvisioningResult(local_part, created=True)

    def register_benign_accounts(
        self, locals_lower: list[str], passwords: list[str]
    ) -> int:
        """Bulk-register the organic (benign) account population.

        These mailboxes are the haystack: full members of the provider
        — they collide with provisioning, log in, receive mail, get
        throttled and reviewed like anyone else — but they are outside
        the telemetry disclosure scope, so dumps never mention them.
        Locals must be lowercase and collision-free against the current
        table; the traffic layer mints its own ``bg...`` namespace.
        Returns the row index of the first registered account.
        """
        first_row = self._table.extend(locals_lower, passwords, self._clock.now())
        self._grow_login_state(len(locals_lower))
        return first_row

    def _grow_login_state(self, count: int) -> None:
        """Extend the row-indexed login-state columns for new rows."""
        self._ip_head.extend(repeat(-1, count))
        self._ip_distinct.frombytes(bytes(4 * count))
        self._ip_first.extend(repeat(NO_IP, count))

    def account(self, local_part: str) -> ProviderAccount | None:
        """Fetch a live account view (None if absent)."""
        row = self._table.row_of(local_part)
        return None if row is None else self._table.view(row)

    def account_count(self) -> int:
        """Number of provisioned (Tripwire-requested) accounts."""
        return self._table.monitored_count

    def total_account_count(self) -> int:
        """Every mailbox at the provider, benign population included."""
        return len(self._table)

    # -- live telemetry ------------------------------------------------------

    def login_state_sizes(self, now: SimInstant | None = None) -> dict:
        """Sparse login-state table sizes (flight snapshots).

        All sim-derived: the throttle map, hot-row set and evidence
        log are shaped by which logins occurred, never by which engine
        or executor ran them, so these sizes are safe inside
        executor-invariant snapshot bytes.
        """
        if now is None:
            now = self._clock.now()
        return {
            "accounts": len(self._table),
            "throttle_rows": len(self._throttle),
            "locked_rows": sum(
                1 for entry in self._throttle.values() if now < entry[2]
            ),
            "hot_rows": len(self._ip_hot),
            "evidence_log": len(self._log_times),
            "ip_window_pruned": self.ip_window_pruned,
            "ip_window_promotions": self.ip_window_promotions,
            "throttle_evictions": self.throttle_evictions,
            "ip_window_evictions": self.ip_window_evictions,
        }

    def batch_engine_stats(self) -> dict:
        """The batch engine's path tallies (all-zero before first use)."""
        if self._batch_engine is None:
            return {
                "windows": 0,
                "vector_committed": 0,
                "vector_failed": 0,
                "scalar_replayed": 0,
                "fallback_events": 0,
            }
        return self._batch_engine.stats()

    # -- mail ----------------------------------------------------------------

    def set_forwarding_hop(self, hop) -> None:
        """Attach the delivery callable for forwarded messages.

        ``hop`` is called with each forwarded :class:`EmailMessage`
        (re-addressed to the account's forwarding address).
        """
        self._forwarding_hop = hop

    def deliver(self, message: EmailMessage) -> bool:
        """Deliver a message addressed to ``local@domain``.

        Returns False when the account does not exist or is closed.
        Active accounts with forwarding pass a re-addressed copy to the
        forwarding hop.
        """
        local, _, domain = message.recipient.partition("@")
        if domain.lower() != self.domain:
            return False
        table = self._table
        row = table._index.get(local.lower())
        if row is None or table.states[row] == _DEACTIVATED:
            return False
        table.received_counts[row] += 1
        forward_to = table.forwarding[row]
        if forward_to and self._forwarding_hop is not None:
            self._forwarding_hop(message.with_recipient(forward_to))
        return True

    def deliver_background(self, rows: list[int]) -> int:
        """Organic mail volume: bulk-deliver to benign rows by index.

        The traffic generator's mail half — counts land on the same
        ``received_message_count`` column :meth:`deliver` uses, without
        materializing an :class:`EmailMessage` per benign message.
        Deactivated rows bounce.  Returns how many were delivered.
        """
        table = self._table
        counts = table.received_counts
        states = table.states
        delivered = 0
        for row in rows:
            if states[row] != _DEACTIVATED:
                counts[row] += 1
                delivered += 1
        return delivered

    # -- login ---------------------------------------------------------------

    def attempt_login(
        self,
        local_part: str,
        password: str,
        ip: IPv4Address,
        method: LoginMethod,
    ) -> LoginResult:
        """Authenticate; on success, record telemetry and run abuse review.

        Failed attempts are *not* recorded in telemetry — the provider
        only disclosed successes (Section 4.2).

        This is the *reference* login path: it resolves the account
        and runs :meth:`_attempt_row` — the per-row decision core every
        engine shares — then records telemetry for the success.  The
        vectorized engine (:meth:`attempt_logins`) makes these exact
        decisions over whole batches, routing anything non-trivial
        back through the same :meth:`_attempt_row`, and the
        equivalence tests hold the paths in lockstep.
        """
        now = self._clock.now()
        row = self._table.row_of(local_part)
        if row is None:
            return LoginResult.NO_SUCH_ACCOUNT
        code = self._attempt_row(row, password, ip.value, now)
        if code == 0:
            account = self._table.view(row)
            self.telemetry.record(
                LoginEvent(account.local_part, now, ip, method),
                monitored=account.monitored,
            )
        return RESULT_ORDER[code]

    def attempt_logins(self, batch, now: SimInstant | None = None):
        """Authenticate one batch window (see :mod:`..batch`).

        Lazily builds the vectorized engine on first use; the receipt's
        per-event results are identical to calling
        :meth:`attempt_login` for each event at the same instant.
        """
        if self._batch_engine is None:
            from repro.email_provider.batch import BatchLoginEngine

            self._batch_engine = BatchLoginEngine(self)
        return self._batch_engine.attempt_logins(batch, now=now)

    def _attempt_row(self, row: int, password: str, ip_int: int, now: int) -> int:
        """Authenticate one resolved row; returns a ``RESULT_ORDER`` code.

        The decision core shared verbatim by the scalar path, the
        batch engine's rare-event path and the pure-Python batch
        fallback — one implementation, so the engines cannot drift.
        Telemetry is the caller's job (the batch engine records a
        whole window at once).
        """
        throttle = self._throttle.get(row)
        if throttle is not None and now < throttle[2]:
            return 3  # THROTTLED
        state = self._table.states[row]
        if state:
            return STATE_RESULT_CODES[state]
        if password != self._table.passwords[row]:
            self._note_failure(row, now)
            return 1  # BAD_PASSWORD
        if throttle is not None:
            throttle[0] = 0
        self._note_ip(row, now, ip_int)
        self._review_after_login(row, now)
        return 0  # SUCCESS

    def _note_failure(self, row: int, now: int) -> None:
        throttle = self._throttle.get(row)
        if throttle is None:
            throttle = self._throttle[row] = [0, 0, 0]
            self._throttle_rev += 1
        if now - throttle[1] > self.BRUTE_FORCE_WINDOW:
            throttle[1] = now
            throttle[0] = 0
        throttle[0] += 1
        if throttle[0] >= self.BRUTE_FORCE_LIMIT:
            throttle[2] = now + self.BRUTE_FORCE_LOCKOUT
            throttle[0] = 0

    def _note_ip(self, row: int, now: int, ip_int: int) -> None:
        """Record one successful login's source IP for the row.

        Hot rows (ever-suspicious) maintain their exact pruned window
        incrementally — amortized O(1), each entry appended once and
        popped at most once.  Cold rows are strictly O(1): one append
        to the shared evidence log plus a first-IP comparison (every
        event from somewhere other than the row's first-seen address
        bumps the bound); no pruning happens until the cached bound
        first reaches the suspicion threshold (promotion) or eviction
        compacts the log.
        """
        hot = self._ip_hot.get(row)
        if hot is not None:
            window, counts = hot
            window.append((now << 32) | ip_int)
            counts[ip_int] = counts.get(ip_int, 0) + 1
            packed_cutoff = (now - self.SUSPICION_WINDOW) << 32
            pruned = 0
            while window[0] < packed_cutoff:
                old_ip = window.popleft() & 0xFFFFFFFF
                remaining = counts[old_ip] - 1
                if remaining:
                    counts[old_ip] = remaining
                else:
                    del counts[old_ip]
                pruned += 1
            if pruned:
                self.ip_window_pruned += pruned
            self._ip_distinct[row] = len(counts)
            return
        self._log_prev.append(self._ip_head[row])
        self._ip_head[row] = len(self._log_times)
        self._log_times.append(now)
        self._log_ips.append(ip_int)
        self._log_rows.append(row)
        first = self._ip_first[row]
        if first != ip_int:
            if first == NO_IP:
                self._ip_first[row] = ip_int
            bound = self._ip_distinct[row] + 1
            self._ip_distinct[row] = bound
            if bound >= self.SUSPICION_DISTINCT_IPS:
                self._promote_row(row, now)

    def _promote_row(self, row: int, now: int) -> None:
        """Materialize a cold row's exact window; the row becomes hot.

        Walks the row's chain through the shared log, builds the
        pruned ``(ring, counts)`` window and tombstones the chain
        entries (row column set to -1) for the next compaction.  The
        cached counter becomes exact from here on.
        """
        times = self._log_times
        ips = self._log_ips
        rows_col = self._log_rows
        prev = self._log_prev
        cutoff = now - self.SUSPICION_WINDOW
        chain = []
        i = self._ip_head[row]
        while i >= 0:
            chain.append(i)
            i = prev[i]
        window: deque = deque()
        counts: dict[int, int] = {}
        stale = 0
        for i in reversed(chain):  # chain is newest-first; replay oldest-first
            ip_i = ips[i]
            rows_col[i] = -1
            t = times[i]
            if t >= cutoff:
                window.append((t << 32) | ip_i)
                counts[ip_i] = counts.get(ip_i, 0) + 1
            else:
                stale += 1
        self._ip_head[row] = -1
        self._ip_hot[row] = [window, counts]
        self._hot_rev += 1
        self._ip_distinct[row] = len(counts)
        self.ip_window_pruned += stale
        self.ip_window_promotions += 1

    def _review_after_login(self, row: int, now: int) -> None:
        """Abuse review run after each successful login.

        Reads only the cached distinct-IP counter: below the threshold
        no review can fire (the counter never underestimates), and at
        or above it the row is necessarily hot — promotion happens the
        instant the bound reaches the threshold — so the counter is
        the exact pruned distinct count.
        """
        if self._ip_distinct[row] < self.SUSPICION_DISTINCT_IPS:
            return
        roll = self._rng.random()
        table = self._table
        if roll < self.FORCED_RESET_PROBABILITY:
            table.states[row] = _RESET_FORCED
            table.state_changed_at[row] = now
            table.password_changes.setdefault(row, []).append(now)
        elif roll < self.FORCED_RESET_PROBABILITY + self.FREEZE_PROBABILITY:
            table.states[row] = _FROZEN
            table.state_changed_at[row] = now

    def evict_expired(self, now: SimInstant | None = None) -> tuple[int, int]:
        """Drop per-login state whose windows have fully expired.

        The batch-window review's memory bound: a throttle entry is
        removable once its lockout has passed *and* its failure window
        can no longer influence a decision (no failures, or the window
        expired — the next failure would reset it anyway).  Hot rows
        are pruned and, once every entry has aged out, demoted back to
        cold; the shared log is compacted when its oldest entry has
        expired, dropping tombstones and expired entries and
        recounting the cached bounds from what remains.  Eviction is
        decision-invariant — evicted state is indistinguishable from
        never-created state — so either login engine may run it on any
        cadence without moving a byte of output.  Returns
        ``(throttle_evicted, window_evicted)`` where the second counts
        demoted hot rows plus expired log entries.
        """
        if now is None:
            now = self._clock.now()
        brute_window = self.BRUTE_FORCE_WINDOW
        stale = [
            row
            for row, (failures, window_start, locked_until) in self._throttle.items()
            if locked_until <= now
            and (failures == 0 or now - window_start > brute_window)
        ]
        for row in stale:
            del self._throttle[row]
        if stale:
            self._throttle_rev += 1
        self.throttle_evictions += len(stale)

        cutoff = now - self.SUSPICION_WINDOW
        packed_cutoff = cutoff << 32
        hot = self._ip_hot
        distinct = self._ip_distinct
        empty = []
        pruned = 0
        for row, (window, counts) in hot.items():
            if not window or window[-1] >= packed_cutoff:
                continue  # newest entry still live: nothing to drop
            while window and window[0] < packed_cutoff:
                old_ip = window.popleft() & 0xFFFFFFFF
                remaining = counts[old_ip] - 1
                if remaining:
                    counts[old_ip] = remaining
                else:
                    del counts[old_ip]
                pruned += 1
            if not window:
                empty.append(row)
        for row in empty:
            del hot[row]
            distinct[row] = 0
        if empty:
            self._hot_rev += 1
        if pruned:
            self.ip_window_pruned += pruned

        window_evicted = len(empty)
        times = self._log_times
        if times and times[0] < cutoff:
            window_evicted += self._compact_log(cutoff)
        self.ip_window_evictions += window_evicted
        return len(stale), window_evicted

    def _compact_log(self, cutoff: int) -> int:
        """Rebuild the shared log without tombstones or expired entries.

        Returns the number of *live* expired entries dropped.  Every
        cold row touched by the log gets its cached bound *recounted*
        from the entries that survive: one credit if any kept entry
        came from the row's first-seen IP, plus one per kept entry
        from anywhere else — the same rule the incremental bump
        applies, so the bound stays an overestimate of the windowed
        distinct count and the two engines agree byte-for-byte.
        """
        times = self._log_times
        ips = self._log_ips
        rows_col = self._log_rows
        head = self._ip_head
        distinct = self._ip_distinct
        firsts = self._ip_first
        for r in rows_col:
            if r >= 0:
                head[r] = -1
                distinct[r] = 0
        new_times = array("q")
        new_ips = array("Q")
        new_rows = array("q")
        new_prev = array("q")
        first_credited: set[int] = set()
        dropped = 0
        for i in range(len(times)):
            r = rows_col[i]
            if r < 0:
                continue  # promotion tombstone
            t = times[i]
            ip_i = ips[i]
            if t < cutoff:
                dropped += 1
                continue
            new_prev.append(head[r])
            head[r] = len(new_times)
            new_times.append(t)
            new_ips.append(ip_i)
            new_rows.append(r)
            if ip_i != firsts[r]:
                distinct[r] += 1
            else:
                first_credited.add(r)
        for r in first_credited:
            distinct[r] += 1
        self._log_times, self._log_ips = new_times, new_ips
        self._log_rows, self._log_prev = new_rows, new_prev
        return dropped

    def login_window_snapshot(self) -> dict[int, dict]:
        """Canonical per-row view of the IP-window state (tests/bench).

        The shared log's physical layout is engine-dependent (the
        batch engine appends a window's clean events together), so
        equivalence checks compare this canonical form: per-row entry
        sequences in login order, plus hotness and the cached counter.
        """
        out: dict[int, dict] = {}
        times = self._log_times
        ips = self._log_ips
        prev = self._log_prev
        for row in {r for r in self._log_rows if r >= 0}:
            chain = []
            i = self._ip_head[row]
            while i >= 0:
                chain.append(i)
                i = prev[i]
            out[row] = {
                "hot": False,
                "entries": [(times[i], ips[i]) for i in reversed(chain)],
                "distinct": self._ip_distinct[row],
            }
        for row, (window, counts) in self._ip_hot.items():
            out[row] = {
                "hot": True,
                "entries": [(p >> 32, p & 0xFFFFFFFF) for p in window],
                "counts": dict(counts),
                "distinct": self._ip_distinct[row],
            }
        return out

    # -- authenticated account actions (used by attackers) -------------------

    def change_password(self, local_part: str, old: str, new: str) -> bool:
        """Change the password; requires the current one."""
        account = self.account(local_part)
        if account is None or not account.can_login or account.password != old:
            return False
        account.password = new
        account.password_changes.append(self._clock.now())
        return True

    def remove_forwarding(self, local_part: str, password: str) -> bool:
        """Drop the forwarding address; requires the password."""
        account = self.account(local_part)
        if account is None or not account.can_login or account.password != password:
            return False
        account.forwarding_address = None
        return True

    def send_spam_from(self, local_part: str, password: str, count: int) -> int:
        """Send ``count`` spam messages through the account.

        Returns how many were sent before the abuse system deactivated
        the account (possibly all of them).
        """
        account = self.account(local_part)
        if account is None or not account.can_login or account.password != password:
            return 0
        sent = 0
        for _ in range(count):
            account.sent_spam_count += 1
            sent += 1
            if account.sent_spam_count >= self.SPAM_DEACTIVATION_THRESHOLD:
                account.state = AccountState.DEACTIVATED
                account.state_changed_at = self._clock.now()
                break
        return sent

    # -- support-desk account actions (used by the service operator) ----------

    def support_freeze(self, local_part: str) -> bool:
        """Freeze an active account pending review (support-desk path).

        The service daemon's account-lifecycle churn uses this: a
        long-running deployment sees its accounts frozen over time
        (Table 3: 8 of 27 actively-abused accounts) and the operator
        must notice the probe failures.  Returns False for unknown,
        deactivated or already-frozen accounts.
        """
        account = self.account(local_part)
        if account is None or account.state is not AccountState.ACTIVE:
            return False
        account.state = AccountState.FROZEN
        account.state_changed_at = self._clock.now()
        return True

    def support_reset(self, local_part: str, new_password: str) -> bool:
        """Recover a frozen/reset account through the support desk.

        The operator proves ownership out of band, sets a fresh
        password and the account returns to service — the paper's
        recovery path for accounts the provider locked.  Active
        accounts can also be rotated through it.  Deactivated accounts
        are gone for good.
        """
        account = self.account(local_part)
        if account is None or account.state is AccountState.DEACTIVATED:
            return False
        account.password = new_password
        account.password_changes.append(self._clock.now())
        account.state = AccountState.ACTIVE
        account.state_changed_at = self._clock.now()
        return True

    # -- telemetry export ------------------------------------------------------

    def collect_login_dump(self) -> list[LoginEvent]:
        """Export the sporadic login dump for all accounts (Section 4.2)."""
        return self.telemetry.collect_dump(self._clock.now())


_FROZEN = STATE_CODES[AccountState.FROZEN]
_DEACTIVATED = STATE_CODES[AccountState.DEACTIVATED]
_RESET_FORCED = STATE_CODES[AccountState.RESET_FORCED]
