"""The email provider service.

Implements the provider-facing half of Section 4.2: account
provisioning with collision and naming-policy checks, mail delivery
with forwarding, a login endpoint with brute-force throttling, abuse
handling (spam → deactivation, suspicious access → freeze or forced
reset) and the sporadic login-telemetry dumps Tripwire consumes.

The provider never learns which of its accounts were registered at
websites; nothing in this class refers to sites.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.email_provider.accounts import (
    AccountState,
    NamingPolicy,
    ProviderAccount,
    ProvisioningResult,
)
from repro.email_provider.telemetry import LoginEvent, LoginMethod, LoginTelemetry
from repro.mail.messages import EmailMessage
from repro.net.ipaddr import IPv4Address
from repro.obs import NO_OP
from repro.sim.clock import SimClock
from repro.util.rngtree import RngTree
from repro.util.timeutil import DAY, HOUR


class LoginResult(enum.Enum):
    """Outcome of a login attempt."""

    SUCCESS = "success"
    BAD_PASSWORD = "bad_password"
    NO_SUCH_ACCOUNT = "no_such_account"
    THROTTLED = "throttled"  # brute-force protection kicked in
    ACCOUNT_FROZEN = "account_frozen"
    ACCOUNT_DEACTIVATED = "account_deactivated"
    RESET_REQUIRED = "reset_required"


@dataclass
class _ThrottleState:
    failures: int = 0
    window_start: int = 0
    locked_until: int = 0


class EmailProvider:
    """A major email provider with hundreds of millions of accounts.

    Tripwire accounts are treated "equivalently to their hundreds of
    millions of other accounts" (Section 4.4); all protective machinery
    here applies uniformly.
    """

    #: Failed attempts inside the window before throttling engages.
    BRUTE_FORCE_LIMIT = 10
    BRUTE_FORCE_WINDOW = 1 * HOUR
    BRUTE_FORCE_LOCKOUT = 6 * HOUR

    #: Spam messages sent before the abuse team deactivates an account.
    SPAM_DEACTIVATION_THRESHOLD = 40

    #: Distinct source IPs within the suspicion window that may trigger
    #: a freeze review.  Calibrated so roughly a quarter to a third of
    #: actively-abused accounts end up frozen (Table 3: 8 of 27).
    SUSPICION_DISTINCT_IPS = 70
    SUSPICION_WINDOW = 30 * DAY
    FREEZE_PROBABILITY = 0.05
    FORCED_RESET_PROBABILITY = 0.005

    def __init__(
        self,
        domain: str,
        clock: SimClock,
        rng_tree: RngTree,
        naming_policy: NamingPolicy | None = None,
        retention_days: int = 60,
        preexisting_locals: frozenset[str] = frozenset(),
        obs=NO_OP,
    ):
        self.domain = domain.lower()
        self._clock = clock
        self._rng = rng_tree.child("email-provider").rng()
        self._policy = naming_policy or NamingPolicy()
        self._accounts: dict[str, ProviderAccount] = {}
        self._preexisting = {name.lower() for name in preexisting_locals}
        self.telemetry = LoginTelemetry(retention_days=retention_days, obs=obs)
        self._throttle: dict[str, _ThrottleState] = {}
        self._recent_ips: dict[str, list[tuple[int, IPv4Address]]] = {}
        self._forwarding_hop = None  # type: ignore[assignment]

    # -- provisioning --------------------------------------------------------

    def account_exists(self, local_part: str) -> bool:
        """Collision probe: is the name taken (by us or organically)?"""
        key = local_part.lower()
        return key in self._accounts or key in self._preexisting

    def provision(
        self,
        local_part: str,
        display_name: str,
        password: str,
        forwarding_address: str | None = None,
    ) -> ProvisioningResult:
        """Create one account, enforcing collisions and naming policy."""
        violation = self._policy.violation(local_part)
        if violation is not None:
            return ProvisioningResult(local_part, created=False, reason=violation)
        if self.account_exists(local_part):
            return ProvisioningResult(local_part, created=False, reason="name already taken")
        account = ProviderAccount(
            local_part=local_part,
            display_name=display_name,
            password=password,
            created_at=self._clock.now(),
            forwarding_address=forwarding_address,
        )
        self._accounts[local_part.lower()] = account
        return ProvisioningResult(local_part, created=True)

    def account(self, local_part: str) -> ProviderAccount | None:
        """Fetch an account record (None if absent)."""
        return self._accounts.get(local_part.lower())

    def account_count(self) -> int:
        """Number of provisioned (Tripwire-requested) accounts."""
        return len(self._accounts)

    # -- mail ----------------------------------------------------------------

    def set_forwarding_hop(self, hop) -> None:
        """Attach the delivery callable for forwarded messages.

        ``hop`` is called with each forwarded :class:`EmailMessage`
        (re-addressed to the account's forwarding address).
        """
        self._forwarding_hop = hop

    def deliver(self, message: EmailMessage) -> bool:
        """Deliver a message addressed to ``local@domain``.

        Returns False when the account does not exist or is closed.
        Active accounts with forwarding pass a re-addressed copy to the
        forwarding hop.
        """
        local, _, domain = message.recipient.partition("@")
        if domain.lower() != self.domain:
            return False
        account = self._accounts.get(local.lower())
        if account is None or account.state is AccountState.DEACTIVATED:
            return False
        account.received_message_count += 1
        if account.forwarding_address and self._forwarding_hop is not None:
            self._forwarding_hop(message.with_recipient(account.forwarding_address))
        return True

    # -- login ---------------------------------------------------------------

    def attempt_login(
        self,
        local_part: str,
        password: str,
        ip: IPv4Address,
        method: LoginMethod,
    ) -> LoginResult:
        """Authenticate; on success, record telemetry and run abuse review.

        Failed attempts are *not* recorded in telemetry — the provider
        only disclosed successes (Section 4.2).
        """
        now = self._clock.now()
        key = local_part.lower()
        account = self._accounts.get(key)
        if account is None:
            return LoginResult.NO_SUCH_ACCOUNT

        throttle = self._throttle.setdefault(key, _ThrottleState())
        if now < throttle.locked_until:
            return LoginResult.THROTTLED

        if account.state is AccountState.DEACTIVATED:
            return LoginResult.ACCOUNT_DEACTIVATED
        if account.state is AccountState.FROZEN:
            return LoginResult.ACCOUNT_FROZEN
        if account.state is AccountState.RESET_FORCED:
            return LoginResult.RESET_REQUIRED

        if password != account.password:
            self._note_failure(throttle, now)
            return LoginResult.BAD_PASSWORD

        throttle.failures = 0
        self.telemetry.record(LoginEvent(account.local_part, now, ip, method))
        self._note_ip(key, now, ip)
        self._review_after_login(account, key)
        return LoginResult.SUCCESS

    def _note_failure(self, throttle: _ThrottleState, now: int) -> None:
        if now - throttle.window_start > self.BRUTE_FORCE_WINDOW:
            throttle.window_start = now
            throttle.failures = 0
        throttle.failures += 1
        if throttle.failures >= self.BRUTE_FORCE_LIMIT:
            throttle.locked_until = now + self.BRUTE_FORCE_LOCKOUT
            throttle.failures = 0

    def _note_ip(self, key: str, now: int, ip: IPv4Address) -> None:
        window = self._recent_ips.setdefault(key, [])
        window.append((now, ip))
        cutoff = now - self.SUSPICION_WINDOW
        self._recent_ips[key] = [(t, a) for t, a in window if t >= cutoff]

    def _review_after_login(self, account: ProviderAccount, key: str) -> None:
        """Abuse review run after each successful login."""
        distinct_ips = {a for _t, a in self._recent_ips.get(key, [])}
        if len(distinct_ips) < self.SUSPICION_DISTINCT_IPS:
            return
        roll = self._rng.random()
        if roll < self.FORCED_RESET_PROBABILITY:
            account.state = AccountState.RESET_FORCED
            account.state_changed_at = self._clock.now()
            account.password_changes.append(self._clock.now())
        elif roll < self.FORCED_RESET_PROBABILITY + self.FREEZE_PROBABILITY:
            account.state = AccountState.FROZEN
            account.state_changed_at = self._clock.now()

    # -- authenticated account actions (used by attackers) -------------------

    def change_password(self, local_part: str, old: str, new: str) -> bool:
        """Change the password; requires the current one."""
        account = self._accounts.get(local_part.lower())
        if account is None or not account.can_login or account.password != old:
            return False
        account.password = new
        account.password_changes.append(self._clock.now())
        return True

    def remove_forwarding(self, local_part: str, password: str) -> bool:
        """Drop the forwarding address; requires the password."""
        account = self._accounts.get(local_part.lower())
        if account is None or not account.can_login or account.password != password:
            return False
        account.forwarding_address = None
        return True

    def send_spam_from(self, local_part: str, password: str, count: int) -> int:
        """Send ``count`` spam messages through the account.

        Returns how many were sent before the abuse system deactivated
        the account (possibly all of them).
        """
        account = self._accounts.get(local_part.lower())
        if account is None or not account.can_login or account.password != password:
            return 0
        sent = 0
        for _ in range(count):
            account.sent_spam_count += 1
            sent += 1
            if account.sent_spam_count >= self.SPAM_DEACTIVATION_THRESHOLD:
                account.state = AccountState.DEACTIVATED
                account.state_changed_at = self._clock.now()
                break
        return sent

    # -- support-desk account actions (used by the service operator) ----------

    def support_freeze(self, local_part: str) -> bool:
        """Freeze an active account pending review (support-desk path).

        The service daemon's account-lifecycle churn uses this: a
        long-running deployment sees its accounts frozen over time
        (Table 3: 8 of 27 actively-abused accounts) and the operator
        must notice the probe failures.  Returns False for unknown,
        deactivated or already-frozen accounts.
        """
        account = self._accounts.get(local_part.lower())
        if account is None or account.state is not AccountState.ACTIVE:
            return False
        account.state = AccountState.FROZEN
        account.state_changed_at = self._clock.now()
        return True

    def support_reset(self, local_part: str, new_password: str) -> bool:
        """Recover a frozen/reset account through the support desk.

        The operator proves ownership out of band, sets a fresh
        password and the account returns to service — the paper's
        recovery path for accounts the provider locked.  Active
        accounts can also be rotated through it.  Deactivated accounts
        are gone for good.
        """
        account = self._accounts.get(local_part.lower())
        if account is None or account.state is AccountState.DEACTIVATED:
            return False
        account.password = new_password
        account.password_changes.append(self._clock.now())
        account.state = AccountState.ACTIVE
        account.state_changed_at = self._clock.now()
        return True

    # -- telemetry export ------------------------------------------------------

    def collect_login_dump(self) -> list[LoginEvent]:
        """Export the sporadic login dump for all accounts (Section 4.2)."""
        return self.telemetry.collect_dump(self._clock.now())
