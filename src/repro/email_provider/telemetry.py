"""Login telemetry: the provider's successful-login records.

The provider discloses **successful logins only** — timestamp, remote
IP and access method — in sporadic dumps (Section 4.2).  Records expire
after a retention window; the paper lost March 20 – June 1, 2015 to
exactly this (Figure 2's shaded gap), which :class:`LoginTelemetry`
reproduces when dumps are collected too far apart.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.net.ipaddr import IPv4Address
from repro.obs import NO_OP
from repro.util.timeutil import DAY, SimInstant


class LoginMethod(enum.Enum):
    """Access protocol used for a successful login."""

    IMAP = "IMAP"
    POP3 = "POP3"
    WEBMAIL = "WEB"
    SMTP = "SMTP"
    ACTIVESYNC = "ACTIVESYNC"


@dataclass(frozen=True)
class LoginEvent:
    """One successful login to a provider account."""

    local_part: str
    time: SimInstant
    ip: IPv4Address
    method: LoginMethod

    def anonymized(self) -> tuple[str, SimInstant, str, str]:
        """The released-data granularity (§7.4): day, /24, method."""
        day = self.time - (self.time % DAY)
        return (self.local_part, day, str(self.ip.slash24()), self.method.value)


class LoginTelemetry:
    """Append-only login log with bounded retention.

    Batch runs keep every event for ground-truth comparison.  A
    continuously-operating daemon cannot — two sim-years of logins is
    unbounded ballast — so :meth:`prune_exported` drops events that
    both fell out of the retention window *and* were covered by a past
    dump, exactly the records a real provider would have expired.
    Pruning never changes what any future dump returns.
    """

    def __init__(self, retention_days: int = 60, obs=NO_OP):
        if retention_days < 1:
            raise ValueError("retention must be at least one day")
        self.retention_days = retention_days
        self._obs = obs
        self._log = obs.get_logger("provider.telemetry")
        self._events: list[LoginEvent] = []
        self._last_collected: SimInstant | None = None
        self._lost_windows: list[tuple[SimInstant, SimInstant]] = []
        self.pruned_count = 0
        self._last_recorded: SimInstant | None = None

    def record(self, event: LoginEvent) -> None:
        """Record one successful login (events arrive in time order)."""
        if self._last_recorded is not None and event.time < self._last_recorded:
            raise ValueError("login events must be recorded in time order")
        self._events.append(event)
        self._last_recorded = event.time
        self._obs.count("telemetry.logins_recorded")

    def _retained_since(self, now: SimInstant) -> SimInstant:
        return now - self.retention_days * DAY

    def collect_dump(self, now: SimInstant) -> list[LoginEvent]:
        """Export all retained events not included in a previous dump.

        If the previous collection was more than ``retention_days`` ago,
        the uncovered interval is *lost* — recorded in
        :meth:`lost_windows` and absent from every future dump.
        """
        with self._obs.span("telemetry.collect_dump"):
            horizon = self._retained_since(now)
            since = self._last_collected if self._last_collected is not None else 0
            if since < horizon:
                if any(since < e.time <= horizon for e in self._events):
                    self._lost_windows.append((since, horizon))
                    self._obs.count("telemetry.windows_lost")
                    self._log.info(
                        "retention window lost", since=since, horizon=horizon
                    )
                since = horizon
            dump = [e for e in self._events if since < e.time <= now]
            self._last_collected = now
            self._obs.count("telemetry.dumps_collected")
            self._obs.count("telemetry.events_exported", len(dump))
        return dump

    def lost_windows(self) -> list[tuple[SimInstant, SimInstant]]:
        """Intervals whose events expired before any dump covered them."""
        return list(self._lost_windows)

    def prune_exported(self, now: SimInstant) -> int:
        """Drop events past retention that a previous dump already covered.

        The continuous-operation memory bound: events are removable
        once no future :meth:`collect_dump` can return them — they are
        older than the retention horizon *and* at or before the last
        collection watermark (uncollected expired events stay until the
        next dump notices the lost window).  Returns how many events
        were dropped; :attr:`pruned_count` accumulates across calls.
        """
        if self._last_collected is None:
            return 0
        cutoff = min(self._retained_since(now), self._last_collected)
        kept = [e for e in self._events if e.time > cutoff]
        dropped = len(self._events) - len(kept)
        if dropped:
            self._events = kept
            self.pruned_count += dropped
            self._obs.count("telemetry.events_pruned", dropped)
        return dropped

    @property
    def retained_count(self) -> int:
        """Events currently held in memory."""
        return len(self._events)

    def all_events_ground_truth(self) -> list[LoginEvent]:
        """Every event ever recorded — simulation ground truth only.

        The measurement side must never read this; it exists so tests
        and analyses can compare what Tripwire saw against what
        actually happened (e.g. logins inside the retention gap).
        Under :meth:`prune_exported` (service mode) the ground truth is
        truncated to what is still retained — :attr:`pruned_count`
        says how much history was dropped.
        """
        return list(self._events)
