"""Login telemetry: the provider's successful-login records.

The provider discloses **successful logins only** — timestamp, remote
IP and access method — in sporadic dumps (Section 4.2).  Records expire
after a retention window; the paper lost March 20 – June 1, 2015 to
exactly this (Figure 2's shaded gap), which :class:`LoginTelemetry`
reproduces when dumps are collected too far apart.

Storage is columnar (struct-of-arrays): parallel ``local``/``time``/
``ip``/``method`` columns instead of one :class:`LoginEvent` object
per login.  Under the heavy-traffic login front-end the log holds the
*whole* provider's successes — millions of benign logins per sim-day
around a handful of honey-account events — and three operations must
stay cheap at that scale:

- **append** — :meth:`record_batch` bulk-extends the columns with one
  bounds check per batch (the per-event :meth:`record` remains for the
  scalar path);
- **dump extraction** — timestamps are recorded in order, so
  :meth:`collect_dump` binary-searches the window instead of scanning
  the entire log, then materializes :class:`LoginEvent` objects only
  for the rows inside the *disclosure scope* (Section 4.2: the
  provider reports on the accounts Tripwire asked about, marked by the
  ``monitored`` column — the needle sifted from the haystack);
- **retention pruning** — :meth:`prune_exported` drops a front slice
  of the columns via the same binary search.
"""

from __future__ import annotations

import enum
from array import array
from bisect import bisect_right
from dataclasses import dataclass

from repro.net.ipaddr import IPv4Address
from repro.obs import NO_OP
from repro.util.timeutil import DAY, SimInstant


class LoginMethod(enum.Enum):
    """Access protocol used for a successful login."""

    IMAP = "IMAP"
    POP3 = "POP3"
    WEBMAIL = "WEB"
    SMTP = "SMTP"
    ACTIVESYNC = "ACTIVESYNC"


#: Column encoding of :class:`LoginMethod` (definition order).  Batch
#: producers ship method *codes*; the scalar path maps through these.
METHOD_ORDER: tuple[LoginMethod, ...] = tuple(LoginMethod)
METHOD_CODES: dict[LoginMethod, int] = {m: i for i, m in enumerate(METHOD_ORDER)}


@dataclass(frozen=True)
class LoginEvent:
    """One successful login to a provider account."""

    local_part: str
    time: SimInstant
    ip: IPv4Address
    method: LoginMethod

    def anonymized(self) -> tuple[str, SimInstant, str, str]:
        """The released-data granularity (§7.4): day, /24, method."""
        day = self.time - (self.time % DAY)
        return (self.local_part, day, str(self.ip.slash24()), self.method.value)


class LoginTelemetry:
    """Append-only columnar login log with bounded retention.

    Batch runs keep every event for ground-truth comparison.  A
    continuously-operating daemon cannot — two sim-years of logins is
    unbounded ballast, and with benign traffic the log grows by
    millions of rows per sim-day — so :meth:`prune_exported` drops
    events that both fell out of the retention window *and* were
    covered by a past dump, exactly the records a real provider would
    have expired.  Pruning never changes what any future dump returns.
    """

    def __init__(self, retention_days: int = 60, obs=NO_OP):
        if retention_days < 1:
            raise ValueError("retention must be at least one day")
        self.retention_days = retention_days
        self._obs = obs
        self._log = obs.get_logger("provider.telemetry")
        self._locals: list[str] = []
        self._times = array("q")
        self._ips = array("Q")
        self._methods = bytearray()
        self._monitored = bytearray()
        self._last_collected: SimInstant | None = None
        self._lost_windows: list[tuple[SimInstant, SimInstant]] = []
        self.pruned_count = 0
        self._last_recorded: SimInstant | None = None

    # -- append side -------------------------------------------------------

    def record(self, event: LoginEvent, monitored: bool = True) -> None:
        """Record one successful login (events arrive in time order)."""
        if self._last_recorded is not None and event.time < self._last_recorded:
            raise ValueError("login events must be recorded in time order")
        self._locals.append(event.local_part)
        self._times.append(event.time)
        self._ips.append(event.ip.value)
        self._methods.append(METHOD_CODES[event.method])
        self._monitored.append(1 if monitored else 0)
        self._last_recorded = event.time
        self._obs.count("telemetry.logins_recorded")

    def record_batch(
        self,
        locals_: list[str],
        time: SimInstant,
        ips: array,
        method_codes: bytearray,
        monitored: bytearray,
    ) -> int:
        """Bulk-record one batch window's successes, all stamped ``time``.

        The batch engine's append path: one ordering check and one
        counter bump for the whole batch instead of per event.  Columns
        must be parallel (same length); ``ips`` holds 32-bit integers
        and ``method_codes`` positions into :data:`METHOD_ORDER`.
        """
        n = len(locals_)
        if not n:
            return 0
        if len(ips) != n or len(method_codes) != n or len(monitored) != n:
            raise ValueError("batch columns must be parallel")
        if self._last_recorded is not None and time < self._last_recorded:
            raise ValueError("login events must be recorded in time order")
        self._locals.extend(locals_)
        self._times.extend(array("q", [time]) * n)
        self._ips.extend(ips)
        self._methods.extend(method_codes)
        self._monitored.extend(monitored)
        self._last_recorded = time
        self._obs.count("telemetry.logins_recorded", n)
        return n

    # -- dump side ---------------------------------------------------------

    def _retained_since(self, now: SimInstant) -> SimInstant:
        return now - self.retention_days * DAY

    def collect_dump(self, now: SimInstant) -> list[LoginEvent]:
        """Export retained in-scope events not included in a previous dump.

        If the previous collection was more than ``retention_days`` ago,
        the uncovered interval is *lost* — recorded in
        :meth:`lost_windows` and absent from every future dump.  Only
        rows in the disclosure scope (``monitored``) are materialized;
        the benign population's logins stay the provider's business.
        """
        with self._obs.span("telemetry.collect_dump"):
            times = self._times
            horizon = self._retained_since(now)
            since = self._last_collected if self._last_collected is not None else 0
            if since < horizon:
                if bisect_right(times, since) < bisect_right(times, horizon):
                    self._lost_windows.append((since, horizon))
                    self._obs.count("telemetry.windows_lost")
                    self._log.info(
                        "retention window lost", since=since, horizon=horizon
                    )
                since = horizon
            start = bisect_right(times, since)
            stop = bisect_right(times, now)
            locals_, ips, methods = self._locals, self._ips, self._methods
            flags = self._monitored
            dump = [
                LoginEvent(
                    locals_[i], times[i], IPv4Address(ips[i]),
                    METHOD_ORDER[methods[i]],
                )
                for i in range(start, stop)
                if flags[i]
            ]
            self._last_collected = now
            self._obs.count("telemetry.dumps_collected")
            self._obs.count("telemetry.events_exported", len(dump))
        return dump

    def lost_windows(self) -> list[tuple[SimInstant, SimInstant]]:
        """Intervals whose events expired before any dump covered them."""
        return list(self._lost_windows)

    def prune_exported(self, now: SimInstant) -> int:
        """Drop events past retention that a previous dump already covered.

        The continuous-operation memory bound: events are removable
        once no future :meth:`collect_dump` can return them — they are
        older than the retention horizon *and* at or before the last
        collection watermark (uncollected expired events stay until the
        next dump notices the lost window).  Returns how many events
        were dropped; :attr:`pruned_count` accumulates across calls.
        """
        if self._last_collected is None:
            return 0
        cutoff = min(self._retained_since(now), self._last_collected)
        dropped = bisect_right(self._times, cutoff)
        if dropped:
            del self._locals[:dropped]
            del self._times[:dropped]
            del self._ips[:dropped]
            del self._methods[:dropped]
            del self._monitored[:dropped]
            self.pruned_count += dropped
            self._obs.count("telemetry.events_pruned", dropped)
        return dropped

    @property
    def retained_count(self) -> int:
        """Events currently held in memory (all accounts)."""
        return len(self._times)

    def columns(self) -> tuple[list[str], array, array, bytearray, bytearray]:
        """The raw retained columns (locals, times, ips, methods, scope).

        Equality checks at heavy-traffic scale compare these directly —
        two telemetry logs are identical iff their columns are — without
        materializing millions of :class:`LoginEvent` objects.
        """
        return (self._locals, self._times, self._ips, self._methods,
                self._monitored)

    def all_events_ground_truth(self) -> list[LoginEvent]:
        """Every event ever recorded — simulation ground truth only.

        The measurement side must never read this; it exists so tests
        and analyses can compare what Tripwire saw against what
        actually happened (e.g. logins inside the retention gap).
        Under :meth:`prune_exported` (service mode) the ground truth is
        truncated to what is still retained — :attr:`pruned_count`
        says how much history was dropped.
        """
        return [
            LoginEvent(
                self._locals[i], self._times[i], IPv4Address(self._ips[i]),
                METHOD_ORDER[self._methods[i]],
            )
            for i in range(len(self._times))
        ]
