"""Submission-response heuristics (Figure 1's "submission checks").

After POSTing a registration, the crawler inspects the landing page:
explicit success copy → OK; explicit error copy or a re-rendered
registration form → heuristics failed; anything else is ambiguous, and
the crawler optimistically reports OK — the mechanism behind Table 1's
59%-valid "OK submission" bucket.
"""

from __future__ import annotations

import enum
import re

from repro.html.browser import Page

_SUCCESS_PATTERNS = tuple(
    re.compile(p, re.IGNORECASE)
    for p in (
        r"registration.{0,20}successful",
        r"success(fully)?\b",
        r"welcome\s+aboard",
        r"account.{0,20}(created|ready)",
        r"thank.{0,10}for.{0,10}(registering|signing)",
    )
)

_ERROR_PATTERNS = tuple(
    re.compile(p, re.IGNORECASE)
    for p in (
        r"\berror\b",
        r"problem.{0,20}(submission|registration)",
        r"(invalid|incorrect)\b",
        r"try\s+again",
        r"(field|password|email).{0,20}(required|missing)",
    )
)

_VERIFY_HINT_PATTERNS = tuple(
    re.compile(p, re.IGNORECASE)
    for p in (
        r"check.{0,12}(your)?.{0,5}e.?mail",
        r"confirmation.{0,12}(sent|e.?mail)",
        r"verify.{0,12}e.?mail",
    )
)


class SubmissionVerdict(enum.Enum):
    """What the crawler concludes from the landing page."""

    SUCCESS = "success"
    FAILURE = "failure"
    AMBIGUOUS_OK = "ambiguous_ok"  # nothing conclusive; reported as OK


def judge_submission_response(page: Page, packs: tuple = ()) -> SubmissionVerdict:
    """Classify a post-submission landing page.

    ``packs`` extends the keyword lists with language-pack vocabulary.
    """
    text = page.visible_text()
    error_patterns = list(_ERROR_PATTERNS)
    success_patterns = list(_SUCCESS_PATTERNS)
    for pack in packs:
        error_patterns.extend(pack.error_patterns)
        success_patterns.extend(pack.success_patterns)
    if any(p.search(text) for p in error_patterns):
        return SubmissionVerdict.FAILURE
    if any(p.search(text) for p in success_patterns):
        return SubmissionVerdict.SUCCESS
    if any(p.search(text) for p in _VERIFY_HINT_PATTERNS):
        return SubmissionVerdict.AMBIGUOUS_OK
    # A page that still shows a fillable registration-like form usually
    # means the submission bounced back — or that the flow continues on
    # another page the crawler does not support (multi-stage forms,
    # §6.2.2/§7.2); either way the crawler treats it as failure.
    for form in page.forms():
        visible = form.visible_fields()
        if any(f.input_type == "password" for f in visible):
            return SubmissionVerdict.FAILURE
        if sum(1 for f in visible if f.is_text_like) >= 2:
            return SubmissionVerdict.FAILURE
    return SubmissionVerdict.AMBIGUOUS_OK
