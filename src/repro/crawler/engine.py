"""The crawler engine: Figure 1's control flow end to end.

Given a URL and an identity, the engine loads the page through a proxy
IP never before used against that site, applies the language gate,
locates the registration form (following at most a few candidate
links), fills it serially, submits, and classifies the outcome.  Page
loads are rate-limited to at least one per three seconds plus
processing delays — the ethics constraint of Section 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random
from typing import TYPE_CHECKING

from repro.crawler.captcha import CaptchaSolverService
from repro.crawler.checks import SubmissionVerdict, judge_submission_response
from repro.crawler.fields import FieldMeaning, classify_field
from repro.crawler.formfill import FillPlan, plan_form_fill
from repro.crawler.langpacks import packs_for
from repro.crawler.language import detect_language, looks_english
from repro.crawler.links import rank_registration_links
from repro.crawler.outcomes import CrawlOutcome, TerminationCode
from repro.html.browser import Browser, BrowserError, Page
from repro.html.forms import FormModel
from repro.identity.records import Identity
from repro.net.proxies import ProxyPoolExhausted, ResearchProxyPool
from repro.obs import NO_OP
from repro.sim.protocols import TransportLike
from repro.util.timeutil import SimInstant
from urllib.parse import urlsplit, urlunsplit

if TYPE_CHECKING:
    from repro.faults.report import FaultReport
    from repro.faults.retry import RetryPolicy


@dataclass
class CrawlerConfig:
    """Operational knobs for the crawler.

    Two distinct failure families flow through these fields and must
    not be conflated (they once were):

    - *transient* failures — ``system_error_rate`` models the headless
      browser crashing mid-crawl; injected network flaps land here too.
      These finish as :attr:`TerminationCode.SYSTEM_ERROR` and are the
      only codes a retry policy may re-attempt.
    - *permanent* budget exhaustion — ``max_pages`` (the hard per-attempt
      page budget, an ethics constraint) and proxy-pool exhaustion.
      These finish as :attr:`TerminationCode.BUDGET_EXHAUSTED` and are
      never retried: the budget they consumed does not come back.

    Retries are budget-aware: the page counter persists across retries
    of one attempt, so a retry storm can never exceed ``max_pages``
    loads against a site, and each backoff wait is at least
    ``min_page_delay`` (the §3 rate limit holds under chaos too).
    """

    min_page_delay: int = 3  # seconds between page loads (ethics, §3)
    max_processing_delay: int = 9  # additional think time per page
    max_link_tries: int = 3  # candidate registration links to click
    max_pages: int = 8  # hard page budget per attempt (permanent on exhaustion)
    prefer_https: bool = True  # use HTTPS when the site presents a cert
    system_error_rate: float = 0.10  # transient headless-browser crash probability
    #: §7.2 extension: language codes (beyond English) the crawler may
    #: attempt, using the corresponding language packs.  Empty set =
    #: the paper's English-only pilot behavior.
    enabled_languages: frozenset[str] = field(default_factory=frozenset)


class RegistrationCrawler:
    """Automated best-effort account registrar."""

    def __init__(
        self,
        transport: TransportLike,
        solver: CaptchaSolverService | None,
        rng: Random,
        config: CrawlerConfig | None = None,
        proxy_pool: ResearchProxyPool | None = None,
        search_engine=None,
        retry_policy: "RetryPolicy | None" = None,
        fault_report: "FaultReport | None" = None,
        obs=NO_OP,
    ):
        self._transport = transport
        self._solver = solver
        self._rng = rng
        self.config = config or CrawlerConfig()
        self._proxy_pool = proxy_pool
        self._obs = obs
        #: §6.2.2 extension: a :class:`repro.search.SearchEngine` used
        #: as a fallback for locating registration pages.  None keeps
        #: the paper's behavior.
        self._search = search_engine
        #: Backoff applied to transient (``code.retryable``) failures.
        #: None — the paper's behavior — means every failure is final.
        self._retry_policy = retry_policy
        self._fault_report = fault_report

    # -- public API ---------------------------------------------------------------

    def register_at(self, url: str, identity: Identity) -> CrawlOutcome:
        """Attempt one registration; always returns a terminal outcome.

        With a retry policy, transient exits are re-attempted under
        capped exponential backoff.  Crawl state — most importantly the
        page budget and the credential-exposure flags — persists across
        retries, so the ethics budget and the burn decision both see
        the attempt as one unit.
        """
        host = (urlsplit(url).hostname or "").lower()
        started = self._transport.clock.now()
        state = _CrawlState(host=host, url=url, started=started)

        with self._obs.span("crawl.attempt", host=host):
            outcome = self._register_with_retries(url, identity, state)
        self._obs.count("outcome." + outcome.code.value)
        return outcome

    def _register_with_retries(
        self, url: str, identity: Identity, state: "_CrawlState"
    ) -> CrawlOutcome:
        outcome = self._attempt_once(url, identity, state)
        if self._retry_policy is None:
            return outcome
        backoff = 0
        for retry_index in range(self._retry_policy.retries):
            if not outcome.code.retryable:
                return outcome
            if state.pages_loaded >= self.config.max_pages:
                break  # no budget left to retry with
            backoff = max(
                backoff,
                self._retry_policy.delay_for(
                    retry_index, self._rng, metrics=self._obs.metrics
                ),
            )
            self._transport.clock.advance(max(backoff, self.config.min_page_delay))
            if self._fault_report is not None:
                self._fault_report.crawler_retries += 1
            self._obs.count("retry.crawler_retries")
            outcome = self._attempt_once(url, identity, state)
        if outcome.code.retryable:
            if self._fault_report is not None:
                self._fault_report.crawler_gave_up += 1
            self._obs.count("retry.crawler_gave_up")
        return outcome

    def _attempt_once(self, url: str, identity: Identity, state: "_CrawlState") -> CrawlOutcome:
        try:
            return self._run(url, identity, state)
        except ProxyPoolExhausted:
            return state.finish(self._transport, TerminationCode.BUDGET_EXHAUSTED,
                                detail="proxy pool exhausted for site")
        except BrowserError as exc:
            return state.finish(self._transport, TerminationCode.SYSTEM_ERROR,
                                detail=f"browser error: {exc}")

    # -- control flow -------------------------------------------------------------

    def _run(self, url: str, identity: Identity, state: "_CrawlState") -> CrawlOutcome:
        if self._rng.random() < self.config.system_error_rate / 2:
            return state.finish(self._transport, TerminationCode.SYSTEM_ERROR,
                                detail="headless browser crashed")

        client_ip = None
        if self._proxy_pool is not None:
            client_ip = self._proxy_pool.acquire_for_site(state.host)
        browser = Browser(self._transport, client_ip=client_ip)

        # Figure 1, stage by stage; each stage is one span (a return
        # inside the ``with`` still closes the span at the sim instant
        # the stage actually ended).
        with self._obs.span("crawl.find_page"):
            page = self._load(browser, self._preferred_scheme(url, state.host), state)
            if page is None or not page.ok:
                return state.finish(self._transport, TerminationCode.SYSTEM_ERROR,
                                    detail="homepage load failed")

            packs: tuple = ()
            if not looks_english(page.dom):
                language = detect_language(page.dom)
                if language in self.config.enabled_languages:
                    packs = packs_for({language})
                if not packs:
                    return state.finish(self._transport, TerminationCode.NOT_ENGLISH,
                                        detail=f"unsupported language ({language})")

        with self._obs.span("crawl.locate_form"):
            form = self._find_registration_form(page, packs)
            tried_links = 0
            while form is None and tried_links < self.config.max_link_tries:
                candidates = rank_registration_links(page.links(), packs=packs)
                if tried_links >= len(candidates):
                    break
                candidate = candidates[tried_links]
                tried_links += 1
                next_page = self._load(browser, candidate.url, state)
                if next_page is None or not next_page.ok:
                    continue
                page = next_page
                form = self._find_registration_form(page, packs)

            if form is None and self._search is not None:
                # §6.2.2 extension: ask a search engine where the
                # registration page lives.
                hint = self._search.find_registration_page(state.host)
                if hint is not None:
                    hint_page = self._load(browser, hint, state)
                    if hint_page is not None and hint_page.ok:
                        page = hint_page
                        form = self._find_registration_form(page, packs)

            if form is None:
                return state.finish(self._transport, TerminationCode.NO_REGISTRATION_FOUND,
                                    detail=f"no form after {tried_links} link clicks")

        with self._obs.span("crawl.classify_fields"):
            if not self._asks_for_email_and_password(form, packs):
                return state.finish(self._transport, TerminationCode.REQUIRED_FIELDS_MISSING,
                                    detail="form lacks email and password together")

        with self._obs.span("crawl.fill_form"):
            plan = plan_form_fill(form, identity, solver=self._solver, packs=packs)
            state.absorb_plan(plan)
            if plan.aborted:
                return state.finish(self._transport, TerminationCode.REQUIRED_FIELDS_MISSING,
                                    detail=plan.abort_reason)

        # Crashes strike mid-crawl too — after the form was filled but
        # before (or while) submitting, leaving the identity exposed.
        if self._rng.random() < self.config.system_error_rate:
            return state.finish(self._transport, TerminationCode.SYSTEM_ERROR,
                                detail="headless browser crashed during submission")

        with self._obs.span("crawl.submit"):
            self._think_delay()
            if state.pages_loaded >= self.config.max_pages:
                return state.finish(self._transport, TerminationCode.BUDGET_EXHAUSTED,
                                    detail="page budget exhausted")
            landing = browser.submit_form(form, plan.values)
            state.pages_loaded += 1

        with self._obs.span("crawl.classify_outcome"):
            verdict = judge_submission_response(landing, packs=packs)
            if verdict is SubmissionVerdict.FAILURE:
                return state.finish(self._transport, TerminationCode.SUBMISSION_HEURISTICS_FAILED,
                                    detail="landing page signals failure")
            detail = ("landing page signals success"
                      if verdict is SubmissionVerdict.SUCCESS else "landing page ambiguous")
            return state.finish(self._transport, TerminationCode.OK_SUBMISSION, detail=detail)

    # -- helpers ------------------------------------------------------------------

    def _preferred_scheme(self, url: str, host: str) -> str:
        if not self.config.prefer_https or not self._transport.supports_https(host):
            return url
        parts = urlsplit(url)
        return urlunsplit(("https", parts.netloc, parts.path, parts.query, parts.fragment))

    def _think_delay(self) -> None:
        delay = self.config.min_page_delay + self._rng.randrange(
            0, self.config.max_processing_delay + 1
        )
        self._transport.clock.advance(delay)

    def _load(self, browser: Browser, url: str, state: "_CrawlState") -> Page | None:
        if state.pages_loaded >= self.config.max_pages:
            return None
        self._think_delay()
        try:
            page = browser.load(url)
        except BrowserError:
            return None
        state.pages_loaded += 1
        return page

    def _find_registration_form(self, page: Page, packs: tuple = ()) -> FormModel | None:
        """Best registration-form candidate on the page, if any."""
        best: tuple[float, FormModel] | None = None
        for form in page.forms():
            visible = form.visible_fields()
            if not visible:
                continue
            has_password = any(f.input_type == "password" for f in visible)
            if not has_password:
                continue
            score = 1.0 + 0.2 * len(visible)
            meanings = {classify_field(f, packs=packs)[0] for f in visible}
            if FieldMeaning.EMAIL in meanings:
                score += 2.0
            if FieldMeaning.USERNAME in meanings:
                score += 0.5
            # A bare user/pass pair is far more likely a login form.
            if len(visible) <= 2 and FieldMeaning.EMAIL not in meanings:
                score -= 2.0
            if score > 0 and (best is None or score > best[0]):
                best = (score, form)
        return best[1] if best else None

    def _asks_for_email_and_password(self, form: FormModel, packs: tuple = ()) -> bool:
        meanings = {classify_field(f, packs=packs)[0] for f in form.visible_fields()}
        return FieldMeaning.EMAIL in meanings and FieldMeaning.PASSWORD in meanings


class _CrawlState:
    """Mutable bookkeeping across one crawl attempt."""

    def __init__(self, host: str, url: str, started: SimInstant):
        self.host = host
        self.url = url
        self.started = started
        self.pages_loaded = 0
        self.exposed_email = False
        self.exposed_password = False
        self.filled_fields: tuple[str, ...] = ()

    def absorb_plan(self, plan: FillPlan) -> None:
        self.exposed_email = self.exposed_email or plan.exposed_email
        self.exposed_password = self.exposed_password or plan.exposed_password
        self.filled_fields = tuple(plan.values)

    def finish(self, transport: TransportLike, code: TerminationCode, detail: str) -> CrawlOutcome:
        return CrawlOutcome(
            site_host=self.host,
            url=self.url,
            code=code,
            detail=detail,
            exposed_email=self.exposed_email,
            exposed_password=self.exposed_password,
            pages_loaded=self.pages_loaded,
            started_at=self.started,
            finished_at=transport.clock.now(),
            filled_fields=self.filled_fields,
        )
