"""Third-party captcha-solving service client (Section 4.3.2).

The paper's crawler relayed captcha images and basic human-knowledge
questions to a commercial solving service with a non-trivial error rate
(Section 7.2, citing Motoyama et al.).  Here the "image" is a challenge
token; the simulated human solver recovers the true answer with the
configured accuracy and otherwise returns a plausible wrong string.
Interactive widgets (reCAPTCHA/KeyCAPTCHA-class) are unsupported,
matching the paper.
"""

from __future__ import annotations

import random

from repro.web.captcha import captcha_answer_for


class CaptchaSolverService:
    """A paid human-solver service with imperfect accuracy."""

    def __init__(
        self,
        rng: random.Random,
        image_accuracy: float = 0.85,
        question_accuracy: float = 0.50,
        cost_per_solve: float = 0.001,
    ):
        for name, value in (("image_accuracy", image_accuracy),
                            ("question_accuracy", question_accuracy)):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability")
        self._rng = rng
        self.image_accuracy = image_accuracy
        self.question_accuracy = question_accuracy
        self.cost_per_solve = cost_per_solve
        self.solves_attempted = 0
        self.solves_correct = 0

    def solve(self, challenge_token: str, is_knowledge_question: bool = False) -> str | None:
        """Attempt a solve; None when there is nothing to work from."""
        if not challenge_token:
            return None
        self.solves_attempted += 1
        accuracy = self.question_accuracy if is_knowledge_question else self.image_accuracy
        if self._rng.random() < accuracy:
            self.solves_correct += 1
            return captcha_answer_for(challenge_token)
        # A wrong-but-plausible human answer.
        return "".join(self._rng.choice("abcdef0123456789") for _ in range(6))

    @property
    def total_cost(self) -> float:
        """Money spent on solves so far."""
        return self.solves_attempted * self.cost_per_solve
