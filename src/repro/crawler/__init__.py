"""The Tripwire registration crawler (Section 4.3).

A best-effort automated registrar built on the headless browser: it
locates a registration page, finds the registration form, identifies
and fills each field serially using weighted-regex heuristics, passes
bot checks to a third-party solving service, submits, and classifies
the outcome with the termination codes of Figure 1.

The crawler is deliberately *imperfect in the same ways the paper's
was*: English-only heuristics, no multi-page form support, no
interactive-captcha support, and abort-on-unrecognizable-required-field
— those limitations produce the funnel of Figure 3.
"""

from repro.crawler.outcomes import CrawlOutcome, CrawlResult, TerminationCode
from repro.crawler.language import looks_english
from repro.crawler.fields import FieldMeaning, classify_field
from repro.crawler.links import score_registration_link
from repro.crawler.captcha import CaptchaSolverService
from repro.crawler.formfill import FillPlan, plan_form_fill
from repro.crawler.checks import SubmissionVerdict, judge_submission_response
from repro.crawler.engine import CrawlerConfig, RegistrationCrawler

__all__ = [
    "TerminationCode",
    "CrawlOutcome",
    "CrawlResult",
    "looks_english",
    "FieldMeaning",
    "classify_field",
    "score_registration_link",
    "CaptchaSolverService",
    "FillPlan",
    "plan_form_fill",
    "SubmissionVerdict",
    "judge_submission_response",
    "CrawlerConfig",
    "RegistrationCrawler",
]
