"""Registration-link discovery heuristics.

Given the anchors on a page, score each as a candidate registration
link using weighted patterns over the anchor text and the href.  An
image-only link has no text to match — the §6.2.2 failure mode — and a
link whose text is in another language scores zero.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

_TEXT_PATTERNS: tuple[tuple[re.Pattern[str], float], ...] = tuple(
    (re.compile(p, re.IGNORECASE), w)
    for p, w in (
        (r"\bsign\s*up\b", 5.0),
        (r"\bregister\b|\bregistration\b", 5.0),
        (r"\bcreate\b.{0,12}\baccount\b", 5.0),
        (r"\bjoin\b", 3.5),
        (r"\bget\s+started\b", 2.5),
        (r"\bnew\s+account\b", 3.0),
        (r"\bsign\s*in\b|\blog\s*in\b", -3.0),  # login links are decoys
    )
)

_HREF_PATTERNS: tuple[tuple[re.Pattern[str], float], ...] = tuple(
    (re.compile(p, re.IGNORECASE), w)
    for p, w in (
        (r"sign.?up", 3.0),
        (r"register|registration", 3.0),
        (r"\bjoin\b", 2.0),
        (r"account.{0,4}(new|create|register)", 2.5),
        (r"/accounts?/new", 2.5),
        (r"login|signin", -2.0),
        (r"logout|privacy|terms|contact|about", -2.0),
    )
)

#: Candidates below this score are not worth clicking.
LINK_SCORE_THRESHOLD = 2.0


@dataclass(frozen=True)
class LinkCandidate:
    """A scored anchor."""

    url: str
    text: str
    score: float


def score_registration_link(url: str, text: str, packs: tuple = ()) -> float:
    """Heuristic score that (url, text) is a registration link.

    ``packs`` contributes language-pack anchor patterns (Section 7.2's
    multi-language extension).
    """
    score = 0.0
    for pattern, weight in _TEXT_PATTERNS:
        if pattern.search(text):
            score += weight
    for pack in packs:
        for pattern, weight in pack.link_text_patterns:
            if pattern.search(text):
                score += weight
    for pattern, weight in _HREF_PATTERNS:
        if pattern.search(url):
            score += weight
    return score


def rank_registration_links(links: list[tuple[str, str]], packs: tuple = ()) -> list[LinkCandidate]:
    """Score and sort anchors, best first, dropping sub-threshold ones.

    Duplicate URLs keep only their best score.
    """
    best: dict[str, LinkCandidate] = {}
    for url, text in links:
        score = score_registration_link(url, text, packs=packs)
        if score < LINK_SCORE_THRESHOLD:
            continue
        existing = best.get(url)
        if existing is None or score > existing.score:
            best[url] = LinkCandidate(url=url, text=text, score=score)
    return sorted(best.values(), key=lambda c: (-c.score, c.url))
