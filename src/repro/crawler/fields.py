"""Field-identification heuristics.

"These heuristics take the form of a series of weighted regular
expressions and sets of DOM elements to which they apply"
(Section 4.3.1).  Each semantic meaning carries weighted patterns;
every descriptor text of a field (name, id, placeholder, label, nearby
text) is matched against every pattern, scores accumulate, and the
best-scoring meaning above a threshold wins.  English vocabulary only —
which is precisely why non-English forms defeat the crawler.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from functools import lru_cache

from repro.html.forms import FormField
from repro.perf import caching as _perf


class FieldMeaning(enum.Enum):
    """Semantic categories the crawler can fill."""

    EMAIL = "email"
    EMAIL_CONFIRM = "email_confirm"
    PASSWORD = "password"
    PASSWORD_CONFIRM = "password_confirm"
    USERNAME = "username"
    FIRST_NAME = "first_name"
    LAST_NAME = "last_name"
    FULL_NAME = "full_name"
    PHONE = "phone"
    ADDRESS = "address"
    CITY = "city"
    STATE = "state"
    ZIP = "zip"
    BIRTHDATE = "birthdate"
    EMPLOYER = "employer"
    GENDER = "gender"
    CAPTCHA = "captcha"
    TERMS = "terms"
    CARD_NUMBER = "card_number"
    CARD_CVV = "card_cvv"
    UNKNOWN = "unknown"

    @property
    def identity_key(self) -> str:
        """Key into :meth:`repro.identity.records.Identity.form_value_for`."""
        return self.value


@dataclass(frozen=True)
class WeightedPattern:
    """One regex with its score contribution."""

    pattern: re.Pattern[str]
    weight: float


def _patterns(*specs: tuple[str, float]) -> tuple[WeightedPattern, ...]:
    return tuple(WeightedPattern(re.compile(p, re.IGNORECASE), w) for p, w in specs)


#: The heuristic table.  Order matters only for tie-breaking (first wins).
HEURISTICS: tuple[tuple[FieldMeaning, tuple[WeightedPattern, ...]], ...] = (
    (FieldMeaning.EMAIL_CONFIRM, _patterns(
        (r"(confirm|verify|re.?enter|repeat).{0,12}e.?mail", 8.0),
        (r"e.?mail.{0,8}(confirm|again|2\b)", 6.0),
    )),
    (FieldMeaning.EMAIL, _patterns(
        (r"\be.?mail\b", 4.0),
        (r"^email", 3.0),
        (r"e.?mail.{0,10}address", 4.0),
    )),
    (FieldMeaning.PASSWORD_CONFIRM, _patterns(
        (r"(confirm|verify|re.?enter|repeat).{0,12}pass", 8.0),
        (r"pass(word)?.{0,8}(confirm|again|2\b)", 6.0),
    )),
    (FieldMeaning.PASSWORD, _patterns(
        (r"\bpass.?word\b", 4.0),
        (r"^passwd|^pwd\b|\bpwd\b", 3.0),
        (r"choose.{0,10}pass", 3.0),
    )),
    (FieldMeaning.USERNAME, _patterns(
        (r"\buser.?name\b", 4.0),
        (r"\blogin\b", 2.0),
        (r"\bnick.?name\b", 2.5),
        (r"screen.?name|display.?name|handle\b", 3.0),
    )),
    (FieldMeaning.FIRST_NAME, _patterns(
        (r"first.{0,5}name", 4.0),
        (r"\bfname\b|given.?name|\bforename\b", 3.5),
    )),
    (FieldMeaning.LAST_NAME, _patterns(
        (r"last.{0,5}name", 4.0),
        (r"\blname\b|sur.?name|family.?name", 3.5),
    )),
    (FieldMeaning.FULL_NAME, _patterns(
        (r"full.{0,5}name", 4.0),
        (r"your.{0,5}name", 2.5),
        (r"^name$", 2.0),
    )),
    (FieldMeaning.PHONE, _patterns(
        (r"\bphone\b|\btelephone\b|\bmobile\b|\bcell\b", 4.0),
        (r"\btel\b", 2.0),
    )),
    (FieldMeaning.ZIP, _patterns(
        (r"\bzip\b|postal.?code|post.?code", 4.0),
    )),
    (FieldMeaning.CITY, _patterns((r"\bcity\b|\btown\b", 4.0),)),
    (FieldMeaning.STATE, _patterns((r"\bstate\b|\bprovince\b", 3.5),)),
    (FieldMeaning.ADDRESS, _patterns(
        (r"\baddress\b", 3.0),
        (r"street", 3.5),
    )),
    (FieldMeaning.BIRTHDATE, _patterns(
        (r"birth|\bdob\b|date.{0,5}of.{0,5}birth", 4.0),
        (r"\bage\b", 1.5),
    )),
    (FieldMeaning.EMPLOYER, _patterns((r"employer|company|organization", 3.0),)),
    (FieldMeaning.GENDER, _patterns((r"\bgender\b|\bsex\b", 4.0),)),
    (FieldMeaning.CAPTCHA, _patterns(
        (r"captcha|security.?code|verification.?code", 5.0),
        (r"characters.{0,12}(shown|image|picture)", 4.5),
        (r"(type|enter).{0,20}(image|picture|box|shown)", 3.0),
        (r"(what|how).{0,40}(add|plus|sum|many|color|colour)", 4.0),
        (r"human|not.{0,5}a.{0,5}robot", 3.0),
    )),
    (FieldMeaning.TERMS, _patterns(
        (r"terms|\btos\b|conditions|agree", 4.0),
        (r"privacy.?policy", 2.0),
    )),
    (FieldMeaning.CARD_NUMBER, _patterns(
        (r"(credit|debit).{0,8}card", 5.0),
        (r"card.{0,8}(number|no\b)", 4.5),
        (r"\bcc.?num", 4.0),
    )),
    (FieldMeaning.CARD_CVV, _patterns(
        (r"\bcvv\b|\bcvc\b|security.{0,5}code.{0,8}card", 5.0),
    )),
)

#: Minimum accumulated score before a classification is trusted.
SCORE_THRESHOLD = 2.0

#: One heuristic table: (meaning, weighted patterns) rows.
HeuristicTable = tuple[tuple[FieldMeaning, tuple[WeightedPattern, ...]], ...]


@dataclass(frozen=True)
class _FusedMeaning:
    """One meaning's patterns fused into a single prefilter alternation.

    ``prefilter`` matches a text iff at least one of ``patterns`` does,
    so a failed prefilter search rejects every pattern in one C-level
    call.  On a prefilter hit the individual patterns are re-run so the
    per-pattern weights accumulate exactly as the naive loop's do.
    """

    meaning: FieldMeaning
    prefilter: re.Pattern[str]
    patterns: tuple[WeightedPattern, ...]


@dataclass(frozen=True)
class _FusedTable:
    """A whole heuristic table with a table-wide rejection prefilter."""

    any_prefilter: re.Pattern[str]
    meanings: tuple[_FusedMeaning, ...]


def _alternation(patterns: tuple[WeightedPattern, ...]) -> re.Pattern[str]:
    return re.compile(
        "|".join(f"(?:{wp.pattern.pattern})" for wp in patterns), re.IGNORECASE
    )


@lru_cache(maxsize=None)
def _fuse_table(table: HeuristicTable) -> _FusedTable:
    """Compile one table's fused form (tables are module constants)."""
    meanings = tuple(
        _FusedMeaning(meaning, _alternation(patterns), patterns)
        for meaning, patterns in table
    )
    every_pattern = tuple(wp for _, patterns in table for wp in patterns)
    return _FusedTable(_alternation(every_pattern), meanings)


def _type_priors(input_type: str, scores: dict[FieldMeaning, float]) -> None:
    if input_type == "email":
        scores[FieldMeaning.EMAIL] = scores.get(FieldMeaning.EMAIL, 0.0) + 3.0
    elif input_type == "password":
        scores[FieldMeaning.PASSWORD] = scores.get(FieldMeaning.PASSWORD, 0.0) + 3.0
    elif input_type == "tel":
        scores[FieldMeaning.PHONE] = scores.get(FieldMeaning.PHONE, 0.0) + 3.0
    elif input_type == "checkbox":
        scores[FieldMeaning.TERMS] = scores.get(FieldMeaning.TERMS, 0.0) + 1.0


def _pick_best(scores: dict[FieldMeaning, float]) -> tuple[FieldMeaning, float]:
    # Tie-breaking is first-wins: ``max`` keeps the earliest-inserted
    # meaning among equals, and both implementations insert meanings in
    # the same (table, row, first-matching-pattern) order.
    if not scores:
        return FieldMeaning.UNKNOWN, 0.0
    best_meaning = max(scores, key=lambda m: scores[m])
    best_score = scores[best_meaning]
    if best_score < SCORE_THRESHOLD:
        return FieldMeaning.UNKNOWN, best_score
    return best_meaning, best_score


def _classify_fused(
    texts: tuple[str, ...],
    input_type: str,
    has_challenge_token: bool,
    packs: tuple,
) -> tuple[FieldMeaning, float]:
    """The fused scoring pipeline; bit-identical to the naive reference.

    Weights are added in exactly the reference order (table, meaning
    row, pattern, descriptor text), so float sums and the dict insertion
    order that drives tie-breaking cannot diverge.
    """
    scores: dict[FieldMeaning, float] = {}
    _type_priors(input_type, scores)

    for table in (HEURISTICS, *(pack.field_heuristics for pack in packs)):
        fused = _fuse_table(table)
        candidates = [t for t in texts if fused.any_prefilter.search(t)]
        if not candidates:
            continue
        for row in fused.meanings:
            if len(row.patterns) == 1:
                # Prefilter == the only pattern: a hit is confirmation.
                weighted = row.patterns[0]
                for text in candidates:
                    if weighted.pattern.search(text):
                        scores[row.meaning] = (
                            scores.get(row.meaning, 0.0) + weighted.weight
                        )
                continue
            matched = [t for t in candidates if row.prefilter.search(t)]
            if not matched:
                continue
            for weighted in row.patterns:
                for text in matched:
                    if weighted.pattern.search(text):
                        scores[row.meaning] = (
                            scores.get(row.meaning, 0.0) + weighted.weight
                        )

    if has_challenge_token:
        scores[FieldMeaning.CAPTCHA] = scores.get(FieldMeaning.CAPTCHA, 0.0) + 2.0
    return _pick_best(scores)


#: Generated sites repeat field shapes heavily, so the same descriptor
#: tuple recurs across thousands of classify calls; memoize the whole
#: classification.  Keyed on every input that determines the result.
_classify_cached = lru_cache(maxsize=16384)(_classify_fused)
_perf.register_clearer(_classify_cached.cache_clear)


def classify_field(field: FormField, packs: tuple = ()) -> tuple[FieldMeaning, float]:
    """Classify one form field; returns (meaning, score).

    Type attributes give a strong prior (``type=email`` etc.); the
    weighted regexes refine or override.  ``packs`` adds the heuristics
    of enabled :class:`repro.crawler.langpacks.LanguagePack` objects.
    Returns ``UNKNOWN`` with the best score when nothing clears the
    threshold.

    This is the fused fast path; :func:`classify_field_reference` keeps
    the original four-deep loop as the semantics oracle, and the golden
    and hypothesis tests in ``tests/crawler/test_fused_classifier.py``
    pin the two to bit-identical outputs.
    """
    texts = tuple(field.descriptor_texts())
    if not _perf.enabled():
        return _classify_fused(texts, field.input_type, field.has_challenge_token,
                               tuple(packs))
    return _classify_cached(texts, field.input_type, field.has_challenge_token,
                            tuple(packs))


def classify_field_reference(
    field: FormField, packs: tuple = ()
) -> tuple[FieldMeaning, float]:
    """The naive reference classifier (pre-fusion semantics, verbatim).

    Retained as the oracle the fused implementation is tested against;
    also what the perf suite times as the classification baseline.
    """
    scores: dict[FieldMeaning, float] = {}
    _type_priors(field.input_type, scores)

    texts = field.descriptor_texts()
    tables = [HEURISTICS] + [pack.field_heuristics for pack in packs]
    for table in tables:
        for meaning, patterns in table:
            for weighted in patterns:
                for text in texts:
                    if weighted.pattern.search(text):
                        scores[meaning] = scores.get(meaning, 0.0) + weighted.weight

    if field.has_challenge_token:
        scores[FieldMeaning.CAPTCHA] = scores.get(FieldMeaning.CAPTCHA, 0.0) + 2.0

    # Password-type confirm fields: both PASSWORD and PASSWORD_CONFIRM
    # score; the confirm patterns are weighted to win when present.
    return _pick_best(scores)
