"""English-language detection.

The paper's heuristics "are only designed to support sites written in
English" (Section 4.3.1).  The crawler gates on a cheap detector: the
fraction of page words drawn from a small English stopword list, with
the document's ``lang`` attribute as a hint when text is scarce.
"""

from __future__ import annotations

import re

from repro.html.dom import Element

_ENGLISH_STOPWORDS = frozenset(
    """
    the and for with your you this that from about have not are was were
    will can all new more home contact news help sign log account our his
    her its one two how what when where why who free now get latest welcome
    create join register password email us terms privacy
    """.split()
)

_WORD_RE = re.compile(r"[^\W\d_]+")


def english_word_fraction(text: str) -> float:
    """Share of alphabetic tokens that are English stopwords.

    Tokens are full Unicode words so that accented words ("notícias")
    do not split into ASCII fragments that spuriously match stopwords.
    """
    words = [w.lower() for w in _WORD_RE.findall(text)]
    if not words:
        return 0.0
    hits = sum(1 for w in words if w.isascii() and w in _ENGLISH_STOPWORDS)
    return hits / len(words)


#: Small stopword sets for the Latin-script languages the extended
#: crawler can optionally support (Section 7.2's "single greatest
#: improvement").  Script detection handles ru/zh/ja.
_STOPWORDS_BY_LANGUAGE: dict[str, frozenset[str]] = {
    "de": frozenset("und der die das mit für ihre sie nicht eine konto passwort "
                    "registrieren anmelden nachrichten über willkommen".split()),
    "fr": frozenset("les des avec votre pour vous une est compte inscription "
                    "connexion bienvenue actualités propos".split()),
    "es": frozenset("los las con para una cuenta correo noticias comunidad "
                    "acerca bienvenido regístrate contraseña".split()),
    "pt": frozenset("os das com para uma conta senha notícias comunidade "
                    "sobre bem-vindo cadastre".split()),
}


def detect_language(dom: Element) -> str:
    """Best-effort language detection for a page.

    Returns a language code: ``en``, one of the supported Latin-script
    codes, a script-level guess (``ru``/``zh``) for non-Latin pages, or
    ``unknown``.  The ``lang`` attribute is used as a tiebreaker.
    """
    text = dom.text_content()
    lang_attr = dom.get("lang").lower()[:2]
    letters = sum(1 for c in text if c.isalpha())
    ascii_letters = sum(1 for c in text if c.isascii() and c.isalpha())
    if letters >= 40 and ascii_letters / letters < 0.5:
        if any("Ѐ" <= c <= "ӿ" for c in text):
            return "ru"
        if any("一" <= c <= "鿿" for c in text):
            return lang_attr if lang_attr in ("zh", "ja") else "zh"
        if any("぀" <= c <= "ヿ" for c in text):
            return "ja"
        return lang_attr or "unknown"
    if english_word_fraction(text) >= 0.08:
        return "en"
    words = {w.lower() for w in _WORD_RE.findall(text)}
    best, best_hits = "unknown", 0
    for code, stopwords in _STOPWORDS_BY_LANGUAGE.items():
        hits = len(words & stopwords)
        if hits > best_hits:
            best, best_hits = code, hits
    if best_hits >= 2:
        return best
    if lang_attr:
        return lang_attr
    return "unknown"


def looks_english(dom: Element, min_fraction: float = 0.08) -> bool:
    """Whether a page appears to be written in English.

    Pages dominated by non-Latin scripts yield almost no ASCII words,
    so the alphabetic-character share is checked first; Latin-script
    foreign languages are caught by the stopword fraction.  A ``lang``
    attribute is trusted when the text itself is inconclusive.
    """
    text = dom.text_content()
    lang_attr = dom.get("lang").lower()
    letters = sum(1 for c in text if c.isalpha())
    ascii_letters = sum(1 for c in text if c.isascii() and c.isalpha())
    if letters >= 40 and ascii_letters / letters < 0.5:
        return False  # predominantly non-Latin script
    fraction = english_word_fraction(text)
    if fraction >= min_fraction:
        return True
    if lang_attr.startswith("en"):
        # Sparse page; fall back to the declared language.
        return True
    return False
