"""Crawler termination codes (Figure 1) and crawl results."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.util.timeutil import SimInstant


class TerminationCode(enum.Enum):
    """Why a crawl of one site ended.

    The first five mirror Figure 1's exit boxes; ``NOT_ENGLISH`` is the
    crawler's early language gate (non-English sites are unsupported,
    Section 4.3.1).

    ``SYSTEM_ERROR`` and ``BUDGET_EXHAUSTED`` used to be one code, which
    conflated *transient* infrastructure failure (a crashed headless
    browser, a network flap — worth retrying) with *permanent* resource
    exhaustion (the per-attempt page budget or the never-reuse proxy
    pool ran out — retrying can only burn more budget).  Retry logic
    must consult :attr:`retryable`, never match on ``SYSTEM_ERROR``
    membership alone.
    """

    OK_SUBMISSION = "ok_submission"
    SUBMISSION_HEURISTICS_FAILED = "submission_heuristics_failed"
    REQUIRED_FIELDS_MISSING = "required_fields_missing"
    NO_REGISTRATION_FOUND = "no_registration_found"
    SYSTEM_ERROR = "system_error"  # transient: crash, load failure, network flap
    BUDGET_EXHAUSTED = "budget_exhausted"  # permanent: page/proxy budget spent
    NOT_ENGLISH = "not_english"

    @property
    def attempted_submission(self) -> bool:
        """Whether the crawler got as far as submitting a form."""
        return self in (
            TerminationCode.OK_SUBMISSION,
            TerminationCode.SUBMISSION_HEURISTICS_FAILED,
        )

    @property
    def retryable(self) -> bool:
        """Whether a retry could plausibly change the outcome.

        Only transient system errors qualify; every other exit is a
        property of the site (no form, wrong language, policy failure)
        or of an exhausted budget, which a retry cannot restore.
        """
        return self in RETRYABLE_CODES


#: The transient exits a :class:`~repro.faults.retry.RetryPolicy` may
#: re-attempt.  Kept as an explicit set so tests can pin retryability
#: per code.
RETRYABLE_CODES = frozenset({TerminationCode.SYSTEM_ERROR})


#: Codes where credentials may have been exposed (at or past the
#: horizontal line in Figure 1).
EXPOSING_CODES = frozenset(
    {
        TerminationCode.OK_SUBMISSION,
        TerminationCode.SUBMISSION_HEURISTICS_FAILED,
        TerminationCode.REQUIRED_FIELDS_MISSING,  # only when filling began
        TerminationCode.BUDGET_EXHAUSTED,  # page budget can die post-fill
    }
)


@dataclass(frozen=True)
class CrawlOutcome:
    """Detailed record of one crawl attempt against one site."""

    site_host: str
    url: str
    code: TerminationCode
    detail: str = ""
    exposed_email: bool = False
    exposed_password: bool = False
    pages_loaded: int = 0
    started_at: SimInstant = 0
    finished_at: SimInstant = 0
    filled_fields: tuple[str, ...] = ()

    @property
    def exposed_credentials(self) -> bool:
        """Whether the identity must be burned (Section 4.3.1)."""
        return self.exposed_email or self.exposed_password

    @property
    def attempted_submission(self) -> bool:
        """Whether the crawler got as far as submitting the form."""
        return self.code.attempted_submission


@dataclass
class CrawlResult:
    """A crawl outcome bound to the identity that was used."""

    outcome: CrawlOutcome
    identity_id: int
    registered_email: str
    password_class: str
    events: list[str] = field(default_factory=list)
