"""Crawler termination codes (Figure 1) and crawl results."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.util.timeutil import SimInstant


class TerminationCode(enum.Enum):
    """Why a crawl of one site ended.

    The first five mirror Figure 1's exit boxes; ``NOT_ENGLISH`` is the
    crawler's early language gate (non-English sites are unsupported,
    Section 4.3.1).
    """

    OK_SUBMISSION = "ok_submission"
    SUBMISSION_HEURISTICS_FAILED = "submission_heuristics_failed"
    REQUIRED_FIELDS_MISSING = "required_fields_missing"
    NO_REGISTRATION_FOUND = "no_registration_found"
    SYSTEM_ERROR = "system_error"
    NOT_ENGLISH = "not_english"

    @property
    def attempted_submission(self) -> bool:
        """Whether the crawler got as far as submitting a form."""
        return self in (
            TerminationCode.OK_SUBMISSION,
            TerminationCode.SUBMISSION_HEURISTICS_FAILED,
        )


#: Codes where credentials may have been exposed (at or past the
#: horizontal line in Figure 1).
EXPOSING_CODES = frozenset(
    {
        TerminationCode.OK_SUBMISSION,
        TerminationCode.SUBMISSION_HEURISTICS_FAILED,
        TerminationCode.REQUIRED_FIELDS_MISSING,  # only when filling began
    }
)


@dataclass(frozen=True)
class CrawlOutcome:
    """Detailed record of one crawl attempt against one site."""

    site_host: str
    url: str
    code: TerminationCode
    detail: str = ""
    exposed_email: bool = False
    exposed_password: bool = False
    pages_loaded: int = 0
    started_at: SimInstant = 0
    finished_at: SimInstant = 0
    filled_fields: tuple[str, ...] = ()

    @property
    def exposed_credentials(self) -> bool:
        """Whether the identity must be burned (Section 4.3.1)."""
        return self.exposed_email or self.exposed_password

    @property
    def attempted_submission(self) -> bool:
        """Whether the crawler got as far as submitting the form."""
        return self.code.attempted_submission


@dataclass
class CrawlResult:
    """A crawl outcome bound to the identity that was used."""

    outcome: CrawlOutcome
    identity_id: int
    registered_email: str
    password_class: str
    events: list[str] = field(default_factory=list)
