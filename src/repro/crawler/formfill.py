"""Serial form filling (Figure 1's "identify and fill field" loop).

Fields are classified and filled one at a time, in document order.  The
moment an email or password value lands in a field, the identity is
considered exposed (the horizontal line in Figure 1).  A *required*
field the crawler cannot value — an unrecognized meaning, a credit-card
number, an unsolvable bot check — aborts the fill with whatever
exposure has already occurred.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field as dc_field

from repro.crawler.captcha import CaptchaSolverService
from repro.crawler.fields import FieldMeaning, classify_field
from repro.html.forms import FormField, FormModel
from repro.identity.records import Identity


@dataclass
class FillPlan:
    """Result of attempting to fill one form."""

    values: dict[str, str] = dc_field(default_factory=dict)
    classified: list[tuple[str, FieldMeaning]] = dc_field(default_factory=list)
    exposed_email: bool = False
    exposed_password: bool = False
    aborted: bool = False
    abort_reason: str = ""
    saw_email_field: bool = False
    saw_password_field: bool = False

    @property
    def complete(self) -> bool:
        """Whether every required field received a value."""
        return not self.aborted


def _question_text(form_field: FormField) -> str:
    return " ".join(form_field.descriptor_texts())


def plan_form_fill(
    form: FormModel,
    identity: Identity,
    solver: CaptchaSolverService | None = None,
    packs: tuple = (),
) -> FillPlan:
    """Fill ``form`` from ``identity``, honoring serial-abort semantics."""
    plan = FillPlan()
    for form_field in form.visible_fields():
        meaning, _score = classify_field(form_field, packs=packs)
        plan.classified.append((form_field.name or form_field.field_id, meaning))
        value = _value_for(form_field, meaning, identity, solver, plan)
        if value is None:
            if form_field.required:
                plan.aborted = True
                plan.abort_reason = f"unfillable required field ({meaning.value})"
                return plan
            continue  # optional and unknown: leave it blank
        if form_field.maxlength is not None and len(value) > form_field.maxlength:
            value = value[: form_field.maxlength]
        if form_field.name:
            plan.values[form_field.name] = value
    return plan


def _value_for(
    form_field: FormField,
    meaning: FieldMeaning,
    identity: Identity,
    solver: CaptchaSolverService | None,
    plan: FillPlan,
) -> str | None:
    """The value to type into one field, or None when unfillable."""
    if meaning is FieldMeaning.CAPTCHA:
        if solver is None:
            return None
        token = form_field.challenge_token
        question = _question_text(form_field)
        is_question = bool(
            re.search(r"\b(what|how|add|plus|color|colour|many)\b", question, re.IGNORECASE)
        )
        return solver.solve(token, is_knowledge_question=is_question)

    if meaning is FieldMeaning.TERMS:
        return "1" if form_field.is_checkbox else "yes"

    if form_field.control == "select":
        # Dropdowns are always satisfiable: prefer the identity's value
        # when it is among the options, otherwise the first real choice.
        for key in (form_field.name, meaning.identity_key):
            preferred = identity.form_value_for(key) if key else None
            if preferred is not None and preferred in form_field.options:
                return preferred
        non_empty = [option for option in form_field.options if option]
        return non_empty[0] if non_empty else None

    if meaning in (FieldMeaning.CARD_NUMBER, FieldMeaning.CARD_CVV):
        return None  # Tripwire cannot provide payment data (§6.2.3)

    if meaning is FieldMeaning.UNKNOWN:
        return None

    value = identity.form_value_for(meaning.identity_key)
    if value is None:
        return None
    if meaning in (FieldMeaning.EMAIL, FieldMeaning.EMAIL_CONFIRM):
        plan.saw_email_field = True
        plan.exposed_email = True
    if meaning in (FieldMeaning.PASSWORD, FieldMeaning.PASSWORD_CONFIRM):
        plan.saw_password_field = True
        plan.exposed_password = True
    return value
