"""Language packs: the multi-language crawler extension (Section 7.2).

"Non-English sites alone make up more than forty percent of all sites,
none of which are presently evaluated.  Supporting multiple languages
would be the single greatest improvement to the crawler's coverage."

A :class:`LanguagePack` carries the language-specific vocabulary the
crawler needs: registration-link anchor patterns, field-identification
patterns and submission-verdict keywords.  Packs are opt-in via
:attr:`repro.crawler.engine.CrawlerConfig.enabled_languages`, so the
default crawler stays faithful to the paper's English-only pilot.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.crawler.fields import FieldMeaning, WeightedPattern


def _patterns(*specs: tuple[str, float]) -> tuple[WeightedPattern, ...]:
    return tuple(WeightedPattern(re.compile(p, re.IGNORECASE), w) for p, w in specs)


@dataclass(frozen=True)
class LanguagePack:
    """Heuristic vocabulary for one language."""

    language: str
    link_text_patterns: tuple[tuple[re.Pattern[str], float], ...]
    field_heuristics: tuple[tuple[FieldMeaning, tuple[WeightedPattern, ...]], ...]
    success_patterns: tuple[re.Pattern[str], ...] = ()
    error_patterns: tuple[re.Pattern[str], ...] = ()
    extra_stopwords: frozenset[str] = field(default_factory=frozenset)


def _link_patterns(*specs: tuple[str, float]) -> tuple[tuple[re.Pattern[str], float], ...]:
    return tuple((re.compile(p, re.IGNORECASE), w) for p, w in specs)


GERMAN_PACK = LanguagePack(
    language="de",
    link_text_patterns=_link_patterns(
        (r"registrier", 5.0),
        (r"konto\s+erstellen", 5.0),
        (r"\bjetzt\s+beitreten\b|\bmitglied\s+werden\b", 3.5),
        (r"\banmelden\b", -2.0),  # the login decoy
    ),
    field_heuristics=(
        (FieldMeaning.EMAIL, _patterns((r"e.?mail", 4.0), (r"adresse", 1.0))),
        (FieldMeaning.PASSWORD_CONFIRM, _patterns((r"passwort.{0,12}(bestätigen|wiederholen)", 8.0),
                                                  (r"passwort2", 6.0))),
        (FieldMeaning.PASSWORD, _patterns((r"passwort|kennwort", 4.0),)),
        (FieldMeaning.USERNAME, _patterns((r"benutzer.?name|nutzername", 4.0),)),
        (FieldMeaning.FIRST_NAME, _patterns((r"vorname", 4.0),)),
        (FieldMeaning.LAST_NAME, _patterns((r"nachname|familienname", 4.0),)),
        (FieldMeaning.PHONE, _patterns((r"telefon", 4.0),)),
        (FieldMeaning.CAPTCHA, _patterns((r"sicherheitscode|zeichen.{0,20}ein", 5.0),)),
        (FieldMeaning.TERMS, _patterns((r"nutzungsbedingungen|agb|stimme.{0,10}zu", 4.0),)),
    ),
    success_patterns=(re.compile(r"erfolgreich", re.IGNORECASE),
                      re.compile(r"willkommen\s+an\s+bord", re.IGNORECASE)),
    error_patterns=(re.compile(r"\bfehler\b|\bproblem\b", re.IGNORECASE),),
)

SPANISH_PACK = LanguagePack(
    language="es",
    link_text_patterns=_link_patterns(
        (r"reg[íi]strate|registrarse|registro", 5.0),
        (r"crear\s+(una\s+)?cuenta", 5.0),
        (r"[úu]nete", 3.5),
        (r"iniciar\s+sesi[óo]n", -2.0),
    ),
    field_heuristics=(
        (FieldMeaning.EMAIL, _patterns((r"correo(\s+electr[óo]nico)?", 4.0), (r"e.?mail", 3.0))),
        (FieldMeaning.PASSWORD_CONFIRM, _patterns((r"confirmar.{0,10}contrase[ñn]a", 8.0),
                                                  (r"contrasena2", 6.0))),
        (FieldMeaning.PASSWORD, _patterns((r"contrase[ñn]a|contrasena", 4.0),)),
        (FieldMeaning.USERNAME, _patterns((r"usuario|nombre\s+de\s+usuario", 4.0),)),
        (FieldMeaning.FIRST_NAME, _patterns((r"\bnombre\b", 3.5),)),
        (FieldMeaning.LAST_NAME, _patterns((r"apellido", 4.0),)),
        (FieldMeaning.PHONE, _patterns((r"tel[ée]fono", 4.0),)),
        (FieldMeaning.CAPTCHA, _patterns((r"c[óo]digo|caracteres", 4.0),)),
        (FieldMeaning.TERMS, _patterns((r"t[ée]rminos|acepto", 4.0),)),
    ),
    success_patterns=(re.compile(r"exitoso|bienvenido", re.IGNORECASE),),
    error_patterns=(re.compile(r"problema|error", re.IGNORECASE),),
)

FRENCH_PACK = LanguagePack(
    language="fr",
    link_text_patterns=_link_patterns(
        (r"s'inscrire|inscription|inscrivez", 5.0),
        (r"cr[ée]er\s+un\s+compte", 5.0),
        (r"rejoignez", 3.5),
        (r"connexion|se\s+connecter", -2.0),
    ),
    field_heuristics=(
        (FieldMeaning.EMAIL, _patterns((r"courriel|adresse\s+e.?mail|e.?mail", 4.0),)),
        (FieldMeaning.PASSWORD_CONFIRM, _patterns((r"confirmez.{0,10}mot\s+de\s+passe", 8.0),
                                                  (r"motdepasse2", 6.0))),
        (FieldMeaning.PASSWORD, _patterns((r"mot\s*de\s*passe|motdepasse", 4.0),)),
        (FieldMeaning.USERNAME, _patterns((r"pseudo|identifiant", 4.0),)),
        (FieldMeaning.FIRST_NAME, _patterns((r"pr[ée]nom", 4.0),)),
        (FieldMeaning.LAST_NAME, _patterns((r"\bnom\b", 3.0),)),
        (FieldMeaning.PHONE, _patterns((r"t[ée]l[ée]phone", 4.0),)),
        (FieldMeaning.CAPTCHA, _patterns((r"caract[èe]res|code", 4.0),)),
        (FieldMeaning.TERMS, _patterns((r"conditions|j'accepte", 4.0),)),
    ),
    success_patterns=(re.compile(r"r[ée]ussi|bienvenue", re.IGNORECASE),),
    error_patterns=(re.compile(r"probl[èe]me|erreur", re.IGNORECASE),),
)

#: Registry of available packs by language code.
AVAILABLE_PACKS: dict[str, LanguagePack] = {
    pack.language: pack for pack in (GERMAN_PACK, SPANISH_PACK, FRENCH_PACK)
}


def packs_for(languages: frozenset[str] | set[str]) -> tuple[LanguagePack, ...]:
    """The packs for a set of enabled language codes (English needs none)."""
    return tuple(AVAILABLE_PACKS[code] for code in sorted(languages)
                 if code in AVAILABLE_PACKS)
