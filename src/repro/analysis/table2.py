"""Table 2: summary of sites with detected login activity."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.monitor import CompromiseMonitor
from repro.core.scenario import PilotResult
from repro.util.tables import render_table


def assign_site_letters(monitor: CompromiseMonitor) -> dict[str, str]:
    """Anonymize detected sites as A, B, C, ... by first-login time.

    The paper obscures site identities (Section 3); the analysis keeps
    the same convention.
    """
    letters = {}
    for index, detection in enumerate(monitor.detected_sites()):
        letters[detection.site_host] = chr(ord("A") + index % 26) + (
            "" if index < 26 else str(index // 26)
        )
    return letters


def _round_rank_up(rank: int, granularity: int = 500) -> int:
    """Rank rounded up to the nearest 500, as the paper reports it."""
    return ((rank + granularity - 1) // granularity) * granularity


@dataclass(frozen=True)
class Table2Row:
    """One detected site."""

    letter: str
    host: str  # ground truth (not printed in the anonymized rendering)
    accounts_accessed: int
    accounts_registered: int
    hard_accessed: str  # Y / N / – (– when no hard account was registered)
    category: str
    alexa_rank_rounded: int
    storage_inference: str


def build_table2(result: PilotResult) -> list[Table2Row]:
    """Rows in first-detection order."""
    letters = assign_site_letters(result.monitor)
    rows = []
    for detection in result.monitor.detected_sites():
        host = detection.site_host
        rank = result.system.population.rank_of_host(host) or 0
        spec = result.system.population.spec_at_rank(rank) if rank else None
        registered = _registered_accounts(result, host)
        hard_registered = any(
            a.password_class.value == "hard" for a in registered
        )
        if not hard_registered:
            hard_flag = "-"
        else:
            hard_flag = "Y" if detection.hard_accessed else "N"
        rows.append(
            Table2Row(
                letter=letters[host],
                host=host,
                accounts_accessed=len(detection.accounts_accessed),
                accounts_registered=max(len(registered), len(detection.accounts_accessed)),
                hard_accessed=hard_flag,
                category=spec.category if spec else "?",
                alexa_rank_rounded=_round_rank_up(rank) if rank else 0,
                storage_inference=detection.storage_inference(),
            )
        )
    return rows


def _registered_accounts(result: PilotResult, host: str):
    """Identities burned to a host with an account actually created."""
    site = result.system.population.site_by_host(host)
    burned = result.system.pool.identities_for_site(host)
    if site is None:
        return burned
    return [i for i in burned if site.accounts.lookup(i.email_address) is not None]


def render_table2(rows: list[Table2Row]) -> str:
    """Plain-text Table 2."""
    body = [
        [
            row.letter,
            f"{row.accounts_accessed} of {row.accounts_registered}",
            row.hard_accessed,
            row.category,
            row.alexa_rank_rounded,
        ]
        for row in rows
    ]
    return render_table(
        ["Site", "Accounts accessed", "Hard accessed", "Category", "Alexa rank"],
        body,
        title="Table 2: Summary of sites with detected login activity",
        align_right=(4,),
    )
