"""Figure 2: registration and login activity over time, per site.

Each detected site is one row: registration ticks, easy-password login
markers, hard-password login markers, with the telemetry-gap window
shaded and per-site login totals on the right — an ASCII rendering of
the paper's timeline figure, backed by structured series for tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.table2 import assign_site_letters
from repro.core.scenario import PilotResult
from repro.identity.passwords import PasswordClass
from repro.util.timeutil import SimInstant, month_label


@dataclass
class SiteTimeline:
    """Event series for one detected site."""

    letter: str
    host: str
    registrations: list[SimInstant] = field(default_factory=list)
    easy_logins: list[SimInstant] = field(default_factory=list)
    hard_logins: list[SimInstant] = field(default_factory=list)
    deactivations: list[SimInstant] = field(default_factory=list)

    @property
    def total_logins(self) -> int:
        """The per-row count shown on the right axis."""
        return len(self.easy_logins) + len(self.hard_logins)

    @property
    def first_login(self) -> SimInstant:
        """Earliest login across both password classes."""
        return min(self.easy_logins + self.hard_logins)


@dataclass
class Fig2Data:
    """All rows plus the gap shading."""

    timelines: list[SiteTimeline]
    start: SimInstant
    end: SimInstant
    gap_windows: list[tuple[SimInstant, SimInstant]]


def build_fig2(result: PilotResult) -> Fig2Data:
    """Assemble per-site series, sorted by first login time."""
    letters = assign_site_letters(result.monitor)
    timelines = []
    start = result.config.end
    for detection in result.monitor.detected_sites():
        host = detection.site_host
        timeline = SiteTimeline(letter=letters[host], host=host)
        for attempt in result.campaign.attempts_for_site(host):
            if attempt.exposed:
                timeline.registrations.append(attempt.registered_at)
                start = min(start, attempt.registered_at)
        for login in detection.logins:
            if login.password_class is PasswordClass.EASY:
                timeline.easy_logins.append(login.event.time)
            else:
                timeline.hard_logins.append(login.event.time)
        for local in detection.accounts_accessed:
            account = result.system.provider.account(local)
            if account is not None and account.state_changed_at is not None:
                timeline.deactivations.append(account.state_changed_at)
        timelines.append(timeline)
    timelines.sort(key=lambda t: t.first_login)
    # Only observation-window gaps matter for the figure (drop any
    # pre-study loss window starting at time zero).
    gaps = [w for w in result.system.provider.telemetry.lost_windows() if w[0] > 0]
    return Fig2Data(
        timelines=timelines,
        start=start,
        end=result.config.end,
        gap_windows=gaps,
    )


def render_fig2(data: Fig2Data, width: int = 100) -> str:
    """ASCII timeline: '|' registration, 'e' easy login, 'H' hard
    login, '.' gap shading."""
    if not data.timelines:
        return "Figure 2: no detected compromises to plot"
    span = max(1, data.end - data.start)

    def column(time: SimInstant) -> int:
        return min(width - 1, max(0, int((time - data.start) / span * width)))

    deactivation_total = sum(len(t.deactivations) for t in data.timelines)
    lines = [
        "Figure 2: registration and login activity for compromised sites",
        f"    window: {month_label(data.start)} .. {month_label(data.end)}"
        f"   ('|' registration, 'e' easy login, 'H' hard login,",
        f"    'x' provider deactivation/freeze ({deactivation_total}; paper: 6), "
        "'.' log gap)",
    ]
    gap_columns = set()
    for gap_start, gap_end in data.gap_windows:
        for col in range(column(gap_start), column(gap_end) + 1):
            gap_columns.add(col)
    for timeline in data.timelines:
        row = [" "] * width
        for col in gap_columns:
            row[col] = "."
        for t in timeline.registrations:
            row[column(t)] = "|"
        for t in timeline.easy_logins:
            row[column(t)] = "e"
        for t in timeline.hard_logins:
            row[column(t)] = "H"
        for t in timeline.deactivations:
            row[column(t)] = "x"
        lines.append(f"{timeline.letter:>2} {''.join(row)} ({timeline.total_logins})")
    return "\n".join(lines)
