"""Ethics audit (Section 3).

The paper's load-footprint claims, checked against the transport log:

- the crawler loads pages no faster than one per three seconds;
- the overwhelming majority of sites received two or fewer registration
  attempts, and only three sites (due to crawler debugging) received
  more than eight;
- per-site request totals are "a load unlikely to burden even tiny
  sites".

This module recomputes those numbers for any pilot run so the claims
are auditable rather than asserted.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.campaign import RegistrationCampaign
from repro.net.transport import Transport
from repro.util.tables import render_table


@dataclass(frozen=True)
class EthicsAudit:
    """Load-footprint statistics over one run."""

    sites_contacted: int
    max_attempts_per_site: int
    sites_with_more_than_two_attempts: int
    sites_with_more_than_eight_attempts: int
    max_requests_per_site: int
    min_inter_request_gap: int  # seconds, across crawler requests per site
    median_requests_per_site: float

    @property
    def majority_two_or_fewer(self) -> bool:
        """The paper's headline claim."""
        return self.sites_with_more_than_two_attempts < self.sites_contacted * 0.5


def audit_load(campaign: RegistrationCampaign, transport: Transport) -> EthicsAudit:
    """Recompute Section 3's load statistics."""
    attempts_per_site = Counter(a.site_host for a in campaign.attempts)
    requests_per_site: dict[str, list[int]] = {}
    for entry in transport.request_log():
        # Only measurement-side traffic counts: crawler and manual
        # registrations ride proxy IPs; the mail server's verification
        # clicks (no client IP) are one-off and site-invited.
        if entry.client_ip is not None and entry.host in attempts_per_site:
            requests_per_site.setdefault(entry.host, []).append(entry.time)

    min_gap = None
    max_requests = 0
    counts = []
    for host, times in requests_per_site.items():
        counts.append(len(times))
        max_requests = max(max_requests, len(times))
        times.sort()
        for before, after in zip(times, times[1:]):
            gap = after - before
            if min_gap is None or gap < min_gap:
                min_gap = gap
    counts.sort()
    median = counts[len(counts) // 2] if counts else 0.0

    return EthicsAudit(
        sites_contacted=len(attempts_per_site),
        max_attempts_per_site=max(attempts_per_site.values(), default=0),
        sites_with_more_than_two_attempts=sum(
            1 for n in attempts_per_site.values() if n > 2
        ),
        sites_with_more_than_eight_attempts=sum(
            1 for n in attempts_per_site.values() if n > 8
        ),
        max_requests_per_site=max_requests,
        min_inter_request_gap=min_gap if min_gap is not None else 0,
        median_requests_per_site=float(median),
    )


def render_ethics_audit(audit: EthicsAudit) -> str:
    """Plain-text audit with the paper's claims inline."""
    rows = [
        ["sites contacted", audit.sites_contacted, ""],
        ["max registration attempts at one site", audit.max_attempts_per_site,
         "paper max: 16 (debugging)"],
        ["sites with >2 attempts", audit.sites_with_more_than_two_attempts,
         "paper: overwhelming majority ≤2"],
        ["sites with >8 attempts", audit.sites_with_more_than_eight_attempts,
         "paper: 3"],
        ["max HTTP requests at one site", audit.max_requests_per_site, ""],
        ["median HTTP requests per site", audit.median_requests_per_site, ""],
        ["min gap between page loads (s)", audit.min_inter_request_gap,
         "paper: ≥3s rate limit"],
    ]
    return render_table(["Metric", "Value", "Paper"], rows,
                        title="Section 3 ethics audit: measurement load",
                        align_right=(1,))
