"""Figure 1: crawler control flow and its termination-code distribution.

Figure 1 in the paper is the crawler's flow chart; the measurable
artifact is the distribution of termination codes over a crawl, plus
the flow graph itself (exported via networkx for rendering).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.campaign import AttemptRecord
from repro.crawler.outcomes import TerminationCode
from repro.util.tables import render_table


@dataclass(frozen=True)
class Fig1Data:
    """Termination-code distribution over a set of attempts."""

    counts: dict[TerminationCode, int]
    exposed_by_code: dict[TerminationCode, int]
    total: int


def build_fig1(attempts: list[AttemptRecord]) -> Fig1Data:
    """Tally crawler exits (manual registrations are excluded)."""
    counts: Counter = Counter()
    exposed: Counter = Counter()
    total = 0
    for attempt in attempts:
        if attempt.manual:
            continue
        counts[attempt.outcome.code] += 1
        if attempt.outcome.exposed_credentials:
            exposed[attempt.outcome.code] += 1
        total += 1
    return Fig1Data(counts=dict(counts), exposed_by_code=dict(exposed), total=total)


def render_fig1(data: Fig1Data) -> str:
    """Plain-text distribution table."""
    order = (
        TerminationCode.OK_SUBMISSION,
        TerminationCode.SUBMISSION_HEURISTICS_FAILED,
        TerminationCode.REQUIRED_FIELDS_MISSING,
        TerminationCode.NO_REGISTRATION_FOUND,
        TerminationCode.NOT_ENGLISH,
        TerminationCode.SYSTEM_ERROR,
        TerminationCode.BUDGET_EXHAUSTED,
    )
    body = []
    for code in order:
        count = data.counts.get(code, 0)
        share = f"{100 * count / data.total:.1f}%" if data.total else "-"
        body.append([code.value, count, share, data.exposed_by_code.get(code, 0)])
    return render_table(
        ["Termination code", "Count", "Share", "ID used (burned)"],
        body,
        title="Figure 1: Crawler termination outcomes",
        align_right=(1, 2, 3),
    )


def crawler_flow_graph():
    """The Figure 1 flow chart as a networkx DiGraph.

    Nodes are the processing stages; edges carry the condition labels.
    Useful for DOT export or structural tests.
    """
    import networkx as nx

    graph = nx.DiGraph()
    edges = [
        ("URL", "Is registration page?", "load"),
        ("Is registration page?", "Find most likely registration link", "no"),
        ("Find most likely registration link", "Is registration page?", "click"),
        ("Find most likely registration link", "No registration found",
         "none found or max tries reached"),
        ("Is registration page?", "Find registration form", "yes"),
        ("Find registration form", "No registration found", "no form"),
        ("Find registration form", "Identify and fill field", "form found"),
        ("Identify and fill field", "Identify and fill field", "for all fields"),
        ("Identify and fill field", "Required fields missing", "unfillable required"),
        ("Identify and fill field", "Submission checks", "all filled (ID used)"),
        ("Submission checks", "OK submission", "passed"),
        ("Submission checks", "Submission heuristics failed", "failed"),
        ("URL", "System Error", "crash"),
        ("Identify and fill field", "System Error", "crash"),
    ]
    for src, dst, label in edges:
        graph.add_edge(src, dst, label=label)
    terminal = {
        "OK submission", "Submission heuristics failed", "Required fields missing",
        "No registration found", "System Error",
    }
    for node in graph.nodes:
        graph.nodes[node]["terminal"] = node in terminal
    return graph
