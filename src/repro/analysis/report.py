"""One-call full evaluation report.

Bundles every table and figure of the paper's evaluation (plus the
in-text attacker-IP analysis and the disclosure summary) into a single
plain-text document — what ``repro pilot`` prints and what
``EXPERIMENTS.md`` records.
"""

from __future__ import annotations

from repro.analysis.attacker_ips import (
    build_attacker_ip_report,
    render_attacker_ip_report,
)
from repro.analysis.bursts import build_burst_report, render_burst_report
from repro.analysis.ethics import audit_load, render_ethics_audit
from repro.analysis.phone_calls import collect_phone_calls, render_phone_call_report
from repro.analysis.recovery import build_recovery_report, render_recovery_report
from repro.analysis.fig1 import build_fig1, render_fig1
from repro.analysis.fig2 import build_fig2, render_fig2
from repro.analysis.fig3 import build_fig3, render_fig3
from repro.analysis.table1 import build_table1, render_table1
from repro.analysis.table2 import build_table2, render_table2
from repro.analysis.table3 import build_table3, render_table3
from repro.analysis.table4 import build_table4, render_table4
from repro.core.scenario import PilotResult

_RULE = "=" * 78


def survey_ranks_for(population_size: int) -> tuple[int, ...]:
    """Table 4 windows that fit inside the population."""
    ranks = tuple(r for r in (1, 1000, 10000, 100000)
                  if r + 99 <= population_size)
    return ranks or (1,)


def full_report(result: PilotResult, fig2_width: int = 90) -> str:
    """Render the complete evaluation for one pilot run."""
    population = result.system.population
    sections = [
        render_table1(build_table1(result.estimates)),
        render_table2(build_table2(result)),
        render_table3(build_table3(result)),
        render_table4(build_table4(population, survey_ranks_for(population.size))),
        render_fig1(build_fig1(result.campaign.attempts)),
        render_fig2(build_fig2(result), width=fig2_width),
        render_fig3(build_fig3(result)),
        render_attacker_ip_report(build_attacker_ip_report(result)),
        render_burst_report(build_burst_report(result.monitor)),
        render_ethics_audit(audit_load(result.campaign, result.system.transport)),
        render_phone_call_report(*collect_phone_calls(result.system, result.campaign)),
        render_recovery_report(build_recovery_report(result)),
        _ground_truth_section(result),
    ]
    return f"\n\n{_RULE}\n\n".join(sections)


def _ground_truth_section(result: PilotResult) -> str:
    summary = result.disclosure.summary()
    lines = [
        "Ground truth vs detection",
        f"  sites breached (ground truth): {len(result.breaches)}",
        f"  sites detected by Tripwire:    {len(result.detected_hosts)}"
        "   (paper: 19 over ~2,300 monitored sites)",
        f"  hard-password sites detected:  "
        f"{sum(1 for d in result.monitor.detected_sites() if d.hard_accessed)}"
        "   (paper: 10 of 19)",
        f"  integrity alarms:              {len(result.monitor.alarms)} (must be 0)",
        f"  control logins surfaced:       {len(result.monitor.control_logins)}",
        f"  attacker login attempts:       {result.checker.total_login_attempts}",
        "",
        "Disclosure (Section 6.3)",
        f"  sites contacted:   {summary['sites_contacted']}",
        f"  undeliverable:     {summary['undeliverable']} (no MX — site J's failure mode)",
        f"  responded:         {summary['responded']}   (paper: 6 of 18)",
        f"  corroborated:      {summary['corroborated']} (paper: 1, already public)",
        f"  promised resets:   {summary['promised_reset']} (paper: 1, never performed)",
        f"  users notified:    {summary['notified_users']} (paper: 0)",
    ]
    return "\n".join(lines)
