"""Section 6.4.3's attacker-IP analysis.

Cross-references observed login IPs against WHOIS (country, host kind)
and reverse DNS, reporting distinct-IP counts, repeat usage, country
ranking and the residential/datacenter split — the in-text numbers of
Section 6.4 (1,316 distinct IPs, ~1,792 logins, RU/CN/US/VN top
countries, mostly residential).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.scenario import PilotResult
from repro.net.whois import HostKind
from repro.util.tables import render_table


@dataclass(frozen=True)
class AttackerIpReport:
    """Aggregates over all attributed attacker logins."""

    total_logins: int
    distinct_ips: int
    repeated_ips: int
    max_uses_single_ip: int
    country_counts: tuple[tuple[str, int], ...]  # by distinct IPs, descending
    residential_ips: int
    datacenter_ips: int
    method_counts: tuple[tuple[str, int], ...]


def build_attacker_ip_report(result: PilotResult) -> AttackerIpReport:
    """Compute the report from monitor detections + WHOIS ground truth."""
    whois = result.system.whois
    institution = {str(ip) for ip in result.system.proxy_pool.addresses}
    ip_uses: Counter = Counter()
    methods: Counter = Counter()
    for detection in result.monitor.detected_sites():
        for login in detection.logins:
            if str(login.event.ip) in institution:
                continue  # our own control traffic never lands here anyway
            ip_uses[login.event.ip] += 1
            methods[login.event.method.value] += 1

    country_by_ip = {}
    kind_by_ip = {}
    for ip in ip_uses:
        record = whois.lookup(ip)
        country_by_ip[ip] = record.country if record else "??"
        kind_by_ip[ip] = record.kind if record else None

    countries: Counter = Counter(country_by_ip.values())
    return AttackerIpReport(
        total_logins=sum(ip_uses.values()),
        distinct_ips=len(ip_uses),
        repeated_ips=sum(1 for _ip, n in ip_uses.items() if n > 1),
        max_uses_single_ip=max(ip_uses.values(), default=0),
        country_counts=tuple(countries.most_common()),
        residential_ips=sum(1 for k in kind_by_ip.values() if k is HostKind.RESIDENTIAL),
        datacenter_ips=sum(1 for k in kind_by_ip.values() if k is HostKind.DATACENTER),
        method_counts=tuple(methods.most_common()),
    )


def render_attacker_ip_report(report: AttackerIpReport, top_countries: int = 8) -> str:
    """Plain-text rendering with the paper's headline numbers inline."""
    lines = [
        "Attacker login-IP analysis (Section 6.4.3)",
        f"  logins observed:   {report.total_logins}   (paper: ~1,792)",
        f"  distinct IPs:      {report.distinct_ips}   (paper: 1,316)",
        f"  IPs seen >1 time:  {report.repeated_ips}   (paper: 181)",
        f"  max uses, one IP:  {report.max_uses_single_ip}   (paper: 58)",
        f"  residential IPs:   {report.residential_ips}",
        f"  datacenter IPs:    {report.datacenter_ips}",
        "",
    ]
    body = [[code, count] for code, count in report.country_counts[:top_countries]]
    lines.append(
        render_table(["Country", "Distinct IPs"], body,
                     title="Top countries (paper: RU 194, CN 144, US 135, VN 89)",
                     align_right=(1,))
    )
    body2 = [[m, c] for m, c in report.method_counts]
    lines.append("")
    lines.append(render_table(["Method", "Logins"], body2,
                              title="Access methods (paper: typically IMAP)",
                              align_right=(1,)))
    return "\n".join(lines)
