"""Attack-class separation and cross-site breach correlation.

Tripwire's core inference is cross-site: a provider-side login with a
site-specific password implicates exactly the site that held it.  The
stuffing campaign stream generalizes the question — attacker-held
credentials now arrive through three channels, and this module shows
they stay separable in the output tables:

- **online capture**: plaintext tapped at a breached site, replayed
  with no cracking delay;
- **offline crack**: recovered from a hash dump, only the cracked
  subset replays;
- **stuffed reuse**: either haul fanned out across other sites and the
  provider — the replay channel itself.

The correlation builder then runs the paper's attribution in reverse:
given only the set of provider accounts a wave compromised (its
``hit_users``) and site membership knowledge, infer which breached
site seeded the wave.  Exact reusers leak their mailbox password only
at sites they are members of, so the seeding breach is the candidate
site containing *every* hit — scored as membership coverage, smallest
membership winning ties (most specific explanation).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.tables import render_table


@dataclass(frozen=True)
class AttackClassRow:
    """Aggregate replay outcome for one acquisition channel."""

    attack_class: str
    waves: int
    candidates: int
    attempts: int
    successes: int

    @property
    def success_rate(self) -> float:
        return self.successes / self.attempts if self.attempts else 0.0


def build_stuffing_classes(waves) -> list[AttackClassRow]:
    """Aggregate waves by acquisition channel, plus the replay total.

    ``waves`` is a list of
    :class:`~repro.attacker.stuffing.StuffingWaveResult`.  Every wave
    is stuffed reuse at the provider; its corpus came from exactly one
    acquisition channel — the split the paper's operators needed when
    attributing a compromise to a leak mechanism.
    """
    rows = []
    for channel in ("online_capture", "offline_crack"):
        members = [w for w in waves if w.acquisition == channel]
        rows.append(
            AttackClassRow(
                attack_class=channel,
                waves=len(members),
                candidates=sum(w.candidates for w in members),
                attempts=sum(w.attempts for w in members),
                successes=sum(w.successes for w in members),
            )
        )
    rows.append(
        AttackClassRow(
            attack_class="stuffed_reuse",
            waves=len(waves),
            candidates=sum(w.candidates for w in waves),
            attempts=sum(w.attempts for w in waves),
            successes=sum(w.successes for w in waves),
        )
    )
    return rows


def render_stuffing_classes(rows: list[AttackClassRow]) -> str:
    return render_table(
        ["Attack class", "Waves", "Candidates", "Attempts", "Successes",
         "Success rate"],
        [
            [r.attack_class, str(r.waves), str(r.candidates),
             str(r.attempts), str(r.successes), f"{r.success_rate:.1%}"]
            for r in rows
        ],
        title="Credential acquisition and replay channels",
    )


@dataclass(frozen=True)
class WaveAttribution:
    """One wave's inferred seeding breach vs the recorded truth."""

    wave: int
    true_site_rank: int
    inferred_site_rank: int | None
    hits: int
    coverage: float  # share of hits inside the inferred site's membership

    @property
    def correct(self) -> bool:
        return self.inferred_site_rank == self.true_site_rank


@dataclass(frozen=True)
class CorrelationReport:
    """Cross-site correlation over a campaign's waves."""

    attributions: list[WaveAttribution]

    @property
    def attributed(self) -> int:
        return sum(1 for a in self.attributions if a.inferred_site_rank is not None)

    @property
    def correct(self) -> int:
        return sum(1 for a in self.attributions if a.correct)

    @property
    def accuracy(self) -> float:
        return self.correct / len(self.attributions) if self.attributions else 0.0


def build_stuffing_correlation(
    waves, model, universe: int, candidate_ranks=None
) -> CorrelationReport:
    """Infer each wave's seeding breach from its compromised accounts.

    ``model`` is the campaign's
    :class:`~repro.identity.reuse.CrossSiteReuseModel` (site-membership
    knowledge — what Tripwire's registrations establish);
    ``candidate_ranks`` defaults to the set of sites any wave actually
    breached (the analyst's watch list).  A wave with no hits cannot be
    attributed and counts against accuracy.
    """
    if candidate_ranks is None:
        candidate_ranks = sorted({w.site_rank for w in waves})
    memberships = {
        rank: frozenset(model.members(rank, universe))
        for rank in candidate_ranks
    }
    attributions = []
    for wave in waves:
        hits = set(wave.hit_users)
        best_rank: int | None = None
        best_key: tuple | None = None
        if hits:
            for rank in candidate_ranks:
                members = memberships[rank]
                coverage = len(hits & members) / len(hits)
                # Highest coverage wins; among full covers the smallest
                # membership is the most specific explanation; then the
                # lowest rank for a total order.
                key = (coverage, -len(members), -rank)
                if best_key is None or key > best_key:
                    best_key = key
                    best_rank = rank
        coverage = best_key[0] if best_key is not None else 0.0
        attributions.append(
            WaveAttribution(
                wave=wave.wave,
                true_site_rank=wave.site_rank,
                inferred_site_rank=best_rank,
                hits=len(hits),
                coverage=coverage,
            )
        )
    return CorrelationReport(attributions=attributions)


def render_stuffing_correlation(report: CorrelationReport) -> str:
    rows = [
        [str(a.wave), str(a.true_site_rank),
         "-" if a.inferred_site_rank is None else str(a.inferred_site_rank),
         str(a.hits), f"{a.coverage:.0%}", "yes" if a.correct else "NO"]
        for a in report.attributions
    ]
    rows.append(
        ["", "", "", "", "accuracy",
         f"{report.correct}/{len(report.attributions)}"]
    )
    return render_table(
        ["Wave", "Breached site", "Inferred site", "Hits", "Coverage",
         "Correct"],
        rows,
        title="Cross-site breach correlation",
    )
