"""Stratified eligibility incidence for store-scale populations.

Table 4 surveys contiguous 100-site windows — right for a ~30k-site
population, too coarse for a million-site world store.  This builder
scales the same measurement with the Common Crawl/Tranco idiom:
fixed-size random rank samples within nested strata (top 1k, 10k,
100k, 1M), drawn deterministically by
:class:`repro.store.strata.StrataSampler` and answered by streaming
only the sampled ranks' specs — so the cost is O(samples), whatever
the world size, and a store-backed pass never holds more than the
page cache's budget of specs.
"""

from __future__ import annotations

from repro.analysis.table4 import PAPER_TABLE4, SpecSource
from repro.store.strata import DEFAULT_STRATA, StrataSampler, StratumIncidence
from repro.util.tables import render_table

__all__ = ["build_strata_table", "render_strata_table"]


def build_strata_table(
    source: SpecSource,
    seed: int,
    *,
    strata: tuple[int, ...] = DEFAULT_STRATA,
    sample_size: int = 100,
) -> list[StratumIncidence]:
    """Per-stratum eligibility incidence over a spec source.

    ``seed`` should be the world's root seed so the drawn ranks are a
    stable property of the world, not of the analysis invocation.
    """
    sampler = StrataSampler(
        seed, source.size, strata=strata, sample_size=sample_size
    )
    return sampler.incidence(source)


def render_strata_table(
    rows: list[StratumIncidence], include_paper: bool = True
) -> str:
    """Plain-text stratified incidence, with the paper's windows inline.

    The paper's Table 4 rows are keyed by window *start* rank; they sit
    beside the stratum whose bound matches their order of magnitude
    (start 1,000 ↔ top-1k stratum, and so on) as a sanity anchor.
    """
    body = []
    for row in rows:
        stratum = row.stratum
        label = f"top {stratum.bound:,}"
        if stratum.clipped_bound != stratum.bound:
            label += f" (clipped {stratum.clipped_bound:,})"
        body.append(
            [label, str(stratum.sample_size)] + row.as_percent_cells()
        )
        if include_paper and stratum.bound in PAPER_TABLE4:
            paper = PAPER_TABLE4[stratum.bound]
            body.append(
                [f"  (paper, start {stratum.bound:,})", "100"]
                + [f"{100 * v:.0f}%" for v in paper]
            )
    return render_table(
        ["Stratum", "Sample", "Load Failure", "Not English",
         "No Registration", "Ineligible", "Rest"],
        body,
        title="Stratified registration eligibility (rank-sampled strata)",
        align_right=(1, 2, 3, 4, 5, 6),
    )
