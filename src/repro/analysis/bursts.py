"""Burstiness analysis of attacker logins (Section 6.4.2).

The paper reports two burst shapes: *multi-IP bursts* — many distinct
IPs hitting one account in rapid succession (peak: 46 IPs in 10 minutes
on account g1) — and *single-IP hammering* — one IP logging in dozens
or hundreds of times within seconds, making up 75%+ of some accounts'
logins.  This module detects both in a pilot's attributed logins.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.monitor import CompromiseMonitor
from repro.util.tables import render_table
from repro.util.timeutil import MINUTE

#: Window for the multi-IP burst definition (the paper's "10 minutes").
MULTI_IP_WINDOW = 10 * MINUTE
#: Minimum distinct IPs inside the window to call it a burst.
MULTI_IP_THRESHOLD = 5
#: Window for single-IP hammering ("within a few seconds" per login).
HAMMER_WINDOW = 60
HAMMER_THRESHOLD = 10


@dataclass(frozen=True)
class AccountBurstiness:
    """Burst statistics for one account."""

    email_local: str
    site_host: str
    total_logins: int
    peak_ips_in_window: int  # distinct IPs within any 10-minute window
    max_hammer_run: int  # logins by one IP within any 60-second window
    hammer_share: float  # fraction of logins inside hammer runs

    @property
    def has_multi_ip_burst(self) -> bool:
        return self.peak_ips_in_window >= MULTI_IP_THRESHOLD

    @property
    def has_hammering(self) -> bool:
        return self.max_hammer_run >= HAMMER_THRESHOLD


def analyze_account(email_local: str, site_host: str, logins) -> AccountBurstiness:
    """Compute burst statistics over one account's logins."""
    events = sorted(logins, key=lambda l: l.event.time)
    times_ips = [(l.event.time, l.event.ip) for l in events]

    peak_ips = 0
    for start_index, (start, _ip) in enumerate(times_ips):
        window_ips = {
            ip for t, ip in times_ips[start_index:] if t - start <= MULTI_IP_WINDOW
        }
        peak_ips = max(peak_ips, len(window_ips))

    max_run = 0
    hammered = 0
    by_ip: dict = {}
    for t, ip in times_ips:
        by_ip.setdefault(ip, []).append(t)
    for ip, times in by_ip.items():
        for start_index, start in enumerate(times):
            run = sum(1 for t in times[start_index:] if t - start <= HAMMER_WINDOW)
            if run > max_run:
                max_run = run
            if run >= HAMMER_THRESHOLD:
                hammered = max(hammered, run)

    total = len(times_ips)
    return AccountBurstiness(
        email_local=email_local,
        site_host=site_host,
        total_logins=total,
        peak_ips_in_window=peak_ips,
        max_hammer_run=max_run,
        hammer_share=hammered / total if total else 0.0,
    )


def build_burst_report(monitor: CompromiseMonitor) -> list[AccountBurstiness]:
    """Per-account burst statistics over all detections."""
    rows = []
    for detection in monitor.detected_sites():
        per_account: dict[str, list] = {}
        for login in detection.logins:
            per_account.setdefault(login.event.local_part, []).append(login)
        for local, logins in sorted(per_account.items()):
            rows.append(analyze_account(local, detection.site_host, logins))
    return rows


def render_burst_report(rows: list[AccountBurstiness]) -> str:
    """Plain-text §6.4.2 summary."""
    bursty = [r for r in rows if r.has_multi_ip_burst]
    hammering = [r for r in rows if r.has_hammering]
    body = [
        [r.email_local[:14], r.total_logins, r.peak_ips_in_window,
         r.max_hammer_run, f"{r.hammer_share:.0%}"]
        for r in rows if r.has_multi_ip_burst or r.has_hammering
    ]
    table = render_table(
        ["Account", "Logins", "Peak IPs/10min", "Max one-IP run/60s", "Hammer share"],
        body,
        title="Section 6.4.2: bursty login behavior",
        align_right=(1, 2, 3, 4),
    )
    summary = (
        f"\naccounts with multi-IP bursts: {len(bursty)} of {len(rows)} "
        "(paper: 11 of 30, peak 46 IPs in 10 minutes)\n"
        f"accounts with single-IP hammering: {len(hammering)} "
        "(paper: 9, up to 75%+ of an account's logins)"
    )
    return table + summary
