"""Figure 3: the registration funnel.

Left third — ground-truth eligibility of all submitted sites (the
paper estimated it from the Table 4 survey).  Middle third — crawler
outcomes on the sites it understood as eligible (i.e., excluding
non-English exits).  Right third — estimated success after the email
evidence and sampling discounts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crawler.outcomes import TerminationCode
from repro.core.scenario import PilotResult


@dataclass(frozen=True)
class Fig3Data:
    """The funnel's three panels, as fractions."""

    # Panel 1: of all distinct sites attempted.
    sites_total: int
    ineligible_fraction: float
    eligible_fraction: float
    # Panel 2: of crawler-eligible attempts (non-English excluded).
    crawler_attempts: int
    no_form_fraction: float
    system_error_fraction: float
    fields_missing_fraction: float
    heuristics_failed_fraction: float
    crawler_ok_fraction: float
    # Panel 3: estimated final success on eligible sites.
    estimated_success_on_eligible: float
    estimated_valid_accounts: int


def build_fig3(result: PilotResult) -> Fig3Data:
    """Compute the funnel from a pilot run."""
    population = result.system.population
    attempts = [a for a in result.campaign.attempts if not a.manual]

    hosts = {a.site_host for a in attempts}
    eligible_hosts = set()
    for host in hosts:
        rank = population.rank_of_host(host)
        if rank is not None and population.spec_at_rank(rank).eligible_for_tripwire:
            eligible_hosts.add(host)
    sites_total = len(hosts)
    eligible_fraction = len(eligible_hosts) / sites_total if sites_total else 0.0

    considered = [a for a in attempts if a.outcome.code is not TerminationCode.NOT_ENGLISH]
    n = len(considered)

    def share(*codes: TerminationCode) -> float:
        if n == 0:
            return 0.0
        return sum(1 for a in considered if a.outcome.code in codes) / n

    # Estimated valid accounts on eligible sites.
    valid_total = sum(e.estimated_total for e in result.estimates if e.status.value != "manual")
    eligible_attempts = [a for a in considered if a.site_host in eligible_hosts]
    success_on_eligible = 0.0
    if eligible_attempts:
        # Discount believed successes by the measured category rates.
        rate_by_status = {e.status: e.success_rate for e in result.estimates}
        from repro.core.classify import classify_attempt

        credited = 0.0
        for attempt in eligible_attempts:
            status = classify_attempt(attempt, result.system.mail_server)
            if status is not None:
                credited += rate_by_status.get(status, 0.0)
        success_on_eligible = credited / len(eligible_attempts)

    return Fig3Data(
        sites_total=sites_total,
        ineligible_fraction=1.0 - eligible_fraction,
        eligible_fraction=eligible_fraction,
        crawler_attempts=n,
        no_form_fraction=share(TerminationCode.NO_REGISTRATION_FOUND),
        # The paper's "system errors" bucket covers both transient
        # crashes and exhausted budgets; the enum split is ours.
        system_error_fraction=share(
            TerminationCode.SYSTEM_ERROR, TerminationCode.BUDGET_EXHAUSTED
        ),
        fields_missing_fraction=share(TerminationCode.REQUIRED_FIELDS_MISSING),
        heuristics_failed_fraction=share(TerminationCode.SUBMISSION_HEURISTICS_FAILED),
        crawler_ok_fraction=share(TerminationCode.OK_SUBMISSION),
        estimated_success_on_eligible=success_on_eligible,
        estimated_valid_accounts=valid_total,
    )


def render_fig3(data: Fig3Data) -> str:
    """Plain-text funnel in the paper's three panels."""
    paper = {
        "ineligible": 0.638, "no_form": 0.472, "system": 0.191,
        "unavailable": 0.215, "ok": 0.122, "success_on_eligible": 0.188,
    }
    lines = [
        "Figure 3: outcomes of Tripwire's registration attempts",
        "",
        f"Panel 1 (all {data.sites_total} submitted sites, ground truth):",
        f"  ineligible                  {data.ineligible_fraction:6.1%}   (paper: {paper['ineligible']:.1%})",
        f"  eligible                    {data.eligible_fraction:6.1%}",
        "",
        f"Panel 2 (crawler view, {data.crawler_attempts} non-skipped attempts):",
        f"  no registration found       {data.no_form_fraction:6.1%}   (paper: {paper['no_form']:.1%} incl. multistage)",
        f"  system errors               {data.system_error_fraction:6.1%}   (paper: {paper['system']:.1%})",
        f"  fields missing/unavailable  {data.fields_missing_fraction:6.1%}   (paper: {paper['unavailable']:.1%} incl. captcha)",
        f"  submission heuristics fail  {data.heuristics_failed_fraction:6.1%}",
        f"  system-estimated success    {data.crawler_ok_fraction:6.1%}   (paper: {paper['ok']:.1%})",
        "",
        "Panel 3 (estimated):",
        f"  success on eligible sites   {data.estimated_success_on_eligible:6.1%}   (paper: ~{paper['success_on_eligible']:.1%})",
        f"  estimated valid accounts    {data.estimated_valid_accounts}",
    ]
    return "\n".join(lines)
