"""Analysis: builders for every table and figure in the evaluation.

Each module consumes a :class:`repro.core.scenario.PilotResult` (or the
relevant sub-objects) and produces (a) structured rows for tests and
benches, and (b) a plain-text rendering in the paper's layout.
"""

from repro.analysis.table1 import build_table1, render_table1
from repro.analysis.table2 import build_table2, render_table2, assign_site_letters
from repro.analysis.table3 import build_table3, render_table3
from repro.analysis.table4 import build_table4, render_table4
from repro.analysis.strata import build_strata_table, render_strata_table
from repro.analysis.fig1 import build_fig1, render_fig1, crawler_flow_graph
from repro.analysis.fig2 import build_fig2, render_fig2
from repro.analysis.fig3 import build_fig3, render_fig3
from repro.analysis.attacker_ips import build_attacker_ip_report, render_attacker_ip_report
from repro.analysis.ethics import audit_load, render_ethics_audit
from repro.analysis.bursts import build_burst_report, render_burst_report
from repro.analysis.stuffing import (
    build_stuffing_classes,
    build_stuffing_correlation,
    render_stuffing_classes,
    render_stuffing_correlation,
)
from repro.analysis.undetected import (
    MissReason,
    explain_miss,
    miss_report,
    render_miss_report,
)

__all__ = [
    "audit_load", "render_ethics_audit",
    "build_burst_report", "render_burst_report",
    "MissReason", "explain_miss", "miss_report", "render_miss_report",
    "build_table1", "render_table1",
    "build_table2", "render_table2", "assign_site_letters",
    "build_table3", "render_table3",
    "build_table4", "render_table4",
    "build_strata_table", "render_strata_table",
    "build_fig1", "render_fig1", "crawler_flow_graph",
    "build_fig2", "render_fig2",
    "build_fig3", "render_fig3",
    "build_attacker_ip_report", "render_attacker_ip_report",
    "build_stuffing_classes", "render_stuffing_classes",
    "build_stuffing_correlation", "render_stuffing_correlation",
]
