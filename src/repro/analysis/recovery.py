"""Section 6.1.4: recovery from compromise.

After detection, Tripwire registered fresh accounts at the compromised
sites (mid-May 2016).  "To date, only our additional account at site H
has been accessed and none others" — i.e. most sites were either
breached at a single point in time or had recovered.  This module
reports the fate of every re-registered account.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.scenario import PilotResult
from repro.util.tables import render_table
from repro.util.timeutil import MANUAL_CRAWL_START, format_instant


@dataclass(frozen=True)
class ReregistrationFate:
    """What happened to one post-detection account."""

    site_host: str
    email_local: str
    registered_at: int
    accessed: bool
    first_access: int | None


def build_recovery_report(result: PilotResult) -> list[ReregistrationFate]:
    """Fate of every re-registration attempt's account."""
    fates = []
    rereg_window_start = MANUAL_CRAWL_START
    for attempt in result.campaign.attempts:
        if attempt.site_host not in result.reregistration_hosts:
            continue
        if attempt.registered_at < rereg_window_start or not attempt.exposed:
            continue
        local = attempt.identity.email_local
        accesses = [
            login.event.time
            for login in result.monitor.logins_for_account(local)
        ]
        fates.append(
            ReregistrationFate(
                site_host=attempt.site_host,
                email_local=local,
                registered_at=attempt.registered_at,
                accessed=bool(accesses),
                first_access=min(accesses) if accesses else None,
            )
        )
    return fates


def render_recovery_report(fates: list[ReregistrationFate]) -> str:
    """Plain-text §6.1.4 summary."""
    rows = [
        [
            fate.site_host,
            format_instant(fate.registered_at),
            "ACCESSED" if fate.accessed else "quiet",
            format_instant(fate.first_access) if fate.first_access else "-",
        ]
        for fate in fates
    ]
    table = render_table(
        ["Site", "Re-registered", "Fate", "First access"], rows,
        title="Section 6.1.4: post-detection re-registrations",
    )
    accessed = sum(1 for f in fates if f.accessed)
    return (
        f"{table}\n\nre-registered accounts later accessed: {accessed} of "
        f"{len(fates)} (paper: 1 of ~14 — only site H)"
    )
