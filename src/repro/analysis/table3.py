"""Table 3: number and date range of login activity per account."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.table2 import assign_site_letters
from repro.core.scenario import PilotResult
from repro.email_provider.accounts import AccountState
from repro.util.tables import render_table
from repro.util.timeutil import days_between


@dataclass(frozen=True)
class Table3Row:
    """Login statistics for one compromised account."""

    alias: str  # e.g. "a1": site letter + per-site index
    email_local: str  # ground truth (not printed anonymized)
    password_type: str  # "hard" | "easy"
    login_count: int
    days_until_first: int  # registration → first access
    days_since_last: int  # last access → observation end
    frozen: str  # "Y"/"N": provider froze/closed the account
    days_accessed: int  # first access → last access


def build_table3(result: PilotResult) -> list[Table3Row]:
    """One row per accessed account, grouped by site letter."""
    letters = assign_site_letters(result.monitor)
    end = result.config.end
    rows: list[Table3Row] = []
    for detection in result.monitor.detected_sites():
        letter = letters[detection.site_host].lower()
        per_account: dict[str, list] = {}
        for login in detection.logins:
            per_account.setdefault(login.event.local_part, []).append(login)
        # Index accounts by their registration order at the site.
        ordered = sorted(
            per_account.items(),
            key=lambda item: _registration_time(result, item[0]),
        )
        for index, (local, logins) in enumerate(ordered, start=1):
            identity = result.system.pool.identity_for_email(
                f"{local}@{result.system.provider.domain}"
            )
            account = result.system.provider.account(local)
            times = sorted(l.event.time for l in logins)
            registered = _registration_time(result, local)
            frozen = "N"
            if account is not None and account.state is not AccountState.ACTIVE:
                frozen = "Y"
            rows.append(
                Table3Row(
                    alias=f"{letter}{index}",
                    email_local=local,
                    password_type=identity.password_class.value if identity else "?",
                    login_count=len(times),
                    days_until_first=days_between(registered, times[0]),
                    days_since_last=days_between(times[-1], end),
                    frozen=frozen,
                    days_accessed=days_between(times[0], times[-1]),
                )
            )
    return rows


def _registration_time(result: PilotResult, local: str) -> int:
    for attempt in result.campaign.attempts:
        if attempt.identity.email_local == local:
            return attempt.registered_at
    return 0


def render_table3(rows: list[Table3Row]) -> str:
    """Plain-text Table 3."""
    body = [
        [
            row.alias,
            row.password_type,
            row.login_count,
            row.days_until_first,
            row.days_since_last,
            row.frozen,
            row.days_accessed,
        ]
        for row in rows
    ]
    return render_table(
        ["Account", "Type", "# Logins", "Until", "Since", "Frozen", "Days Accessed"],
        body,
        title="Table 3: Number and date range of login activity for compromised accounts",
        align_right=(2, 3, 4, 6),
    )
