"""Table 4: registration eligibility by Alexa rank (manual survey).

The paper manually visited 100-site windows starting at ranks 1, 1,000
and 10,000 (plus a 100,000 spot check) and bucketed each site.  Here
the survey reads the population's ground-truth specs over the same
windows — the "manual" inspection is exact by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.util.tables import render_table


class SpecSource(Protocol):
    """Any ground-truth spec source: a live population or a world store.

    Satisfied by :class:`repro.web.population.InternetPopulation` and
    :class:`repro.store.world.WorldStore` — the builder only needs a
    population size and bucket counts for a rank set.
    """

    size: int

    def eligibility_ground_truth(self, ranks: list[int]) -> dict[str, int]: ...


@dataclass(frozen=True)
class Table4Row:
    """One 100-site sample window."""

    start_rank: int
    sample_size: int
    load_failure: float  # fractions of the sample
    non_english: float
    no_registration: float
    ineligible: float
    rest: float

    def as_percent_cells(self) -> list[str]:
        return [
            f"{100 * self.load_failure:.0f}%",
            f"{100 * self.non_english:.0f}%",
            f"{100 * self.no_registration:.0f}%",
            f"{100 * self.ineligible:.0f}%",
            f"{100 * self.rest:.0f}%",
        ]


#: The paper's measured rows, for side-by-side comparison.
PAPER_TABLE4 = {
    1: (0.03, 0.43, 0.07, 0.04, 0.43),
    1000: (0.09, 0.37, 0.15, 0.06, 0.33),
    10000: (0.08, 0.53, 0.16, 0.05, 0.18),
    100000: (0.08, 0.43, 0.29, 0.03, 0.17),
}


def build_table4(
    population: SpecSource,
    start_ranks: tuple[int, ...] = (1, 1000, 10000),
    sample_size: int = 100,
) -> list[Table4Row]:
    """Survey 100-site windows; windows beyond the population are skipped."""
    rows = []
    for start in start_ranks:
        end = start + sample_size - 1
        if end > population.size:
            continue
        ranks = list(range(start, end + 1))
        counts = population.eligibility_ground_truth(ranks)
        n = len(ranks)
        rows.append(
            Table4Row(
                start_rank=start,
                sample_size=n,
                load_failure=counts["load_failure"] / n,
                non_english=counts["non_english"] / n,
                no_registration=counts["no_registration"] / n,
                ineligible=counts["ineligible"] / n,
                rest=counts["rest"] / n,
            )
        )
    return rows


def average_row(rows: list[Table4Row]) -> Table4Row:
    """The unweighted average across sample windows (the paper's
    'Average' row covers the first three windows)."""
    n = len(rows)
    if n == 0:
        raise ValueError("no rows to average")
    return Table4Row(
        start_rank=-1,
        sample_size=sum(r.sample_size for r in rows),
        load_failure=sum(r.load_failure for r in rows) / n,
        non_english=sum(r.non_english for r in rows) / n,
        no_registration=sum(r.no_registration for r in rows) / n,
        ineligible=sum(r.ineligible for r in rows) / n,
        rest=sum(r.rest for r in rows) / n,
    )


def render_table4(rows: list[Table4Row], include_paper: bool = True) -> str:
    """Plain-text Table 4, optionally with the paper's rows inline."""
    body = []
    for row in rows:
        body.append([str(row.start_rank)] + row.as_percent_cells())
        if include_paper and row.start_rank in PAPER_TABLE4:
            paper = PAPER_TABLE4[row.start_rank]
            body.append(
                [f"  (paper {row.start_rank})"] + [f"{100 * v:.0f}%" for v in paper]
            )
    if rows:
        avg = average_row(rows)
        body.append(["Average"] + avg.as_percent_cells())
    return render_table(
        ["Start Rank", "Load Failure", "Not English", "No Registration",
         "Ineligible", "Rest"],
        body,
        title="Table 4: Registration eligibility of sites (100-site samples)",
        align_right=(1, 2, 3, 4, 5),
    )
