"""Table 1: estimates of accounts created, by account status."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.classify import PAPER_SUCCESS_RATES
from repro.core.estimation import CategoryEstimate
from repro.util.tables import render_table


@dataclass(frozen=True)
class Table1Row:
    """One row of Table 1."""

    label: str
    attempted_hard: int
    attempted_easy: int
    attempted_total: int
    attempted_sites: int
    success_rate: float
    estimated_hard: int
    estimated_easy: int
    estimated_total: int
    estimated_sites: int
    paper_success_rate: float


def build_table1(estimates: list[CategoryEstimate]) -> list[Table1Row]:
    """Rows in the paper's order, plus a Total row."""
    rows = [
        Table1Row(
            label=e.status.label,
            attempted_hard=e.attempted_hard,
            attempted_easy=e.attempted_easy,
            attempted_total=e.attempted_total,
            attempted_sites=e.attempted_sites,
            success_rate=e.success_rate,
            estimated_hard=e.estimated_hard,
            estimated_easy=e.estimated_easy,
            estimated_total=e.estimated_total,
            estimated_sites=e.estimated_sites,
            paper_success_rate=PAPER_SUCCESS_RATES[e.status],
        )
        for e in estimates
    ]
    rows.append(
        Table1Row(
            label="Total",
            attempted_hard=sum(r.attempted_hard for r in rows),
            attempted_easy=sum(r.attempted_easy for r in rows),
            attempted_total=sum(r.attempted_total for r in rows),
            attempted_sites=sum(r.attempted_sites for r in rows),
            success_rate=float("nan"),
            estimated_hard=sum(r.estimated_hard for r in rows),
            estimated_easy=sum(r.estimated_easy for r in rows),
            estimated_total=sum(r.estimated_total for r in rows),
            estimated_sites=sum(r.estimated_sites for r in rows),
            paper_success_rate=float("nan"),
        )
    )
    return rows


def render_table1(rows: list[Table1Row]) -> str:
    """Plain-text Table 1 with measured vs paper success rates."""
    total_est = max(1, rows[-1].estimated_total)
    body = []
    for row in rows:
        is_total = row.label == "Total"
        share = f"({100 * row.estimated_total / total_est:.0f}%)"
        body.append([
            row.label,
            row.attempted_hard,
            row.attempted_easy,
            row.attempted_total,
            row.attempted_sites,
            "-" if is_total else f"{row.success_rate:.0%}",
            "-" if is_total else f"{row.paper_success_rate:.0%}",
            row.estimated_hard,
            row.estimated_easy,
            f"{row.estimated_total} {share}",
            row.estimated_sites,
        ])
    return render_table(
        ["Account Status", "Hard", "Easy", "Total", "Sites",
         "Success", "Paper", "Est.Hard", "Est.Easy", "Est.Total", "Est.Sites"],
        body,
        title="Table 1: Estimates of accounts created by account status",
        align_right=range(1, 11),
    )
