"""Section 6.2: why known breaches go undetected.

The paper examined 50 publicly-reported breaches and classified why its
implementation missed each: 22 out of scale/scope (rank too low for the
corpus), 7 non-English, 14 technical limitations (multi-page forms, bot
checks, unlocatable registration pages, an uncompleted verification)
and 6 inherent (payment or offline-only registration).  This module
performs the same post-mortem for any breached host in a pilot world.
"""

from __future__ import annotations

import enum

from repro.core.campaign import AttemptRecord, RegistrationCampaign
from repro.core.system import TripwireSystem
from repro.crawler.outcomes import TerminationCode
from repro.mail.server import VerificationOutcome
from repro.web.spec import BotCheck, RegistrationStyle, SiteSpec


class MissReason(enum.Enum):
    """Why Tripwire missed (or caught) a breach, per §6.2's taxonomy."""

    DETECTED = "detected"
    # -- missed due to scale/scope (§6.2.1) ---------------------------------
    RANK_OUTSIDE_CORPUS = "rank_outside_corpus"
    NON_ENGLISH = "non_english"
    # -- missed due to technical challenge (§6.2.2) ---------------------------
    MULTI_PAGE_FORM = "multi_page_form"
    BOT_CHECK_FAILED = "bot_check_failed"
    REGISTRATION_PAGE_NOT_FOUND = "registration_page_not_found"
    VERIFICATION_INCOMPLETE = "verification_incomplete"
    FIELD_OR_POLICY_FAILURE = "field_or_policy_failure"
    CRAWLER_ERROR = "crawler_error"
    # -- missed due to inherent limitations (§6.2.3) ----------------------------
    PAYMENT_REQUIRED = "payment_required"
    OFFLINE_REGISTRATION_ONLY = "offline_registration_only"
    EMAIL_ADDRESS_REJECTED = "email_address_rejected"
    # -- missed despite a valid account ----------------------------------------
    ACCOUNT_NOT_EXPOSED = "account_not_exposed"  # shard luck / attacker sampling

    @property
    def category(self) -> str:
        """The §6.2 subsection grouping."""
        if self is MissReason.DETECTED:
            return "detected"
        if self in (MissReason.RANK_OUTSIDE_CORPUS, MissReason.NON_ENGLISH):
            return "scale/scope"
        if self in (MissReason.PAYMENT_REQUIRED,
                    MissReason.OFFLINE_REGISTRATION_ONLY,
                    MissReason.EMAIL_ADDRESS_REJECTED):
            return "inherent"
        if self is MissReason.ACCOUNT_NOT_EXPOSED:
            return "coverage"
        return "technical"


def explain_miss(
    system: TripwireSystem,
    campaign: RegistrationCampaign,
    detected_hosts: set[str],
    host: str,
) -> MissReason:
    """Post-mortem one breached host against the pilot's ground truth."""
    if host in detected_hosts:
        return MissReason.DETECTED

    attempts = campaign.attempts_for_site(host)
    rank = system.population.rank_of_host(host)
    spec = system.population.spec_at_rank(rank) if rank else None

    if not attempts:
        return MissReason.RANK_OUTSIDE_CORPUS

    if spec is not None and not spec.is_english:
        return MissReason.NON_ENGLISH

    if spec is not None:
        inherent = _inherent_reason(spec, attempts)
        if inherent is not None:
            return inherent

    technical = _technical_reason(system, spec, attempts)
    if technical is not None:
        return technical
    return MissReason.ACCOUNT_NOT_EXPOSED


def _inherent_reason(spec: SiteSpec, attempts: list[AttemptRecord]) -> MissReason | None:
    if spec.registration_style is RegistrationStyle.PAYMENT_REQUIRED:
        return MissReason.PAYMENT_REQUIRED
    if spec.registration_style in (RegistrationStyle.OFFLINE_ONLY,
                                   RegistrationStyle.NONE,
                                   RegistrationStyle.EXTERNAL_ONLY):
        return MissReason.OFFLINE_REGISTRATION_ONLY
    if spec.max_email_length is not None:
        locals_too_long = all(
            len(a.identity.email_address) > spec.max_email_length for a in attempts
        )
        if locals_too_long:
            return MissReason.EMAIL_ADDRESS_REJECTED
    return None


def _technical_reason(
    system: TripwireSystem,
    spec: SiteSpec | None,
    attempts: list[AttemptRecord],
) -> MissReason | None:
    codes = {a.outcome.code for a in attempts}
    site = system.population.site_by_host(attempts[0].site_host)
    has_valid_account = False
    if site is not None:
        for attempt in attempts:
            if site.accounts.lookup(attempt.identity.email_address):
                has_valid_account = True
                break

    if has_valid_account:
        # An account exists: check whether verification was left
        # dangling (the paper's one §6.2.2 verification miss).
        for attempt in attempts:
            state = system.mail_server.verification_state(
                attempt.identity.email_local, since=attempt.registered_at
            )
            if state in (VerificationOutcome.SKIPPED, VerificationOutcome.FETCH_FAILED):
                account = site.accounts.lookup(attempt.identity.email_address)
                if account is not None and not account.activated:
                    return MissReason.VERIFICATION_INCOMPLETE
        return None  # valid account, no registration-side reason

    if spec is not None and spec.registration_style is RegistrationStyle.MULTISTAGE:
        return MissReason.MULTI_PAGE_FORM
    if TerminationCode.NO_REGISTRATION_FOUND in codes:
        return MissReason.REGISTRATION_PAGE_NOT_FOUND
    if spec is not None and spec.bot_check is not BotCheck.NONE and (
        TerminationCode.SUBMISSION_HEURISTICS_FAILED in codes
        or TerminationCode.OK_SUBMISSION in codes
        or TerminationCode.REQUIRED_FIELDS_MISSING in codes
    ):
        return MissReason.BOT_CHECK_FAILED
    error_codes = {TerminationCode.SYSTEM_ERROR, TerminationCode.BUDGET_EXHAUSTED}
    if codes & error_codes and codes <= error_codes:
        return MissReason.CRAWLER_ERROR
    if codes & {TerminationCode.REQUIRED_FIELDS_MISSING,
                TerminationCode.SUBMISSION_HEURISTICS_FAILED,
                TerminationCode.OK_SUBMISSION}:
        return MissReason.FIELD_OR_POLICY_FAILURE
    return MissReason.CRAWLER_ERROR


#: The paper's §6.2 distribution over its 50-breach sample.
PAPER_MISS_DISTRIBUTION = {
    "scale/scope": 29,  # 22 rank + 7 language
    "technical": 14,
    "inherent": 6,
    "verification (within technical)": 1,
}


def miss_report(
    system: TripwireSystem,
    campaign: RegistrationCampaign,
    detected_hosts: set[str],
    hosts: list[str],
) -> dict[MissReason, int]:
    """Tally miss reasons over a breached-host sample."""
    tally: dict[MissReason, int] = {}
    for host in hosts:
        reason = explain_miss(system, campaign, detected_hosts, host)
        tally[reason] = tally.get(reason, 0) + 1
    return tally


def render_miss_report(tally: dict[MissReason, int]) -> str:
    """Plain-text §6.2 summary with category subtotals."""
    from repro.util.tables import render_table

    categories: dict[str, int] = {}
    for reason, count in tally.items():
        categories[reason.category] = categories.get(reason.category, 0) + count
    rows = [
        [reason.value, reason.category, count]
        for reason, count in sorted(tally.items(), key=lambda kv: -kv[1])
    ]
    body = render_table(
        ["Reason", "Category", "Breaches"], rows,
        title="Section 6.2: why breaches were (not) detected",
        align_right=(2,),
    )
    subtotal = ", ".join(f"{k}={v}" for k, v in sorted(categories.items()))
    paper = ("paper (50 breaches): scale/scope=29, technical=14, inherent=6, "
             "plus 1 incomplete verification")
    return f"{body}\n\nsubtotals: {subtotal}\n{paper}"
