"""Section 5.2.2: phone calls to Tripwire's numbers.

No phone-based registration verification ever occurred, but sales teams
at free-trial sites called the numbers given at registration — 18 calls
from seven distinct self-identifying sources, all directly attributable
to Tripwire registrations.  This module attributes simulated sales
calls back to the identities whose numbers were dialed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.campaign import RegistrationCampaign
from repro.core.system import TripwireSystem
from repro.util.tables import render_table


@dataclass(frozen=True)
class AttributedCall:
    """One sales call tied back to a registration."""

    site_host: str
    phone: str
    identity_id: int


def collect_phone_calls(
    system: TripwireSystem, campaign: RegistrationCampaign
) -> tuple[list[AttributedCall], int]:
    """(attributable calls, unattributable calls) across the world.

    A call is attributable when the dialed number belongs to an
    identity burned to the calling site — the paper's "Hi, this is John
    from site X" cases.
    """
    phone_to_identity = {
        identity.phone: identity for identity in system.pool.all_identities()
    }
    attributable: list[AttributedCall] = []
    stray = 0
    for site in system.population.instantiated_sites():
        for phone in site.sales_call_numbers:
            identity = phone_to_identity.get(phone)
            if identity is None:
                stray += 1
                continue
            bound_site = system.pool.site_for(identity.identity_id)
            if bound_site == site.spec.host:
                attributable.append(
                    AttributedCall(site_host=site.spec.host, phone=phone,
                                   identity_id=identity.identity_id)
                )
            else:
                stray += 1
    return attributable, stray


def render_phone_call_report(calls: list[AttributedCall], stray: int) -> str:
    """Plain-text §5.2.2 summary."""
    sources = {c.site_host for c in calls}
    rows = [[c.site_host, c.phone[:3] + "-xxx-xxxx"] for c in calls]
    table = render_table(
        ["Calling site", "Number (redacted)"], rows,
        title="Section 5.2.2: sales calls to Tripwire phone numbers",
    )
    return (
        f"{table}\n\n"
        f"attributable calls: {len(calls)} from {len(sources)} distinct sites "
        "(paper: 18 calls, 7 sources)\n"
        f"unattributable calls: {stray} (paper: several wrong numbers/scams)"
    )
