"""Live service telemetry: the daemon's deterministic flight recorder.

Where the run journal (:mod:`repro.obs.journal`) is written once at
the *end* of a run, the flight recorder is flushed on every scheduler
epoch while the daemon is still running: schema-versioned JSONL
snapshots of sim-clock metrics — per-lifecycle-stream event counts and
last-fired instants, backpressure-queue accounting, the batch login
engine's vector/scalar path mix, provider throttle/window/evidence-log
sizes, monitor detections, checkpoint coverage — plus a bounded ring
of recent *notable* events (detections, lockouts, faults, queue
refusals) and the health-rule verdicts of :mod:`repro.obs.health`.

Determinism boundary
--------------------

Everything in the flight file is a pure function of the service
config's sim-shaping knobs (plus the login-batching/batch-size knobs,
which shape the engine path mix): snapshot bytes are **identical for
any worker count and executor**, and a resumed daemon re-flushes
replayed epochs to the same bytes as an uninterrupted run.  The CI
``live-smoke`` job cmp(1)s the file across executors, exactly like the
journal.

Wall-clock profiling — per-epoch dispatch seconds, logins/s,
process-local cache hit rates (LRU caches, the world store's page
cache, the warm spec cache) — is execution-shaped and therefore rides
a clearly separated side channel: ``<flight>.wall`` next to the flight
file, never cmp'd, never journaled, appended without atomicity
guarantees.  Nothing from the side channel ever feeds back into
snapshot or journal bytes.

Each flush rewrites the whole flight file through a temp file and
``os.replace`` — the file a reader (``repro obs top``/``tail``) sees
is always complete, never torn mid-record.
"""

from __future__ import annotations

import json
import os
from collections import deque
from pathlib import Path

from repro.util.timeutil import DAY, HOUR

#: Bump when the flight-record shapes change; readers check it.
FLIGHT_SCHEMA_VERSION = 1

#: Default capacity of the notable-event ring buffer.
DEFAULT_RING_CAPACITY = 64

#: Inter-fire gap buckets for the per-stream latency histograms
#: (service streams fire on hour-to-month cadences, not seconds).
STREAM_GAP_BOUNDS: tuple[int, ...] = (
    HOUR, 6 * HOUR, DAY, 3 * DAY, 7 * DAY, 14 * DAY, 30 * DAY, 90 * DAY
)


def _dumps(payload: dict) -> str:
    """Canonical one-line JSON (stable bytes across runs/platforms)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class FlightRecorder:
    """Writes the epoch-cadence flight file and its wall side channel.

    The recorder owns the *format*; what goes into a snapshot is the
    :class:`ServiceFlightProbe`'s job.  Sim-derived records accumulate
    in memory and each :meth:`flush` atomically rewrites the file, so
    a crashed daemon leaves the last complete flush, not a torn line.
    """

    def __init__(
        self,
        path: str | Path,
        meta: dict,
        ring_capacity: int = DEFAULT_RING_CAPACITY,
    ):
        self.path = Path(path)
        #: The non-deterministic side channel (never cmp'd, see module
        #: docstring).  A sibling file, so shipping the flight file
        #: alone ships only deterministic bytes.
        self.side_path = self.path.with_name(self.path.name + ".wall")
        self._lines: list[str] = [
            _dumps({
                "record": "flight_header",
                "schema_version": FLIGHT_SCHEMA_VERSION,
                "meta": dict(meta),
            })
        ]
        self._ring: deque[dict] = deque(maxlen=ring_capacity)
        self._flushes = 0

    @property
    def flushes(self) -> int:
        """How many snapshots have been written so far."""
        return self._flushes

    def note(self, sim_time: int, kind: str, **attrs: object) -> None:
        """Record one notable event into the bounded ring."""
        self._ring.append({"sim_time": sim_time, "kind": kind, **attrs})

    def notable(self) -> list[dict]:
        """The ring's current contents, oldest first."""
        return list(self._ring)

    def flush(self, snapshot: dict, health: list | None = None) -> None:
        """Append one snapshot (+ health verdicts) and rewrite the file.

        ``snapshot`` is the sim-derived payload (see
        :meth:`ServiceFlightProbe.snapshot`); ``health`` is a list of
        :class:`~repro.obs.health.HealthStatus`.  The ring rides along
        inside the snapshot record so the latest snapshot is
        self-contained for ``obs top``.
        """
        seq = self._flushes
        record = {"record": "snapshot", "seq": seq, **snapshot}
        record["notable"] = self.notable()
        self._lines.append(_dumps(record))
        for status in health or ():
            self._lines.append(_dumps({
                "record": "health",
                "seq": seq,
                "rule": status.rule,
                "status": status.status,
                "detail": status.detail_dict(),
            }))
        self._flushes += 1
        payload = ("\n".join(self._lines) + "\n").encode("utf-8")
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_bytes(payload)
        os.replace(tmp, self.path)

    def profile(self, payload: dict) -> None:
        """Append one wall-clock record to the side channel.

        Deliberately plain append (no temp-file dance): the side
        channel is advisory and execution-shaped; a torn tail line is
        acceptable there and impossible in the flight file.
        """
        with self.side_path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(payload, sort_keys=True) + "\n")


class ServiceFlightProbe:
    """Collects one deterministic snapshot per epoch from the daemon.

    Holds references into the live service world and tracks per-flush
    deltas so notable events (new detections, queue refusals, faults,
    lockouts) land in the recorder's ring exactly once.  Every value
    read here is sim-derived state of the *main-process* service
    world — never worker-local, never wall-clock — which is what makes
    the snapshot bytes executor-invariant.
    """

    def __init__(self, recorder: FlightRecorder, system, monitor, lifecycle,
                 scheduler):
        self.recorder = recorder
        self.system = system
        self.monitor = monitor
        self.lifecycle = lifecycle
        self.scheduler = scheduler
        self._last: dict[str, int] = {}

    def _delta(self, key: str, value: int) -> int:
        """Change in ``value`` since the previous flush (>= 0)."""
        previous = self._last.get(key, 0)
        self._last[key] = value
        return value - previous

    def snapshot(self, epoch: int, epoch_faults=None) -> dict:
        """The sim-derived snapshot after ``epoch`` completed.

        ``epoch_faults`` is the completed epoch's merged crawl
        :class:`~repro.faults.report.FaultReport` (replayed epochs
        decode to the identical report, so fault notables survive
        resume byte-for-byte).
        """
        system = self.system
        now = system.clock.now()
        window = self.scheduler.window(epoch)

        stats = self.lifecycle.stats
        streams = {
            label: {
                "interval": interval,
                "count": stats.stream_counts.get(label, 0),
                "last_fired": stats.stream_last_fired.get(label),
            }
            for label, interval in sorted(self.lifecycle.stream_intervals.items())
        }

        queue = self.lifecycle.queue_stats()
        stuffing_queue = self.lifecycle.stuffing_queue_stats()
        engine = system.provider.batch_engine_stats()
        login_state = system.provider.login_state_sizes(now)

        # -- notable-event deltas (ring entries, at most one per kind) --
        detections = self.monitor.site_count()
        new_detections = self._delta("detections", detections)
        if new_detections > 0:
            self.recorder.note(now, "detection", sites=new_detections,
                               total=detections)
        if queue is not None:
            refused = self._delta("queue.refused", queue["refused"])
            if refused > 0:
                self.recorder.note(now, "queue.refused", batches=refused)
        if stuffing_queue is not None:
            refused = self._delta(
                "stuffing_queue.refused", stuffing_queue["refused"]
            )
            if refused > 0:
                self.recorder.note(now, "stuffing.queue.refused",
                                   batches=refused)
            new_hits = self._delta(
                "stuffing.successes", stats.stuffing_successes
            )
            if new_hits > 0:
                self.recorder.note(now, "stuffing.hits", accounts=new_hits)
        locked = self._delta("lockouts", login_state["locked_rows"])
        if locked > 0:
            self.recorder.note(now, "lockout", rows=locked)
        service_faults = sum(system.fault_report.as_dict().values())
        grown = self._delta("service_faults", service_faults)
        if grown > 0:
            self.recorder.note(now, "service.faults", count=grown)
        if epoch_faults is not None:
            crawl_faults = sum(epoch_faults.as_dict().values())
            if crawl_faults > 0:
                self.recorder.note(now, "crawl.faults", count=crawl_faults,
                                   epoch=epoch)

        metrics = system.obs.metrics
        return {
            "epoch": epoch,
            "sim_time": now,
            "sim_start": self.scheduler.config.start,
            "epoch_length": self.scheduler.config.epoch_length,
            "streams": streams,
            "queue": queue,
            # The stuffing stream's own queue and sim-derived tallies
            # (None with stuffing off) — same determinism contract as
            # the traffic queue section.
            "stuffing": None if stuffing_queue is None else {
                "queue": stuffing_queue,
                "waves": stats.stuffing_waves,
                "candidates": stats.stuffing_candidates,
                "logins": stats.stuffing_logins,
                "successes": stats.stuffing_successes,
                "site_hits": stats.stuffing_site_hits,
            },
            "engine": engine,
            "provider": login_state,
            "monitor": {
                "detected_sites": detections,
                "ingested_events": self.monitor.ingested_events,
                "alarms": len(self.monitor.alarms),
                "control_logins": len(self.monitor.control_logins),
            },
            "checkpoint": {
                "covered_epochs": epoch + 1,
                "covered_sim_time": window[1],
                "age": max(0, now - window[1]),
            },
            "counters": metrics.counters_dict(),
            "histograms": metrics.histograms_dict(),
        }


def parse_flight(text: str) -> dict:
    """Parse a flight file into header + snapshots + health verdicts.

    Returns ``{"header": ..., "snapshots": [...], "health": {seq:
    [...]}}``; raises ``ValueError`` for missing/unsupported headers so
    stale files fail loudly.  Tolerates a truncated tail line (a
    reader racing a non-atomic copy) by ignoring it.
    """
    header = None
    snapshots: list[dict] = []
    health: dict[int, list[dict]] = {}
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn tail of a copy; the atomic original can't
        kind = record.get("record")
        if kind == "flight_header":
            header = record
        elif kind == "snapshot":
            snapshots.append(record)
        elif kind == "health":
            health.setdefault(record.get("seq", -1), []).append(record)
    if header is None:
        raise ValueError("flight file has no header record")
    if header.get("schema_version") != FLIGHT_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported flight schema {header.get('schema_version')!r} "
            f"(reader supports {FLIGHT_SCHEMA_VERSION})"
        )
    return {"header": header, "snapshots": snapshots, "health": health}


def read_flight(path: str | Path) -> dict:
    """Read and parse a flight file."""
    return parse_flight(Path(path).read_text(encoding="utf-8"))
