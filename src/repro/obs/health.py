"""Health probes over flight-recorder snapshots.

Each rule reads one deterministic slice of a snapshot
(:meth:`~repro.obs.live.ServiceFlightProbe.snapshot`) and renders an
``ok`` / ``warn`` / ``fail`` verdict.  Because the inputs are
sim-derived, the verdicts are too: the daemon journals every
evaluation as a ``health.<rule>`` event, and those journal bytes stay
identical across worker counts, executors, and kill/resume — a health
regression is reproducible from the seed, not a flaky alert.

The default rules:

- **queue_saturation** — the traffic backpressure queue is refusing a
  large share of offered batches (the login engine can't keep up with
  the generator);
- **throttle_growth** — the provider's sparse throttle table has grown
  past its bound (state eviction is losing to failure volume);
- **checkpoint_staleness** — reconstructible state has fallen behind
  sim time (epochs are not completing);
- **stream_starvation** — a recurring lifecycle stream has not fired
  for multiple intervals (the event queue is wedged or mis-scheduled).

Thresholds live in :class:`HealthThresholds`; :meth:`HealthCheck.
for_config` derives the staleness bounds from the epoch length so the
rule scales with the schedule instead of hard-coding days.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Verdict levels, in increasing severity.
OK, WARN, FAIL = "ok", "warn", "fail"


@dataclass(frozen=True)
class HealthStatus:
    """One rule's verdict for one snapshot."""

    rule: str
    status: str
    detail: tuple[tuple[str, object], ...] = ()

    def detail_dict(self) -> dict[str, object]:
        """Detail attributes as a mapping (JSON-friendly)."""
        return dict(self.detail)

    @property
    def healthy(self) -> bool:
        return self.status == OK


@dataclass(frozen=True)
class HealthThresholds:
    """Rule bounds (sim-shaped: they feed journaled verdicts)."""

    #: Refused/offered share of traffic batches before warn/fail.
    queue_refusal_warn: float = 0.25
    queue_refusal_fail: float = 0.75
    #: Provider throttle-table rows before warn/fail.
    throttle_rows_warn: int = 10_000
    throttle_rows_fail: int = 50_000
    #: Sim seconds of checkpoint age before warn/fail.
    checkpoint_age_warn: int = 5_184_000   # 60 days
    checkpoint_age_fail: int = 10_368_000  # 120 days
    #: Missed intervals before a stream counts as starved.
    starvation_warn_intervals: int = 2
    starvation_fail_intervals: int = 4


class HealthCheck:
    """Evaluates every rule against one snapshot, in declared order."""

    RULES = (
        "queue_saturation",
        "stuffing_queue_saturation",
        "throttle_growth",
        "checkpoint_staleness",
        "stream_starvation",
    )

    def __init__(self, thresholds: HealthThresholds | None = None):
        self.thresholds = thresholds or HealthThresholds()

    @classmethod
    def for_config(cls, epoch_length: int,
                   thresholds: HealthThresholds | None = None) -> "HealthCheck":
        """Thresholds with staleness bounds scaled to the schedule.

        A checkpoint is stale when reconstructible state trails sim
        time by multiple epochs — two to warn, four to fail.
        """
        base = thresholds or HealthThresholds()
        return cls(HealthThresholds(
            queue_refusal_warn=base.queue_refusal_warn,
            queue_refusal_fail=base.queue_refusal_fail,
            throttle_rows_warn=base.throttle_rows_warn,
            throttle_rows_fail=base.throttle_rows_fail,
            checkpoint_age_warn=2 * epoch_length,
            checkpoint_age_fail=4 * epoch_length,
            starvation_warn_intervals=base.starvation_warn_intervals,
            starvation_fail_intervals=base.starvation_fail_intervals,
        ))

    # -- evaluation --------------------------------------------------------

    def evaluate(self, snapshot: dict) -> list[HealthStatus]:
        """All rule verdicts for one snapshot, rule-declaration order."""
        return [
            self._queue_saturation(snapshot),
            self._stuffing_queue_saturation(snapshot),
            self._throttle_growth(snapshot),
            self._checkpoint_staleness(snapshot),
            self._stream_starvation(snapshot),
        ]

    def _queue_saturation(self, snapshot: dict) -> HealthStatus:
        queue = snapshot.get("queue")
        if not queue:
            return HealthStatus("queue_saturation", OK,
                                (("enabled", False),))
        offered = queue["offered"] + queue["refused"]
        share = queue["refused"] / offered if offered else 0.0
        status = OK
        if share >= self.thresholds.queue_refusal_fail:
            status = FAIL
        elif share >= self.thresholds.queue_refusal_warn:
            status = WARN
        return HealthStatus("queue_saturation", status, (
            ("peak_depth", queue["peak_depth"]),
            ("refused", queue["refused"]),
            ("refusal_share", round(share, 4)),
        ))

    def _stuffing_queue_saturation(self, snapshot: dict) -> HealthStatus:
        """Same refusal-share rule, over the stuffing stream's queue."""
        section = snapshot.get("stuffing")
        queue = section.get("queue") if section else None
        if not queue:
            return HealthStatus("stuffing_queue_saturation", OK,
                                (("enabled", False),))
        offered = queue["offered"] + queue["refused"]
        share = queue["refused"] / offered if offered else 0.0
        status = OK
        if share >= self.thresholds.queue_refusal_fail:
            status = FAIL
        elif share >= self.thresholds.queue_refusal_warn:
            status = WARN
        return HealthStatus("stuffing_queue_saturation", status, (
            ("peak_depth", queue["peak_depth"]),
            ("refused", queue["refused"]),
            ("refusal_share", round(share, 4)),
        ))

    def _throttle_growth(self, snapshot: dict) -> HealthStatus:
        rows = snapshot.get("provider", {}).get("throttle_rows", 0)
        status = OK
        if rows >= self.thresholds.throttle_rows_fail:
            status = FAIL
        elif rows >= self.thresholds.throttle_rows_warn:
            status = WARN
        return HealthStatus("throttle_growth", status, (
            ("bound", self.thresholds.throttle_rows_warn),
            ("throttle_rows", rows),
        ))

    def _checkpoint_staleness(self, snapshot: dict) -> HealthStatus:
        age = snapshot.get("checkpoint", {}).get("age", 0)
        status = OK
        if age >= self.thresholds.checkpoint_age_fail:
            status = FAIL
        elif age >= self.thresholds.checkpoint_age_warn:
            status = WARN
        return HealthStatus("checkpoint_staleness", status, (
            ("age", age),
            ("warn_after", self.thresholds.checkpoint_age_warn),
        ))

    def _stream_starvation(self, snapshot: dict) -> HealthStatus:
        now = snapshot.get("sim_time", 0)
        start = snapshot.get("sim_start", 0)
        warn_n = self.thresholds.starvation_warn_intervals
        fail_n = self.thresholds.starvation_fail_intervals
        starved: list[str] = []
        failed: list[str] = []
        for label, stream in sorted(snapshot.get("streams", {}).items()):
            interval = stream["interval"]
            # A never-fired stream is measured from the run start: its
            # first firing is due one interval in.
            basis = stream["last_fired"]
            if basis is None:
                basis = start
            overdue = now - basis
            if overdue >= fail_n * interval:
                failed.append(label)
            elif overdue >= warn_n * interval:
                starved.append(label)
        if failed:
            return HealthStatus("stream_starvation", FAIL, (
                ("starved", ",".join(failed + starved)),
            ))
        if starved:
            return HealthStatus("stream_starvation", WARN, (
                ("starved", ",".join(starved)),
            ))
        return HealthStatus("stream_starvation", OK, (
            ("streams", len(snapshot.get("streams", {}))),
        ))
