"""Deterministic metrics: counters, gauges, fixed-bucket histograms.

Everything here is a pure function of the events fed in — no wall
clock, no randomness, no process-global state — so per-shard metrics
are a pure function of the shard plan and merge bit-identically for
any worker count (see :mod:`repro.obs.journal`).

Histograms use *fixed* bucket bounds declared at first observation:
bounds are inclusive upper edges (a value exactly on a bound lands in
that bucket) with a single overflow bucket past the last bound.  Fixed
bounds are what make shard-wise merging a plain vector addition.
"""

from __future__ import annotations

from bisect import bisect_left

#: Default sim-seconds latency buckets for span-duration histograms.
#: Upper edges chosen around the crawler's rate limits: the §3 ethics
#: floor is 3 s/page, attempts span minutes, retries reach hours.
DEFAULT_LATENCY_BOUNDS: tuple[int, ...] = (1, 3, 10, 30, 60, 180, 600, 3600)


class Histogram:
    """A fixed-bucket histogram over integer/float observations."""

    __slots__ = ("name", "bounds", "buckets", "overflow", "count", "total")

    def __init__(self, name: str, bounds: tuple[int | float, ...] = DEFAULT_LATENCY_BOUNDS):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be non-empty and ascending")
        self.name = name
        self.bounds = tuple(bounds)
        self.buckets = [0] * len(bounds)
        self.overflow = 0
        self.count = 0
        self.total = 0

    def observe(self, value: int | float) -> None:
        """Record one observation (boundary values land in their bucket)."""
        index = bisect_left(self.bounds, value)
        if index == len(self.bounds):
            self.overflow += 1
        else:
            self.buckets[index] += 1
        self.count += 1
        self.total += value

    def as_dict(self) -> dict:
        """JSON-friendly snapshot (bounds + counts, exact totals)."""
        return {
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
            "overflow": self.overflow,
            "count": self.count,
            "sum": self.total,
        }


class MetricsRegistry:
    """Named counters, gauges and histograms for one shard/world."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, int | float] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- write side ------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to a counter (created at zero)."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def gauge(self, name: str, value: int | float) -> None:
        """Set a gauge to its latest value."""
        self._gauges[name] = value

    def observe(
        self,
        name: str,
        value: int | float,
        bounds: tuple[int | float, ...] = DEFAULT_LATENCY_BOUNDS,
    ) -> None:
        """Record one histogram observation (bounds fixed on first use)."""
        self.histogram(name, bounds).observe(value)

    def histogram(
        self,
        name: str,
        bounds: tuple[int | float, ...] = DEFAULT_LATENCY_BOUNDS,
    ) -> Histogram:
        """The named histogram, created on first use (hot-path handle:
        callers may keep it and ``observe`` directly)."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name, bounds)
        return histogram

    # -- read side -------------------------------------------------------

    def counter(self, name: str) -> int:
        """Current value of a counter (zero if never incremented)."""
        return self._counters.get(name, 0)

    def counters_dict(self) -> dict[str, int]:
        """All counters, key-sorted (deterministic serialization order)."""
        return dict(sorted(self._counters.items()))

    def gauges_dict(self) -> dict[str, int | float]:
        """All gauges, key-sorted."""
        return dict(sorted(self._gauges.items()))

    def histograms_dict(self) -> dict[str, dict]:
        """All histograms as plain dicts, key-sorted."""
        return {name: h.as_dict() for name, h in sorted(self._histograms.items())}


class _NullHistogram:
    """Histogram stand-in handed out by :class:`NullMetrics`."""

    __slots__ = ()

    def observe(self, value: int | float) -> None:
        pass


_NULL_HISTOGRAM = _NullHistogram()


class NullMetrics:
    """No-op metrics sink used when observability is disabled."""

    __slots__ = ()

    enabled = False

    def inc(self, name: str, amount: int = 1) -> None:
        pass

    def gauge(self, name: str, value: int | float) -> None:
        pass

    def observe(self, name: str, value: int | float, bounds: tuple = ()) -> None:
        pass

    def histogram(self, name: str, bounds: tuple = ()) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def counter(self, name: str) -> int:
        return 0

    def counters_dict(self) -> dict[str, int]:
        return {}

    def gauges_dict(self) -> dict[str, int | float]:
        return {}

    def histograms_dict(self) -> dict[str, dict]:
        return {}


#: The shared no-op sink; identity-comparable for short-circuit tests.
NULL_METRICS = NullMetrics()


def merge_histogram_dicts(snapshots: list[dict[str, dict]]) -> dict[str, dict]:
    """Sum per-shard histogram snapshots bucket-wise, by name.

    All shards observe with the same fixed bounds per name (the bounds
    are part of the instrumentation, not the data), so the merge is a
    vector addition; mismatched bounds are a programming error.
    """
    merged: dict[str, dict] = {}
    for snapshot in snapshots:
        for name, data in snapshot.items():
            into = merged.get(name)
            if into is None:
                merged[name] = {
                    "bounds": list(data["bounds"]),
                    "buckets": list(data["buckets"]),
                    "overflow": data["overflow"],
                    "count": data["count"],
                    "sum": data["sum"],
                }
                continue
            if into["bounds"] != list(data["bounds"]):
                raise ValueError(f"histogram {name!r} merged with mismatched bounds")
            into["buckets"] = [a + b for a, b in zip(into["buckets"], data["buckets"])]
            into["overflow"] += data["overflow"]
            into["count"] += data["count"]
            into["sum"] += data["sum"]
    return dict(sorted(merged.items()))
