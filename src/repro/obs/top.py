"""Terminal dashboard and tail follower for flight files.

``repro obs top`` renders the *latest* snapshot of a flight file as a
compact dashboard — header line, health verdicts, lifecycle stream
table, queue/engine/provider gauges, and the notable-event ring.  It
works identically on a live daemon's file (which is atomically
replaced on every flush, so a read never sees a torn record) and on a
dead file left behind by a finished run; ``--follow`` mode polls the
file and re-renders when the snapshot sequence advances.

``repro obs tail`` prints flight records as JSONL lines — all of them
once, or (``--follow``) new ones as the daemon lands them.  Because
each flush rewrites the whole file, "new" means lines beyond the count
already printed.

Both readers are pull-only: they never write, lock, or signal, so an
operator can point them at a production flight file with no effect on
the daemon's determinism.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.obs.live import parse_flight
from repro.util.tables import percent, render_table
from repro.util.timeutil import DAY, format_instant

#: Marker glyphs for health verdicts on the dashboard's health line.
_HEALTH_GLYPHS = {"ok": "+", "warn": "!", "fail": "X"}


def _fmt_sim(instant: int | None) -> str:
    if instant is None:
        return "-"
    return format_instant(instant, with_time=True)


def _fmt_days(seconds: int) -> str:
    return f"{seconds / DAY:.1f}d"


def render_top(flight: dict) -> str:
    """The dashboard for a parsed flight file's latest snapshot."""
    header = flight["header"]
    snapshots = flight["snapshots"]
    if not snapshots:
        return "flight file has a header but no snapshots yet"
    snap = snapshots[-1]
    lines: list[str] = []

    meta = header.get("meta", {})
    lines.append(
        "flight: epoch {epoch}  seq {seq}  sim {sim}  seed {seed}".format(
            epoch=snap["epoch"],
            seq=snap["seq"],
            sim=_fmt_sim(snap["sim_time"]),
            seed=meta.get("seed", "?"),
        )
    )

    verdicts = flight["health"].get(snap["seq"], [])
    if verdicts:
        parts = []
        for record in verdicts:
            glyph = _HEALTH_GLYPHS.get(record["status"], "?")
            parts.append(f"[{glyph}] {record['rule']}")
        lines.append("health: " + "  ".join(parts))
        for record in verdicts:
            if record["status"] == "ok":
                continue
            detail = record.get("detail", {})
            rendered = " ".join(f"{k}={detail[k]}" for k in sorted(detail))
            lines.append(f"  {record['status']}: {record['rule']} {rendered}")

    rows = [
        (
            label,
            _fmt_days(stream["interval"]),
            stream["count"],
            _fmt_sim(stream["last_fired"]),
        )
        for label, stream in sorted(snap.get("streams", {}).items())
    ]
    if rows:
        lines.append("")
        lines.append(render_table(
            ("stream", "interval", "fired", "last fired"),
            rows,
            title="Lifecycle streams",
            align_right=(1, 2),
        ))

    gauges: list[tuple[str, object]] = []
    queue = snap.get("queue")
    if queue:
        gauges.append(("queue depth/peak",
                       f"{queue['depth']}/{queue['peak_depth']}"))
        gauges.append(("queue refused",
                       f"{queue['refused']} "
                       f"({percent(queue['refused'], queue['offered'] + queue['refused'])})"))
    engine = snap.get("engine", {})
    committed = engine.get("vector_committed", 0)
    replayed = engine.get("scalar_replayed", 0)
    if engine.get("windows"):
        gauges.append(("engine vector/scalar",
                       f"{committed}/{replayed} "
                       f"({percent(committed, committed + replayed)} vectorized)"))
        gauges.append(("engine fallback events", engine.get("fallback_events", 0)))
    provider = snap.get("provider", {})
    if provider:
        gauges.append(("throttle rows (locked)",
                       f"{provider.get('throttle_rows', 0)} "
                       f"({provider.get('locked_rows', 0)})"))
        gauges.append(("ip-window rows", provider.get("hot_rows", 0)))
        gauges.append(("evidence log", provider.get("evidence_log", 0)))
    monitor = snap.get("monitor", {})
    if monitor:
        gauges.append(("detected sites", monitor.get("detected_sites", 0)))
        gauges.append(("monitor events (alarms)",
                       f"{monitor.get('ingested_events', 0)} "
                       f"({monitor.get('alarms', 0)})"))
    checkpoint = snap.get("checkpoint", {})
    if checkpoint:
        gauges.append(("checkpoint coverage",
                       f"{checkpoint.get('covered_epochs', 0)} epochs "
                       f"through {_fmt_sim(checkpoint.get('covered_sim_time'))}"))
        gauges.append(("checkpoint age", _fmt_days(checkpoint.get("age", 0))))
    if gauges:
        lines.append("")
        lines.append(render_table(("gauge", "value"), gauges, title="Gauges"))

    notable = snap.get("notable", [])
    if notable:
        rows = [
            (
                _fmt_sim(event.get("sim_time")),
                event.get("kind", "?"),
                " ".join(
                    f"{k}={event[k]}"
                    for k in sorted(event)
                    if k not in ("sim_time", "kind")
                ),
            )
            for event in notable[-10:]
        ]
        lines.append("")
        lines.append(render_table(
            ("sim time", "event", "detail"),
            rows,
            title=f"Notable events (last {len(rows)} of {len(notable)})",
        ))

    return "\n".join(lines)


def _read_or_none(path: Path) -> dict | None:
    """Parse the flight file, or None while it does not exist yet."""
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        return None
    return parse_flight(text)


def run_top(
    path: str | Path,
    follow: bool = True,
    interval: float = 1.0,
    max_seconds: float | None = None,
    out=None,
) -> int:
    """Drive ``repro obs top``: render once, or poll-and-rerender.

    In follow mode the dashboard is re-printed whenever the snapshot
    count advances, until ``max_seconds`` elapses (None = forever).
    Returns a process exit code: 1 when the file never appears within
    the window (or, one-shot, does not exist).
    """
    target = Path(path)
    emit = out.write if out is not None else _stdout_write
    deadline = None if max_seconds is None else time.monotonic() + max_seconds
    last_seen = -1
    rendered_any = False
    while True:
        flight = _read_or_none(target)
        if flight is not None and len(flight["snapshots"]) - 1 > last_seen:
            last_seen = len(flight["snapshots"]) - 1
            emit(render_top(flight) + "\n")
            rendered_any = True
        if not follow:
            if flight is None:
                emit(f"no flight file at {target}\n")
                return 1
            if not rendered_any:
                emit(render_top(flight) + "\n")
            return 0
        if deadline is not None and time.monotonic() >= deadline:
            return 0 if rendered_any else 1
        time.sleep(interval)


def run_tail(
    path: str | Path,
    follow: bool = False,
    lines: int | None = None,
    interval: float = 0.5,
    max_seconds: float | None = None,
    out=None,
) -> int:
    """Drive ``repro obs tail``: print flight records as JSONL.

    One-shot mode prints the last ``lines`` records (all when None) and
    exits.  Follow mode keeps polling and prints records beyond the
    count already printed — safe because every flush rewrites the file
    in full, so earlier lines never change.  Returns 1 when the file
    never appears.
    """
    target = Path(path)
    emit = out.write if out is not None else _stdout_write
    deadline = None if max_seconds is None else time.monotonic() + max_seconds
    printed = 0
    seen_file = False
    while True:
        try:
            text = target.read_text(encoding="utf-8")
        except FileNotFoundError:
            text = None
        if text is not None:
            seen_file = True
            records = [line for line in text.splitlines() if line.strip()]
            if printed == 0 and lines is not None:
                printed = max(0, len(records) - lines)
            for line in records[printed:]:
                emit(line + "\n")
            printed = max(printed, len(records))
        if not follow:
            if not seen_file:
                emit(f"no flight file at {target}\n")
                return 1
            return 0
        if deadline is not None and time.monotonic() >= deadline:
            return 0 if seen_file else 1
        time.sleep(interval)


def _stdout_write(text: str) -> None:
    print(text, end="", flush=True)
