"""Span tracing on the simulation clock.

A span brackets one logical stage (a Figure-1 crawler stage, a mail
relay, a shard execution) with **sim-clock** timestamps — never wall
clock — so traces are bit-identical across runs, machines and worker
counts.  Spans nest: each record carries the index of its parent, and
sibling order is the deterministic call order within the shard.

The disabled path must cost nothing measurable: :class:`NullTracer`
returns one shared, stateless :data:`NULL_SPAN` object and records
nothing, so instrumented hot paths pay only the call itself.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.obs.metrics import NULL_METRICS
from repro.sim.protocols import ClockLike

#: Parent index of a root (top-level) span.
NO_PARENT = -1


class SpanRecord(NamedTuple):
    """One finished span: name, sim-time interval, nesting, attributes.

    A NamedTuple rather than a dataclass: spans are minted on the hot
    path (every crawler stage), and tuple construction keeps the
    observed run inside the suite's overhead budget.
    """

    index: int
    parent: int
    name: str
    start: int
    end: int
    attrs: tuple[tuple[str, object], ...] = ()

    @property
    def duration(self) -> int:
        """Sim seconds spent inside the span."""
        return self.end - self.start

    def attrs_dict(self) -> dict[str, object]:
        """Attributes as a mapping (JSON-friendly)."""
        return dict(self.attrs)


class _OpenSpan:
    """Context manager for one live span (internal to :class:`Tracer`)."""

    __slots__ = ("_tracer", "name", "attrs", "index", "parent", "start")

    def __init__(self, tracer: "Tracer", name: str, attrs: tuple[tuple[str, object], ...]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_OpenSpan":
        self._tracer._enter(self)
        return self

    def __exit__(self, *_exc: object) -> None:
        self._tracer._exit(self)


class Tracer:
    """Records spans against one simulation clock."""

    enabled = True

    def __init__(self, clock: ClockLike, metrics=NULL_METRICS):
        self._clock = clock
        self._metrics = metrics
        self.spans: list[SpanRecord] = []
        self._stack: list[int] = []
        self._next_index = 0
        #: span name -> its duration histogram, resolved once per name
        #: so _exit skips the f-string and registry lookup per span.
        self._duration_hists: dict = {}

    def span(self, name: str, **attrs: object) -> _OpenSpan:
        """Open a span; use as ``with tracer.span("crawl.fill"): ...``."""
        return _OpenSpan(self, name, tuple(sorted(attrs.items())) if attrs else ())

    # -- span lifecycle (driven by _OpenSpan) ----------------------------

    def _enter(self, span: _OpenSpan) -> None:
        span.index = self._next_index
        self._next_index += 1
        span.parent = self._stack[-1] if self._stack else NO_PARENT
        span.start = self._clock.now()
        self._stack.append(span.index)

    def _exit(self, span: _OpenSpan) -> None:
        self._stack.pop()
        end = self._clock.now()
        self.spans.append(
            SpanRecord(span.index, span.parent, span.name, span.start, end, span.attrs)
        )
        hist = self._duration_hists.get(span.name)
        if hist is None:
            hist = self._duration_hists[span.name] = self._metrics.histogram(
                f"span.{span.name}.sim_seconds"
            )
        hist.observe(end - span.start)


class _NullSpan:
    """The do-nothing span; one shared instance, no per-call state."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc: object) -> None:
        pass


#: Shared no-op span returned by every disabled ``span()`` call.
NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracer stand-in when observability is disabled."""

    __slots__ = ()

    enabled = False
    #: Immutable, so accidental appends fail loudly.
    spans: tuple[SpanRecord, ...] = ()

    def span(self, name: str, **attrs: object) -> _NullSpan:
        return NULL_SPAN
