"""The run journal: per-shard observability, merged to stable bytes.

A journal is the serialized record of what one run *did*: every span,
event, counter and histogram, grouped per shard, plus a merged totals
footer.  It follows the same merge discipline as
:class:`~repro.faults.report.FaultReport` (see :mod:`repro.obs.merge`):
each shard's capture is a pure function of its plan, shards are laid
out in shard-index order, and totals fold by summation — so the JSONL
output is **bit-identical for any worker count and executor**.

What is deliberately *not* in the journal: wall-clock timings, worker
counts, executor names, process-local cache statistics.  Those vary
run to run on one machine and would break the byte-identity contract;
they belong in the live ops report (:mod:`repro.obs.report`) instead.

Format: one JSON object per line, ``sort_keys`` and fixed separators,
with a schema-versioned header first and a totals footer last::

    {"record":"header","schema_version":1,"meta":{...}}
    {"record":"shard","shard":0,...}
    {"record":"metrics","shard":0,...}
    {"record":"histogram","shard":0,"name":...}
    {"record":"span","shard":0,"index":0,...}
    {"record":"event","shard":0,...}
    ...
    {"record":"totals","counters":{...},"histograms":{...},...}
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field

from repro.obs.merge import collect_shard_ordered, merge_count_dicts
from repro.obs import EventRecord, Observation
from repro.obs.metrics import merge_histogram_dicts
from repro.obs.tracing import SpanRecord

#: Bump when the JSONL record shapes change; readers check it.
SCHEMA_VERSION = 1


def _dumps(payload: dict) -> str:
    """Canonical one-line JSON (stable bytes across runs/platforms)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass
class ShardObservation:
    """One shard's frozen observability capture (picklable).

    Built in the worker that ran the shard and shipped back through
    the executor; everything inside is plain data.
    """

    shard_index: int
    counters: dict[str, int] = field(default_factory=dict)
    gauges: dict[str, int | float] = field(default_factory=dict)
    histograms: dict[str, dict] = field(default_factory=dict)
    spans: list[SpanRecord] = field(default_factory=list)
    events: list[EventRecord] = field(default_factory=list)

    @classmethod
    def capture(cls, obs: Observation, shard_index: int) -> "ShardObservation":
        """Snapshot a live observation for one shard."""
        return cls(
            shard_index=shard_index,
            counters=obs.metrics.counters_dict(),
            gauges=obs.metrics.gauges_dict(),
            histograms=obs.metrics.histograms_dict(),
            spans=list(obs.tracer.spans),
            events=list(obs.events),
        )

    def lines(self) -> list[str]:
        """This shard's JSONL records, in deterministic order."""
        k = self.shard_index
        out = [
            _dumps({
                "record": "shard",
                "shard": k,
                "spans": len(self.spans),
                "events": len(self.events),
            }),
            _dumps({
                "record": "metrics",
                "shard": k,
                "counters": self.counters,
                "gauges": self.gauges,
            }),
        ]
        for name, data in self.histograms.items():
            out.append(_dumps({"record": "histogram", "shard": k, "name": name, **data}))
        for span in self.spans:
            out.append(_dumps({
                "record": "span",
                "shard": k,
                "index": span.index,
                "parent": span.parent,
                "name": span.name,
                "start": span.start,
                "end": span.end,
                "attrs": span.attrs_dict(),
            }))
        for event in self.events:
            out.append(_dumps({
                "record": "event",
                "shard": k,
                "time": event.time,
                "component": event.component,
                "message": event.message,
                "attrs": event.attrs_dict(),
            }))
        return out


class RunJournal:
    """All shards of one run, merged in shard-index order."""

    def __init__(self, meta: dict, shards: list[ShardObservation]):
        self.meta = dict(meta)
        #: The canonical shard layout, invariant to arrival order.
        self.shards: list[ShardObservation] = collect_shard_ordered(
            shards, index_of=lambda s: s.shard_index
        )

    @classmethod
    def from_observation(cls, obs: Observation, meta: dict) -> "RunJournal":
        """A single-shard journal from one live observation (pilot runs)."""
        return cls(meta, [ShardObservation.capture(obs, 0)])

    # -- merged views -----------------------------------------------------

    def total_counters(self) -> dict[str, int]:
        """Counters summed across shards (shard-order invariant)."""
        return merge_count_dicts(s.counters for s in self.shards)

    def total_histograms(self) -> dict[str, dict]:
        """Histograms summed bucket-wise across shards."""
        return merge_histogram_dicts([s.histograms for s in self.shards])

    def payload(self) -> dict:
        """The report-facing summary (same shape ``parse_journal`` yields)."""
        return {
            "schema_version": SCHEMA_VERSION,
            "meta": dict(self.meta),
            "shard_count": len(self.shards),
            "span_count": sum(len(s.spans) for s in self.shards),
            "event_count": sum(len(s.events) for s in self.shards),
            "counters": self.total_counters(),
            "histograms": self.total_histograms(),
        }

    # -- serialization ----------------------------------------------------

    def to_jsonl(self) -> str:
        """The full journal as canonical JSONL (byte-stable)."""
        lines = [_dumps({
            "record": "header",
            "schema_version": SCHEMA_VERSION,
            "meta": self.meta,
        })]
        for shard in self.shards:
            lines.extend(shard.lines())
        totals = self.payload()
        del totals["meta"], totals["schema_version"]
        lines.append(_dumps({"record": "totals", **totals}))
        return "\n".join(lines) + "\n"

    def write(self, path: pathlib.Path | str) -> pathlib.Path:
        """Write the JSONL journal to ``path``."""
        path = pathlib.Path(path)
        path.write_text(self.to_jsonl(), encoding="utf-8")
        return path


def parse_journal(text: str) -> dict:
    """Parse a JSONL journal back into the report-facing summary.

    Returns the same shape as :meth:`RunJournal.payload`; raises
    ``ValueError`` for missing/unsupported headers so stale files fail
    loudly rather than rendering nonsense.
    """
    header: dict | None = None
    totals: dict | None = None
    shard_count = 0
    for line in text.splitlines():
        if not line.strip():
            continue
        record = json.loads(line)
        kind = record.get("record")
        if kind == "header":
            header = record
        elif kind == "shard":
            shard_count += 1
        elif kind == "totals":
            totals = record
    if header is None:
        raise ValueError("journal has no header record")
    if header.get("schema_version") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported journal schema {header.get('schema_version')!r} "
            f"(reader supports {SCHEMA_VERSION})"
        )
    if totals is None:
        raise ValueError("journal has no totals record (truncated?)")
    return {
        "schema_version": header["schema_version"],
        "meta": header.get("meta", {}),
        "shard_count": totals.get("shard_count", shard_count),
        "span_count": totals.get("span_count", 0),
        "event_count": totals.get("event_count", 0),
        "counters": totals.get("counters", {}),
        "histograms": totals.get("histograms", {}),
    }


def read_journal(path: pathlib.Path | str) -> dict:
    """Read and parse a journal file."""
    return parse_journal(pathlib.Path(path).read_text(encoding="utf-8"))
