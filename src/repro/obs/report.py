"""Human-readable ops report rendered from a journal payload.

The report is the *read* side of the observability layer: per-stage
latency histograms, the Figure-1 outcome funnel, retry/fault
attribution and (for live runs only) cache hit rates.  Cache stats are
process-local and worker-count-dependent, so they never enter the
journal — they can only be rendered live, passed in via
``cache_stats``.
"""

from __future__ import annotations

from repro.crawler.outcomes import TerminationCode
from repro.util.tables import percent, render_table

#: Span histograms rendered in the latency section, in pipeline order.
_STAGE_ORDER = (
    "shard.execute",
    "crawl.attempt",
    "crawl.find_page",
    "crawl.locate_form",
    "crawl.classify_fields",
    "crawl.fill_form",
    "crawl.submit",
    "crawl.classify_outcome",
    "mail.relay",
    "telemetry.collect_dump",
    "attacker.breach",
)


def _bucket_label(lower: int | float | None, upper: int | float | None) -> str:
    if lower is None:
        return f"<= {upper}"
    if upper is None:
        return f"> {lower}"
    return f"{lower}-{upper}"


def _histogram_rows(data: dict) -> list[list[object]]:
    rows: list[list[object]] = []
    bounds = data["bounds"]
    lower: int | float | None = None
    for bound, count in zip(bounds, data["buckets"]):
        rows.append([_bucket_label(lower, bound), count, percent(count, data["count"])])
        lower = bound
    rows.append([_bucket_label(bounds[-1], None), data["overflow"],
                 percent(data["overflow"], data["count"])])
    return rows


def _span_histogram_names(histograms: dict[str, dict]) -> list[str]:
    """Stage-ordered first, then any remaining span histograms by name."""
    available = [n for n in histograms if n.startswith("span.")]
    ordered = [f"span.{stage}.sim_seconds" for stage in _STAGE_ORDER
               if f"span.{stage}.sim_seconds" in histograms]
    return ordered + sorted(n for n in available if n not in ordered)


def render_ops_report(
    payload: dict,
    cache_stats: dict[str, dict] | None = None,
    live_stats: dict | None = None,
) -> str:
    """Render the full ops report from a journal payload.

    ``payload`` is :meth:`~repro.obs.journal.RunJournal.payload` (or the
    equivalent from :func:`~repro.obs.journal.parse_journal`).
    ``live_stats`` is the serve daemon's process-local gauge bundle
    (:attr:`~repro.service.daemon.ServiceRunResult.live_stats`): the
    batch engine's path mix, backpressure-queue accounting, and
    provider login-state sizes.  Like cache stats, it is live-only —
    saved journals cannot reproduce it.
    """
    counters = payload.get("counters", {})
    histograms = payload.get("histograms", {})
    sections: list[str] = []

    meta = payload.get("meta", {})
    meta_rows = [[key, value] for key, value in sorted(meta.items())]
    meta_rows.append(["shard captures", payload.get("shard_count", 0)])
    meta_rows.append(["spans", payload.get("span_count", 0)])
    meta_rows.append(["events", payload.get("event_count", 0)])
    sections.append(render_table(
        ["field", "value"], meta_rows,
        title=f"Run journal (schema v{payload.get('schema_version')})",
    ))

    # Outcome funnel: Figure-1 exit codes, declaration order, with share.
    outcome_rows = []
    outcome_total = sum(counters.get(f"outcome.{c.value}", 0) for c in TerminationCode)
    for code in TerminationCode:
        count = counters.get(f"outcome.{code.value}", 0)
        outcome_rows.append([code.value, count, percent(count, outcome_total)])
    if outcome_total:
        sections.append(render_table(
            ["outcome", "attempts", "share"], outcome_rows,
            title="Outcome funnel", align_right=(1, 2),
        ))

    for name in _span_histogram_names(histograms):
        data = histograms[name]
        stage = name.removeprefix("span.").removesuffix(".sim_seconds")
        mean = data["sum"] / data["count"] if data["count"] else 0.0
        sections.append(render_table(
            ["sim seconds", "count", "share"], _histogram_rows(data),
            title=f"Stage latency: {stage} "
                  f"(n={data['count']}, mean={mean:.1f}s)",
            align_right=(1, 2),
        ))

    # Retry / fault attribution.
    attribution = [[name, value] for name, value in sorted(counters.items())
                   if name.startswith(("fault.", "retry.", "clock."))]
    if attribution:
        sections.append(render_table(
            ["counter", "count"], attribution,
            title="Retry / fault attribution", align_right=(1,),
        ))

    # Service streams: the daemon's recurring-event counters.
    service = [[name, value] for name, value in sorted(counters.items())
               if name.startswith("service.")]
    if service:
        sections.append(render_table(
            ["counter", "count"], service,
            title="Service streams", align_right=(1,),
        ))

    # Everything else, minus families already shown above.
    shown_prefixes = ("outcome.", "fault.", "retry.", "clock.", "service.")
    other = [[name, value] for name, value in sorted(counters.items())
             if not name.startswith(shown_prefixes)]
    if other:
        sections.append(render_table(
            ["counter", "count"], other,
            title="Counters", align_right=(1,),
        ))

    # Live-only: the serve daemon's login funnel — engine path mix,
    # backpressure-queue accounting, provider state sizes.  Which path
    # an event took is an execution detail, so none of this is ever
    # journaled; only the run that produced the journal can show it.
    if live_stats:
        engine = live_stats.get("engine") or {}
        if engine.get("windows"):
            committed = engine.get("vector_committed", 0)
            replayed = engine.get("scalar_replayed", 0)
            total = committed + replayed + engine.get("fallback_events", 0)
            engine_rows = [
                ["batch windows", engine.get("windows", 0), ""],
                ["vector-committed events", committed,
                 percent(committed, total)],
                ["scalar-replayed events", replayed,
                 percent(replayed, total)],
                ["fallback events", engine.get("fallback_events", 0),
                 percent(engine.get("fallback_events", 0), total)],
            ]
            sections.append(render_table(
                ["engine path", "count", "share"], engine_rows,
                title="Batch login engine (live process, not journaled)",
                align_right=(1, 2),
            ))
        queue = live_stats.get("queue")
        if queue:
            queue_rows = [
                ["offered", queue["offered"]],
                ["refused (backpressure)", queue["refused"]],
                ["taken", queue["taken"]],
                ["peak depth", f"{queue['peak_depth']}/{queue['max_depth']}"],
            ]
            sections.append(render_table(
                ["queue", "value"], queue_rows,
                title="Backpressure queue (live process, not journaled)",
                align_right=(1,),
            ))
        provider = live_stats.get("provider")
        if provider:
            provider_rows = [[name.replace("_", " "), value]
                             for name, value in sorted(provider.items())]
            sections.append(render_table(
                ["login state", "size"], provider_rows,
                title="Provider login state (live process, not journaled)",
                align_right=(1,),
            ))

    # Live-only: cache hit rates (process-local, never journaled).
    if cache_stats:
        cache_rows = []
        for name, stats in sorted(cache_stats.items()):
            lookups = stats["hits"] + stats["misses"]
            cache_rows.append([
                name, stats["hits"], stats["misses"],
                stats.get("evictions", 0), stats["size"],
                percent(stats["hits"], lookups),
            ])
        sections.append(render_table(
            ["cache", "hits", "misses", "evictions", "size", "hit rate"],
            cache_rows,
            title="Cache stats (live process, not journaled)",
            align_right=(1, 2, 3, 4, 5),
        ))

    return "\n\n".join(sections)
