"""Deterministic observability: spans, metrics, events, run journal.

One :class:`Observation` per world (per shard) bundles the three
instrumentation surfaces behind a single idiom used repo-wide:

- ``obs.span(name, **attrs)`` — sim-clock span tracing
  (:mod:`repro.obs.tracing`);
- ``obs.count(name)`` / ``obs.metrics`` — counters, gauges and
  fixed-bucket histograms (:mod:`repro.obs.metrics`);
- ``obs.get_logger(component)`` — structured, sim-time-stamped events
  (no stdlib ``logging``, no prints inside the measurement system).

Everything recorded is a pure function of the shard plan — sim-clock
timestamps only, no wall clock, no randomness — so per-shard captures
serialize into a run journal (:mod:`repro.obs.journal`) whose merged
bytes are identical for any worker count.

The default is :data:`NO_OP`: a stateless null observation whose span,
count and logger calls short-circuit, keeping the instrumented hot
paths at production speed unless a run opts in (``--obs-out``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.tracing import NULL_SPAN, NullTracer, Tracer
from repro.sim.protocols import ClockLike

__all__ = [
    "EventRecord",
    "Observation",
    "NullObservation",
    "NO_OP",
    "ObsLogger",
]


@dataclass(frozen=True)
class EventRecord:
    """One structured log event, stamped with sim time."""

    time: int
    component: str
    message: str
    attrs: tuple[tuple[str, object], ...] = ()

    def attrs_dict(self) -> dict[str, object]:
        """Attributes as a mapping (JSON-friendly)."""
        return dict(self.attrs)


class ObsLogger:
    """Structured logger bound to one component name.

    The repo-wide replacement for ad-hoc ``logging``/print calls:
    events land in the journal, deterministically ordered and
    sim-time-stamped, instead of interleaving on stderr.
    """

    __slots__ = ("_obs", "_component")

    def __init__(self, obs: "Observation", component: str):
        self._obs = obs
        self._component = component

    def info(self, message: str, **attrs: object) -> None:
        """Record one event."""
        self._obs.events.append(
            EventRecord(
                time=self._obs.clock.now(),
                component=self._component,
                message=message,
                attrs=tuple(sorted(attrs.items())),
            )
        )


class _NullLogger:
    """Logger stand-in when observability is disabled."""

    __slots__ = ()

    def info(self, message: str, **attrs: object) -> None:
        pass


_NULL_LOGGER = _NullLogger()


class Observation:
    """Live tracer + metrics + event stream for one world/shard.

    Installing the observation hooks the clock's monotonicity guard:
    a ``ClockMovedBackward`` violation emits a journal event before the
    exception propagates, so post-mortems see *where* sim time broke.
    """

    enabled = True

    def __init__(self, clock: ClockLike):
        self.clock = clock
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(clock, self.metrics)
        self.events: list[EventRecord] = []
        setattr(clock, "on_violation", self._clock_violation)

    # -- the instrumentation idiom ---------------------------------------

    def span(self, name: str, **attrs: object):
        """Open a sim-clock span (context manager)."""
        return self.tracer.span(name, **attrs)

    def count(self, name: str, amount: int = 1) -> None:
        """Increment a counter."""
        self.metrics.inc(name, amount)

    def get_logger(self, component: str) -> ObsLogger:
        """A structured logger for one component."""
        return ObsLogger(self, component)

    # -- hooks ------------------------------------------------------------

    def _clock_violation(self, seconds: int, now: int) -> None:
        self.events.append(
            EventRecord(
                time=now,
                component="sim.clock",
                message="clock moved backward",
                attrs=(("seconds", seconds),),
            )
        )
        self.metrics.inc("clock.moved_backward")


class NullObservation:
    """The disabled observation: every call short-circuits.

    One shared instance (:data:`NO_OP`) serves every un-observed world;
    it holds no state, so it is safe to share across shards, threads
    and processes.
    """

    __slots__ = ()

    enabled = False
    metrics = NULL_METRICS
    tracer = NullTracer()
    #: Immutable, so accidental appends fail loudly.
    events: tuple[EventRecord, ...] = ()

    def span(self, name: str, **attrs: object):
        return NULL_SPAN

    def count(self, name: str, amount: int = 1) -> None:
        pass

    def get_logger(self, component: str) -> _NullLogger:
        return _NULL_LOGGER


#: The shared disabled observation (zero-overhead default).
NO_OP = NullObservation()
