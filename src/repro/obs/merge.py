"""Shard-merge discipline shared by every per-shard artifact.

A sharded campaign produces one artifact per shard — attempt lists,
telemetry counters, :class:`~repro.faults.report.FaultReport`s and
observability journals — and every one of them must merge to the same
bytes regardless of how many workers ran the shards or in which order
they finished.  The discipline that guarantees it is always the same:

- fold **in shard-index order**, never completion order
  (:func:`fold_shard_ordered`), and
- combine counter records **field-wise by summation**
  (:func:`sum_counter_dataclasses`, :func:`merge_count_dicts`), which
  is associative, so the shard-ordered fold is a pure function of the
  shard set.

This module is the single home for that logic; ``core.runner``,
``faults.report`` and ``obs.journal`` all delegate here.  It lives in
``repro.obs`` (not ``repro.core``) because it must stay importable
from the faults layer, which the core package itself builds on.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
U = TypeVar("U")


def sum_counter_dataclasses(cls: type[T], reports: Iterable[T]) -> T:
    """Field-wise sum of counter dataclasses, as a new instance.

    Works for frozen and mutable dataclasses alike; every field must be
    summable (the counters are all ints).  An empty iterable yields the
    dataclass defaults.
    """
    names = [f.name for f in dataclasses.fields(cls)]  # type: ignore[arg-type]
    totals: dict[str, int] | None = None
    for report in reports:
        if totals is None:
            totals = {name: getattr(report, name) for name in names}
        else:
            for name in names:
                totals[name] += getattr(report, name)
    if totals is None:
        return cls()
    return cls(**totals)


def fold_shard_ordered(
    items: Sequence[T],
    index_of: Callable[[T], int],
    fold: Callable[[U, T], U],
    initial: U,
) -> U:
    """Fold shard artifacts in ascending shard-index order.

    The result is invariant to the order ``items`` arrives in (thread
    and process pools complete shards in nondeterministic order), which
    is the heart of the bit-identical-for-any-worker-count contract.
    """
    result = initial
    for item in sorted(items, key=index_of):
        result = fold(result, item)
    return result


def _append_fold(acc: list[T], item: T) -> list[T]:
    """Append-based fold step: O(1) per item, unlike ``acc + [item]``."""
    acc.append(item)
    return acc


def collect_shard_ordered(
    items: Sequence[T], index_of: Callable[[T], int]
) -> list[T]:
    """Shard artifacts as a new list in ascending shard-index order.

    The common ``fold_shard_ordered`` specialization; the append-based
    fold keeps it linear where ``fold=lambda acc, x: acc + [x]`` copies
    the accumulator once per shard (quadratic over large shard counts).
    """
    return fold_shard_ordered(items, index_of=index_of, fold=_append_fold, initial=[])


def merge_count_dicts(mappings: Iterable[dict[str, int]]) -> dict[str, int]:
    """Key-wise sum of counter mappings, sorted by key."""
    totals: dict[str, int] = {}
    for mapping in mappings:
        for key, value in mapping.items():
            totals[key] = totals.get(key, 0) + value
    return dict(sorted(totals.items()))
