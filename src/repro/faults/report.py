"""Per-campaign fault accounting.

Every injector (see :mod:`repro.faults.injectors`) and every retry site
increments counters on one shared :class:`FaultReport`.  Reports are
plain summable records: a sharded campaign produces one per shard and
:func:`repro.core.runner.merge_shard_results` folds them together in
shard order, so the merged report — like the attempts and telemetry it
rides with — is bit-identical for any worker count.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.obs.merge import sum_counter_dataclasses


@dataclass
class FaultReport:
    """Counters over every fault injected (and every recovery) in a run."""

    # -- transport plane -------------------------------------------------
    transport_unreachable: int = 0
    transport_tls_errors: int = 0
    transport_slowdowns: int = 0
    transport_slow_seconds: int = 0
    # -- DNS -------------------------------------------------------------
    dns_failures: int = 0
    # -- captcha solving -------------------------------------------------
    captcha_unsolved: int = 0
    captcha_missolved: int = 0
    # -- mail forwarding -------------------------------------------------
    mail_transient_failures: int = 0
    mail_retries: int = 0
    mail_dropped: int = 0
    mail_duplicated: int = 0
    mail_delayed: int = 0
    mail_undelivered: int = 0  # retry budget exhausted
    # -- provider telemetry ----------------------------------------------
    telemetry_dumps_delayed: int = 0
    telemetry_events_dropped: int = 0
    # -- crawler retry loop ----------------------------------------------
    crawler_retries: int = 0
    crawler_gave_up: int = 0

    def merged_with(self, other: "FaultReport") -> "FaultReport":
        """A new report with every counter summed field-wise."""
        return sum_counter_dataclasses(FaultReport, (self, other))

    def as_dict(self) -> dict[str, int]:
        """All counters as a plain mapping (JSON-friendly)."""
        return dataclasses.asdict(self)

    @property
    def total_injected(self) -> int:
        """Faults actually injected (recoveries and losses excluded)."""
        return (
            self.transport_unreachable
            + self.transport_tls_errors
            + self.transport_slowdowns
            + self.dns_failures
            + self.captcha_unsolved
            + self.captcha_missolved
            + self.mail_transient_failures
            + self.mail_dropped
            + self.mail_duplicated
            + self.mail_delayed
            + self.telemetry_dumps_delayed
            + self.telemetry_events_dropped
        )
