"""Deterministic fault injection over the measurement seams.

The subsystem has four pieces:

- :mod:`repro.faults.plan` — :class:`FaultPlan`, per-component failure
  rates as named profiles (``off``/``mild``/``moderate``/``heavy``);
- :mod:`repro.faults.injectors` — decorators over the Protocol seams
  (transport, DNS, captcha solver, mail forwarding, telemetry);
- :mod:`repro.faults.retry` — :class:`RetryPolicy`, capped exponential
  backoff with seeded jitter, shared by the crawler and mail chain;
- :mod:`repro.faults.report` — :class:`FaultReport`, summable per-run
  fault accounting, merged across shards by the campaign runner.
"""

from repro.faults.plan import PROFILES, FaultPlan
from repro.faults.report import FaultReport
from repro.faults.retry import NO_RETRY, RetryPolicy
from repro.faults.injectors import (
    DnsFaultInjector,
    MailFaultInjector,
    SolverFaultInjector,
    TelemetryFaultInjector,
    TransportFaultInjector,
)

__all__ = [
    "PROFILES",
    "FaultPlan",
    "FaultReport",
    "NO_RETRY",
    "RetryPolicy",
    "DnsFaultInjector",
    "MailFaultInjector",
    "SolverFaultInjector",
    "TelemetryFaultInjector",
    "TransportFaultInjector",
]
