"""Fault plans: per-component failure rates, as named profiles.

The paper's apparatus lived with constant partial failure — roughly
two-thirds of registration attempts failed, verification mail was
delayed or lost, and provider telemetry arrived in sporadic (sometimes
truncated) dumps.  A :class:`FaultPlan` captures those failure modes as
deterministic per-component rates; injectors draw against them from
seeded RNG streams (``tree.child("faults", plan.seed, <component>)``),
so a plan plus a root seed fully determines every injected fault.

Profiles are compared by *value*: two systems built from equal plans
and equal seeds inject identical fault streams, which is what keeps
sharded runs bit-identical to serial even with chaos enabled.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.faults.retry import RetryPolicy


@dataclass(frozen=True)
class FaultPlan:
    """All fault-injection knobs for one run (frozen, picklable)."""

    profile: str = "off"
    #: Extra namespace mixed into every injector's RNG path, so the
    #: same world seed can be chaos-tested under many fault streams.
    seed: int = 0

    # -- transport (crawler page loads, verification fetches) ----------
    transport_unreachable_rate: float = 0.0
    transport_tls_rate: float = 0.0
    transport_slow_rate: float = 0.0
    transport_slow_seconds: int = 30  # max extra latency per slow response

    # -- DNS (disclosure MX lookups, reverse checks) --------------------
    dns_failure_rate: float = 0.0

    # -- captcha solving service ----------------------------------------
    captcha_unsolved_rate: float = 0.0
    captcha_missolve_rate: float = 0.0

    # -- mail forwarding chain ------------------------------------------
    mail_transient_failure_rate: float = 0.0  # retryable relay hiccups
    mail_drop_rate: float = 0.0  # silent loss
    mail_duplicate_rate: float = 0.0
    mail_delay_rate: float = 0.0
    mail_delay_seconds: int = 6 * 3600  # max forwarding delay

    # -- provider telemetry dumps ---------------------------------------
    telemetry_late_rate: float = 0.0  # dump postponed past its slot
    telemetry_delay_seconds: int = 3 * 86400
    telemetry_truncate_rate: float = 0.0  # dump loses its tail
    telemetry_truncate_fraction: float = 0.2

    #: Backoff applied by the crawler and the forwarding hop.
    retry: RetryPolicy = RetryPolicy()

    def __post_init__(self) -> None:
        for name in (
            "transport_unreachable_rate", "transport_tls_rate",
            "transport_slow_rate", "dns_failure_rate",
            "captcha_unsolved_rate", "captcha_missolve_rate",
            "mail_transient_failure_rate", "mail_drop_rate",
            "mail_duplicate_rate", "mail_delay_rate",
            "telemetry_late_rate", "telemetry_truncate_rate",
            "telemetry_truncate_fraction",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value!r}")

    @property
    def enabled(self) -> bool:
        """Whether any fault can ever fire under this plan."""
        return any((
            self.transport_unreachable_rate, self.transport_tls_rate,
            self.transport_slow_rate, self.dns_failure_rate,
            self.captcha_unsolved_rate, self.captcha_missolve_rate,
            self.mail_transient_failure_rate, self.mail_drop_rate,
            self.mail_duplicate_rate, self.mail_delay_rate,
            self.telemetry_late_rate, self.telemetry_truncate_rate,
        ))

    @classmethod
    def from_profile(cls, name: str, seed: int = 0) -> "FaultPlan":
        """Build the named preset (``off``/``mild``/``moderate``/``heavy``)."""
        try:
            plan = PROFILES[name]
        except KeyError:
            known = ", ".join(sorted(PROFILES))
            raise ValueError(f"unknown fault profile {name!r} (known: {known})") from None
        return replace(plan, seed=seed)


#: Named presets, roughly geometric in severity.  ``moderate`` aims at
#: the paper's lived experience: a crawl that mostly fails but never
#: stops, mail that usually arrives, telemetry with visible gaps.
PROFILES: dict[str, FaultPlan] = {
    "off": FaultPlan(profile="off"),
    "mild": FaultPlan(
        profile="mild",
        transport_unreachable_rate=0.02,
        transport_tls_rate=0.01,
        transport_slow_rate=0.05,
        dns_failure_rate=0.01,
        captcha_unsolved_rate=0.05,
        captcha_missolve_rate=0.05,
        mail_transient_failure_rate=0.05,
        mail_drop_rate=0.01,
        mail_duplicate_rate=0.01,
        mail_delay_rate=0.05,
        telemetry_late_rate=0.05,
        telemetry_truncate_rate=0.05,
        telemetry_truncate_fraction=0.1,
    ),
    "moderate": FaultPlan(
        profile="moderate",
        transport_unreachable_rate=0.08,
        transport_tls_rate=0.03,
        transport_slow_rate=0.15,
        transport_slow_seconds=45,
        dns_failure_rate=0.05,
        captcha_unsolved_rate=0.15,
        captcha_missolve_rate=0.10,
        mail_transient_failure_rate=0.10,
        mail_drop_rate=0.05,
        mail_duplicate_rate=0.03,
        mail_delay_rate=0.15,
        telemetry_late_rate=0.20,
        telemetry_truncate_rate=0.15,
        telemetry_truncate_fraction=0.2,
    ),
    "heavy": FaultPlan(
        profile="heavy",
        transport_unreachable_rate=0.25,
        transport_tls_rate=0.08,
        transport_slow_rate=0.30,
        transport_slow_seconds=90,
        dns_failure_rate=0.15,
        captcha_unsolved_rate=0.35,
        captcha_missolve_rate=0.20,
        mail_transient_failure_rate=0.25,
        mail_drop_rate=0.15,
        mail_duplicate_rate=0.08,
        mail_delay_rate=0.30,
        mail_delay_seconds=24 * 3600,
        telemetry_late_rate=0.40,
        telemetry_delay_seconds=7 * 86400,
        telemetry_truncate_rate=0.30,
        telemetry_truncate_fraction=0.35,
        retry=RetryPolicy(max_attempts=4),
    ),
}
