"""Fault injectors: decorators over the measurement system's seams.

Each injector wraps one Protocol seam (:mod:`repro.sim.protocols`) or
concrete service, draws against its :class:`~repro.faults.plan.FaultPlan`
rates from its own seeded RNG stream, counts what it did on the shared
:class:`~repro.faults.report.FaultReport`, and otherwise delegates to
the wrapped object (``__getattr__`` passthrough), so a wrapped seam is
a drop-in replacement for an unwrapped one.

Determinism: every injector's RNG is derived from the system's
:class:`~repro.util.rngtree.RngTree` at
``("faults", plan.seed, <component>)``.  Within one system the call
sequence against each seam is serial and deterministic, so the injected
fault stream — and therefore the whole run — is a pure function of
``(world seed, fault plan)``.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING
from urllib.parse import urlsplit

from repro.faults.plan import FaultPlan
from repro.faults.report import FaultReport
from repro.mail.forwarding import TransientDeliveryError
from repro.net.dns import DnsResolver, NxDomain
from repro.net.transport import HostUnreachable, HttpResponse, TlsError
from repro.obs.metrics import NULL_METRICS

if TYPE_CHECKING:
    from repro.crawler.captcha import CaptchaSolverService
    from repro.email_provider.provider import EmailProvider
    from repro.email_provider.telemetry import LoginEvent
    from repro.mail.messages import EmailMessage
    from repro.sim.protocols import EventQueueLike, TransportLike


class _Injector:
    """Shared plumbing: plan, seeded rng, report, metrics, delegation."""

    def __init__(self, inner: object, plan: FaultPlan, rng: random.Random,
                 report: FaultReport, metrics=NULL_METRICS):
        self._inner = inner
        self._plan = plan
        self._rng = rng
        self._report = report
        self._metrics = metrics

    def _record(self, field: str, amount: int = 1) -> None:
        """Count one injected fault on the report *and* the metrics.

        The :class:`FaultReport` counter is the merge-stable artifact;
        the ``fault.<field>`` metrics counter puts the same number in
        the journal's fault-attribution section.
        """
        setattr(self._report, field, getattr(self._report, field) + amount)
        self._metrics.inc("fault." + field, amount)

    def __getattr__(self, name: str):
        return getattr(self._inner, name)


class TransportFaultInjector(_Injector):
    """Transient network failure in front of a ``TransportLike``.

    Injects ``HostUnreachable`` (host flaps, routing loss), ``TlsError``
    (certificate hiccups on HTTPS fetches) and slow responses (extra
    simulated latency) ahead of the real routing.  Registration,
    logging and host management delegate untouched, so sites keep
    serving exactly as before.
    """

    _inner: "TransportLike"

    def request(self, method: str, url: str, **kwargs: object) -> HttpResponse:
        self._maybe_fail(url)
        return self._inner.request(method, url, **kwargs)  # type: ignore[attr-defined]

    def get(self, url: str, **kwargs: object) -> HttpResponse:
        self._maybe_fail(url)
        return self._inner.get(url, **kwargs)

    def post(self, url: str, form: dict[str, str], **kwargs: object) -> HttpResponse:
        self._maybe_fail(url)
        return self._inner.post(url, form, **kwargs)

    def _maybe_fail(self, url: str) -> None:
        parts = urlsplit(url)
        host = (parts.hostname or "").lower()
        plan, rng = self._plan, self._rng
        if rng.random() < plan.transport_unreachable_rate:
            self._record("transport_unreachable")
            raise HostUnreachable(host)
        if parts.scheme == "https" and rng.random() < plan.transport_tls_rate:
            self._record("transport_tls_errors")
            raise TlsError(f"transient TLS failure for {host}")
        if rng.random() < plan.transport_slow_rate:
            extra = 1 + rng.randrange(max(1, plan.transport_slow_seconds))
            self._record("transport_slowdowns")
            self._record("transport_slow_seconds", extra)
            self._inner.clock.advance(extra)


class DnsFaultInjector(_Injector):
    """Transient resolution failure in front of a :class:`DnsResolver`.

    Lookups (A/MX) fail with ``NxDomain`` at the configured rate; zone
    management and PTR writes delegate untouched.
    """

    _inner: DnsResolver

    def resolve_a(self, name: str):
        self._maybe_fail(name)
        return self._inner.resolve_a(name)

    def resolve_mx(self, name: str):
        self._maybe_fail(name)
        return self._inner.resolve_mx(name)

    def _maybe_fail(self, name: str) -> None:
        if self._rng.random() < self._plan.dns_failure_rate:
            self._record("dns_failures")
            raise NxDomain(f"{name} (transient resolver failure)")


class SolverFaultInjector(_Injector):
    """Degrades the captcha solving service.

    ``unsolved`` models the service giving up (queue overflow, illegible
    image): the crawler gets ``None`` back.  ``missolved`` models a
    confidently wrong human answer on top of the service's own base
    error rate.
    """

    _inner: "CaptchaSolverService"

    def solve(self, challenge_token: str, is_knowledge_question: bool = False) -> str | None:
        if not challenge_token:
            return self._inner.solve(challenge_token, is_knowledge_question)
        if self._rng.random() < self._plan.captcha_unsolved_rate:
            self._record("captcha_unsolved")
            return None
        if self._rng.random() < self._plan.captcha_missolve_rate:
            self._record("captcha_missolved")
            return "".join(self._rng.choice("abcdef0123456789") for _ in range(6))
        return self._inner.solve(challenge_token, is_knowledge_question)


class MailFaultInjector(_Injector):
    """Lossy final delivery leg between the forwarding hop and the
    Tripwire mail server.

    Models the paper's verification-mail pathologies: transient relay
    failures (raised as :class:`TransientDeliveryError` so the hop's
    retry policy can recover them), silent drops, duplicates, and
    delays (re-scheduled onto the event queue hours later).
    """

    def __init__(self, inner, plan: FaultPlan, rng: random.Random,
                 report: FaultReport, queue: "EventQueueLike | None" = None,
                 metrics=NULL_METRICS):
        super().__init__(inner, plan, rng, report, metrics)
        self._queue = queue

    def __call__(self, message: "EmailMessage") -> None:
        plan, rng = self._plan, self._rng
        if rng.random() < plan.mail_transient_failure_rate:
            self._record("mail_transient_failures")
            raise TransientDeliveryError(f"relay refused mail for {message.recipient}")
        if rng.random() < plan.mail_drop_rate:
            self._record("mail_dropped")
            return
        if rng.random() < plan.mail_duplicate_rate:
            self._record("mail_duplicated")
            self._inner(message)  # type: ignore[operator]
        if self._queue is not None and rng.random() < plan.mail_delay_rate:
            delay = 1 + rng.randrange(max(1, plan.mail_delay_seconds))
            self._record("mail_delayed")
            # The queue is bound to the shard clock; scheduling relative
            # to "now" keeps delayed mail inside the shard's causal order.
            now = self._queue.clock.now()  # type: ignore[attr-defined]
            self._queue.schedule(
                now + delay,
                f"delayed-mail:{message.recipient}",
                lambda m=message: self._inner(m),  # type: ignore[operator]
            )
            return
        self._inner(message)  # type: ignore[operator]


class TelemetryFaultInjector(_Injector):
    """Sporadic, imperfect provider dumps (Section 4.2's reality).

    ``collect_dump`` either postpones the dump (returning the delay so
    the scenario can re-schedule it — late dumps can push events past
    the provider's retention window, which is exactly how the paper
    lost Spring 2015) or collects it, possibly truncated: a lossy
    export drops the tail of the event list.
    """

    _inner: "EmailProvider"

    def collect_dump(self) -> tuple["list[LoginEvent]", int | None]:
        """Returns ``(events, postpone_seconds)``; postponed dumps
        collect nothing now and should be re-scheduled."""
        plan, rng = self._plan, self._rng
        if rng.random() < plan.telemetry_late_rate:
            self._record("telemetry_dumps_delayed")
            return [], 1 + rng.randrange(max(1, plan.telemetry_delay_seconds))
        events = self._inner.collect_login_dump()
        if events and rng.random() < plan.telemetry_truncate_rate:
            lost = max(1, int(len(events) * plan.telemetry_truncate_fraction))
            self._record("telemetry_events_dropped", lost)
            events = events[: len(events) - lost]
        return events, None
