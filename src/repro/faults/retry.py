"""Capped exponential backoff with seeded jitter.

A :class:`RetryPolicy` is a frozen value object shared by the crawler
engine (transient :class:`~repro.crawler.outcomes.TerminationCode`
retries) and the mail forwarding hop (transient relay failures).  All
jitter comes from the caller's seeded RNG, so two runs with the same
seed draw identical backoff schedules.

Two invariants hold for *any* valid policy (property-tested in
``tests/faults/test_retry_properties.py``):

- a schedule is monotone non-decreasing (a later retry never waits
  less than an earlier one), and
- every delay is bounded by ``max_delay``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """How often, and how patiently, to retry a transient failure.

    ``max_attempts`` counts the initial try: 3 means one try plus at
    most two retries.  Delays grow as ``base_delay * multiplier**i``,
    are capped at ``max_delay``, and carry additive jitter of up to
    ``jitter_fraction`` of the pre-jitter delay.
    """

    max_attempts: int = 3
    base_delay: int = 5  # seconds before the first retry
    multiplier: float = 2.0
    max_delay: int = 120  # hard cap on any single wait
    jitter_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0:
            raise ValueError("base_delay must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be at least 1.0")
        if self.max_delay < self.base_delay:
            raise ValueError("max_delay must be at least base_delay")
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ValueError("jitter_fraction must be in [0, 1]")

    @property
    def retries(self) -> int:
        """Retries after the initial attempt."""
        return self.max_attempts - 1

    def delay_for(self, retry_index: int, rng: random.Random, metrics=None) -> int:
        """The jittered wait before retry ``retry_index`` (0-based).

        Bounded by ``max_delay``; monotonicity across successive
        indices is enforced by :meth:`schedule` (jitter alone could
        momentarily shrink a step).  ``metrics`` (a
        ``repro.obs.metrics`` registry, optional) records the draw:
        the ``retry.delays_drawn`` counter and the
        ``retry.backoff_seconds`` histogram.
        """
        if retry_index < 0:
            raise ValueError("retry_index must be non-negative")
        base = min(float(self.max_delay), self.base_delay * self.multiplier ** retry_index)
        jitter = rng.random() * self.jitter_fraction * base
        delay = int(min(float(self.max_delay), base + jitter))
        if metrics is not None:
            metrics.inc("retry.delays_drawn")
            metrics.observe("retry.backoff_seconds", delay)
        return delay

    def schedule(self, rng: random.Random) -> list[int]:
        """All backoff delays for one attempt, in order.

        Monotone non-decreasing and bounded by ``max_delay`` for any
        valid policy and any RNG stream.
        """
        delays: list[int] = []
        floor = 0
        for index in range(self.retries):
            floor = max(floor, self.delay_for(index, rng))
            delays.append(floor)
        return delays


#: A policy that never retries — useful as an explicit "off" value.
NO_RETRY = RetryPolicy(max_attempts=1, base_delay=0, multiplier=1.0, max_delay=0,
                       jitter_fraction=0.0)
