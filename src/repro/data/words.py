"""Vocabulary for usernames and easy passwords.

Usernames follow the paper's scheme (Section 4.1.1): an adjective, a noun
and a four-digit number, e.g. ``ArguableGem8317``.  Easy passwords
(Section 4.1.2) are a single seven-letter dictionary word, first letter
capitalized, followed by one digit, e.g. ``Website1``.
"""

ADJECTIVES: tuple[str, ...] = (
    "Arguable", "Breezy", "Candid", "Daring", "Earnest", "Fabled", "Gentle",
    "Hearty", "Ironic", "Jovial", "Keen", "Limber", "Mellow", "Nimble",
    "Opaque", "Placid", "Quaint", "Rustic", "Subtle", "Tepid", "Upbeat",
    "Vivid", "Wistful", "Zesty", "Amber", "Bold", "Crisp", "Dusty",
    "Eager", "Fuzzy", "Glossy", "Humble", "Icy", "Jagged", "Kindly",
    "Lively", "Misty", "Noble", "Olive", "Proud", "Quiet", "Rapid",
    "Sturdy", "Tidy", "Unique", "Velvet", "Witty", "Young", "Zippy",
    "Ancient", "Brisk", "Clever", "Dapper", "Elastic", "Frugal", "Golden",
    "Hasty", "Ideal", "Jolly", "Knotty", "Lucid", "Modest", "Neat",
    "Orderly", "Polite", "Quirky", "Robust", "Silent", "Tranquil", "Urbane",
    "Valiant", "Wandering", "Yearning", "Zealous", "Agile", "Bright",
    "Calm", "Deft", "Even", "Fleet", "Grand", "Hale", "Intent", "Just",
    "Kempt", "Loyal", "Merry", "Nifty", "Open", "Prime", "Quick", "Ready",
    "Sharp", "Terse", "Usual", "Vast", "Warm", "Xenial", "Yare", "Zonal",
)

NOUNS: tuple[str, ...] = (
    "Gem", "Falcon", "River", "Maple", "Comet", "Harbor", "Lantern",
    "Meadow", "Nebula", "Orchard", "Pebble", "Quartz", "Raven", "Summit",
    "Thicket", "Umbrella", "Valley", "Willow", "Yonder", "Zephyr",
    "Anchor", "Beacon", "Canyon", "Dune", "Ember", "Fjord", "Glacier",
    "Hollow", "Island", "Jetty", "Knoll", "Lagoon", "Mesa", "Nook",
    "Oasis", "Prairie", "Quarry", "Ridge", "Shore", "Tundra", "Upland",
    "Vista", "Wharf", "Yard", "Zenith", "Acorn", "Badger", "Cricket",
    "Dolphin", "Egret", "Finch", "Gopher", "Heron", "Ibis", "Jackal",
    "Kestrel", "Lemur", "Marmot", "Newt", "Otter", "Puffin", "Quail",
    "Rabbit", "Sparrow", "Tapir", "Urchin", "Vole", "Walrus", "Yak",
    "Zebra", "Arbor", "Bramble", "Cedar", "Dahlia", "Elm", "Fern",
    "Garnet", "Hazel", "Iris", "Jasper", "Kelp", "Laurel", "Moss",
    "Nettle", "Opal", "Pine", "Quince", "Rowan", "Sage", "Tulip",
    "Umber", "Violet", "Wren", "Yarrow", "Zinnia", "Atlas", "Binder",
    "Candle", "Drum",
)

# Seven-letter words only: the easy-password recipe requires exactly a
# seven-character dictionary word plus one digit (8 characters total).
DICTIONARY_WORDS: tuple[str, ...] = (
    "website", "account", "monitor", "network", "gateway", "process",
    "storage", "display", "channel", "capture", "citizen", "clarity",
    "climate", "comfort", "command", "company", "compass", "concert",
    "contest", "control", "cottage", "council", "counter", "country",
    "crystal", "culture", "current", "custard", "cutlery", "cyclone",
    "density", "deposit", "desktop", "diagram", "diamond", "digital",
    "dolphin", "drawing", "dynasty", "eclipse", "economy", "edition",
    "element", "evening", "exhibit", "explore", "factory", "fashion",
    "feather", "fiction", "fortune", "freedom", "gallery", "general",
    "genuine", "glacier", "gravity", "habitat", "harmony", "harvest",
    "heading", "healthy", "highway", "history", "holiday", "horizon",
    "imagine", "insight", "journal", "journey", "justice", "kitchen",
    "lantern", "leather", "liberty", "library", "machine", "mariner",
    "meadows", "measure", "mineral", "morning", "mystery", "natural",
    "nurture", "octagon", "opinion", "orchard", "pacific", "package",
    "painter", "passage", "pattern", "penguin", "picture", "pioneer",
    "planner", "plastic", "polygon", "prairie", "present", "primary",
    "privacy", "problem", "product", "profile", "project", "promise",
    "quality", "quantum", "railway", "rainbow", "reactor", "recover",
    "reflect", "regular", "request", "reserve", "respect", "revenue",
    "romance", "rubbish", "sailing", "satisfy", "scholar", "science",
    "section", "serious", "service", "session", "shelter", "silence",
    "society", "stadium", "station", "storied", "strands", "student",
    "subject", "success", "support", "surface", "teacher", "texture",
    "theater", "thunder", "tonight", "traffic", "trouble", "uniform",
    "upgrade", "utility", "vanilla", "variety", "venture", "village",
    "vintage", "visitor", "volcano", "voyager", "walnuts", "warrior",
    "weather", "welcome", "western", "whisper", "windows", "wonders",
)
