"""Static word lists and catalogs used across the simulation.

These play the role of the paper's external inputs: the Fake Name
Generator-style identity corpus, the adjective/noun username vocabulary,
the dictionary used for "easy" passwords, site-category labels and the
country/registry data backing the simulated WHOIS database.
"""

from repro.data.words import (
    ADJECTIVES,
    DICTIONARY_WORDS,
    NOUNS,
)
from repro.data.identity_corpus import (
    CITIES,
    EMPLOYERS,
    FEMALE_FIRST_NAMES,
    LAST_NAMES,
    MALE_FIRST_NAMES,
    STREET_NAMES,
    STREET_SUFFIXES,
    US_STATES,
)
from repro.data.sites import (
    SITE_CATEGORIES,
    SITE_NAME_STEMS,
    TLDS,
)
from repro.data.geo import ATTACKER_COUNTRY_WEIGHTS, COUNTRIES

__all__ = [
    "ADJECTIVES",
    "NOUNS",
    "DICTIONARY_WORDS",
    "MALE_FIRST_NAMES",
    "FEMALE_FIRST_NAMES",
    "LAST_NAMES",
    "STREET_NAMES",
    "STREET_SUFFIXES",
    "CITIES",
    "US_STATES",
    "EMPLOYERS",
    "SITE_CATEGORIES",
    "SITE_NAME_STEMS",
    "TLDS",
    "COUNTRIES",
    "ATTACKER_COUNTRY_WEIGHTS",
]
