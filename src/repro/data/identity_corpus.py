"""Corpus backing fictitious identities (Section 4.1.1).

The paper generated identities with full names, syntactically valid US
street addresses, phone numbers, dates of birth and employers, designed
to be indistinguishable from organic users.  This module provides the raw
material those generators sample from.
"""

MALE_FIRST_NAMES: tuple[str, ...] = (
    "James", "John", "Robert", "Michael", "William", "David", "Richard",
    "Joseph", "Thomas", "Charles", "Christopher", "Daniel", "Matthew",
    "Anthony", "Donald", "Mark", "Paul", "Steven", "Andrew", "Kenneth",
    "Joshua", "Kevin", "Brian", "George", "Edward", "Ronald", "Timothy",
    "Jason", "Jeffrey", "Ryan", "Jacob", "Gary", "Nicholas", "Eric",
    "Jonathan", "Stephen", "Larry", "Justin", "Scott", "Brandon",
    "Benjamin", "Samuel", "Gregory", "Frank", "Alexander", "Raymond",
    "Patrick", "Jack", "Dennis", "Jerry",
)

FEMALE_FIRST_NAMES: tuple[str, ...] = (
    "Mary", "Patricia", "Jennifer", "Linda", "Elizabeth", "Barbara",
    "Susan", "Jessica", "Sarah", "Karen", "Nancy", "Lisa", "Margaret",
    "Betty", "Sandra", "Ashley", "Dorothy", "Kimberly", "Emily", "Donna",
    "Michelle", "Carol", "Amanda", "Melissa", "Deborah", "Stephanie",
    "Rebecca", "Laura", "Sharon", "Cynthia", "Kathleen", "Amy", "Shirley",
    "Angela", "Helen", "Anna", "Brenda", "Pamela", "Nicole", "Samantha",
    "Katherine", "Emma", "Ruth", "Christine", "Catherine", "Debra",
    "Rachel", "Carolyn", "Janet", "Virginia",
)

LAST_NAMES: tuple[str, ...] = (
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
    "Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
    "Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson",
    "Martin", "Lee", "Perez", "Thompson", "White", "Harris", "Sanchez",
    "Clark", "Ramirez", "Lewis", "Robinson", "Walker", "Young", "Allen",
    "King", "Wright", "Scott", "Torres", "Nguyen", "Hill", "Flores",
    "Green", "Adams", "Nelson", "Baker", "Hall", "Rivera", "Campbell",
    "Mitchell", "Carter", "Roberts",
)

STREET_NAMES: tuple[str, ...] = (
    "Oak", "Maple", "Cedar", "Pine", "Elm", "Washington", "Lake", "Hill",
    "Walnut", "Spring", "North", "Ridge", "Church", "Willow", "Mill",
    "Sunset", "Railroad", "Jackson", "West", "South", "Center", "Highland",
    "Forest", "River", "Meadow", "Jefferson", "Park", "Madison", "Chestnut",
    "Franklin", "Lincoln", "Main", "Second", "Third", "Fourth", "Fifth",
    "Cherry", "Dogwood", "Hickory", "Locust",
)

STREET_SUFFIXES: tuple[str, ...] = (
    "St", "Ave", "Blvd", "Dr", "Ln", "Rd", "Ct", "Pl", "Way", "Ter",
)

# (city, state abbreviation, zip prefix) — used to form plausible
# US addresses; the full zip is the prefix plus two generated digits.
CITIES: tuple[tuple[str, str, str], ...] = (
    ("Springfield", "IL", "627"),
    ("Riverside", "CA", "925"),
    ("Franklin", "TN", "370"),
    ("Greenville", "SC", "296"),
    ("Clinton", "MS", "390"),
    ("Fairview", "OR", "970"),
    ("Salem", "MA", "019"),
    ("Madison", "WI", "537"),
    ("Georgetown", "TX", "786"),
    ("Arlington", "VA", "222"),
    ("Ashland", "OH", "448"),
    ("Dover", "DE", "199"),
    ("Hudson", "NY", "125"),
    ("Milton", "FL", "325"),
    ("Newport", "RI", "028"),
    ("Oxford", "MS", "386"),
    ("Burlington", "VT", "054"),
    ("Chester", "PA", "190"),
    ("Dayton", "OH", "454"),
    ("Auburn", "AL", "368"),
    ("Boulder", "CO", "803"),
    ("Helena", "MT", "596"),
    ("Juneau", "AK", "998"),
    ("Kingston", "TN", "377"),
    ("Lebanon", "NH", "037"),
)

US_STATES: tuple[str, ...] = tuple(sorted({city[1] for city in CITIES}))

EMPLOYERS: tuple[str, ...] = (
    "Evergreen Logistics", "Bluefin Analytics", "Cascade Printing Co",
    "Harbor Light Media", "Pinnacle Staffing", "Redwood Textiles",
    "Summit Dental Group", "Twin Oaks Landscaping", "Vista Travel Agency",
    "Lakeshore Hardware", "Granite Peak Outfitters", "Copperline Catering",
    "Silver Birch Consulting", "Northgate Auto Parts", "Prairie Wind Farms",
    "Ironwood Construction", "Clearwater Plumbing", "Golden Mile Bakery",
    "Stonebridge Insurance", "Falcon Ridge Realty", "Amber Valley Vineyards",
    "Brightpath Tutoring", "Coastal Freight Lines", "Driftwood Studios",
    "Elmwood Veterinary Clinic", "Foxglove Florists", "Greenfield Grocers",
    "Hilltop Accounting", "Inland Marine Supply", "Juniper Web Design",
)

AREA_CODES: tuple[str, ...] = (
    "205", "212", "213", "214", "216", "303", "305", "312", "313", "314",
    "404", "408", "410", "412", "415", "503", "504", "512", "513", "515",
    "602", "603", "614", "615", "617", "702", "703", "713", "714", "716",
    "801", "802", "803", "804", "805", "901", "902", "904", "907", "916",
)
