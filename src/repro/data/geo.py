"""Country catalog and attacker-geography weights.

Section 6.4.3 reports that attacker login IPs were dominated by Russia
(194 IPs), China (144), the USA (135) and Vietnam (89) with 92 countries
represented overall, and that most were residential/consumer addresses.
The weights below are proportional to those counts with a long tail.
"""

# (ISO code, name) — a representative slice of the 92 countries seen.
COUNTRIES: tuple[tuple[str, str], ...] = (
    ("RU", "Russia"), ("CN", "China"), ("US", "United States"),
    ("VN", "Vietnam"), ("IN", "India"), ("BR", "Brazil"),
    ("ID", "Indonesia"), ("UA", "Ukraine"), ("TR", "Turkey"),
    ("TH", "Thailand"), ("DE", "Germany"), ("FR", "France"),
    ("GB", "United Kingdom"), ("IT", "Italy"), ("ES", "Spain"),
    ("PL", "Poland"), ("RO", "Romania"), ("MX", "Mexico"),
    ("AR", "Argentina"), ("CO", "Colombia"), ("EG", "Egypt"),
    ("IR", "Iran"), ("PK", "Pakistan"), ("BD", "Bangladesh"),
    ("PH", "Philippines"), ("MY", "Malaysia"), ("KR", "South Korea"),
    ("JP", "Japan"), ("TW", "Taiwan"), ("NL", "Netherlands"),
    ("SE", "Sweden"), ("NO", "Norway"), ("FI", "Finland"),
    ("CZ", "Czechia"), ("HU", "Hungary"), ("BG", "Bulgaria"),
    ("RS", "Serbia"), ("GR", "Greece"), ("PT", "Portugal"),
    ("BE", "Belgium"), ("CH", "Switzerland"), ("AT", "Austria"),
    ("AU", "Australia"), ("NZ", "New Zealand"), ("CA", "Canada"),
    ("CL", "Chile"), ("PE", "Peru"), ("VE", "Venezuela"),
    ("ZA", "South Africa"), ("NG", "Nigeria"), ("KE", "Kenya"),
    ("MA", "Morocco"), ("DZ", "Algeria"), ("TN", "Tunisia"),
    ("SA", "Saudi Arabia"), ("AE", "UAE"), ("IQ", "Iraq"),
    ("IL", "Israel"), ("KZ", "Kazakhstan"), ("BY", "Belarus"),
    ("MD", "Moldova"), ("GE", "Georgia"), ("AM", "Armenia"),
    ("AZ", "Azerbaijan"), ("UZ", "Uzbekistan"), ("MN", "Mongolia"),
    ("LK", "Sri Lanka"), ("NP", "Nepal"), ("MM", "Myanmar"),
    ("KH", "Cambodia"), ("LA", "Laos"), ("SG", "Singapore"),
    ("HK", "Hong Kong"), ("EC", "Ecuador"), ("BO", "Bolivia"),
    ("PY", "Paraguay"), ("UY", "Uruguay"), ("CR", "Costa Rica"),
    ("PA", "Panama"), ("DO", "Dominican Republic"), ("GT", "Guatemala"),
    ("HN", "Honduras"), ("SV", "El Salvador"), ("NI", "Nicaragua"),
    ("JM", "Jamaica"), ("TT", "Trinidad"), ("IS", "Iceland"),
    ("IE", "Ireland"), ("DK", "Denmark"), ("SK", "Slovakia"),
    ("SI", "Slovenia"), ("HR", "Croatia"),
)

# Weights proportional to the §6.4.3 IP counts for the named countries,
# with a geometric long tail for the rest.
ATTACKER_COUNTRY_WEIGHTS: tuple[tuple[str, float], ...] = tuple(
    [
        ("RU", 194.0), ("CN", 144.0), ("US", 135.0), ("VN", 89.0),
        ("IN", 55.0), ("BR", 48.0), ("ID", 40.0), ("UA", 36.0),
        ("TR", 30.0), ("TH", 26.0),
    ]
    + [
        (code, max(1.0, 22.0 * (0.93 ** i)))
        for i, (code, _name) in enumerate(COUNTRIES[10:])
    ]
)

COUNTRY_NAMES: dict[str, str] = {code: name for code, name in COUNTRIES}
