"""Catalogs for the simulated website population.

Site categories mirror those the paper reports for compromised sites
(Table 2) plus common categories seen across the Alexa ranking.  Name
stems and TLDs combine into plausible domain names.
"""

# Categories observed in Table 2 first, then general filler categories.
SITE_CATEGORIES: tuple[str, ...] = (
    "Deals", "Gaming", "BitTorrent", "Wallpapers", "RSS Feeds", "Marketing",
    "Horoscopes", "Classifieds", "Adult", "Vacations", "Outdoors",
    "Tourism Guide", "Press Releases", "BTC Forum", "News", "Shopping",
    "Sports", "Recipes", "Music", "Video", "Education", "Finance",
    "Health", "Technology", "Photography", "Weather", "Jobs", "Real Estate",
    "Forums", "Blogging", "Streaming", "Crafts", "Automotive", "Pets",
    "Parenting", "Fitness", "Books", "Movies", "Comics", "Local Guide",
)

SITE_NAME_STEMS: tuple[str, ...] = (
    "apex", "arrow", "astro", "atlas", "aurora", "beacon", "blaze",
    "breeze", "bridge", "bright", "cargo", "cedar", "charm", "chirp",
    "citrus", "cloud", "cobalt", "coral", "crest", "crisp", "dart",
    "dawn", "delta", "drift", "echo", "ember", "fable", "flare", "flint",
    "flux", "forge", "fox", "frost", "gale", "glide", "grove", "gulf",
    "harbor", "haven", "hive", "horizon", "iris", "ivory", "jade",
    "jolt", "keel", "kite", "lark", "ledge", "lime", "lunar", "lyric",
    "mango", "marble", "merit", "mesa", "mint", "mirth", "nectar",
    "nimbus", "north", "nova", "oak", "onyx", "opal", "orbit", "osprey",
    "pearl", "pique", "pixel", "plume", "polar", "prism", "pulse",
    "quartz", "quest", "quill", "rally", "rapid", "reef", "relay",
    "ripple", "roam", "rove", "sable", "scout", "shard", "shine",
    "slate", "solar", "spark", "sprig", "spry", "stellar", "stream",
    "summit", "surge", "swift", "thrive", "tide", "topaz", "trail",
    "trek", "trove", "tundra", "umbra", "vault", "verve", "vista",
    "vivid", "wander", "wave", "whirl", "wisp", "zeal", "zen", "zest",
)

SITE_NAME_SUFFIXES: tuple[str, ...] = (
    "hub", "zone", "spot", "base", "land", "world", "place", "center",
    "point", "site", "page", "post", "cast", "feed", "list", "deck",
    "desk", "lab", "works", "space",
)

TLDS: tuple[tuple[str, float], ...] = (
    (".com", 62.0),
    (".net", 8.0),
    (".org", 7.0),
    (".ru", 5.0),
    (".de", 4.0),
    (".cn", 4.0),
    (".co.uk", 3.0),
    (".info", 2.5),
    (".fr", 1.5),
    (".in", 1.5),
    (".io", 1.0),
    (".biz", 0.5),
)

# Common-backend platforms the paper filtered out before crawling
# (Section 5.1): many regional storefronts share one account system.
SHARED_BACKENDS: tuple[str, ...] = (
    "amazon", "google", "youtube", "blogger", "blogspot", "wikipedia",
    "facebook", "twitter", "live", "microsoft", "ebay", "craigslist",
    "yahoo", "instagram", "linkedin",
)
