"""Warm per-worker world cache: shard-invariant substrate products.

Rebuilding a shard's world from its plan is the dominant cost of small
shards on a process pool: every worker re-generates the same site
specs, re-mints the same identity corpus and re-renders the same
wordlist-derived content that every other worker (and every earlier
run in the same worker process) already computed.  This module caches
the products that are **pure functions of the world key** —
``(seed, population size, generator config, site overrides)`` — for
the lifetime of the worker process, so a persistent pool pays the
build cost once per worker instead of once per shard.

What is cached, and why each entry is safe:

- **Site specs** (:class:`SpecCache`).  A rank's spec is a pure
  function of the substrate tree (root seed) and the generator config;
  the generator draws from ``tree.child("site-generator").child("rank",
  rank)`` so specs are independent per rank.  The one cross-rank input
  is the host-collision set, which the generator keeps order-free by
  filling shared caches *prefix-closed* (see
  :meth:`~repro.web.generator.SiteGenerator.spec_for_rank`): rank ``r``
  always collides against exactly ranks ``1..r-1``, whichever shard,
  epoch or worker asks first.  Specs are frozen dataclasses and never
  mutated after generation.
- **Identity corpora** (:attr:`WarmWorld.identity_corpus`).  A shard's
  provisioning draws ``hard + easy`` identities from the apparatus
  tree at namespace ``("shard", k)`` — a pure function of
  ``(world key, namespace, counts)``.  The cache records every
  identity *created* (including provider-rejected ones) and replays
  them through ``EmailProvider.provision``, which draws no randomness,
  so the provider and pool end in exactly the cold-path state.  The
  replay contract requires that no further identities are minted from
  that apparatus afterwards — true for ``run_shard``, which sizes its
  corpus up front.

The cold path survives untouched: with the perf layer disabled
(``REPRO_PERF_DISABLE=1`` / ``set_enabled(False)``) or
``warm_enabled=False`` on the plan, :func:`world_for_plan` returns
``None`` and every shard rebuilds from scratch.  ``set_enabled(False)``
also clears the world store (it registers through
:class:`~repro.perf.caching.LruCache`), keeping A/B timings honest.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Hashable

from repro.identity.passwords import PasswordClass
from repro.identity.records import Identity
from repro.perf import caching as _perf
from repro.web.spec import SiteSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runner imports us)
    from repro.core.runner import ShardPlan
    from repro.core.system import TripwireSystem
    from repro.web.generator import GeneratorConfig


@dataclass
class SpecCache:
    """Process-lifetime site-spec store shared by every warm shard.

    Satisfies :class:`repro.web.generator.SpecCacheLike`: the generator
    consults ``specs`` before generating and shares ``hosts_taken`` so
    collision handling matches a single long-lived generator.
    """

    specs: dict[int, SiteSpec] = field(default_factory=dict)
    hosts_taken: set[str] = field(default_factory=set)


@dataclass
class WarmWorld:
    """Everything cached for one world key.

    One instance per ``(seed, population, generator config, overrides)``
    tuple per worker process; shards with different apparatus
    namespaces share the spec cache but keep distinct corpus entries.
    """

    spec_cache: SpecCache = field(default_factory=SpecCache)
    #: ``(namespace, hard, easy) -> (hard identities, easy identities)``
    #: — every identity created for that provisioning call, in creation
    #: order, rejects included.
    identity_corpus: dict[
        tuple[Hashable, ...], tuple[tuple[Identity, ...], tuple[Identity, ...]]
    ] = field(default_factory=dict)

    def provision(
        self,
        system: "TripwireSystem",
        hard_needed: int,
        easy_needed: int,
        namespace: tuple[object, ...],
    ) -> int:
        """Provision a shard's identity corpus, replaying when warm.

        Cold: draw from the factory as usual, recording what was
        created.  Warm: replay the recorded corpus through the provider
        (which draws no RNG), leaving factory state untouched — valid
        only because ``run_shard`` never mints further identities.
        Returns how many identities joined the pool.
        """
        key = (namespace, hard_needed, easy_needed)
        cached = self.identity_corpus.get(key)
        if cached is not None:
            hard_ids, easy_ids = cached
            added = system.provision_identities(
                hard_needed, PasswordClass.HARD, prebuilt=hard_ids
            )
            added += system.provision_identities(
                easy_needed, PasswordClass.EASY, prebuilt=easy_ids
            )
            return added
        hard_record: list[Identity] = []
        easy_record: list[Identity] = []
        added = system.provision_identities(
            hard_needed, PasswordClass.HARD, record=hard_record
        )
        added += system.provision_identities(
            easy_needed, PasswordClass.EASY, record=easy_record
        )
        self.identity_corpus[key] = (tuple(hard_record), tuple(easy_record))
        return added


def _config_key(config: "GeneratorConfig | None") -> Hashable:
    """A generator config as a hashable field tuple (None-safe)."""
    if config is None:
        return None
    return tuple(
        (f.name, getattr(config, f.name)) for f in dataclasses.fields(config)
    )


def world_key(
    seed: int,
    population_size: int,
    generator_config: "GeneratorConfig | None",
    packed_overrides: tuple,
) -> Hashable:
    """The cache key: every input that determines substrate products."""
    return (seed, population_size, _config_key(generator_config), packed_overrides)


#: Worker-process-lifetime store.  Small on purpose: one entry per
#: distinct world this process has run; campaigns use exactly one.
#: Registering through LruCache means ``set_enabled(False)`` /
#: ``clear_all_caches`` empty it, which the A/B bench relies on.
_WORLDS = _perf.LruCache(maxsize=4, name="warm.worlds")


def world_for_key(key: Hashable) -> WarmWorld:
    """The (possibly fresh) warm world for a key, unconditionally."""
    world = _WORLDS.get(key)
    if world is None:
        world = WarmWorld()
        _WORLDS.put(key, world)
    return world  # type: ignore[return-value]


def world_for_plan(plan: "ShardPlan") -> WarmWorld | None:
    """The warm world a shard plan should use, or ``None`` for cold.

    Cold when the plan didn't opt in (``warm_enabled=False``) or the
    perf layer is globally disabled — both fall back to the reference
    build path byte-for-byte.
    """
    if not plan.warm_enabled or not _perf.enabled():
        return None
    key = world_key(
        plan.seed, plan.population_size, plan.generator_config, plan.site_overrides
    )
    return world_for_key(key)
