"""Named performance benches and the ``BENCH_<n>.json`` trajectory.

Every bench times the *same workload* twice — once with the perf layer
disabled (:func:`repro.perf.caching.set_enabled`) and once with it on —
so the reported speedup is an honest A/B on one machine, and the macro
benches additionally assert the two runs produce bit-identical results.

The suite writes a schema-versioned snapshot to ``BENCH_<n>.json`` at
the repo root (one file per performance PR, forming a trajectory), and
``--check`` gates against a committed baseline using speedup *ratios*
rather than absolute seconds, so the gate survives slow CI machines.
The budget is deliberately generous (a bench fails only after losing
more than half its recorded speedup): the gate catches "someone turned
the caches off", not scheduler noise.

Usage::

    PYTHONPATH=src python -m repro perf                 # full suite
    PYTHONPATH=src python -m repro perf --quick         # CI-sized
    PYTHONPATH=src python -m repro perf --quick \
        --check benchmarks/perf_baseline.json           # regression gate
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time
from dataclasses import dataclass, field

from repro.perf import caching as _perf

SCHEMA_VERSION = 1
#: Index of this snapshot in the repo-root BENCH trajectory (one file
#: per PR that touches the perf surface; BENCH_3 introduced the suite,
#: BENCH_4 added the obs-overhead bench, BENCH_5 the scale-out
#: executor bench).
BENCH_INDEX = 5

REPO_ROOT = pathlib.Path(__file__).resolve().parents[3]
TRAJECTORY_PATH = REPO_ROOT / f"BENCH_{BENCH_INDEX}.json"
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "perf_baseline.json"

#: A gated bench regresses only when it retains less than
#: ``1 / CHECK_BUDGET`` of the baseline's recorded speedup.
CHECK_BUDGET = 2.0


@dataclass
class BenchResult:
    """One bench's A/B timing plus bench-specific extras."""

    name: str
    kind: str  # "micro" | "macro"
    baseline_seconds: float
    optimized_seconds: float
    #: Whether --check gates this bench's speedup ratio.  Core-count
    #: dependent benches (the sharded campaign) record their numbers
    #: but are never gated: their ratio is a property of the machine,
    #: not of the code.
    gated: bool = True
    extras: dict = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        if self.optimized_seconds <= 0:
            return float("inf")
        return self.baseline_seconds / self.optimized_seconds

    def as_dict(self) -> dict:
        payload = {
            "kind": self.kind,
            "baseline_seconds": round(self.baseline_seconds, 4),
            "optimized_seconds": round(self.optimized_seconds, 4),
            "speedup": round(self.speedup, 2),
            "gated": self.gated,
        }
        payload.update(self.extras)
        return payload


def _best_of(fn, repeats: int = 3) -> float:
    """Wall time of ``fn()``, best of ``repeats`` (min rejects noise)."""
    best = float("inf")
    for _ in range(repeats):
        began = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - began)
    return best


def _ab_timing(workload, repeats: int = 3) -> tuple[float, float]:
    """Time ``workload()`` with the perf layer off, then on (warm)."""
    was_enabled = _perf.enabled()
    try:
        _perf.set_enabled(False)
        baseline = _best_of(workload, repeats)
        _perf.set_enabled(True)
        workload()  # warm the caches before timing
        optimized = _best_of(workload, repeats)
    finally:
        _perf.set_enabled(was_enabled)
    return baseline, optimized


# -- workload corpora --------------------------------------------------------


def _spec_matrix():
    """Deterministic specs spanning languages and label styles."""
    from repro.web.spec import BotCheck, SiteSpec

    specs = []
    for lang in ("en", "de", "es", "fr"):
        for style in ("for", "wrap", "placeholder", "adjacent"):
            specs.append(
                SiteSpec(
                    host=f"{lang}-{style}.bench.test",
                    rank=5,
                    category="News",
                    language=lang,
                    label_style=style,
                    wants_name=True,
                    wants_phone=True,
                    wants_confirm_password=True,
                    wants_terms_checkbox=True,
                    bot_check=BotCheck.CAPTCHA_IMAGE,
                )
            )
    return specs


def _page_bodies() -> list[str]:
    from repro.web.i18n import LEXICONS
    from repro.web.pages import render_homepage, render_registration_page

    bodies = []
    for spec in _spec_matrix():
        lex = LEXICONS[spec.language]
        bodies.append(render_homepage(spec, lex))
        bodies.append(render_registration_page(spec, lex, captcha_token="ch-bench-1"))
    return bodies


def _classify_corpus():
    """Form fields extracted from rendered registration pages."""
    from repro.html.forms import extract_form_model
    from repro.html.parser import parse_html
    from repro.web.i18n import LEXICONS
    from repro.web.pages import render_registration_page

    fields = []
    for spec in _spec_matrix():
        lex = LEXICONS[spec.language]
        dom = parse_html(render_registration_page(spec, lex, captcha_token="ch-bench-1"))
        form = dom.find_first("form")
        fields.extend(extract_form_model(dom, form).fields)
    return fields


# -- benches -----------------------------------------------------------------


def bench_classify(quick: bool) -> BenchResult:
    """Field classification: naive reference vs fused + LRU cache."""
    from repro.crawler.fields import classify_field, classify_field_reference
    from repro.crawler.langpacks import packs_for

    corpus = _classify_corpus()
    packs = packs_for({"de", "es", "fr"})
    iterations = 10 if quick else 40

    def run(impl):
        for _ in range(iterations):
            for item in corpus:
                impl(item, packs=packs)

    baseline = _best_of(lambda: run(classify_field_reference))
    was_enabled = _perf.enabled()
    try:
        _perf.set_enabled(True)
        mismatches = sum(
            classify_field(item, packs=packs)
            != classify_field_reference(item, packs=packs)
            for item in corpus
        )
        run(classify_field)  # warm the LRU
        optimized = _best_of(lambda: run(classify_field))
    finally:
        _perf.set_enabled(was_enabled)
    return BenchResult(
        name="classify_micro",
        kind="micro",
        baseline_seconds=baseline,
        optimized_seconds=optimized,
        extras={
            "fields": len(corpus),
            "iterations": iterations,
            "identical": mismatches == 0,
        },
    )


def bench_parse(quick: bool) -> BenchResult:
    """HTML parsing: tokenizer every time vs DOM cache + clone."""
    from repro.html.browser import _parse_body

    bodies = _page_bodies()
    iterations = 5 if quick else 20

    def run():
        for _ in range(iterations):
            for body in bodies:
                _parse_body(body)

    baseline, optimized = _ab_timing(run)
    return BenchResult(
        name="parse_micro",
        kind="micro",
        baseline_seconds=baseline,
        optimized_seconds=optimized,
        extras={"bodies": len(bodies), "iterations": iterations},
    )


def bench_render(quick: bool) -> BenchResult:
    """Page rendering: full DOM build vs render cache."""
    from repro.web.i18n import LEXICONS
    from repro.web.pages import render_homepage, render_registration_page

    specs = _spec_matrix()
    iterations = 5 if quick else 20

    def run():
        for _ in range(iterations):
            for index, spec in enumerate(specs):
                lex = LEXICONS[spec.language]
                render_homepage(spec, lex)
                render_registration_page(spec, lex, captcha_token=f"ch-bench-{index}")

    baseline, optimized = _ab_timing(run)
    return BenchResult(
        name="render_micro",
        kind="micro",
        baseline_seconds=baseline,
        optimized_seconds=optimized,
        extras={"specs": len(specs), "iterations": iterations},
    )


def _pilot_config(quick: bool):
    from repro.core.scenario import ScenarioConfig

    if quick:
        return ScenarioConfig(
            seed=31,
            population_size=150,
            seed_list_size=30,
            main_crawl_top=120,
            second_crawl_top=150,
            manual_top=10,
            breach_count=5,
            breach_hard_exposing=3,
            unused_account_count=40,
            control_account_count=3,
        )
    return ScenarioConfig(
        seed=31,
        population_size=350,
        seed_list_size=60,
        main_crawl_top=300,
        second_crawl_top=350,
        manual_top=15,
        breach_count=8,
        breach_hard_exposing=4,
        unused_account_count=80,
        control_account_count=4,
    )


def _pilot_fingerprint(result) -> list[tuple]:
    return [
        (a.site_host, a.identity.email_local, a.password_class.value,
         a.outcome.code.value, a.outcome.started_at, a.outcome.finished_at)
        for a in result.campaign.attempts
    ]


def bench_pilot(quick: bool) -> BenchResult:
    """One complete pilot, caches off vs on, results bit-identical."""
    from repro.core.scenario import PilotScenario

    config = _pilot_config(quick)
    was_enabled = _perf.enabled()
    try:
        _perf.set_enabled(False)
        began = time.perf_counter()
        off_result = PilotScenario(config).run()
        baseline = time.perf_counter() - began

        _perf.set_enabled(True)  # clears nothing; caches start cold
        _perf.clear_all_caches()
        began = time.perf_counter()
        cold_result = PilotScenario(config).run()
        cold = time.perf_counter() - began

        began = time.perf_counter()
        warm_result = PilotScenario(config).run()
        warm = time.perf_counter() - began
    finally:
        _perf.set_enabled(was_enabled)

    identical = (
        _pilot_fingerprint(off_result) == _pilot_fingerprint(cold_result)
        == _pilot_fingerprint(warm_result)
        and off_result.detected_hosts == cold_result.detected_hosts
        == warm_result.detected_hosts
    )
    return BenchResult(
        name="pilot_end_to_end",
        kind="macro",
        baseline_seconds=baseline,
        optimized_seconds=cold,
        extras={
            "population": config.population_size,
            "warm_seconds": round(warm, 4),
            "warm_speedup": round(baseline / warm, 2) if warm > 0 else float("inf"),
            "attempts": len(off_result.campaign.attempts),
            "detected": len(off_result.detected_hosts),
            "identical": identical,
        },
    )


def bench_sharded_campaign(quick: bool) -> BenchResult:
    """Registration campaign, serial vs process pool (never gated)."""
    from repro.core.runner import CampaignRunner
    from repro.core.substrate import WorldShard
    from repro.util.rngtree import RngTree

    seed, population, top, shards = (31, 150, 120, 4) if quick else (31, 350, 300, 8)
    cpu_count = os.cpu_count() or 1
    workers = min(4, cpu_count)
    listing = WorldShard(RngTree(seed)).build_population(population)
    sites = listing.alexa_top(top)

    def run_with(worker_count: int, executor: str):
        runner = CampaignRunner(
            seed=seed,
            population_size=population,
            shards=shards,
            workers=worker_count,
            executor=executor,
        )
        began = time.perf_counter()
        result = runner.run(sites)
        return result, time.perf_counter() - began

    serial_result, serial_wall = run_with(1, "serial")
    sharded_result, sharded_wall = run_with(workers, "process")

    extras = {
        "cpu_count": cpu_count,
        "shards": shards,
        "workers": workers,
        "sites": len(sites),
        "identical": (
            serial_result.stats == sharded_result.stats
            and serial_result.telemetry == sharded_result.telemetry
        ),
    }
    if cpu_count == 1:
        extras["single_core_warning"] = (
            "only one CPU core visible: the process pool cannot run "
            "shards in parallel, so the sharded timing measures pure "
            "overhead and no speedup should be expected"
        )
    return BenchResult(
        name="sharded_campaign",
        kind="macro",
        baseline_seconds=serial_wall,
        optimized_seconds=sharded_wall,
        gated=False,
        extras=extras,
    )


def _campaign_fingerprint(result) -> list[tuple]:
    return [
        (a.site_host, a.rank, a.identity.identity_id, a.identity.email_local,
         a.password_class.value, a.outcome.code.value, a.outcome.pages_loaded,
         a.registered_at, a.manual)
        for a in result.attempts
    ]


def bench_shardout(quick: bool) -> BenchResult:
    """Scale-out executor A/B: cold fresh pools vs warm persistent pool.

    The cold leg is what a campaign pays without the PR-5 layer: a
    fresh process pool per run (parent caches cleared first, so forked
    workers start genuinely cold), no warm world cache, results shipped
    by default pickling.  The warm leg keeps one persistent pool whose
    workers retain their process-lifetime caches between runs, shards
    opt into the warm world cache and results cross the pool through
    the compact wire codec; the steady-state run is what gets timed.

    Deliberately sized so cold-start dominates (that is the cost the
    layer removes); never gated — the ratio is a property of the
    machine's core count and fork semantics, not of the code.  The
    bench *does* fail the suite if warm and cold outputs diverge by a
    bit, or if the codec stops being smaller than pickle.
    """
    from repro.core.runner import CampaignRunner
    from repro.core.substrate import WorldShard
    from repro.perf import wire as _wire_mod
    from repro.util.rngtree import RngTree

    seed, population, top, shards = (31, 150, 120, 8)
    steady_repeats = 1 if quick else 2
    cpu_count = os.cpu_count() or 1
    listing = WorldShard(RngTree(seed)).build_population(population)
    sites = listing.alexa_top(top)

    def make_runner(workers: int, executor: str, warm: bool, codec: bool,
                    persistent: bool) -> CampaignRunner:
        return CampaignRunner(
            seed=seed,
            population_size=population,
            shards=shards,
            workers=workers,
            executor=executor,
            obs_enabled=True,
            warm_workers=warm,
            wire_codec=codec,
            persistent_pool=persistent,
        )

    was_enabled = _perf.enabled()
    matrix: dict[str, dict] = {}
    fingerprints = []
    journals = []
    cold_results = {}
    warm_results = {}
    try:
        _perf.set_enabled(True)
        for workers in (1, 2, 4):
            # Cold: parent caches cleared so fork()ed workers inherit
            # nothing; a brand-new pool per run.
            _perf.clear_all_caches()
            cold_runner = make_runner(workers, "process", warm=False,
                                      codec=False, persistent=False)
            began = time.perf_counter()
            cold_result = cold_runner.run(sites)
            cold_wall = time.perf_counter() - began

            # Warm: one pool across runs; workers keep their caches.
            warm_wall = float("inf")
            with make_runner(workers, "process", warm=True, codec=True,
                             persistent=True) as runner:
                runner.run(sites)  # warm the pool's worker caches
                for _ in range(steady_repeats):
                    began = time.perf_counter()
                    warm_result = runner.run(sites)
                    warm_wall = min(warm_wall, time.perf_counter() - began)

            cold_results[workers] = cold_result
            warm_results[workers] = warm_result
            fingerprints.append(_campaign_fingerprint(cold_result))
            fingerprints.append(_campaign_fingerprint(warm_result))
            journals.append(cold_result.journal.to_jsonl())
            journals.append(warm_result.journal.to_jsonl())
            matrix[str(workers)] = {
                "cold_seconds": round(cold_wall, 4),
                "warm_seconds": round(warm_wall, 4),
                "speedup": round(cold_wall / warm_wall, 2) if warm_wall > 0
                else float("inf"),
            }

        # The serial cold reference everything must bit-match.
        _perf.clear_all_caches()
        serial = make_runner(1, "serial", warm=False, codec=False,
                             persistent=False).run(sites)
        fingerprints.append(_campaign_fingerprint(serial))
        journals.append(serial.journal.to_jsonl())
    finally:
        _perf.set_enabled(was_enabled)

    headline = cold_results[4], warm_results[4]
    pickle_per_shard = {
        r.shard_index: _wire_mod.pickled_size(r)
        for r in headline[0].shard_results
    }
    codec_per_shard = dict(sorted(headline[1].wire_bytes.items()))
    pickle_total = sum(pickle_per_shard.values())
    codec_total = sum(codec_per_shard.values())
    identical = (
        all(fp == fingerprints[0] for fp in fingerprints)
        and all(j == journals[0] for j in journals)
        and codec_total < pickle_total
    )
    extras = {
        "cpu_count": cpu_count,
        "shards": shards,
        "sites": len(sites),
        "workers_matrix": matrix,
        "wire_pickle_bytes": pickle_total,
        "wire_codec_bytes": codec_total,
        "wire_pickle_per_shard": {str(k): v for k, v in sorted(pickle_per_shard.items())},
        "wire_codec_per_shard": {str(k): v for k, v in codec_per_shard.items()},
        "codec_smaller": codec_total < pickle_total,
        "identical": identical,
    }
    if cpu_count == 1:
        extras["single_core_warning"] = (
            "only one CPU core visible: the warm/cold ratio reflects "
            "cache reuse alone, not parallel speedup"
        )
    return BenchResult(
        name="shardout",
        kind="macro",
        baseline_seconds=matrix["4"]["cold_seconds"],
        optimized_seconds=matrix["4"]["warm_seconds"],
        gated=False,
        extras=extras,
    )


#: Maximum tolerated slowdown of an *observed* pilot vs the no-op
#: default: obs must stay effectively free when disabled and cheap
#: when enabled, or nobody will leave it on.
OBS_OVERHEAD_BUDGET = 0.05


def bench_obs_overhead(quick: bool) -> BenchResult:
    """Pilot e2e, obs off vs on: same results, bounded overhead.

    Unlike the cache benches this is not an optimization A/B — it
    gates a *cost ceiling*.  ``baseline`` is the default no-op path,
    ``optimized`` the fully-observed run; the bench fails the suite
    when the observed run costs more than ``OBS_OVERHEAD_BUDGET``
    extra, or when observation perturbs the simulation at all.
    """
    import dataclasses

    from repro.core.scenario import PilotScenario

    config = _pilot_config(quick)
    observed = dataclasses.replace(config, obs_enabled=True)

    results: dict[str, object] = {}

    def run(cfg, key):
        results[key] = PilotScenario(cfg).run()

    run(config, "off")  # warm imports and caches for both legs
    run(observed, "on")
    # The budget is a few percent — well inside one CI load spike — so
    # no single wall-clock estimator can gate it.  The legs are
    # interleaved, automatic GC is off while a leg is timed (the
    # observed leg allocates far more, so cyclic collections it
    # triggers would scan whatever heap *earlier benches* left behind
    # and bill that to obs), collection runs between legs instead, and
    # the gate takes the *smaller* of two upward-noise-prone
    # estimators: the median per-pair ratio and the best-leg ratio.
    # Machine noise (load spikes, frequency states) rarely inflates
    # both at once; a real obs regression inflates both.
    import gc

    def timed_leg(cfg, key):
        gc.collect()
        gc.disable()
        try:
            began = time.perf_counter()
            for _ in range(batch):
                run(cfg, key)
            return (time.perf_counter() - began) / batch
        finally:
            gc.enable()

    batch = 2
    off_seconds = on_seconds = float("inf")
    ratios = []
    for _ in range(7):
        off_leg = timed_leg(config, "off")
        on_leg = timed_leg(observed, "on")
        off_seconds = min(off_seconds, off_leg)
        on_seconds = min(on_seconds, on_leg)
        ratios.append(on_leg / off_leg if off_leg > 0 else 1.0)
    identical = (
        _pilot_fingerprint(results["off"]) == _pilot_fingerprint(results["on"])
        and results["off"].detected_hosts == results["on"].detected_hosts
    )
    median_ratio = sorted(ratios)[len(ratios) // 2]
    floor_ratio = on_seconds / off_seconds if off_seconds > 0 else 1.0
    overhead = min(median_ratio, floor_ratio) - 1.0
    return BenchResult(
        name="obs_overhead",
        kind="macro",
        baseline_seconds=off_seconds,
        optimized_seconds=on_seconds,
        gated=False,  # the gate is within_budget, not a speedup floor
        extras={
            "population": config.population_size,
            "identical": identical,
            "median_ratio": round(median_ratio, 4),
            "floor_ratio": round(floor_ratio, 4),
            "overhead_fraction": round(overhead, 4),
            "budget": OBS_OVERHEAD_BUDGET,
            "within_budget": overhead < OBS_OVERHEAD_BUDGET,
        },
    )


BENCHES = {
    "classify": bench_classify,
    "parse": bench_parse,
    "render": bench_render,
    "pilot": bench_pilot,
    "campaign": bench_sharded_campaign,
    "obs": bench_obs_overhead,
    "shardout": bench_shardout,
}


# -- suite driver ------------------------------------------------------------


def run_suite(quick: bool = False, only: list[str] | None = None) -> dict:
    """Run the selected benches and assemble the snapshot payload."""
    names = only or list(BENCHES)
    results = []
    for name in names:
        print(f"bench {name} ...", file=sys.stderr, flush=True)
        results.append(BENCHES[name](quick))
    cpu_count = os.cpu_count() or 1
    payload = {
        "schema_version": SCHEMA_VERSION,
        "bench_index": BENCH_INDEX,
        "quick": quick,
        "cpu_count": cpu_count,
        "benches": {result.name: result.as_dict() for result in results},
    }
    if cpu_count == 1:
        payload["single_core_warning"] = (
            "recorded on a single-core machine; parallel speedups are "
            "meaningless here"
        )
    return payload


def check_against_baseline(
    payload: dict, baseline: dict, budget: float = CHECK_BUDGET
) -> list[str]:
    """Regression failures vs a committed baseline (empty = pass).

    Compares speedup *ratios*: a gated bench fails when it keeps less
    than ``1/budget`` of the baseline's recorded speedup, or when a
    bit-identity check that previously passed now fails.
    """
    failures = []
    for name, recorded in baseline.get("benches", {}).items():
        current = payload.get("benches", {}).get(name)
        if current is None:
            failures.append(f"{name}: missing from current run")
            continue
        if recorded.get("identical", True) and not current.get("identical", True):
            failures.append(f"{name}: optimized results no longer bit-identical")
        if not recorded.get("gated", True):
            continue
        floor = recorded["speedup"] / budget
        if current["speedup"] < floor:
            failures.append(
                f"{name}: speedup {current['speedup']:.2f}x fell below "
                f"{floor:.2f}x (baseline {recorded['speedup']:.2f}x / "
                f"budget {budget:g})"
            )
    return failures


def render_summary(payload: dict) -> str:
    """Human-readable one-line-per-bench table."""
    lines = [
        f"perf suite (schema v{payload['schema_version']}, "
        f"bench index {payload['bench_index']}, "
        f"cpu_count={payload['cpu_count']}"
        + (", QUICK" if payload.get("quick") else "") + "):"
    ]
    for name, bench in payload["benches"].items():
        flags = []
        if "identical" in bench:
            flags.append("identical" if bench["identical"] else "MISMATCH")
        if not bench.get("gated", True):
            flags.append("ungated")
        suffix = f" [{', '.join(flags)}]" if flags else ""
        lines.append(
            f"  {name:<18} {bench['baseline_seconds']:>8.3f}s -> "
            f"{bench['optimized_seconds']:>8.3f}s  "
            f"{bench['speedup']:>6.2f}x{suffix}"
        )
    if "single_core_warning" in payload:
        lines.append(f"  WARNING: {payload['single_core_warning']}")
    return "\n".join(lines)


def add_suite_arguments(parser: argparse.ArgumentParser) -> None:
    """Register the suite's options (shared with the ``repro perf`` CLI)."""
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized workloads (seconds, not minutes)")
    parser.add_argument("--only", action="append", choices=sorted(BENCHES),
                        help="run just this bench (repeatable)")
    parser.add_argument("--output", type=pathlib.Path, default=TRAJECTORY_PATH,
                        help=f"snapshot path (default {TRAJECTORY_PATH.name} "
                             "at the repo root)")
    parser.add_argument("--no-write", action="store_true",
                        help="print the summary without writing the snapshot")
    parser.add_argument("--check", type=pathlib.Path, metavar="BASELINE",
                        default=None,
                        help="gate against a committed baseline JSON "
                             f"(e.g. {DEFAULT_BASELINE.relative_to(REPO_ROOT)})")
    parser.add_argument("--budget", type=float, default=CHECK_BUDGET,
                        help="regression budget for --check: fail only below "
                             "baseline_speedup/budget (default %(default)s)")
    parser.add_argument("--write-baseline", action="store_true",
                        help=f"also record this run as "
                             f"{DEFAULT_BASELINE.relative_to(REPO_ROOT)}")


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro perf",
        description="Run the A/B performance suite and write the "
                    f"BENCH_{BENCH_INDEX}.json snapshot.",
    )
    add_suite_arguments(parser)
    return parser


def run_from_args(args: argparse.Namespace) -> int:
    """Execute the suite from parsed arguments (CLI handler entry)."""
    payload = run_suite(quick=args.quick, only=args.only)
    print(render_summary(payload))

    serialized = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if not args.no_write:
        args.output.write_text(serialized, encoding="utf-8")
        print(f"wrote {args.output}", file=sys.stderr)
    if args.write_baseline:
        DEFAULT_BASELINE.write_text(serialized, encoding="utf-8")
        print(f"wrote {DEFAULT_BASELINE}", file=sys.stderr)

    mismatched = [name for name, bench in payload["benches"].items()
                  if bench.get("identical") is False]
    if mismatched:
        print(f"FAIL: results not bit-identical: {', '.join(mismatched)}")
        return 1
    over_budget = [
        f"{name} ({bench['overhead_fraction']:+.1%} > {bench['budget']:.0%})"
        for name, bench in payload["benches"].items()
        if bench.get("within_budget") is False
    ]
    if over_budget:
        print(f"FAIL: overhead above budget: {', '.join(over_budget)}")
        return 1
    if args.check is not None:
        baseline = json.loads(args.check.read_text(encoding="utf-8"))
        failures = check_against_baseline(payload, baseline, budget=args.budget)
        if failures:
            print("perf regression check FAILED:")
            for failure in failures:
                print(f"  {failure}")
            return 1
        print(f"perf regression check passed against {args.check}")
    return 0


def main(argv: list[str] | None = None) -> int:
    return run_from_args(build_arg_parser().parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
